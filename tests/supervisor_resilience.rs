//! Supervisor resilience: an injected candidate fault must never abort
//! the search. The offender is retried (when transient), classified,
//! quarantined, and scored as a rejection — and the run completes with
//! exactly as many trace records as a clean run.
//!
//! Faults are injected through `SupervisorConfig::fault` directly (the
//! in-process equivalent of the `GMORPH_FAULT` environment variable,
//! which the CI fault-smoke job exercises end-to-end; tests never poke
//! the process environment because the test runner shares it).

use gmorph::models::train::TrainConfig;
use gmorph::prelude::*;
use gmorph::search::driver::{run_search_checkpointed, CandidateStatus, SearchResult};
use gmorph::search::evaluator::EvalMode;
use gmorph::search::SearchConfig;
use gmorph::telemetry::metrics::counter_value;
use gmorph::telemetry::sink::install_test_sink;
use gmorph::tensor::{FaultKind, FaultSpec};

fn smoke_session(seed: u64) -> Session {
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), seed).unwrap();
    Session::prepare(
        bench,
        &SessionConfig {
            teacher: TrainConfig {
                epochs: 1,
                batch: 32,
                lr: 3e-3,
                seed,
            },
            seed,
            use_cache: false,
            ..Default::default()
        },
    )
    .unwrap()
}

fn run(session: &Session, mode: &EvalMode, cfg: &SearchConfig) -> SearchResult {
    run_search_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        mode,
        cfg,
        None,
    )
    .unwrap()
}

fn surrogate_cfg(iterations: usize) -> SearchConfig {
    OptimizationConfig {
        iterations,
        seed: 7,
        ..Default::default()
    }
    .to_search_config()
}

/// The first iteration of a clean run whose candidate actually reached
/// evaluation (a fault at a duplicate/filtered iteration would be inert).
fn first_evaluated_iter(reference: &SearchResult) -> usize {
    reference
        .trace
        .iter()
        .find(|r| r.status == CandidateStatus::Evaluated)
        .map(|r| r.iter)
        .expect("clean run evaluated nothing: useless scenario")
}

/// Satellite (a): every fault mode completes the search with the same
/// iteration count as the clean run, quarantines the offender, and emits
/// `eval.quarantine` telemetry.
#[test]
fn injected_faults_are_contained_and_search_completes() {
    let session = smoke_session(7);
    let mode = session.eval_mode(AccuracyMode::Surrogate).unwrap();
    let cfg = surrogate_cfg(16);
    let reference = run(&session, &mode, &cfg);
    assert_eq!(reference.trace.len(), 16);
    assert_eq!(reference.failed, 0);
    let fault_iter = first_evaluated_iter(&reference);

    for kind in [FaultKind::NanLoss, FaultKind::GradExplode, FaultKind::PanicEval] {
        let mut faulted_cfg = cfg.clone();
        faulted_cfg.supervisor.fault = Some(FaultSpec {
            kind,
            at_iter: fault_iter,
        });
        let guard = install_test_sink();
        let faulted = run(&session, &mode, &faulted_cfg);
        let quarantine_events = counter_value("eval.quarantine");
        let retry_events = counter_value("eval.retry");
        drop(guard);

        // The search completed — same iteration count as the clean run.
        assert_eq!(
            faulted.trace.len(),
            reference.trace.len(),
            "{kind:?}: search must run to completion"
        );
        assert_eq!(faulted.failed, 1, "{kind:?}: exactly one contained failure");
        assert!(quarantine_events >= 1, "{kind:?}: quarantine not counted");
        // NanLoss/GradExplode/Panic are all transient: retries happened.
        assert!(retry_events >= 1, "{kind:?}: transient fault never retried");

        // The offending iteration is recorded as Failed with a NaN drop.
        let rec = faulted
            .trace
            .iter()
            .find(|r| r.iter == fault_iter)
            .expect("fault iteration missing from trace");
        assert_eq!(rec.status, CandidateStatus::Failed, "{kind:?}");
        assert!(rec.drop.is_nan(), "{kind:?}: failed drop must be NaN");
        assert!(!rec.met_target, "{kind:?}");

        // Iterations before the fault replay the clean run bit-exactly
        // (default supervision does not perturb the RNG stream).
        for (a, b) in reference
            .trace
            .iter()
            .zip(&faulted.trace)
            .take_while(|(a, _)| a.iter < fault_iter)
        {
            assert_eq!(a.status, b.status, "{kind:?}: pre-fault divergence");
            assert_eq!(
                a.candidate_latency_ms.to_bits(),
                b.candidate_latency_ms.to_bits(),
                "{kind:?}: pre-fault latency divergence"
            );
        }
    }
}

/// A slow candidate trips the wall-clock deadline; timeouts are
/// permanent (machine-dependent), so there is exactly one attempt and
/// the candidate goes straight to quarantine.
#[test]
fn slow_candidate_times_out_and_is_quarantined() {
    let session = smoke_session(7);
    let mode = session.eval_mode(AccuracyMode::Surrogate).unwrap();
    let mut cfg = surrogate_cfg(12);
    let reference = run(&session, &mode, &cfg);
    let fault_iter = first_evaluated_iter(&reference);

    cfg.supervisor.fault = Some(FaultSpec {
        kind: FaultKind::SlowCandidate,
        at_iter: fault_iter,
    });
    // The injected stall sleeps 30ms; a 5ms deadline must catch it.
    cfg.supervisor.candidate_deadline_ms = Some(5);

    let guard = install_test_sink();
    let faulted = run(&session, &mode, &cfg);
    let retry_events = counter_value("eval.retry");
    let quarantine_events = counter_value("eval.quarantine");
    drop(guard);

    assert_eq!(faulted.trace.len(), reference.trace.len());
    assert_eq!(faulted.failed, 1);
    assert_eq!(retry_events, 0, "timeouts must not be retried");
    assert!(quarantine_events >= 1);
    let rec = faulted
        .trace
        .iter()
        .find(|r| r.iter == fault_iter)
        .unwrap();
    assert_eq!(rec.status, CandidateStatus::Failed);
}

/// A fault at an iteration past the end of the run never fires: the
/// faulted configuration replays the clean run bit-for-bit.
#[test]
fn out_of_range_fault_is_inert() {
    let session = smoke_session(7);
    let mode = session.eval_mode(AccuracyMode::Surrogate).unwrap();
    let cfg = surrogate_cfg(8);
    let reference = run(&session, &mode, &cfg);

    let mut faulted_cfg = cfg.clone();
    faulted_cfg.supervisor.fault = Some(FaultSpec {
        kind: FaultKind::NanLoss,
        at_iter: 999,
    });
    let faulted = run(&session, &mode, &faulted_cfg);
    assert_eq!(faulted.failed, 0);
    assert_eq!(
        faulted.best.mini.signature(),
        reference.best.mini.signature()
    );
    assert_eq!(
        faulted.best.latency_ms.to_bits(),
        reference.best.latency_ms.to_bits()
    );
    assert_eq!(faulted.speedup.to_bits(), reference.speedup.to_bits());
}

/// Real-mode containment: the fault poisons actual distillation
/// fine-tuning (NaN losses and gradients through the real training
/// loop), and the supervisor still contains it.
#[test]
fn real_mode_fault_is_contained() {
    let session = smoke_session(7);
    let mode = session.eval_mode(AccuracyMode::Real).unwrap();
    let mut cfg = OptimizationConfig {
        iterations: 4,
        max_epochs: 2,
        eval_every: 1,
        seed: 7,
        mode: AccuracyMode::Real,
        ..Default::default()
    }
    .to_search_config();

    let reference = run(&session, &mode, &cfg);
    let fault_iter = first_evaluated_iter(&reference);
    cfg.supervisor.fault = Some(FaultSpec {
        kind: FaultKind::NanLoss,
        at_iter: fault_iter,
    });

    let guard = install_test_sink();
    let faulted = run(&session, &mode, &cfg);
    let quarantine_events = counter_value("eval.quarantine");
    drop(guard);

    assert_eq!(faulted.trace.len(), reference.trace.len());
    assert_eq!(faulted.failed, 1);
    assert!(quarantine_events >= 1);
}
