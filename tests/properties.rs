//! Cross-crate property tests on the search-level invariants.

use gmorph::graph::pairs::{pairs_with, PairPolicy};
use gmorph::graph::{mutation, parser, CapacityVector};
use gmorph::prelude::*;
use gmorph::tensor::rng::Rng;
use proptest::prelude::*;

fn b3_graph() -> AbsGraph {
    let bench = build_benchmark(BenchId::B3, &DataProfile::smoke(), 1).unwrap();
    parser::parse_specs(&bench.mini).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sequence of sampled mutation passes keeps the graph valid,
    /// keeps every task's head, and never increases FLOPs-per-shared-path
    /// beyond the original.
    #[test]
    fn mutation_passes_preserve_invariants(seed in 0u64..500, rounds in 1usize..4) {
        let mut g = b3_graph();
        let original_flops = g.flops().unwrap();
        let mut rng = Rng::new(seed);
        for _ in 0..rounds {
            let pairs = pairs_with(&g, PairPolicy::SimilarShape).unwrap();
            if pairs.is_empty() {
                break;
            }
            let chosen = pairs[rng.below(pairs.len())];
            let (next, ops) = mutation::mutation_pass(&g, &[chosen]).unwrap();
            if ops.is_empty() {
                continue;
            }
            next.validate().unwrap();
            prop_assert_eq!(next.head_of_task().unwrap().len(), 3);
            g = next;
        }
        // Sharing removes computation but may add re-scale adapters whose
        // cost is not bounded by what was removed (the search objective,
        // not an invariant, rejects such candidates). The invariant is on
        // the *original* computation: non-rescale work never grows.
        let non_rescale: u64 = g
            .iter()
            .filter(|(_, n)| !matches!(n.spec, BlockSpec::Rescale { .. }))
            .map(|(_, n)| n.spec.flops(&n.input_shape).unwrap())
            .sum();
        prop_assert!(non_rescale <= original_flops);
    }

    /// Capacity vectors shrink (weakly) under mutation: total parameters
    /// never grow except by small rescale adapters.
    #[test]
    fn mutation_never_inflates_capacity_much(seed in 0u64..500) {
        let g = b3_graph();
        let before = CapacityVector::of(&g).unwrap();
        let mut rng = Rng::new(seed);
        let pairs = pairs_with(&g, PairPolicy::SimilarShape).unwrap();
        prop_assume!(!pairs.is_empty());
        let chosen = pairs[rng.below(pairs.len())];
        let (next, ops) = mutation::mutation_pass(&g, &[chosen]).unwrap();
        prop_assume!(!ops.is_empty());
        let after = CapacityVector::of(&next).unwrap();
        // A rescale adapter is at most c_in*c_out+c_out parameters, far
        // below any removed block.
        prop_assert!(after.total <= before.total + 2 * 16 * 16 + 16);
    }

    /// The structural signature is sound: equal signatures mean equal
    /// latency estimates and capacity vectors.
    #[test]
    fn signature_soundness(seed_a in 0u64..200, seed_b in 0u64..200) {
        let g = b3_graph();
        let pairs = pairs_with(&g, PairPolicy::SimilarShape).unwrap();
        prop_assume!(pairs.len() >= 2);
        let mut ra = Rng::new(seed_a);
        let mut rb = Rng::new(seed_b);
        let (ga, _) = mutation::mutation_pass(&g, &[pairs[ra.below(pairs.len())]]).unwrap();
        let (gb, _) = mutation::mutation_pass(&g, &[pairs[rb.below(pairs.len())]]).unwrap();
        if ga.signature() == gb.signature() {
            prop_assert_eq!(ga.flops().unwrap(), gb.flops().unwrap());
            prop_assert_eq!(
                CapacityVector::of(&ga).unwrap(),
                CapacityVector::of(&gb).unwrap()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Transformer graphs (different widths and depths, BERT-style) obey
    /// the same mutation invariants as CNN graphs, including the rule
    /// that token embeddings never receive re-scaled inputs.
    #[test]
    fn transformer_mutations_preserve_invariants(seed in 0u64..300, rounds in 1usize..4) {
        let bench = build_benchmark(BenchId::B7, &DataProfile::smoke(), 2).unwrap();
        let mut g = parser::parse_specs(&bench.mini).unwrap();
        let mut rng = Rng::new(seed);
        for _ in 0..rounds {
            let prs = pairs_with(&g, PairPolicy::SimilarShape).unwrap();
            if prs.is_empty() {
                break;
            }
            let chosen = prs[rng.below(prs.len())];
            let (next, ops) = mutation::mutation_pass(&g, &[chosen]).unwrap();
            if ops.is_empty() {
                continue;
            }
            next.validate().unwrap();
            g = next;
        }
        // Token embeddings always consume the raw input.
        for (_, n) in g.iter() {
            if matches!(n.spec, BlockSpec::TokenEmbed { .. }) {
                prop_assert_eq!(n.parent, None);
            }
        }
        prop_assert_eq!(g.head_of_task().unwrap().len(), 2);
    }

    /// Any graph reachable by legal mutations can be materialized into a
    /// runnable tree model with teacher-weight inheritance, and its
    /// forward pass emits finite logits of the right widths.
    #[test]
    fn evolved_graphs_always_materialize_and_run(seed in 0u64..200) {
        let bench = build_benchmark(BenchId::B3, &DataProfile::smoke(), 4).unwrap();
        let mut rng = Rng::new(seed);
        let teachers: Vec<_> = bench
            .mini
            .iter()
            .map(|s| s.build(&mut rng).unwrap())
            .collect();
        let (mut g, store) = parser::parse_models(&teachers).unwrap();
        for _ in 0..2 {
            let prs = pairs_with(&g, PairPolicy::SimilarShape).unwrap();
            prop_assume!(!prs.is_empty());
            let chosen = prs[rng.below(prs.len())];
            let (next, _) = mutation::mutation_pass(&g, &[chosen]).unwrap();
            g = next;
        }
        let (mut tree, _) =
            gmorph::graph::generator::generate(&g, &store, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let ys = tree.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(ys.len(), 3);
        for (t, y) in ys.iter().enumerate() {
            prop_assert_eq!(y.dims()[1], bench.mini[t].task.classes);
            prop_assert!(y.data().iter().all(|v| v.is_finite()));
        }
    }
}

// --- Checkpoint invariants (DESIGN.md §12) ---

use gmorph::search::driver::run_search_checkpointed;
use gmorph::search::evaluator::EvalMode;
use gmorph::search::{CheckpointOptions, CrashKind};
use gmorph::tensor::checkpoint::Envelope;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::OnceLock;

fn checkpoint_session(bench_id: BenchId, seed: u64) -> (Session, EvalMode, SearchResult) {
    let bench = build_benchmark(bench_id, &DataProfile::smoke(), seed).unwrap();
    let session = Session::prepare(
        bench,
        &SessionConfig {
            teacher: gmorph::models::train::TrainConfig {
                epochs: 1,
                batch: 32,
                lr: 3e-3,
                seed,
            },
            seed,
            use_cache: false,
            ..Default::default()
        },
    )
    .unwrap();
    let mode = session.eval_mode(AccuracyMode::Surrogate).unwrap();
    let mut cfg = OptimizationConfig {
        iterations: 10,
        seed,
        ..Default::default()
    }
    .to_search_config();
    cfg.virtual_throughput = session.virtual_throughput;
    let reference = run_search_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        &mode,
        &cfg,
        None,
    )
    .unwrap();
    (session, mode, reference)
}

static B1_FIX: OnceLock<(Session, EvalMode, SearchResult)> = OnceLock::new();
static B3_FIX: OnceLock<(Session, EvalMode, SearchResult)> = OnceLock::new();

fn resume_matches_reference(bench_id: BenchId, interrupt: usize, tag: &str) -> Result<(), String> {
    let (session, mode, reference) = match bench_id {
        BenchId::B1 => B1_FIX.get_or_init(|| checkpoint_session(BenchId::B1, 17)),
        _ => B3_FIX.get_or_init(|| checkpoint_session(BenchId::B3, 18)),
    };
    let mut cfg = OptimizationConfig {
        iterations: 10,
        seed: session.seed,
        ..Default::default()
    }
    .to_search_config();
    cfg.virtual_throughput = session.virtual_throughput;

    let dir = std::env::temp_dir().join(format!(
        "gmorph-prop-resume-{tag}-{interrupt}-{}",
        std::process::id()
    ));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    let mut opts = CheckpointOptions::new(&dir);
    opts.every = 1;
    opts.crash_after = Some((interrupt, CrashKind::Panic));
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        run_search_checkpointed(
            &session.mini_graph,
            &session.paper_graph,
            &session.weights,
            mode,
            &cfg,
            Some(&opts),
        )
    }));
    if crashed.is_ok() {
        return Err(format!("injected crash at {interrupt} did not fire"));
    }
    let mut resume = CheckpointOptions::new(&dir);
    resume.every = 1;
    resume.resume = true;
    let resumed = run_search_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        mode,
        &cfg,
        Some(&resume),
    )
    .map_err(|e| format!("resume failed: {e}"))?;
    std::fs::remove_dir_all(&dir).ok();

    if resumed.best.mini.signature() != reference.best.mini.signature() {
        return Err("best graph diverged after resume".to_string());
    }
    if resumed.best.latency_ms.to_bits() != reference.best.latency_ms.to_bits() {
        return Err("best latency diverged after resume".to_string());
    }
    if resumed.evaluated != reference.evaluated
        || resumed.duplicates != reference.duplicates
        || resumed.trace.len() != reference.trace.len()
    {
        return Err("counters/trace diverged after resume".to_string());
    }
    Ok(())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The checkpoint envelope is a bijection: encode→decode is the
    /// identity on (kind, schema, sections) for arbitrary payloads, so
    /// no snapshot content can be silently altered by a round trip.
    #[test]
    fn checkpoint_envelope_roundtrips(
        schema in 0u32..1000,
        name_seed in 0u64..1_000_000,
        payload in proptest::collection::vec(0u8..=255u8, 0..256),
        n_sections in 1usize..6,
    ) {
        let mut env = Envelope::new("prop", schema);
        for i in 0..n_sections {
            // Distinct names; contents shifted per section.
            let bytes: Vec<u8> =
                payload.iter().map(|b| b.wrapping_add(i as u8)).collect();
            env.push(&format!("s{name_seed}-{i}"), bytes);
        }
        let bytes = env.encode();
        let back = Envelope::decode(&bytes)
            .map_err(|e| format!("decode failed: {e}"))?;
        prop_assert_eq!(&back.kind, &env.kind);
        prop_assert_eq!(back.schema, env.schema);
        prop_assert_eq!(&back.sections, &env.sections);
        // Canonical encoding: re-encoding reproduces the exact bytes.
        prop_assert_eq!(back.encode(), bytes);
    }

    /// Any single corrupting byte-flip anywhere in an encoded envelope
    /// is detected: decode either errors or (for flips inside section
    /// *names* only) cannot alter section payloads unnoticed — the CRC
    /// covers the entire body.
    #[test]
    fn envelope_detects_any_single_bit_flip(
        offset_seed in 0u64..10_000,
        bit in 0u8..8,
    ) {
        let mut env = Envelope::new("prop", 3);
        env.push("data", vec![7u8; 64]);
        let mut bytes = env.encode();
        let offset = (offset_seed as usize) % bytes.len();
        bytes[offset] ^= 1 << bit;
        // Every flip lands in magic, format, length, CRC, or the
        // CRC-covered body — all detected.
        prop_assert!(Envelope::decode(&bytes).is_err());
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(5))]

    /// Resuming a B1 search killed at a random iteration reproduces the
    /// uninterrupted run.
    #[test]
    fn b1_resume_at_random_iteration_matches(interrupt in 1usize..10) {
        resume_matches_reference(BenchId::B1, interrupt, "b1")?;
    }

    /// Same for B3 (three heterogeneous tasks).
    #[test]
    fn b3_resume_at_random_iteration_matches(interrupt in 1usize..10) {
        resume_matches_reference(BenchId::B3, interrupt, "b3")?;
    }
}

// --- Resilience invariants (DESIGN.md §13) ---

use gmorph::nn::health::clip_scale;
use gmorph::search::supervisor::retry_seed;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Global-norm clipping preserves gradient direction: the clip
    /// factor is always a positive scalar, so the clipped gradient is a
    /// positive multiple of the original, and its norm lands exactly on
    /// the threshold. Norms at or below the threshold are untouched.
    #[test]
    fn clipping_preserves_gradient_direction(
        grad in proptest::collection::vec(-1e3f32..1e3, 1..64),
        max_norm in 1e-3f32..1e3,
    ) {
        let norm = grad.iter().map(|g| (*g as f64).powi(2)).sum::<f64>().sqrt() as f32;
        match clip_scale(norm, max_norm) {
            None => prop_assert!(norm <= max_norm),
            Some(scale) => {
                prop_assert!(norm > max_norm);
                prop_assert!(scale > 0.0 && scale < 1.0, "scale {scale}");
                let clipped: Vec<f32> = grad.iter().map(|g| g * scale).collect();
                // Direction preserved: every component keeps its sign.
                for (g, c) in grad.iter().zip(&clipped) {
                    prop_assert!(g.signum() == c.signum() || *c == 0.0);
                }
                let new_norm = clipped
                    .iter()
                    .map(|g| (*g as f64).powi(2))
                    .sum::<f64>()
                    .sqrt() as f32;
                prop_assert!(
                    (new_norm - max_norm).abs() <= max_norm * 1e-3,
                    "clipped norm {new_norm} vs threshold {max_norm}"
                );
            }
        }
    }

    /// Retry RNG streams are disjoint from the search stream and from
    /// each other: no (iteration, attempt) pair may reseed onto the
    /// search stream (which would perturb replay determinism), and
    /// distinct retry attempts must not share a stream.
    #[test]
    fn retry_streams_are_disjoint_from_search_stream(
        seed in 0u64..u64::MAX,
        iter_a in 0usize..10_000,
        iter_b in 0usize..10_000,
        attempt_a in 1usize..16,
        attempt_b in 1usize..16,
    ) {
        let search_seed = seed ^ 0x5EA_4C4;
        let rs_a = retry_seed(seed, iter_a, attempt_a);
        let rs_b = retry_seed(seed, iter_b, attempt_b);
        prop_assert_ne!(rs_a, search_seed);
        prop_assert_ne!(rs_b, search_seed);
        if (iter_a, attempt_a) != (iter_b, attempt_b) {
            prop_assert_ne!(rs_a, rs_b);
        }
        // Disjoint seeds yield distinct streams, not just distinct seeds.
        let mut search_rng = Rng::new(search_seed);
        let mut retry_rng = Rng::new(rs_a);
        let search_draws: Vec<u32> =
            (0..4).map(|_| search_rng.below(u32::MAX as usize) as u32).collect();
        let retry_draws: Vec<u32> =
            (0..4).map(|_| retry_rng.below(u32::MAX as usize) as u32).collect();
        prop_assert_ne!(search_draws, retry_draws);
    }
}

#[test]
fn serving_tasks_cover_every_head_path() {
    let g = b3_graph();
    let serving = g.serving_tasks().unwrap();
    let heads = g.head_of_task().unwrap();
    for (task, &head) in heads.iter().enumerate() {
        assert!(serving[&head].contains(&task));
        for anc in g.ancestors(head).unwrap() {
            assert!(serving[&anc].contains(&task));
        }
    }
}
