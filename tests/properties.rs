//! Cross-crate property tests on the search-level invariants.

use gmorph::graph::pairs::{pairs_with, PairPolicy};
use gmorph::graph::{mutation, parser, CapacityVector};
use gmorph::prelude::*;
use gmorph::tensor::rng::Rng;
use proptest::prelude::*;

fn b3_graph() -> AbsGraph {
    let bench = build_benchmark(BenchId::B3, &DataProfile::smoke(), 1).unwrap();
    parser::parse_specs(&bench.mini).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Any sequence of sampled mutation passes keeps the graph valid,
    /// keeps every task's head, and never increases FLOPs-per-shared-path
    /// beyond the original.
    #[test]
    fn mutation_passes_preserve_invariants(seed in 0u64..500, rounds in 1usize..4) {
        let mut g = b3_graph();
        let original_flops = g.flops().unwrap();
        let mut rng = Rng::new(seed);
        for _ in 0..rounds {
            let pairs = pairs_with(&g, PairPolicy::SimilarShape).unwrap();
            if pairs.is_empty() {
                break;
            }
            let chosen = pairs[rng.below(pairs.len())];
            let (next, ops) = mutation::mutation_pass(&g, &[chosen]).unwrap();
            if ops.is_empty() {
                continue;
            }
            next.validate().unwrap();
            prop_assert_eq!(next.head_of_task().unwrap().len(), 3);
            g = next;
        }
        // Sharing removes computation but may add re-scale adapters whose
        // cost is not bounded by what was removed (the search objective,
        // not an invariant, rejects such candidates). The invariant is on
        // the *original* computation: non-rescale work never grows.
        let non_rescale: u64 = g
            .iter()
            .filter(|(_, n)| !matches!(n.spec, BlockSpec::Rescale { .. }))
            .map(|(_, n)| n.spec.flops(&n.input_shape).unwrap())
            .sum();
        prop_assert!(non_rescale <= original_flops);
    }

    /// Capacity vectors shrink (weakly) under mutation: total parameters
    /// never grow except by small rescale adapters.
    #[test]
    fn mutation_never_inflates_capacity_much(seed in 0u64..500) {
        let g = b3_graph();
        let before = CapacityVector::of(&g).unwrap();
        let mut rng = Rng::new(seed);
        let pairs = pairs_with(&g, PairPolicy::SimilarShape).unwrap();
        prop_assume!(!pairs.is_empty());
        let chosen = pairs[rng.below(pairs.len())];
        let (next, ops) = mutation::mutation_pass(&g, &[chosen]).unwrap();
        prop_assume!(!ops.is_empty());
        let after = CapacityVector::of(&next).unwrap();
        // A rescale adapter is at most c_in*c_out+c_out parameters, far
        // below any removed block.
        prop_assert!(after.total <= before.total + 2 * 16 * 16 + 16);
    }

    /// The structural signature is sound: equal signatures mean equal
    /// latency estimates and capacity vectors.
    #[test]
    fn signature_soundness(seed_a in 0u64..200, seed_b in 0u64..200) {
        let g = b3_graph();
        let pairs = pairs_with(&g, PairPolicy::SimilarShape).unwrap();
        prop_assume!(pairs.len() >= 2);
        let mut ra = Rng::new(seed_a);
        let mut rb = Rng::new(seed_b);
        let (ga, _) = mutation::mutation_pass(&g, &[pairs[ra.below(pairs.len())]]).unwrap();
        let (gb, _) = mutation::mutation_pass(&g, &[pairs[rb.below(pairs.len())]]).unwrap();
        if ga.signature() == gb.signature() {
            prop_assert_eq!(ga.flops().unwrap(), gb.flops().unwrap());
            prop_assert_eq!(
                CapacityVector::of(&ga).unwrap(),
                CapacityVector::of(&gb).unwrap()
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Transformer graphs (different widths and depths, BERT-style) obey
    /// the same mutation invariants as CNN graphs, including the rule
    /// that token embeddings never receive re-scaled inputs.
    #[test]
    fn transformer_mutations_preserve_invariants(seed in 0u64..300, rounds in 1usize..4) {
        let bench = build_benchmark(BenchId::B7, &DataProfile::smoke(), 2).unwrap();
        let mut g = parser::parse_specs(&bench.mini).unwrap();
        let mut rng = Rng::new(seed);
        for _ in 0..rounds {
            let prs = pairs_with(&g, PairPolicy::SimilarShape).unwrap();
            if prs.is_empty() {
                break;
            }
            let chosen = prs[rng.below(prs.len())];
            let (next, ops) = mutation::mutation_pass(&g, &[chosen]).unwrap();
            if ops.is_empty() {
                continue;
            }
            next.validate().unwrap();
            g = next;
        }
        // Token embeddings always consume the raw input.
        for (_, n) in g.iter() {
            if matches!(n.spec, BlockSpec::TokenEmbed { .. }) {
                prop_assert_eq!(n.parent, None);
            }
        }
        prop_assert_eq!(g.head_of_task().unwrap().len(), 2);
    }

    /// Any graph reachable by legal mutations can be materialized into a
    /// runnable tree model with teacher-weight inheritance, and its
    /// forward pass emits finite logits of the right widths.
    #[test]
    fn evolved_graphs_always_materialize_and_run(seed in 0u64..200) {
        let bench = build_benchmark(BenchId::B3, &DataProfile::smoke(), 4).unwrap();
        let mut rng = Rng::new(seed);
        let teachers: Vec<_> = bench
            .mini
            .iter()
            .map(|s| s.build(&mut rng).unwrap())
            .collect();
        let (mut g, store) = parser::parse_models(&teachers).unwrap();
        for _ in 0..2 {
            let prs = pairs_with(&g, PairPolicy::SimilarShape).unwrap();
            prop_assume!(!prs.is_empty());
            let chosen = prs[rng.below(prs.len())];
            let (next, _) = mutation::mutation_pass(&g, &[chosen]).unwrap();
            g = next;
        }
        let (mut tree, _) =
            gmorph::graph::generator::generate(&g, &store, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let ys = tree.forward(&x, Mode::Eval).unwrap();
        prop_assert_eq!(ys.len(), 3);
        for (t, y) in ys.iter().enumerate() {
            prop_assert_eq!(y.dims()[1], bench.mini[t].task.classes);
            prop_assert!(y.data().iter().all(|v| v.is_finite()));
        }
    }
}

#[test]
fn serving_tasks_cover_every_head_path() {
    let g = b3_graph();
    let serving = g.serving_tasks().unwrap();
    let heads = g.head_of_task().unwrap();
    for (task, &head) in heads.iter().enumerate() {
        assert!(serving[&head].contains(&task));
        for anc in g.ancestors(head).unwrap() {
            assert!(serving[&anc].contains(&task));
        }
    }
}
