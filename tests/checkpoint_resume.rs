//! Deterministic crash/resume replay harness.
//!
//! The checkpoint contract (DESIGN.md §12): killing a search at *any*
//! iteration and resuming from the newest on-disk snapshot must yield a
//! result bit-identical to an uninterrupted run — best configuration,
//! score, counters, per-iteration trace, and the fused model's
//! serialized state dict. Only wall-clock time is exempt.
//!
//! Crashes are injected with `CheckpointOptions::crash_after` using
//! `CrashKind::Panic`, which unwinds through the search loop exactly
//! like a real panic would (the manager's `Drop` flush runs during the
//! unwind). The CI resume-smoke job covers the `Abort` path, where the
//! process dies without unwinding.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use gmorph::graph::persist::encode_model_bytes;
use gmorph::models::train::{train_teacher_checkpointed, TrainConfig};
use gmorph::prelude::*;
use gmorph::search::batched::{run_search_batched_checkpointed, BatchedResult};
use gmorph::search::driver::run_search_checkpointed;
use gmorph::search::evaluator::EvalMode;
use gmorph::search::{CheckpointOptions, CrashKind};
use gmorph::tensor::engine;

fn scratch_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("gmorph-resume-{tag}-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn smoke_session(seed: u64) -> Session {
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), seed).unwrap();
    Session::prepare(
        bench,
        &SessionConfig {
            teacher: TrainConfig {
                epochs: 1,
                batch: 32,
                lr: 3e-3,
                seed,
            },
            seed,
            use_cache: false,
            ..Default::default()
        },
    )
    .unwrap()
}

fn search_cfg(session: &Session, iterations: usize) -> gmorph::search::SearchConfig {
    let mut cfg = OptimizationConfig {
        iterations,
        seed: 7,
        ..Default::default()
    }
    .to_search_config();
    cfg.virtual_throughput = session.virtual_throughput;
    cfg
}

/// Asserts two search results are bit-identical modulo wall-clock time.
fn assert_same_result(a: &SearchResult, b: &SearchResult, what: &str) {
    assert_eq!(
        a.best.mini.signature(),
        b.best.mini.signature(),
        "{what}: best mini graph"
    );
    assert_eq!(
        a.best.paper.signature(),
        b.best.paper.signature(),
        "{what}: best paper graph"
    );
    assert_eq!(
        a.best.latency_ms.to_bits(),
        b.best.latency_ms.to_bits(),
        "{what}: best latency"
    );
    assert_eq!(a.best.drop.to_bits(), b.best.drop.to_bits(), "{what}: drop");
    assert_eq!(a.best.scores.len(), b.best.scores.len(), "{what}: scores");
    for (i, (x, y)) in a.best.scores.iter().zip(&b.best.scores).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "{what}: score {i}");
    }
    let a_bytes = encode_model_bytes(&a.best.mini, &a.best.weights).unwrap();
    let b_bytes = encode_model_bytes(&b.best.mini, &b.best.weights).unwrap();
    assert_eq!(a_bytes, b_bytes, "{what}: fused model state dict bytes");
    assert_eq!(
        a.original_latency_ms.to_bits(),
        b.original_latency_ms.to_bits(),
        "{what}: original latency"
    );
    assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "{what}: speedup");
    assert_eq!(
        a.virtual_hours.to_bits(),
        b.virtual_hours.to_bits(),
        "{what}: virtual hours"
    );
    assert_eq!(a.evaluated, b.evaluated, "{what}: evaluated");
    assert_eq!(a.rule_filtered, b.rule_filtered, "{what}: rule_filtered");
    assert_eq!(
        a.early_terminated, b.early_terminated,
        "{what}: early_terminated"
    );
    assert_eq!(a.duplicates, b.duplicates, "{what}: duplicates");
    assert_eq!(a.failed, b.failed, "{what}: failed");
    assert_eq!(a.quarantined, b.quarantined, "{what}: quarantined");
    assert_eq!(a.trace.len(), b.trace.len(), "{what}: trace length");
    for (i, (x, y)) in a.trace.iter().zip(&b.trace).enumerate() {
        assert_eq!(x.iter, y.iter, "{what}: trace[{i}].iter");
        assert_eq!(x.status, y.status, "{what}: trace[{i}].status");
        assert_eq!(x.from_elite, y.from_elite, "{what}: trace[{i}].from_elite");
        assert!(
            x.drop.to_bits() == y.drop.to_bits() || (x.drop.is_nan() && y.drop.is_nan()),
            "{what}: trace[{i}].drop {} vs {}",
            x.drop,
            y.drop
        );
        assert_eq!(x.met_target, y.met_target, "{what}: trace[{i}].met_target");
        assert_eq!(
            x.candidate_latency_ms.to_bits(),
            y.candidate_latency_ms.to_bits(),
            "{what}: trace[{i}].candidate_latency_ms"
        );
        assert_eq!(
            x.best_latency_ms.to_bits(),
            y.best_latency_ms.to_bits(),
            "{what}: trace[{i}].best_latency_ms"
        );
        assert_eq!(x.epochs, y.epochs, "{what}: trace[{i}].epochs");
        assert_eq!(
            x.virtual_hours.to_bits(),
            y.virtual_hours.to_bits(),
            "{what}: trace[{i}].virtual_hours"
        );
        // wall_seconds deliberately not compared.
    }
}

/// Runs the search to completion with a crash injected at `interrupt`,
/// then resumes from disk and returns the resumed result.
fn crash_and_resume(
    session: &Session,
    mode: &EvalMode,
    cfg: &gmorph::search::SearchConfig,
    dir: PathBuf,
    interrupt: usize,
) -> SearchResult {
    let mut opts = CheckpointOptions::new(dir.clone());
    opts.every = 1;
    opts.crash_after = Some((interrupt, CrashKind::Panic));
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        run_search_checkpointed(
            &session.mini_graph,
            &session.paper_graph,
            &session.weights,
            mode,
            cfg,
            Some(&opts),
        )
    }));
    assert!(crashed.is_err(), "crash at iteration {interrupt} must panic");

    let mut resume = CheckpointOptions::new(dir);
    resume.every = 1;
    resume.resume = true;
    run_search_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        mode,
        cfg,
        Some(&resume),
    )
    .unwrap()
}

/// The tentpole acceptance test: ≥3 interrupt points, at 1 and 4 kernel
/// threads, each resumed run bit-identical to the uninterrupted one.
#[test]
fn resume_is_bit_identical_at_every_interrupt_point() {
    let session = smoke_session(7);
    let mode = session.eval_mode(AccuracyMode::Surrogate).unwrap();
    let cfg = search_cfg(&session, 24);

    let reference = run_search_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        &mode,
        &cfg,
        None,
    )
    .unwrap();
    assert_eq!(reference.trace.len(), 24);
    // Guard against a vacuous scenario: the replayed iterations must
    // exercise the elite-sampling path, which only happens once some
    // candidate met the accuracy target. (An earlier version of this
    // test used a configuration where nothing was ever accepted — it
    // passed even with elite arena-id restoration broken.)
    assert!(reference.speedup > 1.0, "scenario found nothing: useless");
    let first_hit = reference
        .trace
        .iter()
        .find(|r| r.met_target)
        .map(|r| r.iter)
        .expect("no candidate met the target");
    assert!(
        first_hit <= 12,
        "first accepted candidate at iter {first_hit}; interrupts must land after it"
    );

    for threads in [1usize, 4] {
        for interrupt in [3usize, 12, 20] {
            let dir = scratch_dir(&format!("t{threads}-i{interrupt}"));
            let resumed = engine::with_thread_limit(threads, || {
                crash_and_resume(&session, &mode, &cfg, dir.clone(), interrupt)
            });
            assert_same_result(
                &reference,
                &resumed,
                &format!("threads={threads} interrupt={interrupt}"),
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}

fn assert_same_batched(a: &BatchedResult, b: &BatchedResult, what: &str) {
    assert_eq!(
        a.best_mini.signature(),
        b.best_mini.signature(),
        "{what}: best mini"
    );
    assert_eq!(
        a.best_paper.signature(),
        b.best_paper.signature(),
        "{what}: best paper"
    );
    assert_eq!(
        a.best_latency_ms.to_bits(),
        b.best_latency_ms.to_bits(),
        "{what}: best latency"
    );
    assert_eq!(a.speedup.to_bits(), b.speedup.to_bits(), "{what}: speedup");
    assert_eq!(a.rounds.len(), b.rounds.len(), "{what}: round count");
    for (i, (x, y)) in a.rounds.iter().zip(&b.rounds).enumerate() {
        assert_eq!(x.round, y.round, "{what}: rounds[{i}].round");
        assert_eq!(x.evaluated, y.evaluated, "{what}: rounds[{i}].evaluated");
        assert_eq!(x.skipped, y.skipped, "{what}: rounds[{i}].skipped");
        assert_eq!(
            x.best_latency_ms.to_bits(),
            y.best_latency_ms.to_bits(),
            "{what}: rounds[{i}].best_latency_ms"
        );
        assert_eq!(
            x.virtual_hours.to_bits(),
            y.virtual_hours.to_bits(),
            "{what}: rounds[{i}].virtual_hours"
        );
    }
}

#[test]
fn batched_resume_is_bit_identical() {
    let session = smoke_session(7);
    let mode = session.eval_mode(AccuracyMode::Surrogate).unwrap();
    let cfg = search_cfg(&session, 24);
    let batch = 6usize; // 4 rounds.

    let reference = run_search_batched_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        &mode,
        &cfg,
        batch,
        None,
    )
    .unwrap();
    assert_eq!(reference.rounds.len(), 4);
    assert!(reference.speedup > 1.0, "scenario found nothing: useless");

    let dir = scratch_dir("batched");
    let mut opts = CheckpointOptions::new(dir.clone());
    opts.every = 1;
    opts.crash_after = Some((2, CrashKind::Panic));
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        run_search_batched_checkpointed(
            &session.mini_graph,
            &session.paper_graph,
            &session.weights,
            &mode,
            &cfg,
            batch,
            Some(&opts),
        )
    }));
    assert!(crashed.is_err(), "crash at round 2 must panic");

    let mut resume = CheckpointOptions::new(dir.clone());
    resume.every = 1;
    resume.resume = true;
    let resumed = run_search_batched_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        &mode,
        &cfg,
        batch,
        Some(&resume),
    )
    .unwrap();
    assert_same_batched(&reference, &resumed, "batched interrupt=2");
    std::fs::remove_dir_all(&dir).ok();
}

/// Satellite: a fine-tune resumed from a checkpoint (model weights +
/// optimizer moments + RNG) reproduces the uninterrupted loss/score
/// trajectory exactly.
#[test]
fn resumed_teacher_training_reproduces_trajectory() {
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 43).unwrap();
    let mut rng = Rng::new(43);
    let split = bench.dataset.split(0.75, &mut rng).unwrap();
    let tc = TrainConfig {
        epochs: 2,
        batch: 32,
        lr: 3e-3,
        seed: 43,
    };

    // Uninterrupted reference.
    let mut model_ref = bench.mini[0].build(&mut Rng::new(7)).unwrap();
    let report_ref =
        train_teacher_checkpointed(&mut model_ref, &split.train, &split.test, 0, &tc, None)
            .unwrap();
    assert_eq!(report_ref.scores.len(), 2);

    // Crash after epoch 1, then resume.
    let dir = scratch_dir("teacher");
    let mut model = bench.mini[0].build(&mut Rng::new(7)).unwrap();
    let mut opts = CheckpointOptions::new(dir.clone());
    opts.every = 1;
    opts.crash_after = Some((1, CrashKind::Panic));
    let crashed = catch_unwind(AssertUnwindSafe(|| {
        train_teacher_checkpointed(&mut model, &split.train, &split.test, 0, &tc, Some(&opts))
    }));
    assert!(crashed.is_err(), "crash after epoch 1 must panic");

    let mut model2 = bench.mini[0].build(&mut Rng::new(7)).unwrap();
    let mut resume = CheckpointOptions::new(dir.clone());
    resume.every = 1;
    resume.resume = true;
    let report = train_teacher_checkpointed(
        &mut model2,
        &split.train,
        &split.test,
        0,
        &tc,
        Some(&resume),
    )
    .unwrap();

    assert_eq!(report.scores.len(), report_ref.scores.len());
    for (i, (x, y)) in report.scores.iter().zip(&report_ref.scores).enumerate() {
        assert_eq!(x.to_bits(), y.to_bits(), "epoch {i} score");
    }
    assert_eq!(
        report.final_score.to_bits(),
        report_ref.final_score.to_bits()
    );
    // The trained parameters themselves must match bit-for-bit.
    assert_eq!(model2.state_dict(), model_ref.state_dict());
    std::fs::remove_dir_all(&dir).ok();
}

/// Failure containment composes with crash/resume: a run whose candidate
/// faulted (and was retried, then quarantined) can be killed around the
/// retry boundary and resumed bit-identically — including the quarantine
/// set and the failed/quarantined counters. Both runs carry the same
/// fault configuration, mirroring a real flaky-candidate reproduction.
#[test]
fn resume_through_a_faulted_candidate_is_bit_identical() {
    use gmorph::tensor::{FaultKind, FaultSpec};

    let session = smoke_session(7);
    let mode = session.eval_mode(AccuracyMode::Surrogate).unwrap();
    let mut cfg = search_cfg(&session, 16);

    // Find an iteration that actually evaluates, then poison it.
    let clean = run_search_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        &mode,
        &cfg,
        None,
    )
    .unwrap();
    let fault_iter = clean
        .trace
        .iter()
        .find(|r| r.status == gmorph::search::driver::CandidateStatus::Evaluated)
        .map(|r| r.iter)
        .expect("clean run evaluated nothing: useless scenario");
    cfg.supervisor.fault = Some(FaultSpec {
        kind: FaultKind::NanLoss,
        at_iter: fault_iter,
    });

    let reference = run_search_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        &mode,
        &cfg,
        None,
    )
    .unwrap();
    assert_eq!(reference.failed, 1, "fault did not fire: useless scenario");

    // Kill right at the faulted iteration (snapshot covers the retry
    // exhaustion + quarantine) and one iteration after it.
    for interrupt in [fault_iter, fault_iter + 1] {
        let dir = scratch_dir(&format!("fault-i{interrupt}"));
        let resumed = crash_and_resume(&session, &mode, &cfg, dir.clone(), interrupt);
        assert_same_result(
            &reference,
            &resumed,
            &format!("faulted interrupt={interrupt}"),
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}

/// A resume against a *different* configuration must not pick up the
/// stale snapshot (fingerprint mismatch → fresh start), and the result
/// must equal a fresh uninterrupted run of the new configuration.
#[test]
fn resume_ignores_checkpoints_from_other_configs() {
    let session = smoke_session(44);
    let mode = session.eval_mode(AccuracyMode::Surrogate).unwrap();
    let cfg_a = search_cfg(&session, 6);
    let mut cfg_b = search_cfg(&session, 6);
    cfg_b.seed ^= 0xDEAD;

    let dir = scratch_dir("xconfig");
    let mut opts = CheckpointOptions::new(dir.clone());
    opts.every = 1;
    // Populate the directory with config-A snapshots.
    run_search_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        &mode,
        &cfg_a,
        Some(&opts),
    )
    .unwrap();

    let reference_b = run_search_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        &mode,
        &cfg_b,
        None,
    )
    .unwrap();

    let mut resume = CheckpointOptions::new(dir.clone());
    resume.every = 1;
    resume.resume = true;
    let resumed_b = run_search_checkpointed(
        &session.mini_graph,
        &session.paper_graph,
        &session.weights,
        &mode,
        &cfg_b,
        Some(&resume),
    )
    .unwrap();
    assert_same_result(&reference_b, &resumed_b, "fingerprint-mismatch fresh start");
    std::fs::remove_dir_all(&dir).ok();
}
