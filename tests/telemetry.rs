//! End-to-end telemetry integration: a traced optimize run must produce a
//! structured event stream from which the search's outcome can be fully
//! reconstructed, the JSONL artifact must validate against the documented
//! schema, and disabled telemetry must stay completely silent.

use gmorph::prelude::*;
use gmorph::search::persist::{load_trace, save_trace, TraceMeta};
use gmorph::telemetry::sink::{install_test_sink, test_lock};
use gmorph::telemetry::{self, Event, EventKind, Value};
use gmorph::zoo::{build, BenchId, DataProfile};

fn quick_session(seed: u64) -> Session {
    let bench = build(BenchId::B1, &DataProfile::smoke(), seed).unwrap();
    let cfg = SessionConfig {
        teacher: gmorph::models::train::TrainConfig {
            epochs: 1,
            batch: 32,
            lr: 3e-3,
            seed,
        },
        seed,
        use_cache: false,
        ..Default::default()
    };
    Session::prepare(bench, &cfg).unwrap()
}

fn field_f64(e: &Event, name: &str) -> Option<f64> {
    match e.field(name)? {
        Value::Int(v) => Some(*v as f64),
        Value::Float(v) => Some(*v),
        _ => None,
    }
}

fn field_str<'a>(e: &'a Event, name: &str) -> Option<&'a str> {
    match e.field(name)? {
        Value::Str(s) => Some(s.as_str()),
        _ => None,
    }
}

#[test]
fn traced_optimize_reconstructs_search_result() {
    let guard = install_test_sink();
    let session = quick_session(11);
    let cfg = OptimizationConfig {
        iterations: 12,
        accuracy_threshold: 0.02,
        seed: 11,
        ..Default::default()
    };
    let r = session.optimize(&cfg).unwrap();

    let events = guard.events();
    let iters: Vec<&Event> = events
        .iter()
        .filter(|e| e.kind == EventKind::Point && e.name == "search.iter")
        .collect();
    assert_eq!(iters.len(), cfg.iterations);
    assert_eq!(iters.len(), r.trace.len());

    // The per-iteration stream mirrors the returned trace record for
    // record: same iteration numbers, statuses, and best-latency curve.
    for (e, rec) in iters.iter().zip(r.trace.iter()) {
        assert_eq!(field_f64(e, "iter"), Some(rec.iter as f64));
        assert_eq!(field_str(e, "status"), Some(rec.status.as_str()));
        let best = field_f64(e, "best_latency_ms").unwrap();
        assert!((best - rec.best_latency_ms).abs() < 1e-9);
    }

    // Candidate-outcome breakdown reconstructed from events matches the
    // counts the search itself reports.
    let by_status = |s: &str| {
        iters
            .iter()
            .filter(|e| field_str(e, "status") == Some(s))
            .count()
    };
    assert_eq!(by_status("duplicate"), r.duplicates);
    assert_eq!(by_status("rule_filtered"), r.rule_filtered);
    assert_eq!(by_status("terminated_early"), r.early_terminated);
    assert_eq!(by_status("evaluated") + r.early_terminated, r.evaluated);

    // The final best latency in the stream is the result's best latency.
    let last_best = field_f64(iters.last().unwrap(), "best_latency_ms").unwrap();
    assert!((last_best - r.best.latency_ms).abs() < 1e-9);

    // Counters agree with the event stream.
    assert_eq!(
        telemetry::metrics::counter_value("search.iterations"),
        cfg.iterations as u64
    );
    assert_eq!(
        telemetry::metrics::counter_value("search.evaluated")
            + telemetry::metrics::counter_value("search.early_terminated"),
        r.evaluated as u64
    );

    // Session-level events: config metadata and the prepare/optimize spans.
    let meta = events
        .iter()
        .find(|e| e.kind == EventKind::Meta && e.name == "session.meta")
        .expect("session.meta event");
    assert_eq!(field_str(meta, "bench"), Some("B1"));
    for span in ["session.prepare", "session.optimize", "search.run"] {
        assert!(
            events
                .iter()
                .any(|e| e.kind == EventKind::SpanEnd && e.name == span),
            "missing closed span {span}"
        );
    }
    // Teacher training was traced too (one per task).
    let teachers = events
        .iter()
        .filter(|e| e.kind == EventKind::SpanEnd && e.name == "teacher.train")
        .count();
    assert_eq!(teachers, session.teachers.len());
}

#[test]
fn jsonl_trace_validates_and_artifact_round_trips() {
    let _gate = test_lock();
    let dir = std::env::temp_dir().join(format!("gmorph-trace-test-{}", std::process::id()));
    let trace_path = dir.join("run.jsonl");

    let bench = build(BenchId::B1, &DataProfile::smoke(), 7).unwrap();
    let cfg = SessionConfig {
        teacher: gmorph::models::train::TrainConfig {
            epochs: 1,
            batch: 32,
            lr: 3e-3,
            seed: 7,
        },
        seed: 7,
        use_cache: false,
        trace: Some(trace_path.clone()),
        ..Default::default()
    };
    let session = Session::prepare(bench, &cfg).unwrap();
    assert!(telemetry::enabled(), "trace path should enable telemetry");

    let opt = OptimizationConfig {
        iterations: 8,
        seed: 7,
        ..Default::default()
    };
    let r = session.optimize(&opt).unwrap();

    let artifact = trace_path.with_extension("trace.jsonl");
    save_trace(&artifact, &r).unwrap();
    telemetry::shutdown();

    // The event stream validates against the documented schema and
    // contains the iteration stream plus flushed metric summaries.
    let stats = telemetry::schema::validate_file(&trace_path).unwrap();
    assert!(stats.lines > 0);
    assert!(stats.by_kind.get("point").copied().unwrap_or(0) >= opt.iterations);
    assert!(stats.by_kind.contains_key("counter"), "metrics flushed");
    assert!(stats.by_kind.contains_key("span_end"));

    // The search-trace artifact round-trips into the same summary.
    let (meta, records) = load_trace(&artifact).unwrap();
    assert_eq!(meta, TraceMeta::of(&r));
    assert_eq!(records.len(), r.trace.len());

    telemetry::metrics::reset();
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn span_nesting_balances_across_pool_sizes() {
    for threads in [1usize, 4] {
        let guard = install_test_sink();
        gmorph::tensor::engine::with_thread_limit(threads, || {
            let _outer = gmorph::telemetry::span!("test.outer", threads = threads);
            gmorph::tensor::engine::parallel_for(8, |i| {
                let _chunk = gmorph::telemetry::span!("test.chunk", index = i);
            });
        });
        let events = guard.events();
        let lines: Vec<String> = events.iter().map(|e| e.to_json()).collect();
        let stats = telemetry::schema::validate_events(lines.iter().map(String::as_str))
            .unwrap_or_else(|e| panic!("{threads}-thread trace invalid: {e}"));
        // Every span closed, on every participating thread.
        let begins = events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin)
            .count();
        assert_eq!(begins, 9, "outer + 8 chunks under {threads} threads");
        assert_eq!(stats.spans, 9);
        // Chunk spans nest under the outer span only when they run on the
        // same thread; cross-thread chunks are roots of their own thread.
        let outer_id = events
            .iter()
            .find(|e| e.kind == EventKind::SpanBegin && e.name == "test.outer")
            .map(|e| (e.span, e.thread))
            .unwrap();
        for e in events
            .iter()
            .filter(|e| e.kind == EventKind::SpanBegin && e.name == "test.chunk")
        {
            if e.thread == outer_id.1 {
                assert_eq!(e.parent, outer_id.0, "same-thread chunk nests under outer");
            } else {
                assert_eq!(e.parent, 0, "cross-thread chunk is a root span");
            }
        }
        drop(guard);
    }
}

#[test]
fn disabled_telemetry_is_silent() {
    let _gate = test_lock();
    assert!(!telemetry::enabled());

    // Exercise instrumented kernels and the pool with telemetry off.
    gmorph::tensor::engine::with_thread_limit(2, || {
        let a = Tensor::from_vec(&[64, 64], vec![1.0; 64 * 64]).unwrap();
        let b = Tensor::from_vec(&[64, 64], vec![2.0; 64 * 64]).unwrap();
        let _ = gmorph::tensor::gemm::matmul(&a, &b).unwrap();
        gmorph::tensor::engine::parallel_for(8, |_| {});
    });
    // Spans and points are inert; counters record nothing.
    {
        let _s = gmorph::telemetry::span!("test.disabled");
        gmorph::telemetry::point!("test.disabled.point", v = 1usize);
        gmorph::telemetry::counter!("test.disabled.counter");
    }
    assert_eq!(telemetry::metrics::counter_value("gemm.calls"), 0);
    assert_eq!(telemetry::metrics::counter_value("engine.dispatch.pooled"), 0);
    assert_eq!(telemetry::metrics::counter_value("test.disabled.counter"), 0);
    assert!(telemetry::metrics::counters().is_empty());
    assert!(telemetry::metrics::histograms().is_empty());
}
