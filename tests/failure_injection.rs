//! Failure injection: corrupted persistence, degenerate configurations,
//! and hostile inputs must produce errors (or graceful fallbacks), never
//! panics or silent corruption.

use gmorph::models::cache::load_or_train;
use gmorph::models::train::TrainConfig;
use gmorph::prelude::*;
use gmorph::tensor::serialize::{read_state_dict, save_state_dict, write_state_dict};

#[test]
fn corrupted_cache_files_fall_back_to_training() {
    let dir = std::env::temp_dir().join(format!("gmorph-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("GMORPH_CACHE_DIR", &dir);

    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 901).unwrap();
    let mut rng = Rng::new(901);
    let split = bench.dataset.split(0.7, &mut rng).unwrap();
    let tc = TrainConfig {
        epochs: 1,
        batch: 32,
        lr: 1e-3,
        seed: 901,
    };
    // First call populates the cache.
    let (_, score1) = load_or_train(&bench.mini[0], &split, 0, &tc, 901).unwrap();
    // Corrupt every cache file.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        std::fs::write(&path, b"definitely not a gmorph state dict").unwrap();
    }
    // Second call must not panic and must retrain to the same score.
    let (_, score2) = load_or_train(&bench.mini[0], &split, 0, &tc, 901).unwrap();
    assert_eq!(score1, score2);

    std::env::remove_var("GMORPH_CACHE_DIR");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_state_dicts_error_cleanly() {
    let entries = vec![("w".to_string(), Tensor::ones(&[8, 8]))];
    let mut buf = Vec::new();
    write_state_dict(&mut buf, &entries).unwrap();
    // Every truncation point must error, not panic.
    for cut in [0usize, 1, 4, 8, 12, buf.len() - 1] {
        let slice = &buf[..cut];
        assert!(read_state_dict(&mut &slice[..]).is_err(), "cut at {cut}");
    }
    // Bit-flipped magic errors.
    let mut bad = buf.clone();
    bad[0] ^= 0xFF;
    assert!(read_state_dict(&mut bad.as_slice()).is_err());
}

#[test]
fn hostile_header_values_do_not_allocate_absurdly() {
    // A fake header claiming 2^30 entries must be rejected up front.
    let mut buf = Vec::new();
    buf.extend_from_slice(&0x474D_5248u32.to_le_bytes()); // Magic.
    buf.extend_from_slice(&1u32.to_le_bytes()); // Version.
    buf.extend_from_slice(&(1u32 << 30).to_le_bytes()); // Entry count.
    assert!(read_state_dict(&mut buf.as_slice()).is_err());
}

#[test]
fn zero_iteration_search_returns_the_original() {
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 902).unwrap();
    let session = Session::prepare(
        bench,
        &SessionConfig {
            teacher: TrainConfig {
                epochs: 1,
                batch: 32,
                lr: 1e-3,
                seed: 902,
            },
            seed: 902,
            use_cache: false,
            ..Default::default()
        },
    )
    .unwrap();
    let cfg = OptimizationConfig {
        iterations: 0,
        ..Default::default()
    };
    let r = session.optimize(&cfg).unwrap();
    assert_eq!(r.speedup, 1.0);
    assert!(r.trace.is_empty());
    assert_eq!(r.best.mini.signature(), session.mini_graph.signature());
}

#[test]
fn nan_inputs_do_not_crash_inference() {
    // A fused model fed NaNs must return NaNs, not panic: the engine's
    // numerics degrade gracefully.
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 903).unwrap();
    let mut rng = Rng::new(903);
    let teachers: Vec<_> = bench
        .mini
        .iter()
        .map(|s| s.build(&mut rng).unwrap())
        .collect();
    let (graph, store) = gmorph::graph::parser::parse_models(&teachers).unwrap();
    let (mut tree, _) = gmorph::graph::generator::generate(&graph, &store, &mut rng).unwrap();
    let x = Tensor::full(&[1, 3, 16, 16], f32::NAN);
    let ys = tree.forward(&x, Mode::Eval).unwrap();
    assert_eq!(ys.len(), 3);
}

#[test]
fn saving_into_unwritable_location_is_nonfatal_for_cache() {
    // save_state_dict itself errors...
    let entries = vec![("w".to_string(), Tensor::ones(&[2]))];
    assert!(save_state_dict(
        std::path::Path::new("/proc/definitely/not/writable/x.gmrh"),
        &entries
    )
    .is_err());
    // ...but load_or_train treats caching as best-effort.
    std::env::set_var("GMORPH_CACHE_DIR", "/proc/definitely/not/writable");
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 904).unwrap();
    let mut rng = Rng::new(904);
    let split = bench.dataset.split(0.7, &mut rng).unwrap();
    let tc = TrainConfig {
        epochs: 1,
        batch: 32,
        lr: 1e-3,
        seed: 904,
    };
    assert!(load_or_train(&bench.mini[0], &split, 0, &tc, 904).is_ok());
    std::env::remove_var("GMORPH_CACHE_DIR");
}

#[test]
fn config_file_attack_surface() {
    use gmorph::configfile::parse;
    // Pathological inputs must error or parse, never panic.
    let cases = [
        "= = =",
        "iterations = -5",
        "lr = 1e999",
        "seed = 99999999999999999999999999",
        "accuracy_threshold = NaN",
        "\u{0}\u{0}\u{0}",
        "metric = latency = flops",
    ];
    for c in cases {
        let _ = parse(c); // Outcome may be Ok or Err; panics fail the test.
    }
    // NaN threshold parses as f32 NaN; searches treat it as unmeetable.
    if let Ok(cfg) = parse("accuracy_threshold = NaN") {
        assert!(cfg.accuracy_threshold.is_nan());
    }
}
