//! Failure injection: corrupted persistence, degenerate configurations,
//! and hostile inputs must produce errors (or graceful fallbacks), never
//! panics or silent corruption.

use gmorph::models::cache::load_or_train;
use gmorph::models::train::TrainConfig;
use gmorph::prelude::*;
use gmorph::tensor::serialize::{read_state_dict, save_state_dict, write_state_dict};

#[test]
fn corrupted_cache_files_fall_back_to_training() {
    let dir = std::env::temp_dir().join(format!("gmorph-corrupt-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::env::set_var("GMORPH_CACHE_DIR", &dir);

    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 901).unwrap();
    let mut rng = Rng::new(901);
    let split = bench.dataset.split(0.7, &mut rng).unwrap();
    let tc = TrainConfig {
        epochs: 1,
        batch: 32,
        lr: 1e-3,
        seed: 901,
    };
    // First call populates the cache.
    let (_, score1) = load_or_train(&bench.mini[0], &split, 0, &tc, 901).unwrap();
    // Corrupt every cache file.
    for entry in std::fs::read_dir(&dir).unwrap() {
        let path = entry.unwrap().path();
        std::fs::write(&path, b"definitely not a gmorph state dict").unwrap();
    }
    // Second call must not panic and must retrain to the same score.
    let (_, score2) = load_or_train(&bench.mini[0], &split, 0, &tc, 901).unwrap();
    assert_eq!(score1, score2);

    std::env::remove_var("GMORPH_CACHE_DIR");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn truncated_state_dicts_error_cleanly() {
    let entries = vec![("w".to_string(), Tensor::ones(&[8, 8]))];
    let mut buf = Vec::new();
    write_state_dict(&mut buf, &entries).unwrap();
    // Every truncation point must error, not panic.
    for cut in [0usize, 1, 4, 8, 12, buf.len() - 1] {
        let slice = &buf[..cut];
        assert!(read_state_dict(&mut &slice[..]).is_err(), "cut at {cut}");
    }
    // Bit-flipped magic errors.
    let mut bad = buf.clone();
    bad[0] ^= 0xFF;
    assert!(read_state_dict(&mut bad.as_slice()).is_err());
}

#[test]
fn hostile_header_values_do_not_allocate_absurdly() {
    // A fake header claiming 2^30 entries must be rejected up front.
    let mut buf = Vec::new();
    buf.extend_from_slice(&0x474D_5248u32.to_le_bytes()); // Magic.
    buf.extend_from_slice(&1u32.to_le_bytes()); // Version.
    buf.extend_from_slice(&(1u32 << 30).to_le_bytes()); // Entry count.
    assert!(read_state_dict(&mut buf.as_slice()).is_err());
}

#[test]
fn zero_iteration_search_returns_the_original() {
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 902).unwrap();
    let session = Session::prepare(
        bench,
        &SessionConfig {
            teacher: TrainConfig {
                epochs: 1,
                batch: 32,
                lr: 1e-3,
                seed: 902,
            },
            seed: 902,
            use_cache: false,
            ..Default::default()
        },
    )
    .unwrap();
    let cfg = OptimizationConfig {
        iterations: 0,
        ..Default::default()
    };
    let r = session.optimize(&cfg).unwrap();
    assert_eq!(r.speedup, 1.0);
    assert!(r.trace.is_empty());
    assert_eq!(r.best.mini.signature(), session.mini_graph.signature());
}

#[test]
fn nan_inputs_do_not_crash_inference() {
    // A fused model fed NaNs must return NaNs, not panic: the engine's
    // numerics degrade gracefully.
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 903).unwrap();
    let mut rng = Rng::new(903);
    let teachers: Vec<_> = bench
        .mini
        .iter()
        .map(|s| s.build(&mut rng).unwrap())
        .collect();
    let (graph, store) = gmorph::graph::parser::parse_models(&teachers).unwrap();
    let (mut tree, _) = gmorph::graph::generator::generate(&graph, &store, &mut rng).unwrap();
    let x = Tensor::full(&[1, 3, 16, 16], f32::NAN);
    let ys = tree.forward(&x, Mode::Eval).unwrap();
    assert_eq!(ys.len(), 3);
}

#[test]
fn saving_into_unwritable_location_is_nonfatal_for_cache() {
    // save_state_dict itself errors...
    let entries = vec![("w".to_string(), Tensor::ones(&[2]))];
    assert!(save_state_dict(
        std::path::Path::new("/proc/definitely/not/writable/x.gmrh"),
        &entries
    )
    .is_err());
    // ...but load_or_train treats caching as best-effort.
    std::env::set_var("GMORPH_CACHE_DIR", "/proc/definitely/not/writable");
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 904).unwrap();
    let mut rng = Rng::new(904);
    let split = bench.dataset.split(0.7, &mut rng).unwrap();
    let tc = TrainConfig {
        epochs: 1,
        batch: 32,
        lr: 1e-3,
        seed: 904,
    };
    assert!(load_or_train(&bench.mini[0], &split, 0, &tc, 904).is_ok());
    std::env::remove_var("GMORPH_CACHE_DIR");
}

/// Corrupted checkpoint scenarios. Each one damages the *newest*
/// snapshot in a populated checkpoint directory and asserts the resume
/// (a) never panics, (b) lands on the same final result as an
/// uninterrupted run (fallback to the older snapshot, or a fresh start,
/// replays deterministically), and (c) bumps the `checkpoint.corrupt`
/// counter where the damage is detectable as corruption.
#[test]
fn corrupted_checkpoints_fall_back_never_panic() {
    use gmorph::search::checkpoint::{SEARCH_KIND, SEARCH_SCHEMA};
    use gmorph::search::driver::run_search_checkpointed;
    use gmorph::search::CheckpointOptions;
    use gmorph::telemetry::metrics::counter_value;
    use gmorph::telemetry::sink::install_test_sink;
    use gmorph::tensor::checkpoint::Envelope;

    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 905).unwrap();
    let session = Session::prepare(
        bench,
        &SessionConfig {
            teacher: TrainConfig {
                epochs: 1,
                batch: 32,
                lr: 3e-3,
                seed: 7,
            },
            seed: 7,
            use_cache: false,
            ..Default::default()
        },
    )
    .unwrap();
    let cfg = OptimizationConfig {
        iterations: 16,
        seed: 7,
        ..Default::default()
    }
    .to_search_config();
    let mode = session.eval_mode(AccuracyMode::Surrogate).unwrap();
    let run = |ckpt: Option<&CheckpointOptions>| {
        run_search_checkpointed(
            &session.mini_graph,
            &session.paper_graph,
            &session.weights,
            &mode,
            &cfg,
            ckpt,
        )
    };
    let reference = run(None).unwrap();
    // Non-vacuous scenario: elites and an improved best exist, so the
    // fallback replay exercises the full state restoration.
    assert!(reference.speedup > 1.0, "scenario found nothing: useless");

    let snapshots_in = |dir: &std::path::Path| -> Vec<std::path::PathBuf> {
        let mut files: Vec<_> = std::fs::read_dir(dir)
            .unwrap()
            .map(|e| e.unwrap().path())
            .filter(|p| p.extension().is_some_and(|e| e == "gmck"))
            .collect();
        files.sort();
        files
    };

    #[derive(Clone, Copy, Debug)]
    enum Damage {
        Truncate,
        FlipHeaderByte,
        FlipPayloadByte,
        StaleSchema,
        TmpLeftover,
        AllCorrupt,
    }
    for damage in [
        Damage::Truncate,
        Damage::FlipHeaderByte,
        Damage::FlipPayloadByte,
        Damage::StaleSchema,
        Damage::TmpLeftover,
        Damage::AllCorrupt,
    ] {
        let dir = std::env::temp_dir().join(format!(
            "gmorph-ckpt-corrupt-{damage:?}-{}",
            std::process::id()
        ));
        std::fs::remove_dir_all(&dir).ok();
        std::fs::create_dir_all(&dir).unwrap();

        // Populate the directory by running to completion with
        // per-iteration snapshots (keep=2 → the last two survive).
        let mut opts = CheckpointOptions::new(&dir);
        opts.every = 1;
        run(Some(&opts)).unwrap();
        let files = snapshots_in(&dir);
        assert_eq!(files.len(), 2, "{damage:?}: rotation should keep 2");
        let newest = files.last().unwrap().clone();

        let corruption_expected = match damage {
            Damage::Truncate => {
                let bytes = std::fs::read(&newest).unwrap();
                std::fs::write(&newest, &bytes[..bytes.len() / 3]).unwrap();
                true
            }
            Damage::FlipHeaderByte => {
                let mut bytes = std::fs::read(&newest).unwrap();
                bytes[2] ^= 0xFF; // Inside the magic number.
                std::fs::write(&newest, bytes).unwrap();
                true
            }
            Damage::FlipPayloadByte => {
                let mut bytes = std::fs::read(&newest).unwrap();
                let mid = bytes.len() / 2;
                bytes[mid] ^= 0x01; // CRC-covered body.
                std::fs::write(&newest, bytes).unwrap();
                true
            }
            Damage::StaleSchema => {
                // A well-formed envelope from a future schema version.
                let env = Envelope::new(SEARCH_KIND, SEARCH_SCHEMA + 7);
                std::fs::write(&newest, env.encode()).unwrap();
                true
            }
            Damage::TmpLeftover => {
                // A half-written staging file from a crashed writer. The
                // loader must never even consider it.
                let tmp = dir.join("search-000099.gmck.tmp");
                std::fs::write(&tmp, b"half-written garbage").unwrap();
                false
            }
            Damage::AllCorrupt => {
                for f in &files {
                    let bytes = std::fs::read(f).unwrap();
                    std::fs::write(f, &bytes[..bytes.len() / 2]).unwrap();
                }
                true
            }
        };

        let guard = install_test_sink();
        let mut resume = CheckpointOptions::new(&dir);
        resume.every = 1;
        resume.resume = true;
        let resumed = run(Some(&resume)).unwrap(); // Must not panic or error.
        let corrupt_count = counter_value("checkpoint.corrupt");
        drop(guard);

        if corruption_expected {
            assert!(corrupt_count >= 1, "{damage:?}: corruption not counted");
        } else {
            assert_eq!(corrupt_count, 0, "{damage:?}: spurious corruption");
        }
        // Whatever snapshot (or fresh start) the fallback landed on, the
        // deterministic replay must reach the uninterrupted result.
        assert_eq!(
            resumed.best.mini.signature(),
            reference.best.mini.signature(),
            "{damage:?}: best graph"
        );
        assert_eq!(
            resumed.best.latency_ms.to_bits(),
            reference.best.latency_ms.to_bits(),
            "{damage:?}: best latency"
        );
        assert_eq!(
            resumed.speedup.to_bits(),
            reference.speedup.to_bits(),
            "{damage:?}: speedup"
        );
        assert_eq!(
            resumed.trace.len(),
            reference.trace.len(),
            "{damage:?}: trace length"
        );
        assert_eq!(resumed.evaluated, reference.evaluated, "{damage:?}: evaluated");
        std::fs::remove_dir_all(&dir).ok();
    }
}

#[test]
fn config_file_attack_surface() {
    use gmorph::configfile::parse;
    // Pathological inputs must error or parse, never panic.
    let cases = [
        "= = =",
        "iterations = -5",
        "lr = 1e999",
        "seed = 99999999999999999999999999",
        "accuracy_threshold = NaN",
        "\u{0}\u{0}\u{0}",
        "metric = latency = flops",
    ];
    for c in cases {
        let _ = parse(c); // Outcome may be Ok or Err; panics fail the test.
    }
    // NaN threshold parses as f32 NaN; searches treat it as unmeetable.
    if let Ok(cfg) = parse("accuracy_threshold = NaN") {
        assert!(cfg.accuracy_threshold.is_nan());
    }
}
