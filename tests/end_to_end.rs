//! End-to-end integration tests: teachers → parse → mutate → generate →
//! distillation fine-tune → measure, all with real training.

use gmorph::perf::estimator::measure_latency_ms;
use gmorph::prelude::*;
use gmorph::search::driver::CandidateStatus;

fn quick_session(id: BenchId, seed: u64) -> Session {
    let bench = build_benchmark(id, &DataProfile::smoke(), seed).unwrap();
    Session::prepare(
        bench,
        &SessionConfig {
            teacher: gmorph::models::train::TrainConfig {
                epochs: 2,
                batch: 32,
                lr: 3e-3,
                seed,
            },
            seed,
            use_cache: false,
            ..Default::default()
        },
    )
    .unwrap()
}

#[test]
fn real_mode_search_produces_a_valid_trained_model() {
    let session = quick_session(BenchId::B1, 5);
    let cfg = OptimizationConfig {
        accuracy_threshold: 0.05,
        iterations: 5,
        mode: AccuracyMode::Real,
        max_epochs: 3,
        eval_every: 1,
        lr: 1e-3,
        seed: 5,
        ..Default::default()
    };
    let result = session.optimize(&cfg).unwrap();
    result.best.mini.validate().unwrap();
    result.best.paper.validate().unwrap();
    assert!(result.evaluated > 0, "nothing was fine-tuned");
    assert!(result.wall_seconds > 0.0);
    // The best model materializes and runs on real data.
    let mut tree = session
        .materialize(&result.best.mini, &result.best.weights)
        .unwrap();
    let x = session.split.test.inputs.select_rows(&[0, 1]).unwrap();
    let ys = tree.forward(&x, Mode::Eval).unwrap();
    assert_eq!(ys.len(), session.bench.mini.len());
}

#[test]
fn fused_model_is_measurably_faster_when_sharing_lands() {
    let session = quick_session(BenchId::B1, 9);
    let cfg = OptimizationConfig {
        accuracy_threshold: 0.08, // Loose budget: sharing will land.
        iterations: 8,
        mode: AccuracyMode::Real,
        max_epochs: 3,
        eval_every: 1,
        lr: 1e-3,
        seed: 9,
        ..Default::default()
    };
    let result = session.optimize(&cfg).unwrap();
    if result.speedup > 1.0 {
        // Estimated speedup must be corroborated by the real engine.
        let x = session.split.test.inputs.select_rows(&[0, 1, 2, 3]).unwrap();
        let mut orig = session
            .materialize(&session.mini_graph, &session.weights)
            .unwrap();
        let mut fused = session
            .materialize(&result.best.mini, &result.best.weights)
            .unwrap();
        let lat_orig = measure_latency_ms(&mut orig, &x, 1, 7).unwrap();
        let lat_fused = measure_latency_ms(&mut fused, &x, 1, 7).unwrap();
        assert!(
            lat_fused < lat_orig * 1.02,
            "estimated speedup {:.2} but measured {:.2} -> {:.2} ms",
            result.speedup,
            lat_orig,
            lat_fused
        );
    }
}

#[test]
fn real_mode_drop_is_anchored_to_teacher_scores() {
    let session = quick_session(BenchId::B4, 13);
    // Teachers were just trained; their scores should be meaningful.
    for (spec, &score) in session.bench.mini.iter().zip(&session.teacher_scores) {
        assert!(
            (0.0..=1.0).contains(&score),
            "{}: score {score}",
            spec.name
        );
    }
    let cfg = OptimizationConfig {
        accuracy_threshold: 0.10,
        iterations: 3,
        mode: AccuracyMode::Real,
        max_epochs: 2,
        eval_every: 1,
        lr: 1e-3,
        seed: 13,
        ..Default::default()
    };
    let result = session.optimize(&cfg).unwrap();
    for rec in &result.trace {
        if rec.status == CandidateStatus::Evaluated {
            assert!(rec.drop.is_finite());
            // Drop can't exceed the teachers' own scores.
            let max_teacher = session
                .teacher_scores
                .iter()
                .cloned()
                .fold(0.0f32, f32::max);
            assert!(rec.drop <= max_teacher + 1e-5);
        }
    }
}

#[test]
fn surrogate_and_real_agree_that_original_is_lossless() {
    // The unmutated graph must meet any nonnegative threshold under both
    // evaluation modes (it *is* the teachers).
    let session = quick_session(BenchId::B1, 17);
    for mode in [AccuracyMode::Real, AccuracyMode::Surrogate] {
        let eval = session.eval_mode(mode).unwrap();
        let cfg = gmorph::perf::accuracy::FinetuneConfig {
            max_epochs: 2,
            eval_every: 1,
            target_drop: 0.05,
            lr: 5e-4,
            batch: 32,
            ..Default::default()
        };
        let mut rng = Rng::new(0);
        let ev = eval
            .evaluate(&session.mini_graph, &session.weights, &cfg, &mut rng, 1)
            .unwrap();
        assert!(
            ev.result.met_target,
            "{mode:?}: drop {}",
            ev.result.final_drop
        );
    }
}
