//! Baseline comparisons (§6.3): All-shared and TreeMTL vs GMorph across
//! the structural regimes the paper highlights.

use gmorph::baselines;
use gmorph::perf::estimator::{estimate_latency_ms, Backend};
use gmorph::prelude::*;

fn bench(id: BenchId) -> gmorph::models::zoo::BenchmarkDef {
    build_benchmark(id, &DataProfile::smoke(), 3).unwrap()
}

#[test]
fn b1_all_shared_merges_entire_backbone() {
    // Three identical VGG-13s: everything but the heads shares.
    let b = bench(BenchId::B1);
    let g = baselines::all_shared(&b.paper).unwrap();
    let original = gmorph::graph::parser::parse_specs(&b.paper).unwrap();
    let shared_latency = estimate_latency_ms(&g, Backend::Eager).unwrap();
    let orig_latency = estimate_latency_ms(&original, Backend::Eager).unwrap();
    let speedup = orig_latency / shared_latency;
    // Sharing a 3-way backbone should approach 3x.
    assert!(speedup > 2.0, "speedup {speedup}");
}

#[test]
fn b3_heterogeneous_vggs_share_one_layer() {
    // VGG-13 / VGG-16 / VGG-11 share only the first convolution, so the
    // All-shared baseline brings almost nothing (paper: 1.08-1.16x).
    let b = bench(BenchId::B3);
    assert_eq!(baselines::common_prefix_len(&b.paper), 1);
    let g = baselines::all_shared(&b.paper).unwrap();
    let original = gmorph::graph::parser::parse_specs(&b.paper).unwrap();
    let speedup = estimate_latency_ms(&original, Backend::Eager).unwrap()
        / estimate_latency_ms(&g, Backend::Eager).unwrap();
    assert!(speedup < 1.2, "speedup {speedup}");
    assert!(speedup >= 1.0);
}

#[test]
fn b5_b6_b7_mtl_baselines_cannot_share() {
    // Entirely different backbones or widths: no identical layers at all.
    for id in [BenchId::B5, BenchId::B6, BenchId::B7] {
        let b = bench(id);
        assert_eq!(
            baselines::common_prefix_len(&b.paper),
            0,
            "{id} should have no identical prefix"
        );
        let g = baselines::all_shared(&b.paper).unwrap();
        let original = gmorph::graph::parser::parse_specs(&b.paper).unwrap();
        assert_eq!(g.len(), original.len(), "{id}: nothing to merge");
    }
}

#[test]
fn gmorph_beats_mtl_baselines_on_heterogeneous_benchmarks() {
    // The paper's headline §6.3 claim, at B3: MTL ≤ ~1.2x, GMorph higher.
    let bench = build_benchmark(BenchId::B3, &DataProfile::smoke(), 19).unwrap();
    let session = Session::prepare(
        bench,
        &SessionConfig {
            teacher: gmorph::models::train::TrainConfig {
                epochs: 1,
                batch: 32,
                lr: 3e-3,
                seed: 19,
            },
            seed: 19,
            use_cache: false,
            ..Default::default()
        },
    )
    .unwrap();
    let (_, all_shared_paper) = session.all_shared().unwrap();
    let mtl_speedup = session.original_latency_ms(Backend::Eager).unwrap()
        / estimate_latency_ms(&all_shared_paper, Backend::Eager).unwrap();

    let cfg = OptimizationConfig {
        accuracy_threshold: 0.02,
        iterations: 40,
        mode: AccuracyMode::Surrogate,
        max_epochs: 30,
        eval_every: 2,
        seed: 19,
        ..Default::default()
    };
    let result = session.optimize(&cfg).unwrap();
    assert!(
        result.speedup > mtl_speedup,
        "GMorph {:.2}x vs MTL {:.2}x",
        result.speedup,
        mtl_speedup
    );
}

#[test]
fn treemtl_recommendations_are_structurally_valid() {
    for id in [BenchId::B1, BenchId::B2, BenchId::B4] {
        let b = bench(id);
        for threshold in [0.0f32, 0.01, 0.02] {
            let g = baselines::treemtl_recommend(&b.paper, threshold).unwrap();
            g.validate().unwrap();
            assert_eq!(g.head_of_task().unwrap().len(), b.paper.len());
        }
    }
}

#[test]
fn treemtl_shares_more_than_nothing_on_b1() {
    let b = bench(BenchId::B1);
    let g = baselines::treemtl_recommend(&b.paper, 0.01).unwrap();
    let original = gmorph::graph::parser::parse_specs(&b.paper).unwrap();
    assert!(g.flops().unwrap() < original.flops().unwrap());
}
