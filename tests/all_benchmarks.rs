//! Cross-benchmark smoke tests: every B1-B7 pipeline must prepare, parse,
//! and search end-to-end (surrogate mode keeps this fast enough to run on
//! every `cargo test`).

use gmorph::prelude::*;

fn prepare(id: BenchId, seed: u64) -> Session {
    let bench = build_benchmark(id, &DataProfile::smoke(), seed).unwrap();
    Session::prepare(
        bench,
        &SessionConfig {
            teacher: gmorph::models::train::TrainConfig {
                epochs: 1,
                batch: 32,
                lr: 3e-3,
                seed,
            },
            seed,
            use_cache: false,
            ..Default::default()
        },
    )
    .unwrap()
}

fn surrogate_cfg(seed: u64) -> OptimizationConfig {
    OptimizationConfig {
        accuracy_threshold: 0.02,
        iterations: 20,
        mode: AccuracyMode::Surrogate,
        max_epochs: 20,
        eval_every: 2,
        seed,
        ..Default::default()
    }
}

fn check_benchmark(id: BenchId) {
    let session = prepare(id, 31);
    // Graphs valid and aligned.
    session.mini_graph.validate().unwrap();
    session.paper_graph.validate().unwrap();
    assert_eq!(session.mini_graph.len(), session.paper_graph.len());
    // Search improves or preserves the original.
    let result = session.optimize(&surrogate_cfg(31)).unwrap();
    assert!(result.speedup >= 1.0, "{id}: speedup {}", result.speedup);
    result.best.mini.validate().unwrap();
    assert!(
        result.best.drop <= 0.02 + 1e-6,
        "{id}: drop {}",
        result.best.drop
    );
    // The fused model must actually run on the benchmark's data.
    let mut tree = session
        .materialize(&result.best.mini, &result.best.weights)
        .unwrap();
    let x = session.split.test.inputs.select_rows(&[0, 1]).unwrap();
    let ys = tree.forward(&x, Mode::Eval).unwrap();
    assert_eq!(ys.len(), session.bench.mini.len(), "{id}");
    for (t, y) in ys.iter().enumerate() {
        assert_eq!(y.dims()[1], session.bench.mini[t].task.classes, "{id}");
        assert!(y.data().iter().all(|v| v.is_finite()), "{id}");
    }
}

#[test]
fn b1_vision_homogeneous() {
    check_benchmark(BenchId::B1);
}

#[test]
fn b2_vision_vgg16() {
    check_benchmark(BenchId::B2);
}

#[test]
fn b3_vision_heterogeneous_vggs() {
    check_benchmark(BenchId::B3);
}

#[test]
fn b4_resnet_pair() {
    check_benchmark(BenchId::B4);
}

#[test]
fn b5_cross_family() {
    check_benchmark(BenchId::B5);
}

#[test]
fn b6_vision_transformers() {
    check_benchmark(BenchId::B6);
}

#[test]
fn b7_language_models() {
    check_benchmark(BenchId::B7);
}

#[test]
fn searches_are_reproducible_across_sessions() {
    let a = prepare(BenchId::B3, 77).optimize(&surrogate_cfg(77)).unwrap();
    let b = prepare(BenchId::B3, 77).optimize(&surrogate_cfg(77)).unwrap();
    assert_eq!(a.best.latency_ms, b.best.latency_ms);
    assert_eq!(a.evaluated, b.evaluated);
    assert_eq!(a.best.mini.signature(), b.best.mini.signature());
}
