//! Offline stand-in for the small `proptest` API subset this workspace uses.
//!
//! Supports the patterns that appear in the test suite:
//!
//! - `proptest! { #![proptest_config(ProptestConfig::with_cases(n))] ... }`
//! - argument strategies that are numeric ranges (`1usize..6`, `-5.0f32..5.0`)
//! - `proptest::collection::vec(strategy, len_range)`
//! - `prop_assert!` / `prop_assert_eq!`
//!
//! Unlike the real crate there is no shrinking and no failure-persistence
//! file; each test derives a deterministic case stream from its own name, so
//! failures reproduce exactly on re-run.

pub mod strategy {
    use crate::test_runner::TestRng;

    /// A source of random values of one type.
    pub trait Strategy {
        type Value;
        fn sample(&self, rng: &mut TestRng) -> Self::Value;
    }

    macro_rules! int_strategies {
        ($($ty:ty),*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $ty
                }
            }
            impl Strategy for core::ops::RangeInclusive<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    let (start, end) = (*self.start(), *self.end());
                    assert!(start <= end, "empty range strategy");
                    let span = (end - start) as u64 + 1;
                    start + (rng.next_u64() % span.max(1)) as $ty
                }
            }
        )*};
    }

    int_strategies!(usize, u64, u32, u16, u8);

    macro_rules! float_strategies {
        ($($ty:ty, $unit:ident);*) => {$(
            impl Strategy for core::ops::Range<$ty> {
                type Value = $ty;
                fn sample(&self, rng: &mut TestRng) -> $ty {
                    self.start + (self.end - self.start) * rng.$unit()
                }
            }
        )*};
    }

    float_strategies!(f32, unit_f32; f64, unit_f64);
}

pub mod collection {
    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy producing `Vec`s with a length drawn from a range.
    pub struct VecStrategy<S> {
        elem: S,
        min_len: usize,
        max_len: usize,
    }

    /// Builds a vector strategy: `vec(elem, min..max)`.
    pub fn vec<S: Strategy>(elem: S, len: core::ops::Range<usize>) -> VecStrategy<S> {
        assert!(len.start < len.end, "empty length range");
        VecStrategy {
            elem,
            min_len: len.start,
            max_len: len.end,
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn sample(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.max_len - self.min_len) as u64;
            let len = self.min_len + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.elem.sample(rng)).collect()
        }
    }
}

pub mod test_runner {
    /// Per-test configuration (only the case count is honored).
    #[derive(Debug, Clone)]
    pub struct ProptestConfig {
        /// Number of random cases to run.
        pub cases: u32,
    }

    impl ProptestConfig {
        /// Configuration running `cases` random cases.
        pub fn with_cases(cases: u32) -> Self {
            ProptestConfig { cases }
        }
    }

    impl Default for ProptestConfig {
        fn default() -> Self {
            ProptestConfig { cases: 256 }
        }
    }

    /// Deterministic case-stream generator (SplitMix64).
    #[derive(Debug, Clone)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seeds the stream from the test's name, so each test is stable
        /// across runs and independent of its siblings.
        pub fn deterministic(name: &str) -> Self {
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng { state: h }
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }

        /// Uniform `f32` in `[0, 1)`.
        pub fn unit_f32(&mut self) -> f32 {
            (self.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

pub mod prelude {
    pub use crate::strategy::Strategy;
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest};
}

/// Skips the current case when its precondition does not hold. The real
/// crate re-draws inputs; this shim simply ends the case successfully,
/// which preserves the meaning (no assertion is checked on skipped draws).
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !$cond {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Asserts a condition inside a `proptest!` body, failing the current case
/// with a formatted message instead of panicking mid-closure.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err(format!($($fmt)*));
        }
    };
}

/// Asserts equality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($lhs:expr, $rhs:expr) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                if !(*l == *r) {
                    return ::core::result::Result::Err(format!(
                        "assertion failed: `{}` == `{}`\n  left: {:?}\n right: {:?}",
                        stringify!($lhs),
                        stringify!($rhs),
                        l,
                        r
                    ));
                }
            }
        }
    };
}

/// Asserts inequality inside a `proptest!` body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($lhs:expr, $rhs:expr) => {
        match (&$lhs, &$rhs) {
            (l, r) => {
                if *l == *r {
                    return ::core::result::Result::Err(format!(
                        "assertion failed: `{}` != `{}`\n  both: {:?}",
                        stringify!($lhs),
                        stringify!($rhs),
                        l
                    ));
                }
            }
        }
    };
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over sampled inputs.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_fns! { ($crate::test_runner::ProptestConfig::default()) $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    ( ($cfg:expr) ) => {};
    ( ($cfg:expr)
      $(#[$meta:meta])*
      fn $name:ident ( $( $arg:pat in $strat:expr ),+ $(,)? ) $body:block
      $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg = $cfg;
            let mut __rng =
                $crate::test_runner::TestRng::deterministic(stringify!($name));
            for __case in 0..__cfg.cases {
                $( let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng); )+
                let __result: ::core::result::Result<(), ::std::string::String> =
                    (|| { $body; ::core::result::Result::Ok(()) })();
                if let ::core::result::Result::Err(__msg) = __result {
                    panic!(
                        "proptest `{}` failed at case {}:\n{}",
                        stringify!($name),
                        __case,
                        __msg
                    );
                }
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in 3usize..9, y in -2.0f32..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((-2.0..2.0).contains(&y));
        }

        #[test]
        fn vec_strategy_respects_length(
            v in crate::collection::vec(0u64..10, 2..6),
        ) {
            prop_assert!((2..6).contains(&v.len()));
            prop_assert!(v.iter().all(|&e| e < 10));
        }
    }

    proptest! {
        #[test]
        fn default_config_runs(x in 0u64..5) {
            prop_assert_eq!(x, x);
        }
    }
}
