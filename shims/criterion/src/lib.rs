//! Offline stand-in for the small `criterion` API subset this workspace uses.
//!
//! Provides `Criterion`, `BenchmarkGroup`, `Bencher`, and the
//! `criterion_group!` / `criterion_main!` macros. Measurement is a plain
//! warm-up + timed-loop harness: no statistical analysis, no HTML reports,
//! just a `name ... time: [.. ns/iter]` line per benchmark on stdout, which
//! is what the repro tooling parses.

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// Benchmark harness configuration and entry point.
#[derive(Debug, Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(2),
            warm_up_time: Duration::from_millis(500),
        }
    }
}

impl Criterion {
    /// Number of measurement samples per benchmark.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Total time budget for measurement samples.
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Warm-up time before measurement starts.
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Runs a single named benchmark.
    pub fn bench_function(&mut self, name: &str, mut f: impl FnMut(&mut Bencher)) -> &mut Self {
        let mut b = Bencher {
            config: self.clone(),
            ns_per_iter: 0.0,
        };
        f(&mut b);
        println!("{name:<40} time: [{:.1} ns/iter]", b.ns_per_iter);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.to_string(),
        }
    }

    /// Prints the final summary (a no-op in this shim).
    pub fn final_summary(&mut self) {}
}

/// A group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function(&mut self, id: &str, f: impl FnMut(&mut Bencher)) -> &mut Self {
        let full = format!("{}/{}", self.name, id);
        self.criterion.bench_function(&full, f);
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Timing driver handed to each benchmark closure.
pub struct Bencher {
    config: Criterion,
    ns_per_iter: f64,
}

impl Bencher {
    /// Times the closure: warm-up, then `sample_size` timed batches within
    /// the measurement budget.
    pub fn iter<O>(&mut self, mut f: impl FnMut() -> O) {
        // Warm-up while estimating a single-iteration cost.
        let warm_start = Instant::now();
        let mut warm_iters = 0u64;
        while warm_start.elapsed() < self.config.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let est_ns = (warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64).max(1.0);

        // Choose a batch size so each sample runs a meaningful stretch.
        let budget_ns = self.config.measurement_time.as_nanos() as f64;
        let samples = self.config.sample_size as f64;
        let batch = ((budget_ns / samples / est_ns).ceil() as u64).max(1);

        let mut best = f64::INFINITY;
        for _ in 0..self.config.sample_size {
            let t = Instant::now();
            for _ in 0..batch {
                black_box(f());
            }
            let ns = t.elapsed().as_nanos() as f64 / batch as f64;
            if ns < best {
                best = ns;
            }
        }
        self.ns_per_iter = best;
    }
}

/// Declares a benchmark group runner, mirroring `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg;
            $( $target(&mut criterion); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group! {
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        }
    };
}

/// Declares the benchmark binary entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .warm_up_time(Duration::from_millis(5))
            .measurement_time(Duration::from_millis(20));
        let mut captured = 0.0;
        c.bench_function("noop", |b| {
            b.iter(|| 1 + 1);
            captured = b.ns_per_iter;
        });
        assert!(captured > 0.0);
    }

    #[test]
    fn groups_prefix_names() {
        let mut c = Criterion::default()
            .sample_size(2)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(5));
        let mut g = c.benchmark_group("grp");
        g.bench_function("one", |b| b.iter(|| 2 * 2));
        g.finish();
    }
}
