//! Offline stand-in for the `rand` 0.8 API subset this workspace uses.
//!
//! The build environment has no crates.io access, so this crate vendors a
//! from-scratch implementation that is **bit-compatible** with
//! `rand 0.8` + `rand_chacha 0.3` for every call the workspace makes:
//!
//! - [`rngs::StdRng`] is ChaCha12 with a 64-bit block counter, exactly as
//!   `rand_chacha::ChaCha12Rng` (the `StdRng` of rand 0.8);
//! - [`SeedableRng::seed_from_u64`] expands the seed with the same PCG32
//!   output function as `rand_core 0.6`;
//! - `gen::<u64>` / `gen::<u32>` consume keystream words in the same order
//!   as `rand_core`'s `BlockRng`;
//! - `gen::<f32>` / `gen::<f64>` use the 24-/53-bit fraction conversion of
//!   rand's `Standard` distribution;
//! - `gen_range` over integer ranges uses the widening-multiply rejection
//!   algorithm of `UniformInt::sample_single(_inclusive)`.
//!
//! Seeded streams therefore match what the real dependency would produce,
//! which keeps seed-tuned thresholds elsewhere in the repo meaningful.

/// One ChaCha block: 16 output words from 8 key words, a 64-bit counter,
/// and a 64-bit nonce (zero for `StdRng`), with `rounds` rounds.
fn chacha_block(key: &[u32; 8], counter: u64, rounds: usize, out: &mut [u32; 16]) {
    const CONSTANTS: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];
    let mut initial = [0u32; 16];
    initial[..4].copy_from_slice(&CONSTANTS);
    initial[4..12].copy_from_slice(key);
    initial[12] = counter as u32;
    initial[13] = (counter >> 32) as u32;
    // Words 14-15 are the nonce ("stream"); StdRng leaves it zero.

    #[inline(always)]
    fn quarter(x: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(16);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(12);
        x[a] = x[a].wrapping_add(x[b]);
        x[d] = (x[d] ^ x[a]).rotate_left(8);
        x[c] = x[c].wrapping_add(x[d]);
        x[b] = (x[b] ^ x[c]).rotate_left(7);
    }

    let mut x = initial;
    for _ in 0..rounds / 2 {
        // Column round.
        quarter(&mut x, 0, 4, 8, 12);
        quarter(&mut x, 1, 5, 9, 13);
        quarter(&mut x, 2, 6, 10, 14);
        quarter(&mut x, 3, 7, 11, 15);
        // Diagonal round.
        quarter(&mut x, 0, 5, 10, 15);
        quarter(&mut x, 1, 6, 11, 12);
        quarter(&mut x, 2, 7, 8, 13);
        quarter(&mut x, 3, 4, 9, 14);
    }
    for (o, (w, i)) in out.iter_mut().zip(x.iter().zip(initial.iter())) {
        *o = w.wrapping_add(*i);
    }
}

/// Core random source: 32/64-bit outputs.
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;

    /// Next 64 random bits (two consecutive 32-bit words, low first —
    /// matching `BlockRng`'s `next_u64`).
    fn next_u64(&mut self) -> u64 {
        let lo = self.next_u32() as u64;
        let hi = self.next_u32() as u64;
        (hi << 32) | lo
    }
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator from a 32-byte seed.
    fn from_seed(seed: [u8; 32]) -> Self;

    /// Expands a 64-bit seed with the PCG32 output function, exactly as
    /// `rand_core 0.6`'s default `seed_from_u64`.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6_364_136_223_846_793_005;
        const INC: u64 = 11_634_580_027_462_260_723;
        let mut seed = [0u8; 32];
        for chunk in seed.chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            chunk.copy_from_slice(&xorshifted.rotate_right(rot).to_le_bytes());
        }
        Self::from_seed(seed)
    }
}

pub mod rngs {
    use super::{chacha_block, RngCore, SeedableRng};

    /// The standard generator: ChaCha12 with a 64-bit counter, matching
    /// `rand 0.8`'s `StdRng` (`rand_chacha::ChaCha12Rng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        key: [u32; 8],
        counter: u64,
        buf: [u32; 16],
        /// Next unread index into `buf`; 16 means exhausted.
        index: usize,
    }

    impl SeedableRng for StdRng {
        fn from_seed(seed: [u8; 32]) -> Self {
            let mut key = [0u32; 8];
            for (k, chunk) in key.iter_mut().zip(seed.chunks(4)) {
                *k = u32::from_le_bytes(chunk.try_into().unwrap());
            }
            StdRng {
                key,
                counter: 0,
                buf: [0; 16],
                index: 16,
            }
        }
    }

    impl StdRng {
        /// Captures the complete generator state (key, block counter,
        /// buffered keystream, and read cursor) so a checkpointed process
        /// can resume the stream bit-exactly.
        pub fn state(&self) -> ([u32; 8], u64, [u32; 16], usize) {
            (self.key, self.counter, self.buf, self.index)
        }

        /// Reconstructs a generator from a [`StdRng::state`] snapshot.
        pub fn from_state(key: [u32; 8], counter: u64, buf: [u32; 16], index: usize) -> Self {
            StdRng {
                key,
                counter,
                buf,
                index: index.min(16),
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            if self.index == 16 {
                chacha_block(&self.key, self.counter, 12, &mut self.buf);
                self.counter = self.counter.wrapping_add(1);
                self.index = 0;
            }
            let w = self.buf[self.index];
            self.index += 1;
            w
        }
    }
}

/// Types drawable from the `Standard` distribution via [`Rng::gen`].
pub trait Sample: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Sample for u32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl Sample for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl Sample for usize {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as usize
    }
}

impl Sample for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand's Standard: the sign bit of one u32.
        (rng.next_u32() as i32) < 0
    }
}

impl Sample for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand's Standard: 24-bit fraction in [0, 1).
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Sample for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // rand's Standard: 53-bit fraction in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// Exact port of `UniformInt::sample_single_inclusive` for 64-bit types:
/// widening multiply with rejection of the biased low zone.
fn uniform_u64_inclusive<R: RngCore + ?Sized>(low: u64, high: u64, rng: &mut R) -> u64 {
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        // Full u64 range.
        return rng.next_u64();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u64();
        let m = (v as u128) * (range as u128);
        let hi = (m >> 64) as u64;
        let lo = m as u64;
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

/// Exact port of `UniformInt::sample_single_inclusive` for 32-bit types.
fn uniform_u32_inclusive<R: RngCore + ?Sized>(low: u32, high: u32, rng: &mut R) -> u32 {
    let range = high.wrapping_sub(low).wrapping_add(1);
    if range == 0 {
        return rng.next_u32();
    }
    let zone = (range << range.leading_zeros()).wrapping_sub(1);
    loop {
        let v = rng.next_u32();
        let m = (v as u64) * (range as u64);
        let hi = (m >> 32) as u32;
        let lo = m as u32;
        if lo <= zone {
            return low.wrapping_add(hi);
        }
    }
}

/// Range arguments accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! range_u64_family {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                uniform_u64_inclusive(self.start as u64, self.end as u64 - 1, rng) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                uniform_u64_inclusive(start as u64, end as u64, rng) as $ty
            }
        }
    )*};
}

range_u64_family!(usize, u64);

macro_rules! range_u32_family {
    ($($ty:ty),*) => {$(
        impl SampleRange<$ty> for core::ops::Range<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                assert!(self.start < self.end, "gen_range: empty range");
                uniform_u32_inclusive(self.start as u32, self.end as u32 - 1, rng) as $ty
            }
        }
        impl SampleRange<$ty> for core::ops::RangeInclusive<$ty> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $ty {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range: empty range");
                uniform_u32_inclusive(start as u32, end as u32, rng) as $ty
            }
        }
    )*};
}

range_u32_family!(u32, u16, u8);

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "gen_range: empty range");
        // rand's UniformFloat: a [1, 2) mantissa draw, then scale + offset.
        let scale = self.end - self.start;
        let offset = self.start - scale;
        let value1_2 = f32::from_bits((rng.next_u32() >> 9) | 0x3f80_0000);
        value1_2 * scale + offset
    }
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let scale = self.end - self.start;
        let offset = self.start - scale;
        let value1_2 = f64::from_bits((rng.next_u64() >> 12) | 0x3ff0_0000_0000_0000);
        value1_2 * scale + offset
    }
}

/// Extension methods mirroring `rand::Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the `Standard` distribution.
    fn gen<T: Sample>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from a range.
    fn gen_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::*;

    /// The zero-key, zero-nonce, counter-0 ChaCha20 keystream block from
    /// the original ecrypt verification set. Validates the block function;
    /// ChaCha12 differs only in round count.
    #[test]
    fn chacha20_reference_block() {
        let mut out = [0u32; 16];
        chacha_block(&[0; 8], 0, 20, &mut out);
        let bytes: Vec<u8> = out.iter().flat_map(|w| w.to_le_bytes()).collect();
        let expect: [u8; 32] = [
            0x76, 0xb8, 0xe0, 0xad, 0xa0, 0xf1, 0x3d, 0x90, 0x40, 0x5d, 0x6a, 0xe5, 0x53, 0x86,
            0xbd, 0x28, 0xbd, 0xd2, 0x19, 0xb8, 0xa0, 0x8d, 0xed, 0x1a, 0xa8, 0x36, 0xef, 0xcc,
            0x8b, 0x77, 0x0d, 0xc7,
        ];
        assert_eq!(&bytes[..32], &expect);
    }

    #[test]
    fn deterministic_and_seed_sensitive() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        let mut c = StdRng::seed_from_u64(43);
        let xa: Vec<u64> = (0..32).map(|_| a.next_u64()).collect();
        let xb: Vec<u64> = (0..32).map(|_| b.next_u64()).collect();
        let xc: Vec<u64> = (0..32).map(|_| c.next_u64()).collect();
        assert_eq!(xa, xb);
        assert_ne!(xa, xc);
    }

    #[test]
    fn floats_land_in_unit_interval() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x: f32 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            let y: f64 = rng.gen();
            assert!((0.0..1.0).contains(&y));
        }
    }

    #[test]
    fn float_mean_is_half() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 40_000;
        let sum: f64 = (0..n).map(|_| rng.gen::<f32>() as f64).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_range_respects_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            let v = rng.gen_range(2usize..9);
            assert!((2..9).contains(&v));
            seen[v - 2] = true;
        }
        assert!(seen.iter().all(|&s| s), "all values of 2..9 drawn");
        for _ in 0..1000 {
            let v = rng.gen_range(0usize..=4);
            assert!(v <= 4);
        }
        for _ in 0..1000 {
            let v = rng.gen_range(-1.5f32..2.5);
            assert!((-1.5..2.5).contains(&v));
        }
    }

    #[test]
    fn gen_range_is_unbiased_enough() {
        // The rejection zone must not visibly skew small ranges.
        let mut rng = StdRng::seed_from_u64(17);
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[rng.gen_range(0usize..3)] += 1;
        }
        for &c in &counts {
            assert!((9_000..11_000).contains(&c), "counts {counts:?}");
        }
    }

    #[test]
    fn bool_uses_sign_bit() {
        let mut rng = StdRng::seed_from_u64(23);
        let heads = (0..10_000).filter(|_| rng.gen::<bool>()).count();
        assert!((4_500..5_500).contains(&heads), "heads {heads}");
    }
}
