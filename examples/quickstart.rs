//! Quickstart: fuse two small face models end-to-end with *real*
//! distillation fine-tuning, and compare measured latency and accuracy
//! before and after.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use gmorph::prelude::*;
use gmorph::perf::estimator::measure_latency_ms;

fn main() -> gmorph::tensor::Result<()> {
    // 1. A benchmark with two tasks over one stream: B4-style scenes with
    //    an object detector and a salient-object counter. Smoke profile
    //    keeps the run under a minute on one core.
    println!("== GMorph quickstart ==");
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 42)?;
    println!(
        "benchmark {} with {} tasks, {} samples",
        bench.id,
        bench.mini.len(),
        bench.dataset.len()
    );

    // 2. Train the task-specific teachers (the "well-trained DNNs" GMorph
    //    takes as input). Cached after the first run.
    let session = Session::prepare(
        bench,
        &SessionConfig {
            seed: 42,
            ..Default::default()
        },
    )?;
    for (spec, score) in session.bench.mini.iter().zip(&session.teacher_scores) {
        println!("teacher {:<28} test score {:.3}", spec.name, score);
    }

    // 3. Search for a fused multi-task model within a 2% accuracy budget,
    //    evaluating candidates with real distillation fine-tuning.
    let cfg = OptimizationConfig {
        accuracy_threshold: 0.02,
        iterations: 10,
        mode: AccuracyMode::Real,
        max_epochs: 4,
        eval_every: 1,
        lr: 1e-3,
        seed: 42,
        ..Default::default()
    };
    println!("searching ({} iterations, real fine-tuning)...", cfg.iterations);
    let result = session.optimize(&cfg)?;

    // 4. Report: estimated paper-scale latency and measured mini latency.
    println!(
        "original estimated latency {:.2} ms -> fused {:.2} ms ({:.2}x)",
        result.original_latency_ms, result.best.latency_ms, result.speedup
    );
    println!(
        "accuracy drop of the fused model: {:.2}% (budget 2%)",
        result.best.drop * 100.0
    );

    let x = session.split.test.inputs.select_rows(&[0, 1, 2, 3])?;
    let mut original = session.materialize(&session.mini_graph, &session.weights)?;
    let mut fused = session.materialize(&result.best.mini, &result.best.weights)?;
    let lat_orig = measure_latency_ms(&mut original, &x, 1, 9)?;
    let lat_fused = measure_latency_ms(&mut fused, &x, 1, 9)?;
    println!(
        "measured on this CPU (batch 4): original {lat_orig:.2} ms, fused {lat_fused:.2} ms ({:.2}x)",
        lat_orig / lat_fused
    );

    println!("\nfused model architecture:\n{}", result.best.mini.render());

    // 5. Persist the fused model (graph + trained weights) and reload it.
    let path = std::path::Path::new("target/quickstart-fused.gmrh");
    gmorph::graph::persist::save_model(path, &result.best.mini, &result.best.weights)?;
    let (graph, weights) = gmorph::graph::persist::load_model(path)?;
    let mut reloaded = session.materialize(&graph, &weights)?;
    let ys = reloaded.forward(&x, Mode::Eval)?;
    println!(
        "saved and reloaded the fused model from {} ({} task outputs intact)",
        path.display(),
        ys.len()
    );
    Ok(())
}
