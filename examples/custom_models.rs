//! Fusing *your own* models: GMorph is "more flexible and easily
//! applicable than MTL because it can fuse any set of pre-trained
//! task-specific models" (§1). This example builds two custom CNN
//! architectures that exist in no model zoo, trains them as teachers on a
//! shared synthetic stream, and fuses them with real distillation
//! fine-tuning — all through the public API.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example custom_models
//! ```

use gmorph::data::faces::{generate, FaceTask, FacesConfig};
use gmorph::graph::parser::parse_models;
use gmorph::graph::parser::parse_specs;
use gmorph::models::train::{train_teacher, TrainConfig};
use gmorph::perf::accuracy::{teacher_targets, SurrogateParams};
use gmorph::perf::estimator::{estimate_latency_ms, measure_latency_ms};
use gmorph::prelude::*;
use gmorph::search::driver::{run_search, SearchConfig};
use gmorph::search::evaluator::{EvalMode, RealContext};

fn main() -> gmorph::tensor::Result<()> {
    println!("== Fusing custom architectures ==");
    let mut rng = Rng::new(77);

    // 1. Shared data stream with two tasks.
    let cfg = FacesConfig {
        samples: 256,
        noise: 0.03,
        ..Default::default()
    };
    let ds = generate(&cfg, &[FaceTask::Gender, FaceTask::Emotion], &mut rng)?;
    let split = ds.split(0.75, &mut rng)?;

    // 2. Two hand-rolled architectures (no zoo involved): a slim strided
    //    CNN and a deeper pooled CNN with a mid-network bottleneck.
    let slim = ModelSpec::new(
        "GenderNet: SlimNet",
        vec![
            BlockSpec::ConvBnRelu { c_in: 3, c_out: 6, kernel: 3, stride: 2 },
            BlockSpec::ConvBnRelu { c_in: 6, c_out: 12, kernel: 3, stride: 2 },
            BlockSpec::ConvRelu { c_in: 12, c_out: 12 },
            BlockSpec::Head { features: 12, classes: ds.tasks[0].classes },
        ],
        ds.tasks[0].clone(),
        vec![3, 16, 16],
    )?;
    let deep = ModelSpec::new(
        "EmotionNet: DeepNet",
        vec![
            BlockSpec::ConvRelu { c_in: 3, c_out: 8 },
            BlockSpec::MaxPool { k: 2 },
            BlockSpec::ConvRelu { c_in: 8, c_out: 8 },
            BlockSpec::ConvRelu { c_in: 8, c_out: 16 },
            BlockSpec::MaxPool { k: 2 },
            BlockSpec::ConvRelu { c_in: 16, c_out: 16 },
            BlockSpec::ConvRelu { c_in: 16, c_out: 16 },
            BlockSpec::MaxPool { k: 2 },
            BlockSpec::Head { features: 16, classes: ds.tasks[1].classes },
        ],
        ds.tasks[1].clone(),
        vec![3, 16, 16],
    )?;

    // 3. Train the teachers independently (as their owners would have).
    let mut teachers = Vec::new();
    let mut teacher_scores = Vec::new();
    for (i, spec) in [slim, deep].into_iter().enumerate() {
        let mut model = spec.build(&mut rng)?;
        let report = train_teacher(
            &mut model,
            &split.train,
            &split.test,
            i,
            &TrainConfig { epochs: 6, batch: 32, lr: 3e-3, seed: 77 },
        )?;
        println!("teacher {:<22} score {:.3}", model.spec.name, report.final_score);
        teacher_scores.push(report.final_score);
        teachers.push(model);
    }

    // 4. Parse into the abstract graph and search with real fine-tuning.
    let (mini_graph, weights) = parse_models(&teachers)?;
    let paper_graph = parse_specs(&teachers.iter().map(|t| t.spec.clone()).collect::<Vec<_>>())?;
    let targets = teacher_targets(&mut teachers, &split.train.inputs)?;
    let mode = EvalMode::Real(RealContext {
        train_inputs: split.train.inputs.clone(),
        targets,
        test: split.test.clone(),
        teacher_scores: teacher_scores.clone(),
    });
    let _ = SurrogateParams::default(); // Surrogate is available too.
    let cfg = SearchConfig {
        iterations: 16,
        finetune: gmorph::perf::accuracy::FinetuneConfig {
            max_epochs: 6,
            eval_every: 2,
            target_drop: 0.03,
            lr: 1e-3,
            batch: 32,
            ..Default::default()
        },
        seed: 77,
        ..Default::default()
    };
    println!("searching (16 iterations, real fine-tuning, 3% budget)...");
    let result = run_search(&mini_graph, &paper_graph, &weights, &mode, &cfg)?;

    // 5. Report estimated and measured gains.
    println!(
        "estimated: {:.2} ms -> {:.2} ms ({:.2}x), drop {:.2}%",
        result.original_latency_ms,
        result.best.latency_ms,
        result.speedup,
        result.best.drop.max(0.0) * 100.0
    );
    let x = split.test.inputs.select_rows(&[0, 1, 2, 3])?;
    let mut rng2 = Rng::new(1);
    let (mut orig, _) = gmorph::graph::generator::generate(&mini_graph, &weights, &mut rng2)?;
    let (mut fused, _) =
        gmorph::graph::generator::generate(&result.best.mini, &result.best.weights, &mut rng2)?;
    let lat_o = measure_latency_ms(&mut orig, &x, 1, 9)?;
    let lat_f = measure_latency_ms(&mut fused, &x, 1, 9)?;
    println!("measured (batch 4): {lat_o:.2} ms -> {lat_f:.2} ms ({:.2}x)", lat_o / lat_f);
    println!(
        "eager vs fused backends agree fusion helps: {:.2}x / {:.2}x",
        result.original_latency_ms / result.best.latency_ms,
        estimate_latency_ms(&paper_graph, Backend::Fused)?
            / estimate_latency_ms(&result.best.paper, Backend::Fused)?
    );
    println!("\nfused architecture:\n{}", result.best.mini.render());
    Ok(())
}
