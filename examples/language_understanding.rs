//! General Language Understanding (the paper's B7): grammaticality and
//! sentiment classifiers with different encoder widths and depths fused
//! into one model.
//!
//! BERT-Large and BERT-Base share no identical layers (widths differ), so
//! MTL baselines cannot fuse them; GMorph shares encoder features through
//! token-axis/width re-scale adapters.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example language_understanding
//! ```

use gmorph::prelude::*;

fn main() -> gmorph::tensor::Result<()> {
    println!("== Language Understanding: CoLANet (BERT-Large) + SSTNet (BERT-Base) ==");
    let bench = build_benchmark(BenchId::B7, &DataProfile::standard(), 21)?;
    let session = Session::prepare(
        bench,
        &SessionConfig {
            seed: 21,
            ..Default::default()
        },
    )?;
    for (spec, score) in session.bench.mini.iter().zip(&session.teacher_scores) {
        println!("teacher {:<24} score {:.3}", spec.name, score);
    }
    println!(
        "identical common prefix: {} blocks (MTL baselines cannot share)",
        baselines::common_prefix_len(&session.bench.mini)
    );

    for &threshold in &[0.0f32, 0.02] {
        let cfg = OptimizationConfig {
            accuracy_threshold: threshold,
            iterations: 60,
            mode: AccuracyMode::Surrogate,
            max_epochs: 16,
            eval_every: 2,
            seed: 21,
            ..Default::default()
        };
        let result = session.optimize(&cfg)?;
        println!(
            "budget {:>4.1}%: {:7.2} ms -> {:7.2} ms ({:.2}x), drop {:.2}%",
            threshold * 100.0,
            result.original_latency_ms,
            result.best.latency_ms,
            result.speedup,
            result.best.drop.max(0.0) * 100.0
        );
    }

    // Show one fused architecture.
    let cfg = OptimizationConfig {
        accuracy_threshold: 0.02,
        iterations: 40,
        mode: AccuracyMode::Surrogate,
        max_epochs: 16,
        eval_every: 2,
        seed: 22,
        ..Default::default()
    };
    let result = session.optimize(&cfg)?;
    println!("\nfused architecture:\n{}", result.best.mini.render());
    Ok(())
}
