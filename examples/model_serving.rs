//! Model serving (§7's second deployment scenario): "GMorph can be
//! applied to optimize multi-DNNs in model serving systems to improve
//! serving throughput, which is measured as queries per second. By paying
//! the one-time cost of model searching and fine-tuning offline, GMorph
//! can fuse multi-DNNs into a resource-efficient multi-task model."
//!
//! This example pays that offline cost (a surrogate search over B4's
//! ResNet pair), then measures online serving throughput of the original
//! and fused models on this CPU at several batch sizes — both raw and
//! after the real batch-norm-folding compilation pass.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example model_serving
//! ```

use gmorph::perf::compile::compile_for_inference;
use gmorph::perf::estimator::measure_throughput_qps;
use gmorph::prelude::*;
use std::time::Duration;

fn main() -> gmorph::tensor::Result<()> {
    println!("== Model serving: ObjectNet (ResNet-34) + SalientNet (ResNet-18) ==");
    let bench = build_benchmark(BenchId::B4, &DataProfile::standard(), 33)?;
    let session = Session::prepare(
        bench,
        &SessionConfig {
            seed: 33,
            ..Default::default()
        },
    )?;

    // Offline: search for the fused model (one-time cost).
    let cfg = OptimizationConfig {
        accuracy_threshold: 0.01,
        iterations: 60,
        mode: AccuracyMode::Surrogate,
        max_epochs: 35,
        eval_every: 5,
        seed: 33,
        ..Default::default()
    };
    let result = session.optimize(&cfg)?;
    println!(
        "offline search: {:.2} ms -> {:.2} ms ({:.2}x estimated), {:.1} virtual GPU-hours",
        result.original_latency_ms,
        result.best.latency_ms,
        result.speedup,
        result.virtual_hours
    );

    // Online: throughput of original vs fused vs compiled-fused.
    let orig = session.materialize(&session.mini_graph, &session.weights)?;
    let fused = session.materialize(&result.best.mini, &result.best.weights)?;
    let (orig_c, _) = compile_for_inference(&orig)?;
    let (fused_c, folds) = compile_for_inference(&fused)?;
    println!("compiled the fused model: {folds} batch norms folded\n");
    println!("batch  original qps  fused qps  gain   compiled-fused qps  gain");
    for batch in [1usize, 4, 16] {
        let ix: Vec<usize> = (0..batch).collect();
        let x = session.split.test.inputs.select_rows(&ix)?;
        let dur = Duration::from_millis(400);
        let q_orig = measure_throughput_qps(&mut orig.clone(), &x, dur)?;
        let q_fused = measure_throughput_qps(&mut fused.clone(), &x, dur)?;
        let q_orig_c = measure_throughput_qps(&mut orig_c.clone(), &x, dur)?;
        let q_fused_c = measure_throughput_qps(&mut fused_c.clone(), &x, dur)?;
        println!(
            "{batch:<5}  {q_orig:>12.0}  {q_fused:>9.0}  {:.2}x  {q_fused_c:>18.0}  {:.2}x",
            q_fused / q_orig,
            q_fused_c / q_orig_c,
        );
    }
    println!(
        "\nthroughput gains track the latency speedup: the one-time fusion cost\n\
         buys every future query a cheaper model."
    );
    Ok(())
}
