//! Vision Support (the paper's B1-B3 family): three face-attribute models
//! over one image stream, fused under three accuracy budgets.
//!
//! Demonstrates the accuracy/latency trade-off of Figure 7: tighter
//! budgets keep more task-specific capacity; looser budgets let GMorph
//! share deeper features and even shorten chains with in-branch mutations.
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example vision_support
//! ```

use gmorph::prelude::*;

fn main() -> gmorph::tensor::Result<()> {
    println!("== Vision Support: Age/Gender/Ethnicity on one face stream ==");
    let bench = build_benchmark(BenchId::B1, &DataProfile::standard(), 7)?;
    let session = Session::prepare(
        bench,
        &SessionConfig {
            seed: 7,
            ..Default::default()
        },
    )?;
    println!(
        "original multi-DNN: {} blocks, {:.2} ms estimated (paper scale, eager)",
        session.mini_graph.len(),
        session.original_latency_ms(Backend::Eager)?
    );

    for &threshold in &[0.0f32, 0.01, 0.02] {
        let cfg = OptimizationConfig {
            accuracy_threshold: threshold,
            iterations: 60,
            mode: AccuracyMode::Surrogate,
            max_epochs: 35,
            eval_every: 5,
            seed: 7,
            ..Default::default()
        };
        let result = session.optimize(&cfg)?;
        println!(
            "budget {:>4.1}%: fused latency {:6.2} ms, speedup {:.2}x, drop {:5.2}%, {} candidates fine-tuned",
            threshold * 100.0,
            result.best.latency_ms,
            result.speedup,
            result.best.drop.max(0.0) * 100.0,
            result.evaluated
        );
        if threshold == 0.02 {
            println!("\nbest model at the 2% budget:\n{}", result.best.mini.render());
        }
    }
    Ok(())
}
