//! Lifelogging (the paper's B4/B5 family): object detection + salient
//! object counting over one scene stream, with heterogeneous backbones.
//!
//! Compares GMorph's fusion against the All-shared and TreeMTL baselines
//! on the cross-family B5 setup (ResNet-34 + VGG-16), where MTL baselines
//! cannot share anything because no identical layers exist — the headline
//! advantage of model fusion (§6.3).
//!
//! Run with:
//!
//! ```text
//! cargo run --release --example lifelogging
//! ```

use gmorph::prelude::*;
use gmorph::perf::estimator::estimate_latency_ms;

fn main() -> gmorph::tensor::Result<()> {
    println!("== Lifelogging: ObjectNet (ResNet-34) + SalientNet (VGG-16) ==");
    let bench = build_benchmark(BenchId::B5, &DataProfile::standard(), 11)?;
    let session = Session::prepare(
        bench,
        &SessionConfig {
            seed: 11,
            ..Default::default()
        },
    )?;

    let orig = session.original_latency_ms(Backend::Eager)?;
    println!("original estimated latency: {orig:.2} ms");

    // MTL baselines: the identical-prefix requirement leaves them empty-
    // handed across model families.
    let prefix = baselines::common_prefix_len(&session.bench.mini);
    println!("identical common prefix across ResNet-34 and VGG-16: {prefix} blocks");
    let (all_shared_mini, all_shared_paper) = session.all_shared()?;
    let baseline_latency = estimate_latency_ms(&all_shared_paper, Backend::Eager)?;
    println!(
        "All-shared baseline: {} blocks, {:.2} ms ({:.2}x) — no sharing possible",
        all_shared_mini.len(),
        baseline_latency,
        orig / baseline_latency
    );

    // GMorph: feature sharing across families via re-scale adapters.
    let cfg = OptimizationConfig {
        accuracy_threshold: 0.01,
        iterations: 60,
        mode: AccuracyMode::Surrogate,
        max_epochs: 35,
        eval_every: 5,
        seed: 11,
        ..Default::default()
    };
    let result = session.optimize(&cfg)?;
    println!(
        "GMorph @1%: {:.2} ms ({:.2}x), drop {:.2}%",
        result.best.latency_ms,
        result.speedup,
        result.best.drop.max(0.0) * 100.0
    );
    println!("\nfused architecture:\n{}", result.best.mini.render());
    Ok(())
}
