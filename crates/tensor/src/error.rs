//! Workspace-wide failure taxonomy and fault injection for resilient search.
//!
//! GMorph's search loop evaluates thousands of generated candidate graphs by
//! fine-tuning, and a single divergent candidate (NaN loss, exploding
//! gradients, a pathological graph that trains far slower than budgeted)
//! must never abort the run — it must become a *classified* failure the
//! supervisor can retry, reject, or quarantine. This module provides:
//!
//! - [`FailureKind`]: the closed classification every failure maps onto
//!   (panic, non-finite, timeout, OOM-guard, graph, io),
//! - [`GmorphError`]: the taxonomy enum layered over [`TensorError`] —
//!   lossless conversions both ways mean the existing `Result` plumbing in
//!   every crate carries the classification without signature churn,
//! - [`FaultSpec`]: `GMORPH_FAULT` fault-injection knobs (the failure-path
//!   sibling of `GMORPH_CRASH_AFTER` in [`crate::checkpoint`]) used by the
//!   resilience test-suite and the CI fault-smoke job.
//!
//! Transience: a panic or a non-finite excursion can be an unlucky
//! initialization — retrying with a reseeded init and a smaller learning
//! rate is worth bounded attempts. A timeout or an OOM-guard trip is a
//! property of the graph itself (it will be just as slow or as large on the
//! next attempt), so those are permanent and go straight to quarantine.

use crate::TensorError;
use std::fmt;

/// Closed classification of evaluation failures.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FailureKind {
    /// The evaluation panicked (caught at the supervisor boundary).
    Panic,
    /// A loss, gradient, or weight went NaN/Inf (or diverged past bounds).
    NonFinite,
    /// The candidate exceeded its wall-clock or virtual-clock deadline.
    Timeout,
    /// The tensor-pool byte budget was exceeded (OOM guard).
    OomGuard,
    /// A structural error: bad shapes, ranks, or graph construction.
    Graph,
    /// Serialization or filesystem failure.
    Io,
}

impl FailureKind {
    /// Stable wire name used in telemetry events and checkpoint payloads.
    pub fn as_str(self) -> &'static str {
        match self {
            FailureKind::Panic => "panic",
            FailureKind::NonFinite => "non_finite",
            FailureKind::Timeout => "timeout",
            FailureKind::OomGuard => "oom_guard",
            FailureKind::Graph => "graph",
            FailureKind::Io => "io",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "panic" => FailureKind::Panic,
            "non_finite" => FailureKind::NonFinite,
            "timeout" => FailureKind::Timeout,
            "oom_guard" => FailureKind::OomGuard,
            "graph" => FailureKind::Graph,
            "io" => FailureKind::Io,
            _ => return None,
        })
    }

    /// Whether a retry with reseeded init / smaller LR could plausibly
    /// succeed. Timeouts and OOM trips are properties of the graph, not of
    /// the draw, so they are permanent.
    pub fn is_transient(self) -> bool {
        matches!(self, FailureKind::Panic | FailureKind::NonFinite)
    }
}

impl fmt::Display for FailureKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// The workspace failure taxonomy.
///
/// Layered over [`TensorError`] rather than replacing it: hot paths keep
/// returning `gmorph_tensor::Result`, and the supervisor lifts errors into
/// this enum (via `From`) when it needs to classify them.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GmorphError {
    /// A caught panic, with the rendered payload.
    Panic {
        /// Operation at whose boundary the panic was caught.
        op: &'static str,
        /// Rendered panic payload.
        msg: String,
    },
    /// A numeric-health violation (NaN/Inf loss, gradient, or weight).
    NonFinite {
        /// Operation that detected the violation.
        op: &'static str,
        /// What went non-finite and where.
        msg: String,
    },
    /// A deadline violation (wall-clock or virtual-clock).
    Timeout {
        /// Operation that exceeded its budget.
        op: &'static str,
        /// Budget and observed cost.
        msg: String,
    },
    /// A tensor-pool byte-budget violation.
    OomGuard {
        /// Operation that tripped the guard.
        op: &'static str,
        /// Budget and requested bytes.
        msg: String,
    },
    /// Any other tensor-level error (shape, rank, bounds, io...).
    Tensor(TensorError),
}

impl GmorphError {
    /// Classify this error into the closed [`FailureKind`] set.
    pub fn kind(&self) -> FailureKind {
        match self {
            GmorphError::Panic { .. } => FailureKind::Panic,
            GmorphError::NonFinite { .. } => FailureKind::NonFinite,
            GmorphError::Timeout { .. } => FailureKind::Timeout,
            GmorphError::OomGuard { .. } => FailureKind::OomGuard,
            GmorphError::Tensor(TensorError::Io(_)) => FailureKind::Io,
            GmorphError::Tensor(_) => FailureKind::Graph,
        }
    }

    /// See [`FailureKind::is_transient`].
    pub fn is_transient(&self) -> bool {
        self.kind().is_transient()
    }
}

impl fmt::Display for GmorphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GmorphError::Panic { op, msg }
            | GmorphError::NonFinite { op, msg }
            | GmorphError::Timeout { op, msg }
            | GmorphError::OomGuard { op, msg } => {
                write!(f, "{op}: [{}] {msg}", self.kind())
            }
            GmorphError::Tensor(e) => e.fmt(f),
        }
    }
}

impl std::error::Error for GmorphError {}

impl From<TensorError> for GmorphError {
    fn from(err: TensorError) -> Self {
        match err {
            TensorError::Failed { kind, op, msg } => match kind {
                FailureKind::Panic => GmorphError::Panic { op, msg },
                FailureKind::NonFinite => GmorphError::NonFinite { op, msg },
                FailureKind::Timeout => GmorphError::Timeout { op, msg },
                FailureKind::OomGuard => GmorphError::OomGuard { op, msg },
                // Graph/Io classified failures re-wrap losslessly enough:
                // classification is recomputed from the inner error.
                FailureKind::Graph | FailureKind::Io => {
                    GmorphError::Tensor(TensorError::InvalidArgument { op, msg })
                }
            },
            other => GmorphError::Tensor(other),
        }
    }
}

impl From<GmorphError> for TensorError {
    fn from(err: GmorphError) -> Self {
        match err {
            GmorphError::Panic { op, msg } => TensorError::Failed {
                kind: FailureKind::Panic,
                op,
                msg,
            },
            GmorphError::NonFinite { op, msg } => TensorError::Failed {
                kind: FailureKind::NonFinite,
                op,
                msg,
            },
            GmorphError::Timeout { op, msg } => TensorError::Failed {
                kind: FailureKind::Timeout,
                op,
                msg,
            },
            GmorphError::OomGuard { op, msg } => TensorError::Failed {
                kind: FailureKind::OomGuard,
                op,
                msg,
            },
            GmorphError::Tensor(e) => e,
        }
    }
}

/// Shorthand: a classified non-finite failure as a [`TensorError`].
pub fn non_finite(op: &'static str, msg: impl Into<String>) -> TensorError {
    TensorError::Failed {
        kind: FailureKind::NonFinite,
        op,
        msg: msg.into(),
    }
}

/// Shorthand: a classified timeout failure as a [`TensorError`].
pub fn timeout(op: &'static str, msg: impl Into<String>) -> TensorError {
    TensorError::Failed {
        kind: FailureKind::Timeout,
        op,
        msg: msg.into(),
    }
}

/// Shorthand: a classified caught-panic failure as a [`TensorError`].
pub fn panic_failure(op: &'static str, msg: impl Into<String>) -> TensorError {
    TensorError::Failed {
        kind: FailureKind::Panic,
        op,
        msg: msg.into(),
    }
}

/// Shorthand: a classified OOM-guard failure as a [`TensorError`].
pub fn oom_guard(op: &'static str, msg: impl Into<String>) -> TensorError {
    TensorError::Failed {
        kind: FailureKind::OomGuard,
        op,
        msg: msg.into(),
    }
}

/// Classify any [`TensorError`] without consuming it.
pub fn classify(err: &TensorError) -> FailureKind {
    match err {
        TensorError::Failed { kind, .. } => *kind,
        TensorError::Io(_) => FailureKind::Io,
        _ => FailureKind::Graph,
    }
}

/// Injectable fault modes, selected via `GMORPH_FAULT=<mode>:<iter>`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FaultKind {
    /// Poison the training loss with NaN.
    NanLoss,
    /// Blow up gradients past the divergence threshold.
    GradExplode,
    /// Make the candidate stall long enough to trip its deadline.
    SlowCandidate,
    /// Panic inside the evaluation (exercises the catch-unwind boundary).
    PanicEval,
}

impl FaultKind {
    /// Stable name used in `GMORPH_FAULT` and telemetry.
    pub fn as_str(self) -> &'static str {
        match self {
            FaultKind::NanLoss => "nan_loss",
            FaultKind::GradExplode => "grad_explode",
            FaultKind::SlowCandidate => "slow_candidate",
            FaultKind::PanicEval => "panic",
        }
    }

    /// Inverse of [`as_str`](Self::as_str).
    pub fn parse(s: &str) -> Option<Self> {
        Some(match s {
            "nan_loss" => FaultKind::NanLoss,
            "grad_explode" => FaultKind::GradExplode,
            "slow_candidate" => FaultKind::SlowCandidate,
            "panic" => FaultKind::PanicEval,
            _ => return None,
        })
    }
}

/// A parsed `GMORPH_FAULT` directive: inject `kind` into the candidate
/// evaluated at search iteration `at_iter` (every attempt — a faulty graph
/// stays faulty across retries, which is what drives it into quarantine).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultSpec {
    /// Which fault to inject.
    pub kind: FaultKind,
    /// Search iteration whose candidate is poisoned.
    pub at_iter: usize,
}

impl FaultSpec {
    /// Parse a `<mode>:<iter>` directive, e.g. `nan_loss:5`.
    pub fn parse(s: &str) -> Option<Self> {
        let (mode, iter) = s.split_once(':')?;
        Some(FaultSpec {
            kind: FaultKind::parse(mode.trim())?,
            at_iter: iter.trim().parse().ok()?,
        })
    }

    /// Read `GMORPH_FAULT` from the environment. Call once at configuration
    /// time (like `CheckpointOptions::crash_after_from_env`) — never from
    /// library hot paths, so parallel test runners sharing the process env
    /// stay isolated.
    pub fn from_env() -> Option<Self> {
        let raw = std::env::var("GMORPH_FAULT").ok()?;
        let spec = Self::parse(&raw);
        if spec.is_none() && !raw.is_empty() {
            eprintln!("gmorph: ignoring unparseable GMORPH_FAULT={raw:?} (want <mode>:<iter>)");
        }
        spec
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kind_wire_names_round_trip() {
        for kind in [
            FailureKind::Panic,
            FailureKind::NonFinite,
            FailureKind::Timeout,
            FailureKind::OomGuard,
            FailureKind::Graph,
            FailureKind::Io,
        ] {
            assert_eq!(FailureKind::parse(kind.as_str()), Some(kind));
        }
        assert_eq!(FailureKind::parse("weird"), None);
    }

    #[test]
    fn taxonomy_round_trips_through_tensor_error() {
        let cases = [
            GmorphError::Panic {
                op: "eval",
                msg: "boom".into(),
            },
            GmorphError::NonFinite {
                op: "finetune",
                msg: "loss=NaN".into(),
            },
            GmorphError::Timeout {
                op: "eval",
                msg: "deadline 5ms, took 40ms".into(),
            },
            GmorphError::OomGuard {
                op: "pool",
                msg: "budget 1MiB, wanted 2MiB".into(),
            },
        ];
        for err in cases {
            let lowered: TensorError = err.clone().into();
            let lifted: GmorphError = lowered.into();
            assert_eq!(lifted, err);
        }
    }

    #[test]
    fn tensor_errors_classify_as_graph_or_io() {
        let shape = TensorError::ShapeMismatch {
            op: "matmul",
            lhs: "2x3".into(),
            rhs: "4x5".into(),
        };
        assert_eq!(classify(&shape), FailureKind::Graph);
        assert!(!GmorphError::from(shape).is_transient());
        let io = TensorError::Io("disk gone".into());
        assert_eq!(classify(&io), FailureKind::Io);
        assert_eq!(classify(&non_finite("x", "y")), FailureKind::NonFinite);
    }

    #[test]
    fn transience_matches_design() {
        assert!(FailureKind::Panic.is_transient());
        assert!(FailureKind::NonFinite.is_transient());
        assert!(!FailureKind::Timeout.is_transient());
        assert!(!FailureKind::OomGuard.is_transient());
    }

    #[test]
    fn fault_spec_parses_all_modes() {
        assert_eq!(
            FaultSpec::parse("nan_loss:5"),
            Some(FaultSpec {
                kind: FaultKind::NanLoss,
                at_iter: 5
            })
        );
        assert_eq!(
            FaultSpec::parse("grad_explode:12"),
            Some(FaultSpec {
                kind: FaultKind::GradExplode,
                at_iter: 12
            })
        );
        assert_eq!(
            FaultSpec::parse("slow_candidate:0"),
            Some(FaultSpec {
                kind: FaultKind::SlowCandidate,
                at_iter: 0
            })
        );
        assert_eq!(
            FaultSpec::parse("panic:3"),
            Some(FaultSpec {
                kind: FaultKind::PanicEval,
                at_iter: 3
            })
        );
        assert_eq!(FaultSpec::parse("nan_loss"), None);
        assert_eq!(FaultSpec::parse("quantum_bitflip:2"), None);
        assert_eq!(FaultSpec::parse("nan_loss:many"), None);
    }
}
