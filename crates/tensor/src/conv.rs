//! 2D convolution via im2col + GEMM, with full backward passes.
//!
//! Layout is NCHW throughout. The lowering mirrors what cuDNN/PyTorch do on
//! the GPU: each input window becomes a column, convolution becomes one GEMM
//! per sample, and the backward pass reuses the same columns.
//!
//! The batch dimension is dispatched across the shared worker pool
//! ([`crate::engine`]): samples are independent in the forward pass, and the
//! backward pass reduces per-sample `dW`/`db` contributions serially in
//! ascending sample order, keeping results bit-identical across thread
//! counts.

use crate::buffer;
use crate::engine;
use crate::gemm;
use crate::ops::Activation;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Convolution geometry: kernel size, stride, and zero padding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Conv2dGeom {
    /// Kernel height and width (square kernels only).
    pub kernel: usize,
    /// Stride in both spatial dimensions.
    pub stride: usize,
    /// Zero padding in both spatial dimensions.
    pub padding: usize,
}

impl Conv2dGeom {
    /// Creates a geometry, validating that the kernel and stride are nonzero.
    pub fn new(kernel: usize, stride: usize, padding: usize) -> Result<Self> {
        if kernel == 0 || stride == 0 {
            return Err(TensorError::InvalidArgument {
                op: "Conv2dGeom::new",
                msg: format!("kernel ({kernel}) and stride ({stride}) must be nonzero"),
            });
        }
        Ok(Conv2dGeom {
            kernel,
            stride,
            padding,
        })
    }

    /// Output spatial size for an input spatial size.
    ///
    /// Returns an error if the padded input is smaller than the kernel.
    pub fn out_size(&self, in_size: usize) -> Result<usize> {
        let padded = in_size + 2 * self.padding;
        if padded < self.kernel {
            return Err(TensorError::InvalidArgument {
                op: "Conv2dGeom::out_size",
                msg: format!(
                    "input {in_size} + 2*{} smaller than kernel {}",
                    self.padding, self.kernel
                ),
            });
        }
        Ok((padded - self.kernel) / self.stride + 1)
    }
}

/// Lowers one `[C, H, W]` image into a `[C*K*K, OH*OW]` column matrix.
///
/// `col` must be zero-filled: padding positions are skipped, not written.
#[allow(clippy::too_many_arguments)]
fn im2col_single(
    data: &[f32],
    c: usize,
    h: usize,
    w: usize,
    geom: Conv2dGeom,
    oh: usize,
    ow: usize,
    col: &mut [f32],
) {
    let k = geom.kernel;
    let ncols = oh * ow;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row_base = ((ch * k + ky) * k + kx) * ncols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        col[row_base + oy * ow + ox] = data[(ch * h + iy) * w + ix as usize];
                    }
                }
            }
        }
    }
}

/// Scatters a `[C*K*K, OH*OW]` column matrix back into a `[C, H, W]` image,
/// accumulating overlapping contributions (the adjoint of im2col).
#[allow(clippy::too_many_arguments)]
fn col2im_single(
    col: &[f32],
    c: usize,
    h: usize,
    w: usize,
    geom: Conv2dGeom,
    oh: usize,
    ow: usize,
    out: &mut [f32],
) {
    let k = geom.kernel;
    let ncols = oh * ow;
    for ch in 0..c {
        for ky in 0..k {
            for kx in 0..k {
                let row_base = ((ch * k + ky) * k + kx) * ncols;
                for oy in 0..oh {
                    let iy = (oy * geom.stride + ky) as isize - geom.padding as isize;
                    if iy < 0 || iy as usize >= h {
                        continue;
                    }
                    let iy = iy as usize;
                    for ox in 0..ow {
                        let ix = (ox * geom.stride + kx) as isize - geom.padding as isize;
                        if ix < 0 || ix as usize >= w {
                            continue;
                        }
                        out[(ch * h + iy) * w + ix as usize] += col[row_base + oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Result of a forward convolution, retaining what backward needs.
#[derive(Debug, Clone)]
pub struct Conv2dForward {
    /// The `[N, C_out, OH, OW]` output.
    pub output: Tensor,
    /// Cached im2col matrices, one `[C_in*K*K, OH*OW]` per sample.
    pub cols: Vec<Tensor>,
    /// Output spatial height.
    pub oh: usize,
    /// Output spatial width.
    pub ow: usize,
}

/// Computes a forward 2D convolution.
///
/// - `input`: `[N, C_in, H, W]`
/// - `weight`: `[C_out, C_in, K, K]`
/// - `bias`: `[C_out]` or `None`
///
/// # Examples
///
/// ```
/// use gmorph_tensor::{Tensor, conv::{conv2d_forward, Conv2dGeom}};
///
/// let x = Tensor::ones(&[1, 1, 3, 3]);
/// let w = Tensor::ones(&[1, 1, 3, 3]);
/// let geom = Conv2dGeom::new(3, 1, 1).unwrap();
/// let y = conv2d_forward(&x, &w, None, geom).unwrap();
/// assert_eq!(y.output.dims(), &[1, 1, 3, 3]);
/// // Center pixel sees all nine ones.
/// assert_eq!(y.output.at(&[0, 0, 1, 1]).unwrap(), 9.0);
/// ```
pub fn conv2d_forward(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    geom: Conv2dGeom,
) -> Result<Conv2dForward> {
    conv2d_forward_act(input, weight, bias, geom, Activation::None)
}

/// [`conv2d_forward`] with a fused epilogue: the activation is applied to
/// `v + bias` inside the per-channel output write loop instead of as a
/// separate elementwise pass over the output tensor.
///
/// Bit-identical to `conv2d_forward` followed by the corresponding
/// elementwise activation (the scalar sequence is the same).
pub fn conv2d_forward_act(
    input: &Tensor,
    weight: &Tensor,
    bias: Option<&Tensor>,
    geom: Conv2dGeom,
    act: Activation,
) -> Result<Conv2dForward> {
    let start = gmorph_telemetry::enabled().then(std::time::Instant::now);
    if input.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d_forward input",
            expected: 4,
            actual: input.shape().rank(),
        });
    }
    if weight.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op: "conv2d_forward weight",
            expected: 4,
            actual: weight.shape().rank(),
        });
    }
    let (n, c_in, h, w) = (
        input.dims()[0],
        input.dims()[1],
        input.dims()[2],
        input.dims()[3],
    );
    let (c_out, wc_in, k, k2) = (
        weight.dims()[0],
        weight.dims()[1],
        weight.dims()[2],
        weight.dims()[3],
    );
    if wc_in != c_in || k != geom.kernel || k2 != geom.kernel {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_forward",
            lhs: input.shape().to_string(),
            rhs: weight.shape().to_string(),
        });
    }
    let oh = geom.out_size(h)?;
    let ow = geom.out_size(w)?;
    if let Some(b) = bias {
        if b.dims() != [c_out] {
            return Err(TensorError::ShapeMismatch {
                op: "conv2d_forward bias",
                lhs: format!("[{c_out}]"),
                rhs: b.shape().to_string(),
            });
        }
    }
    let wmat = weight.reshape(&[c_out, c_in * k * k])?;

    if act != Activation::None {
        gmorph_telemetry::counter!("kernel.fused_dispatch");
    }
    let img_len = c_in * h * w;
    let out_len = c_out * oh * ow;

    // Each sample is independent: lower and multiply across the pool. The
    // per-sample GEMM runs inline on its worker (nested dispatch), so the
    // decomposition — and therefore the result — is thread-count-invariant.
    let per_sample = engine::parallel_map(n, |s| -> Result<(Vec<f32>, Tensor)> {
        let img = &input.data()[s * img_len..(s + 1) * img_len];
        // im2col skips padding positions, so the scratch must be zeroed.
        let mut col = buffer::take(c_in * k * k * oh * ow);
        im2col_single(img, c_in, h, w, geom, oh, ow, &mut col);
        let col_t = Tensor::from_vec(&[c_in * k * k, oh * ow], col)?;
        let mut y = gemm::matmul(&wmat, &col_t)?; // [c_out, oh*ow]
        // Fused epilogue: bias-add and activation while writing each
        // channel row, instead of separate passes over the output.
        if bias.is_some() || act != Activation::None {
            let ncols = oh * ow;
            let yd = y.data_mut();
            // Dispatch on the activation once, outside the element loop,
            // so each arm is a tight monomorphic pass.
            fn pass(yd: &mut [f32], ncols: usize, bias: Option<&Tensor>, f: impl Fn(f32) -> f32) {
                for (co, row) in yd.chunks_mut(ncols).enumerate() {
                    let bv = bias.map(|b| b.data()[co]).unwrap_or(0.0);
                    for v in row {
                        *v = f(*v + bv);
                    }
                }
            }
            match act {
                Activation::None => pass(yd, ncols, bias, |v| v),
                Activation::Relu => pass(yd, ncols, bias, |v| Activation::Relu.apply(v)),
                Activation::Gelu => pass(yd, ncols, bias, |v| Activation::Gelu.apply(v)),
            }
        }
        Ok((y.into_data(), col_t))
    });

    // The output is fully written sample by sample below, so its storage
    // can come from the pool without clearing.
    let mut out = Tensor::from_vec(&[n, c_out, oh, ow], buffer::take_uninit(n * out_len))?;
    let mut cols = Vec::with_capacity(n);
    for (s, sample) in per_sample.into_iter().enumerate() {
        let (y, col_t) = sample?;
        out.data_mut()[s * out_len..(s + 1) * out_len].copy_from_slice(&y);
        buffer::give(y);
        cols.push(col_t);
    }
    if let Some(start) = start {
        let bucket = |d: usize| d.max(1).next_power_of_two();
        gmorph_telemetry::counter!("conv.calls");
        gmorph_telemetry::hist!(
            &format!(
                "conv.us.n{}c{}k{}o{}",
                bucket(n),
                bucket(c_out),
                geom.kernel,
                bucket(oh * ow)
            ),
            start.elapsed().as_micros() as f64
        );
    }
    Ok(Conv2dForward {
        output: out,
        cols,
        oh,
        ow,
    })
}

/// Gradients produced by a convolution backward pass.
#[derive(Debug, Clone)]
pub struct Conv2dGrads {
    /// Gradient with respect to the input, `[N, C_in, H, W]`.
    pub grad_input: Tensor,
    /// Gradient with respect to the weight, `[C_out, C_in, K, K]`.
    pub grad_weight: Tensor,
    /// Gradient with respect to the bias, `[C_out]`.
    pub grad_bias: Tensor,
}

/// Computes the backward pass of [`conv2d_forward`].
///
/// `grad_output` must have shape `[N, C_out, OH, OW]`; `forward` is the value
/// returned by the forward pass on the same input, and `geom` must be the
/// geometry used there.
pub fn conv2d_backward_geom(
    grad_output: &Tensor,
    weight: &Tensor,
    input_dims: &[usize],
    forward: &Conv2dForward,
    geom: Conv2dGeom,
) -> Result<Conv2dGrads> {
    let (n, c_in, h, w) = (
        input_dims[0],
        input_dims[1],
        input_dims[2],
        input_dims[3],
    );
    let (c_out, k) = (weight.dims()[0], weight.dims()[2]);
    let (oh, ow) = (forward.oh, forward.ow);
    if grad_output.dims() != [n, c_out, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "conv2d_backward",
            lhs: format!("[{n}, {c_out}, {oh}, {ow}]"),
            rhs: grad_output.shape().to_string(),
        });
    }
    let wmat = weight.reshape(&[c_out, c_in * k * k])?;

    let mut grad_weight = Tensor::zeros(&[c_out, c_in * k * k]);
    let mut grad_bias = Tensor::zeros(&[c_out]);

    let go_len = c_out * oh * ow;
    let gi_len = c_in * h * w;
    // grad_input is fully written sample by sample; pooled uncleared
    // storage is fine.
    let mut grad_input =
        Tensor::from_vec(&[n, c_in, h, w], buffer::take_uninit(n * gi_len))?;

    // Per-sample gradients are independent; compute them across the pool
    // and reduce serially afterwards in ascending sample order, so the
    // floating-point accumulation into dW / db has a fixed order no matter
    // how many threads ran the map.
    let per_sample = engine::parallel_map(n, |s| -> Result<(Tensor, Vec<f32>, Vec<f32>)> {
        let mut god = buffer::take_uninit(go_len);
        god.copy_from_slice(&grad_output.data()[s * go_len..(s + 1) * go_len]);
        let go = Tensor::from_vec(&[c_out, oh * ow], god)?;
        // dW contribution: dY · colᵀ.
        let gw = gemm::matmul_nt(&go, &forward.cols[s])?;
        // db contribution: row sums of dY.
        let mut gb = vec![0.0f32; c_out];
        for (co, g) in gb.iter_mut().enumerate() {
            *g = go.data()[co * oh * ow..(co + 1) * oh * ow].iter().sum();
        }
        // dX slice: dCol = Wᵀ · dY, scattered back through col2im.
        let gcol = gemm::matmul_tn(&wmat, &go)?;
        // col2im accumulates into the slice, so it must start zeroed.
        let mut gi = buffer::take(gi_len);
        col2im_single(gcol.data(), c_in, h, w, geom, oh, ow, &mut gi);
        buffer::recycle(gcol);
        buffer::recycle(go);
        Ok((gw, gb, gi))
    });

    for (s, sample) in per_sample.into_iter().enumerate() {
        let (gw, gb, gi) = sample?;
        grad_weight.add_assign(&gw)?;
        buffer::recycle(gw);
        for (acc, v) in grad_bias.data_mut().iter_mut().zip(gb.iter()) {
            *acc += v;
        }
        grad_input.data_mut()[s * gi_len..(s + 1) * gi_len].copy_from_slice(&gi);
        buffer::give(gi);
    }
    Ok(Conv2dGrads {
        grad_input,
        grad_weight: grad_weight.reshape(&[c_out, c_in, k, k])?,
        grad_bias,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    /// Direct (non-lowered) convolution used as the reference.
    fn conv_ref(input: &Tensor, weight: &Tensor, geom: Conv2dGeom) -> Tensor {
        let (n, c_in, h, w) = (
            input.dims()[0],
            input.dims()[1],
            input.dims()[2],
            input.dims()[3],
        );
        let (c_out, _, k, _) = (
            weight.dims()[0],
            weight.dims()[1],
            weight.dims()[2],
            weight.dims()[3],
        );
        let oh = geom.out_size(h).unwrap();
        let ow = geom.out_size(w).unwrap();
        let mut out = Tensor::zeros(&[n, c_out, oh, ow]);
        for s in 0..n {
            for co in 0..c_out {
                for oy in 0..oh {
                    for ox in 0..ow {
                        let mut acc = 0.0;
                        for ci in 0..c_in {
                            for ky in 0..k {
                                for kx in 0..k {
                                    let iy = (oy * geom.stride + ky) as isize
                                        - geom.padding as isize;
                                    let ix = (ox * geom.stride + kx) as isize
                                        - geom.padding as isize;
                                    if iy < 0
                                        || ix < 0
                                        || iy as usize >= h
                                        || ix as usize >= w
                                    {
                                        continue;
                                    }
                                    acc += input
                                        .at(&[s, ci, iy as usize, ix as usize])
                                        .unwrap()
                                        * weight.at(&[co, ci, ky, kx]).unwrap();
                                }
                            }
                        }
                        out.set(&[s, co, oy, ox], acc).unwrap();
                    }
                }
            }
        }
        out
    }

    #[test]
    fn forward_matches_reference() {
        let mut rng = Rng::new(0);
        for &(stride, padding) in &[(1usize, 1usize), (2, 1), (1, 0)] {
            let geom = Conv2dGeom::new(3, stride, padding).unwrap();
            let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
            let w = Tensor::randn(&[4, 3, 3, 3], 0.5, &mut rng);
            let fast = conv2d_forward(&x, &w, None, geom).unwrap().output;
            let slow = conv_ref(&x, &w, geom);
            assert_eq!(fast.dims(), slow.dims());
            for (a, b) in fast.data().iter().zip(slow.data().iter()) {
                assert!((a - b).abs() < 1e-4, "{a} vs {b}");
            }
        }
    }

    #[test]
    fn bias_is_added_per_channel() {
        let geom = Conv2dGeom::new(1, 1, 0).unwrap();
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        let w = Tensor::zeros(&[2, 1, 1, 1]);
        let b = Tensor::from_vec(&[2], vec![1.5, -2.0]).unwrap();
        let y = conv2d_forward(&x, &w, Some(&b), geom).unwrap().output;
        assert_eq!(y.at(&[0, 0, 0, 0]).unwrap(), 1.5);
        assert_eq!(y.at(&[0, 1, 1, 1]).unwrap(), -2.0);
    }

    #[test]
    fn out_size_math() {
        let g = Conv2dGeom::new(3, 1, 1).unwrap();
        assert_eq!(g.out_size(8).unwrap(), 8);
        let g = Conv2dGeom::new(3, 2, 1).unwrap();
        assert_eq!(g.out_size(8).unwrap(), 4);
        let g = Conv2dGeom::new(2, 2, 0).unwrap();
        assert_eq!(g.out_size(8).unwrap(), 4);
        let g = Conv2dGeom::new(5, 1, 0).unwrap();
        assert!(g.out_size(3).is_err());
    }

    #[test]
    fn rejects_invalid_geometry() {
        assert!(Conv2dGeom::new(0, 1, 0).is_err());
        assert!(Conv2dGeom::new(3, 0, 0).is_err());
    }

    #[test]
    fn forward_and_backward_identical_across_thread_counts() {
        let mut rng = Rng::new(11);
        let geom = Conv2dGeom::new(3, 1, 1).unwrap();
        let x = Tensor::randn(&[6, 3, 8, 8], 1.0, &mut rng);
        let w = Tensor::randn(&[4, 3, 3, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[4], 0.1, &mut rng);

        let run = || {
            let fwd = conv2d_forward(&x, &w, Some(&b), geom).unwrap();
            let ones = Tensor::ones(fwd.output.dims());
            let grads = conv2d_backward_geom(&ones, &w, x.dims(), &fwd, geom).unwrap();
            (fwd.output, grads)
        };
        let (y1, g1) = crate::engine::with_thread_limit(1, run);
        let (y4, g4) = crate::engine::with_thread_limit(4, run);
        assert_eq!(y1.data(), y4.data(), "forward bit-identical");
        assert_eq!(g1.grad_input.data(), g4.grad_input.data());
        assert_eq!(g1.grad_weight.data(), g4.grad_weight.data());
        assert_eq!(g1.grad_bias.data(), g4.grad_bias.data());
    }

    #[test]
    fn backward_matches_numerical_gradient() {
        let mut rng = Rng::new(3);
        let geom = Conv2dGeom::new(3, 1, 1).unwrap();
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let w = Tensor::randn(&[3, 2, 3, 3], 0.5, &mut rng);
        let b = Tensor::randn(&[3], 0.1, &mut rng);

        // Loss = sum(output); analytic gradients via backward with dY = 1.
        let fwd = conv2d_forward(&x, &w, Some(&b), geom).unwrap();
        let ones = Tensor::ones(fwd.output.dims());
        let grads = conv2d_backward_geom(&ones, &w, x.dims(), &fwd, geom).unwrap();

        let eps = 1e-2f32;
        // Check a sample of weight coordinates numerically.
        for &flat in &[0usize, 5, 17, 31, 53] {
            let mut wp = w.clone();
            wp.data_mut()[flat] += eps;
            let mut wm = w.clone();
            wm.data_mut()[flat] -= eps;
            let lp = conv2d_forward(&x, &wp, Some(&b), geom).unwrap().output.sum();
            let lm = conv2d_forward(&x, &wm, Some(&b), geom).unwrap().output.sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.grad_weight.data()[flat];
            assert!((num - ana).abs() < 0.05, "dW[{flat}]: {num} vs {ana}");
        }
        // Input gradient check.
        for &flat in &[0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let lp = conv2d_forward(&xp, &w, Some(&b), geom).unwrap().output.sum();
            let lm = conv2d_forward(&xm, &w, Some(&b), geom).unwrap().output.sum();
            let num = (lp - lm) / (2.0 * eps);
            let ana = grads.grad_input.data()[flat];
            assert!((num - ana).abs() < 0.05, "dX[{flat}]: {num} vs {ana}");
        }
        // Bias gradient is the number of output pixels per channel.
        let expect = (fwd.oh * fwd.ow) as f32;
        for &g in grads.grad_bias.data() {
            assert!((g - expect).abs() < 1e-3);
        }
    }
}
