//! Size-bucketed buffer pool for `f32` scratch and tensor storage.
//!
//! Fine-tuning a candidate runs thousands of forward/backward passes, and
//! every one of them used to allocate fresh `Vec<f32>`s for GEMM packing
//! panels, im2col columns, and layer outputs. The pool below recycles
//! those buffers: [`take`]/[`take_uninit`] check a size-bucketed free list
//! before falling back to the allocator, and [`give`] (or
//! [`recycle`] for tensors) returns storage for reuse. In steady state a
//! fine-tuning epoch checks out the same few dozen buffers every
//! iteration and performs near-zero heap allocation.
//!
//! Buckets are powers of two: bucket `i` holds vectors whose *capacity*
//! lies in `[2^i, 2^(i+1))`. A request of `len` looks in bucket
//! `ceil(log2 len)`, whose entries are guaranteed to have
//! `capacity >= len`. Each bucket is its own mutex-guarded stack, capped
//! at [`MAX_PER_BUCKET`] entries and [`MAX_POOL_BYTES`] pooled bytes
//! overall, so a burst of unusually-shaped candidates cannot pin
//! unbounded memory.
//!
//! The pool is on by default and disabled with `GMORPH_POOL=0` (tests can
//! override programmatically via [`set_enabled`]). While disabled, every
//! call degrades to the plain allocator and `give` simply drops — the
//! pre-pool behaviour, preserved bit-for-bit.
//!
//! Telemetry: `pool.hit` / `pool.miss` counters and a
//! `pool.recycled_bytes` histogram feed the end-of-run metrics table, so
//! the hit rate of a run is visible with `--trace`.

use crate::tensor::Tensor;
use std::sync::atomic::{AtomicI8, AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of size buckets (enough for capacities up to 2^47 floats).
const NBUCKETS: usize = 48;
/// Maximum vectors retained per bucket.
const MAX_PER_BUCKET: usize = 32;
/// Maximum total bytes retained across all buckets (256 MiB).
const MAX_POOL_BYTES: usize = 256 << 20;
/// Buffers below this length are not worth pooling (allocator fast path
/// beats a mutex round-trip).
const MIN_POOL_LEN: usize = 256;

static BUCKETS: [Mutex<Vec<Vec<f32>>>; NBUCKETS] =
    [const { Mutex::new(Vec::new()) }; NBUCKETS];
static POOLED_BYTES: AtomicUsize = AtomicUsize::new(0);

/// OOM guard: bytes served by [`take`]/[`take_uninit`] since the last
/// [`reset_served_bytes`], and the optional budget they are checked
/// against. `usize::MAX` means "no budget" — the accounting adds are
/// skipped entirely so the default hot path is unchanged.
static SERVED_BYTES: AtomicUsize = AtomicUsize::new(0);
static BYTE_BUDGET: AtomicUsize = AtomicUsize::new(usize::MAX);

#[inline]
fn note_served(len: usize) {
    if BYTE_BUDGET.load(Ordering::Relaxed) != usize::MAX {
        SERVED_BYTES.fetch_add(len * 4, Ordering::Relaxed);
    }
}

/// Installs (or clears, with `None`) the per-evaluation byte budget the
/// supervisor's OOM guard checks. Process-global, like the pool itself:
/// intended for the sequential search loop, where the supervisor resets
/// the counter before each candidate attempt.
pub fn set_byte_budget(budget: Option<usize>) {
    BYTE_BUDGET.store(budget.unwrap_or(usize::MAX), Ordering::Relaxed);
}

/// The currently-installed OOM-guard budget, if any.
pub fn byte_budget() -> Option<usize> {
    match BYTE_BUDGET.load(Ordering::Relaxed) {
        usize::MAX => None,
        b => Some(b),
    }
}

/// Zeroes the served-bytes counter (call at the start of an attempt).
pub fn reset_served_bytes() {
    SERVED_BYTES.store(0, Ordering::Relaxed);
}

/// Bytes served by the pool since the last [`reset_served_bytes`]. Only
/// accounted while a budget is installed.
pub fn served_bytes() -> usize {
    SERVED_BYTES.load(Ordering::Relaxed)
}

/// Returns `Some((served, budget))` when the installed budget is blown.
pub fn budget_exceeded() -> Option<(usize, usize)> {
    let budget = byte_budget()?;
    let served = served_bytes();
    (served > budget).then_some((served, budget))
}

/// Tri-state enable override: -1 unset (consult env), 0 off, 1 on.
static ENABLED: AtomicI8 = AtomicI8::new(-1);

fn env_enabled() -> bool {
    match std::env::var("GMORPH_POOL") {
        Ok(v) => !matches!(v.trim(), "0" | "off" | "false" | ""),
        Err(_) => true,
    }
}

/// Whether the pool is active. `GMORPH_POOL=0` disables it; the result is
/// cached after the first call.
pub fn enabled() -> bool {
    match ENABLED.load(Ordering::Relaxed) {
        -1 => {
            let on = env_enabled();
            // Racing initializers read the same env, so last-write-wins
            // stores the same value.
            ENABLED.store(on as i8, Ordering::Relaxed);
            on
        }
        0 => false,
        _ => true,
    }
}

/// Programmatic override of the `GMORPH_POOL` toggle (`None` re-reads the
/// environment on next use). Intended for tests and benchmarks.
pub fn set_enabled(on: Option<bool>) {
    ENABLED.store(on.map(|b| b as i8).unwrap_or(-1), Ordering::Relaxed);
    if on != Some(true) {
        clear();
    }
}

/// Drops every pooled buffer.
pub fn clear() {
    for b in &BUCKETS {
        b.lock().unwrap_or_else(|p| p.into_inner()).clear();
    }
    POOLED_BYTES.store(0, Ordering::Relaxed);
}

/// Bucket that can *serve* a request of `len`: every vector stored there
/// has capacity `>= len`.
fn take_bucket(len: usize) -> usize {
    (usize::BITS - (len.max(1) - 1).leading_zeros()) as usize
}

/// Bucket a returned vector of capacity `cap` belongs in: the largest `i`
/// with `2^i <= cap`.
fn give_bucket(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

fn checkout(len: usize) -> Option<Vec<f32>> {
    let bi = take_bucket(len);
    if bi >= NBUCKETS {
        return None;
    }
    let mut bucket = BUCKETS[bi].lock().unwrap_or_else(|p| p.into_inner());
    let buf = bucket.pop()?;
    debug_assert!(buf.capacity() >= len);
    POOLED_BYTES.fetch_sub(buf.capacity() * 4, Ordering::Relaxed);
    Some(buf)
}

/// Checks out a zero-filled buffer of exactly `len` elements.
///
/// Use for accumulation targets (GEMM output, gradient sums) that assume
/// zero-initialized storage.
pub fn take(len: usize) -> Vec<f32> {
    note_served(len);
    if !enabled() || len < MIN_POOL_LEN {
        return vec![0.0; len];
    }
    match checkout(len) {
        Some(mut buf) => {
            gmorph_telemetry::counter!("pool.hit");
            gmorph_telemetry::hist!("pool.recycled_bytes", (len * 4) as f64);
            buf.clear();
            buf.resize(len, 0.0);
            buf
        }
        None => {
            gmorph_telemetry::counter!("pool.miss");
            vec![0.0; len]
        }
    }
}

/// Checks out a buffer of exactly `len` elements with *unspecified*
/// contents (recycled data is not cleared).
///
/// Only for callers that overwrite every element before reading — packing
/// buffers and im2col scratch qualify.
pub fn take_uninit(len: usize) -> Vec<f32> {
    note_served(len);
    if !enabled() || len < MIN_POOL_LEN {
        return vec![0.0; len];
    }
    match checkout(len) {
        Some(mut buf) => {
            gmorph_telemetry::counter!("pool.hit");
            gmorph_telemetry::hist!("pool.recycled_bytes", (len * 4) as f64);
            // Adjust the length without touching contents below it.
            if buf.len() < len {
                buf.resize(len, 0.0);
            } else {
                buf.truncate(len);
            }
            buf
        }
        None => {
            gmorph_telemetry::counter!("pool.miss");
            vec![0.0; len]
        }
    }
}

/// Returns a buffer to the pool for reuse. Drops it instead when the pool
/// is disabled, the buffer is tiny, or the bucket/byte caps are reached.
pub fn give(buf: Vec<f32>) {
    if !enabled() {
        return;
    }
    let cap = buf.capacity();
    if cap < MIN_POOL_LEN {
        return;
    }
    let bi = give_bucket(cap);
    if bi >= NBUCKETS {
        return;
    }
    if POOLED_BYTES.load(Ordering::Relaxed) + cap * 4 > MAX_POOL_BYTES {
        return;
    }
    let mut bucket = BUCKETS[bi].lock().unwrap_or_else(|p| p.into_inner());
    if bucket.len() >= MAX_PER_BUCKET {
        return;
    }
    POOLED_BYTES.fetch_add(cap * 4, Ordering::Relaxed);
    bucket.push(buf);
}

/// Recycles a tensor's storage into the pool.
///
/// The hot-loop pattern: a layer replacing last iteration's cached
/// activations recycles the old tensors, and the next forward's [`take`]
/// finds them instantly.
pub fn recycle(t: Tensor) {
    give(t.into_data());
}

/// Bytes currently held in the pool's free lists.
pub fn pooled_bytes() -> usize {
    POOLED_BYTES.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    // The pool is process-global; tests that depend on exclusive pool
    // contents serialize on this lock.
    static TEST_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn take_returns_zeroed_buffer_of_exact_len() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(Some(true));
        let mut b = take(1000);
        assert_eq!(b.len(), 1000);
        assert!(b.iter().all(|&v| v == 0.0));
        b.iter_mut().for_each(|v| *v = 7.0);
        give(b);
        // The recycled buffer must come back zeroed.
        let b2 = take(1000);
        assert_eq!(b2.len(), 1000);
        assert!(b2.iter().all(|&v| v == 0.0));
        set_enabled(None);
        clear();
    }

    #[test]
    fn take_uninit_reuses_capacity_without_clearing() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(Some(true));
        clear();
        let mut b = take(512);
        let cap = b.capacity();
        b.iter_mut().for_each(|v| *v = 3.0);
        give(b);
        let b2 = take_uninit(512);
        assert_eq!(b2.len(), 512);
        assert_eq!(b2.capacity(), cap, "same buffer came back");
        set_enabled(None);
        clear();
    }

    #[test]
    fn smaller_requests_reuse_larger_buffers() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(Some(true));
        clear();
        give(Vec::with_capacity(2048));
        let b = take(1500); // bucket ceil(log2 1500) = 11 -> cap 2048 entry
        assert_eq!(b.len(), 1500);
        assert!(b.capacity() >= 2048);
        set_enabled(None);
        clear();
    }

    #[test]
    fn disabled_pool_allocates_and_drops() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(Some(false));
        let b = take(4096);
        assert_eq!(b.len(), 4096);
        give(b);
        assert_eq!(pooled_bytes(), 0, "disabled pool retains nothing");
        set_enabled(None);
        clear();
    }

    #[test]
    fn byte_accounting_tracks_checkin_checkout() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(Some(true));
        clear();
        let b = take(1024);
        let cap = b.capacity();
        give(b);
        assert_eq!(pooled_bytes(), cap * 4);
        let _b = take(1024);
        assert_eq!(pooled_bytes(), 0);
        set_enabled(None);
        clear();
    }

    #[test]
    fn byte_budget_guard_trips_only_when_installed() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(Some(true));
        clear();
        // No budget: served bytes are not even accounted.
        set_byte_budget(None);
        reset_served_bytes();
        give(take(4096));
        assert_eq!(served_bytes(), 0);
        assert_eq!(budget_exceeded(), None);
        // Generous budget: accounting is live, guard stays quiet. Other
        // tests' concurrent take() calls may also be counted while our
        // budget is installed, so assertions are lower bounds.
        set_byte_budget(Some(1 << 40));
        reset_served_bytes();
        give(take(1024));
        assert!(served_bytes() >= 4096);
        assert_eq!(budget_exceeded(), None);
        // Tiny budget: the next allocation must trip the guard.
        set_byte_budget(Some(1));
        give(take(2048));
        let (served, budget) = budget_exceeded().expect("guard trips");
        assert!(served >= 8192 && budget == 1);
        set_byte_budget(None);
        set_enabled(None);
        clear();
    }

    #[test]
    fn recycle_pools_tensor_storage() {
        let _g = TEST_LOCK.lock().unwrap_or_else(|p| p.into_inner());
        set_enabled(Some(true));
        clear();
        let t = Tensor::zeros(&[32, 32]);
        recycle(t);
        assert!(pooled_bytes() >= 32 * 32 * 4);
        set_enabled(None);
        clear();
    }
}
