//! Deterministic random number utilities.
//!
//! Every stochastic component of the reproduction (weight init, data
//! synthesis, mutation sampling, simulated annealing) draws from an [`Rng`]
//! seeded from the experiment configuration, so runs are exactly
//! reproducible. The paper notes its search "introduces randomness" and
//! recommends multiple runs; we make the randomness controllable instead.

use rand::rngs::StdRng;
use rand::{Rng as _, SeedableRng};

/// A seeded random number generator with the distributions we need.
///
/// # Examples
///
/// ```
/// use gmorph_tensor::rng::Rng;
///
/// let mut a = Rng::new(1);
/// let mut b = Rng::new(1);
/// assert_eq!(a.uniform(0.0, 1.0), b.uniform(0.0, 1.0));
/// ```
#[derive(Debug, Clone)]
pub struct Rng {
    inner: StdRng,
    /// Cached second output of the Box-Muller transform.
    spare_normal: Option<f32>,
}

/// A complete, serializable snapshot of an [`Rng`]'s state.
///
/// Restoring from a snapshot continues the random stream bit-exactly —
/// including the Box-Muller spare normal, which lives outside the
/// underlying ChaCha12 generator. This is what makes checkpoint/resume of
/// the search deterministic.
#[derive(Debug, Clone, PartialEq)]
pub struct RngState {
    /// ChaCha12 key words.
    pub key: [u32; 8],
    /// ChaCha12 64-bit block counter.
    pub counter: u64,
    /// Buffered keystream block.
    pub buf: [u32; 16],
    /// Read cursor into `buf` (16 = exhausted).
    pub index: usize,
    /// Cached second Box-Muller output, if any.
    pub spare_normal: Option<f32>,
}

impl Rng {
    /// Creates a generator from a 64-bit seed.
    pub fn new(seed: u64) -> Self {
        Rng {
            inner: StdRng::seed_from_u64(seed),
            spare_normal: None,
        }
    }

    /// Derives an independent child generator.
    ///
    /// Used to give each subsystem (data, init, search) its own stream so
    /// that adding draws in one place does not perturb the others.
    pub fn fork(&mut self, salt: u64) -> Rng {
        let seed = self.inner.gen::<u64>() ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
        Rng::new(seed)
    }

    /// Uniform sample from `[lo, hi)`.
    pub fn uniform(&mut self, lo: f32, hi: f32) -> f32 {
        lo + (hi - lo) * self.inner.gen::<f32>()
    }

    /// Uniform sample from `0..n`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: usize) -> usize {
        assert!(n > 0, "below(0) is undefined");
        self.inner.gen_range(0..n)
    }

    /// Standard normal sample via the Box-Muller transform.
    pub fn normal(&mut self) -> f32 {
        if let Some(z) = self.spare_normal.take() {
            return z;
        }
        // Box-Muller: two uniforms -> two independent normals.
        let u1: f32 = self.inner.gen::<f32>().max(1e-12);
        let u2: f32 = self.inner.gen::<f32>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.spare_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Bernoulli sample with probability `p` of `true`.
    pub fn coin(&mut self, p: f32) -> bool {
        self.inner.gen::<f32>() < p
    }

    /// Fisher-Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, items: &mut [T]) {
        for i in (1..items.len()).rev() {
            let j = self.inner.gen_range(0..=i);
            items.swap(i, j);
        }
    }

    /// Chooses a reference to a random element, or `None` if empty.
    pub fn choose<'a, T>(&mut self, items: &'a [T]) -> Option<&'a T> {
        if items.is_empty() {
            None
        } else {
            Some(&items[self.below(items.len())])
        }
    }

    /// Samples `k` distinct indices from `0..n` (k clamped to n).
    pub fn sample_indices(&mut self, n: usize, k: usize) -> Vec<usize> {
        let mut ix: Vec<usize> = (0..n).collect();
        self.shuffle(&mut ix);
        ix.truncate(k.min(n));
        ix
    }

    /// Captures the full generator state for checkpointing.
    pub fn state(&self) -> RngState {
        let (key, counter, buf, index) = self.inner.state();
        RngState {
            key,
            counter,
            buf,
            index,
            spare_normal: self.spare_normal,
        }
    }

    /// Rebuilds a generator that continues the stream of [`Rng::state`]
    /// bit-exactly.
    pub fn restore(state: &RngState) -> Self {
        Rng {
            inner: StdRng::from_state(state.key, state.counter, state.buf, state.index),
            spare_normal: state.spare_normal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = Rng::new(99);
        let mut b = Rng::new(99);
        for _ in 0..100 {
            assert_eq!(a.normal().to_bits(), b.normal().to_bits());
            assert_eq!(a.below(17), b.below(17));
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = Rng::new(1);
        let mut b = Rng::new(2);
        let same = (0..32).filter(|_| a.below(1000) == b.below(1000)).count();
        assert!(same < 8);
    }

    #[test]
    fn fork_is_independent() {
        let mut parent = Rng::new(5);
        let mut c1 = parent.fork(1);
        let mut c2 = parent.fork(2);
        assert_ne!(c1.below(1_000_000), c2.below(1_000_000));
    }

    #[test]
    fn uniform_range() {
        let mut rng = Rng::new(3);
        for _ in 0..1000 {
            let x = rng.uniform(-2.0, 3.0);
            assert!((-2.0..3.0).contains(&x));
        }
    }

    #[test]
    fn normal_moments() {
        let mut rng = Rng::new(11);
        let xs: Vec<f32> = (0..20_000).map(|_| rng.normal()).collect();
        let mean = xs.iter().sum::<f32>() / xs.len() as f32;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / xs.len() as f32;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut rng = Rng::new(4);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn sample_indices_distinct() {
        let mut rng = Rng::new(8);
        let ix = rng.sample_indices(10, 5);
        assert_eq!(ix.len(), 5);
        let mut s = ix.clone();
        s.sort_unstable();
        s.dedup();
        assert_eq!(s.len(), 5);
        // k > n clamps.
        assert_eq!(rng.sample_indices(3, 10).len(), 3);
    }

    #[test]
    fn state_snapshot_resumes_bit_exactly() {
        let mut rng = Rng::new(1234);
        // Advance through a mix of draws, leaving a spare normal cached.
        for _ in 0..37 {
            rng.normal();
            rng.below(100);
            rng.uniform(-1.0, 1.0);
        }
        // 37 normal() calls so far: odd count leaves a cached spare.
        let snap = rng.state();
        assert!(snap.spare_normal.is_some());
        let mut resumed = Rng::restore(&snap);
        for _ in 0..200 {
            assert_eq!(rng.normal().to_bits(), resumed.normal().to_bits());
            assert_eq!(rng.below(97), resumed.below(97));
            assert_eq!(
                rng.uniform(0.0, 5.0).to_bits(),
                resumed.uniform(0.0, 5.0).to_bits()
            );
            assert_eq!(rng.coin(0.4), resumed.coin(0.4));
        }
        let mut v1: Vec<usize> = (0..20).collect();
        let mut v2 = v1.clone();
        rng.shuffle(&mut v1);
        resumed.shuffle(&mut v2);
        assert_eq!(v1, v2);
    }

    #[test]
    fn coin_probability() {
        let mut rng = Rng::new(21);
        let heads = (0..10_000).filter(|_| rng.coin(0.3)).count();
        let p = heads as f32 / 10_000.0;
        assert!((p - 0.3).abs() < 0.03, "p {p}");
    }
}
