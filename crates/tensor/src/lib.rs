//! Minimal CPU tensor library underpinning the GMorph reproduction.
//!
//! The paper's artifact runs on PyTorch; this crate is the from-scratch
//! substitute. It provides exactly the primitives the rest of the stack
//! needs to *train* (not just run) the computation blocks GMorph mutates:
//!
//! - [`Shape`] / [`Tensor`]: dense row-major `f32` tensors with shape math,
//! - [`gemm`]: blocked matrix multiplication (the hot path of every layer),
//! - [`conv`]: im2col-based 2D convolution with backward passes,
//! - [`pool`]: max/avg pooling with backward passes,
//! - [`interp`]: nearest/bilinear resizing (the re-scale operator inserted
//!   between shared features of mismatched shapes, §4.1 of the paper),
//! - [`ops`]: activations, softmax, and reductions,
//! - [`rng`]: deterministic seeded random number utilities,
//! - [`serialize`]: a tiny binary format for weight caching,
//! - [`checkpoint`]: a versioned, checksummed, atomically-written envelope
//!   for crash-safe snapshots of long-running jobs,
//! - [`engine`]: the shared worker pool that kernels dispatch onto.
//!
//! Hot kernels (GEMM, convolution, pooling, large elementwise ops) run on a
//! process-wide worker pool sized by `GMORPH_THREADS` (see [`engine`]).
//! Work decomposition depends only on problem shape and every reduction has
//! a fixed order, so results are bit-identical across thread counts.

pub mod buffer;
pub mod checkpoint;
pub mod conv;
pub mod engine;
pub mod error;
pub mod gemm;
pub mod interp;
pub mod ops;
pub mod pool;
pub mod rng;
pub mod serialize;
pub mod shape;
pub mod tensor;

pub use error::{FailureKind, FaultKind, FaultSpec, GmorphError};
pub use shape::Shape;
pub use tensor::Tensor;

use std::fmt;

/// Errors produced by tensor operations.
///
/// Shape mismatches are programming errors in most deep-learning code, but
/// GMorph *generates* graphs programmatically, so shape failures must be
/// recoverable: a bad mutation should be rejected, not abort the search.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TensorError {
    /// Two shapes that were required to match did not.
    ShapeMismatch {
        /// Context string naming the operation that failed.
        op: &'static str,
        /// Textual rendering of the left-hand shape.
        lhs: String,
        /// Textual rendering of the right-hand shape.
        rhs: String,
    },
    /// A tensor had the wrong rank for an operation.
    RankMismatch {
        /// Context string naming the operation that failed.
        op: &'static str,
        /// Expected rank.
        expected: usize,
        /// Actual rank.
        actual: usize,
    },
    /// An index was out of bounds.
    OutOfBounds {
        /// Context string naming the operation that failed.
        op: &'static str,
        /// The offending index.
        index: usize,
        /// The bound it violated.
        bound: usize,
    },
    /// An operation received an invalid argument (zero-sized dim, etc).
    InvalidArgument {
        /// Context string naming the operation that failed.
        op: &'static str,
        /// Human-readable description of the problem.
        msg: String,
    },
    /// Serialization / deserialization failure.
    Io(String),
    /// A classified evaluation failure (see [`error::FailureKind`]): caught
    /// panics, numeric-health violations, deadline and OOM-guard trips. The
    /// classification rides the ordinary `Result` plumbing so the search
    /// supervisor can decide retry vs quarantine without new signatures.
    Failed {
        /// Failure class.
        kind: error::FailureKind,
        /// Context string naming the operation that failed.
        op: &'static str,
        /// Human-readable description of the failure.
        msg: String,
    },
}

impl fmt::Display for TensorError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TensorError::ShapeMismatch { op, lhs, rhs } => {
                write!(f, "{op}: shape mismatch between {lhs} and {rhs}")
            }
            TensorError::RankMismatch {
                op,
                expected,
                actual,
            } => {
                write!(f, "{op}: expected rank {expected}, got {actual}")
            }
            TensorError::OutOfBounds { op, index, bound } => {
                write!(f, "{op}: index {index} out of bounds ({bound})")
            }
            TensorError::InvalidArgument { op, msg } => write!(f, "{op}: {msg}"),
            TensorError::Io(msg) => write!(f, "io error: {msg}"),
            TensorError::Failed { kind, op, msg } => {
                write!(f, "{op}: [{}] {msg}", kind.as_str())
            }
        }
    }
}

impl std::error::Error for TensorError {}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, TensorError>;
