//! Cache-blocked, threaded GEMM kernels.
//!
//! Matrix multiplication dominates the cost of every layer in this stack
//! (convolution lowers to GEMM via im2col, attention and linear layers are
//! GEMMs outright). The kernels here follow the classic BLIS decomposition:
//! the operand matrices are cut into `MC x KC` / `KC x NR` blocks that are
//! *packed* into contiguous buffers sized for cache residency, and an
//! `MR x NR` register-tiled microkernel runs over the packed panels. The
//! packed inner loops are plain slice iteration over fixed-width strips,
//! which the compiler auto-vectorizes.
//!
//! Row panels of the output are dispatched across the process-wide worker
//! pool ([`crate::engine`]). Each output element is written by exactly one
//! panel and accumulated in a fixed order (`KC` blocks ascending, `p`
//! ascending within a block), so results are bit-identical for any thread
//! count.
//!
//! Three variants cover forward and backward passes without materializing
//! transposes:
//!
//! - [`matmul`]: `C = A · B`
//! - [`matmul_nt`]: `C = A · Bᵀ` (e.g. grad wrt input of a linear layer)
//! - [`matmul_tn`]: `C = Aᵀ · B` (e.g. grad wrt weights of a linear layer)
//!
//! The seed project's single-threaded loop-order kernels survive in
//! [`naive`] as a benchmark baseline and test reference.

use crate::buffer;
use crate::engine;
use crate::ops::Activation;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Microkernel tile height (rows of `C` per register tile).
const MR: usize = 4;
/// Microkernel tile width (columns of `C` per register tile).
const NR: usize = 8;
/// Row-panel height: rows of `A` packed per panel (L2-resident with KC).
const MC: usize = 64;
/// Depth block: columns of `A` / rows of `B` per packed block (L1/L2).
const KC: usize = 256;

/// Below this `m * k * n` product the packing overhead outweighs the win;
/// use the simple loop kernels instead.
const SMALL: usize = 32 * 32 * 32;

/// Below this `m * k * n` product, row panels run serially even when the
/// pool has threads: dispatch overhead would dominate.
const PAR_MIN: usize = 1 << 18;

/// How an operand matrix is stored relative to its logical orientation.
#[derive(Clone, Copy, PartialEq, Eq)]
enum Layout {
    /// Stored exactly as the logical matrix.
    Normal,
    /// Stored as the transpose of the logical matrix.
    Transposed,
}

/// Fused epilogue: optional `[n]` bias plus activation, applied while the
/// output rows are still cache-hot instead of as separate passes.
///
/// The scalar sequence is `act(v + bias[j])` — exactly what
/// [`add_bias_rows`] followed by an elementwise activation computes — so
/// fused and unfused results are bit-identical.
#[derive(Clone, Copy, Default)]
struct Epilogue<'a> {
    bias: Option<&'a [f32]>,
    act: Activation,
}

impl Epilogue<'_> {
    fn is_noop(&self) -> bool {
        self.bias.is_none() && self.act == Activation::None
    }

    /// Applies the epilogue to a chunk of whole output rows (`[rows, n]`).
    fn apply(&self, rows: &mut [f32], n: usize) {
        if self.is_noop() {
            return;
        }
        // Dispatch on the activation once, outside the element loop, so
        // each arm compiles to a tight monomorphic pass — same scalar
        // sequence as the separate bias/activation passes, still
        // bit-identical.
        fn pass(rows: &mut [f32], n: usize, bias: Option<&[f32]>, f: impl Fn(f32) -> f32) {
            for row in rows.chunks_mut(n) {
                match bias {
                    Some(b) => {
                        for (v, &bv) in row.iter_mut().zip(b.iter()) {
                            *v = f(*v + bv);
                        }
                    }
                    None => {
                        for v in row.iter_mut() {
                            *v = f(*v);
                        }
                    }
                }
            }
        }
        match self.act {
            Activation::None => pass(rows, n, self.bias, |v| v),
            Activation::Relu => pass(rows, n, self.bias, |v| Activation::Relu.apply(v)),
            Activation::Gelu => pass(rows, n, self.bias, |v| Activation::Gelu.apply(v)),
        }
    }
}

fn check_rank2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.shape().rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Packs the `kb x n` slice of logical `B` starting at depth `p0` into
/// `NR`-wide column strips: strip `j` holds columns `j*NR ..`, laid out
/// `p`-major (`buf[strip_base + p*NR + c]`). Columns past `n` are zero.
fn pack_b(bd: &[f32], layout: Layout, k: usize, n: usize, p0: usize, kb: usize, buf: &mut [f32]) {
    let n_strips = n.div_ceil(NR);
    for js in 0..n_strips {
        let j0 = js * NR;
        let cols = NR.min(n - j0);
        let strip = &mut buf[js * kb * NR..(js + 1) * kb * NR];
        match layout {
            Layout::Normal => {
                // B stored [k, n].
                for p in 0..kb {
                    let src = &bd[(p0 + p) * n + j0..(p0 + p) * n + j0 + cols];
                    let dst = &mut strip[p * NR..p * NR + NR];
                    dst[..cols].copy_from_slice(src);
                    dst[cols..].fill(0.0);
                }
            }
            Layout::Transposed => {
                // B stored [n, k]; logical element (p, j) is bd[j*k + p].
                for p in 0..kb {
                    let dst = &mut strip[p * NR..p * NR + NR];
                    for (c, d) in dst.iter_mut().enumerate() {
                        *d = if c < cols { bd[(j0 + c) * k + p0 + p] } else { 0.0 };
                    }
                }
            }
        }
    }
}

/// Packs the `mb x kb` slice of logical `A` (rows `i0..`, depths `p0..`)
/// into `MR`-tall row strips, `p`-major within a strip
/// (`buf[strip_base + p*MR + r]`). Rows past `mb` are zero.
#[allow(clippy::too_many_arguments)]
fn pack_a(
    ad: &[f32],
    layout: Layout,
    m: usize,
    k: usize,
    i0: usize,
    mb: usize,
    p0: usize,
    kb: usize,
    buf: &mut [f32],
) {
    let m_strips = mb.div_ceil(MR);
    for is in 0..m_strips {
        let r0 = is * MR;
        let rows = MR.min(mb - r0);
        let strip = &mut buf[is * kb * MR..(is + 1) * kb * MR];
        match layout {
            Layout::Normal => {
                // A stored [m, k].
                for p in 0..kb {
                    let dst = &mut strip[p * MR..p * MR + MR];
                    for (r, d) in dst.iter_mut().enumerate() {
                        *d = if r < rows {
                            ad[(i0 + r0 + r) * k + p0 + p]
                        } else {
                            0.0
                        };
                    }
                }
            }
            Layout::Transposed => {
                // A stored [k, m]; logical element (i, p) is ad[p*m + i].
                for p in 0..kb {
                    let src_row = (p0 + p) * m + i0 + r0;
                    let dst = &mut strip[p * MR..p * MR + MR];
                    for (r, d) in dst.iter_mut().enumerate() {
                        *d = if r < rows { ad[src_row + r] } else { 0.0 };
                    }
                }
            }
        }
    }
}

/// The register-tiled microkernel: accumulates the `MR x NR` product of one
/// packed `A` strip and one packed `B` strip over `kb` depth steps into
/// `acc`. Fixed-width inner loops auto-vectorize.
#[inline]
fn microkernel(apack: &[f32], bpack: &[f32], kb: usize, acc: &mut [[f32; NR]; MR]) {
    for p in 0..kb {
        let av = &apack[p * MR..p * MR + MR];
        let bv = &bpack[p * NR..p * NR + NR];
        for r in 0..MR {
            let a = av[r];
            let row = &mut acc[r];
            for c in 0..NR {
                row[c] += a * bv[c];
            }
        }
    }
}

/// Shared blocked driver: `C = op_a(A) · op_b(B)` with `C: [m, n]`.
///
/// Packs all of `B` up front (every `KC` block, `NR` strips), then runs row
/// panels of `MC` output rows — in parallel when the product is large
/// enough. Each panel owns a disjoint row range of `out`, and accumulates
/// its tiles over `KC` blocks in ascending order, so the result does not
/// depend on how panels are scheduled.
#[allow(clippy::too_many_arguments)]
fn gemm_blocked(
    ad: &[f32],
    a_layout: Layout,
    bd: &[f32],
    b_layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
    out: &mut [f32],
) {
    let n_strips = n.div_ceil(NR);
    let k_blocks = k.div_ceil(KC);
    // Packing buffers are fully overwritten by pack_a/pack_b before any
    // read, so recycled contents are fine.
    let apack_len = MC * KC.min(k);

    // Pack B once: block-major, then strip-major. Block b covers depths
    // b*KC .. b*KC+kb and occupies n_strips * kb * NR floats.
    let mut bp = buffer::take_uninit(k_blocks * n_strips * KC * NR);
    let mut block_off = vec![0usize; k_blocks + 1];
    {
        let mut off = 0usize;
        for (b, boff) in block_off.iter_mut().enumerate().take(k_blocks) {
            *boff = off;
            let p0 = b * KC;
            let kb = KC.min(k - p0);
            pack_b(bd, b_layout, k, n, p0, kb, &mut bp[off..off + n_strips * kb * NR]);
            off += n_strips * kb * NR;
        }
        block_off[k_blocks] = off;
        bp.truncate(off);
    }

    let panel_body = |apack: &mut Vec<f32>, i0: usize, crows: &mut [f32]| {
        let mb = MC.min(m - i0);
        let m_strips = mb.div_ceil(MR);
        for b in 0..k_blocks {
            let p0 = b * KC;
            let kb = KC.min(k - p0);
            apack.resize(m_strips * kb * MR, 0.0);
            pack_a(ad, a_layout, m, k, i0, mb, p0, kb, apack);
            let bblock = &bp[block_off[b]..block_off[b + 1]];
            for is in 0..m_strips {
                let astrip = &apack[is * kb * MR..(is + 1) * kb * MR];
                let rows = MR.min(mb - is * MR);
                for js in 0..n_strips {
                    let bstrip = &bblock[js * kb * NR..(js + 1) * kb * NR];
                    let mut acc = [[0.0f32; NR]; MR];
                    microkernel(astrip, bstrip, kb, &mut acc);
                    let j0 = js * NR;
                    let cols = NR.min(n - j0);
                    for r in 0..rows {
                        let crow =
                            &mut crows[(is * MR + r) * n + j0..(is * MR + r) * n + j0 + cols];
                        for (o, &v) in crow.iter_mut().zip(acc[r].iter()) {
                            *o += v;
                        }
                    }
                }
            }
        }
        // Epilogue while the panel rows are still cache-hot: every output
        // element has its final accumulated value at this point.
        epi.apply(crows, n);
    };

    if m * k * n >= PAR_MIN {
        engine::parallel_chunks_mut(out, MC * n, |panel, crows| {
            let mut apack = buffer::take_uninit(apack_len);
            panel_body(&mut apack, panel * MC, crows);
            buffer::give(apack);
        });
    } else {
        let mut apack = buffer::take_uninit(apack_len);
        for (panel, crows) in out.chunks_mut(MC * n).enumerate() {
            panel_body(&mut apack, panel * MC, crows);
        }
        buffer::give(apack);
    }
    buffer::give(bp);
}

/// Records one GEMM call into the aggregated metrics, keyed by a
/// power-of-two shape bucket so the histogram set stays bounded. Callers
/// pass the `Instant` captured only when telemetry was enabled at entry.
fn record_gemm(m: usize, k: usize, n: usize, start: Option<std::time::Instant>) {
    if let Some(start) = start {
        let bucket = |d: usize| d.max(1).next_power_of_two();
        gmorph_telemetry::counter!("gemm.calls");
        gmorph_telemetry::hist!(
            &format!("gemm.us.{}x{}x{}", bucket(m), bucket(k), bucket(n)),
            start.elapsed().as_micros() as f64
        );
    }
}

/// Shared entry: dispatches to the naive or blocked kernel, drawing the
/// output from the buffer pool and applying the fused epilogue (if any)
/// before the rows leave cache.
#[allow(clippy::too_many_arguments)]
fn gemm_dispatch(
    ad: &[f32],
    a_layout: Layout,
    bd: &[f32],
    b_layout: Layout,
    m: usize,
    k: usize,
    n: usize,
    epi: Epilogue<'_>,
) -> Vec<f32> {
    let mut out = buffer::take(m * n);
    if m * k * n < SMALL {
        match (a_layout, b_layout) {
            (Layout::Normal, Layout::Normal) => naive::matmul_into(ad, bd, m, k, n, &mut out),
            (Layout::Normal, Layout::Transposed) => {
                naive::matmul_nt_into(ad, bd, m, k, n, &mut out)
            }
            (Layout::Transposed, Layout::Normal) => {
                naive::matmul_tn_into(ad, bd, m, k, n, &mut out)
            }
            (Layout::Transposed, Layout::Transposed) => {
                unreachable!("no TT variant is exposed")
            }
        }
        epi.apply(&mut out, n);
    } else {
        gemm_blocked(ad, a_layout, bd, b_layout, m, k, n, epi, &mut out);
    }
    out
}

fn check_bias(bias: Option<&Tensor>, n: usize, op: &'static str) -> Result<()> {
    if let Some(b) = bias {
        if b.shape().rank() != 1 || b.dims()[0] != n {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: format!("[{n}]"),
                rhs: b.shape().to_string(),
            });
        }
    }
    Ok(())
}

/// Computes `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// # Examples
///
/// ```
/// use gmorph_tensor::{Tensor, gemm::matmul};
///
/// let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
/// let c = matmul(&a, &b).unwrap();
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_bias_act(a, b, None, Activation::None)
}

/// Computes `act(A · B + bias)` with the bias-add and activation fused
/// into the output write loop.
///
/// Bit-identical to `matmul` followed by [`add_bias_rows`] and the
/// corresponding elementwise activation, but a single pass over `C`.
pub fn matmul_bias_act(
    a: &Tensor,
    b: &Tensor,
    bias: Option<&Tensor>,
    act: Activation,
) -> Result<Tensor> {
    let start = gmorph_telemetry::enabled().then(std::time::Instant::now);
    let (m, k) = check_rank2(a, "matmul lhs")?;
    let (kb, n) = check_rank2(b, "matmul rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().to_string(),
            rhs: b.shape().to_string(),
        });
    }
    check_bias(bias, n, "matmul bias")?;
    let epi = Epilogue {
        bias: bias.map(|b| b.data()),
        act,
    };
    if !epi.is_noop() {
        gmorph_telemetry::counter!("kernel.fused_dispatch");
    }
    let out = gemm_dispatch(a.data(), Layout::Normal, b.data(), Layout::Normal, m, k, n, epi);
    record_gemm(m, k, n, start);
    Tensor::from_vec(&[m, n], out)
}

/// Computes `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    matmul_nt_bias_act(a, b, None, Activation::None)
}

/// Computes `act(A · Bᵀ + bias)` with the epilogue fused into the output
/// write loop — the shape of a linear layer's inference forward.
pub fn matmul_nt_bias_act(
    a: &Tensor,
    b: &Tensor,
    bias: Option<&Tensor>,
    act: Activation,
) -> Result<Tensor> {
    let start = gmorph_telemetry::enabled().then(std::time::Instant::now);
    let (m, k) = check_rank2(a, "matmul_nt lhs")?;
    let (n, kb) = check_rank2(b, "matmul_nt rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.shape().to_string(),
            rhs: b.shape().to_string(),
        });
    }
    check_bias(bias, n, "matmul_nt bias")?;
    let epi = Epilogue {
        bias: bias.map(|b| b.data()),
        act,
    };
    if !epi.is_noop() {
        gmorph_telemetry::counter!("kernel.fused_dispatch");
    }
    let out = gemm_dispatch(
        a.data(),
        Layout::Normal,
        b.data(),
        Layout::Transposed,
        m,
        k,
        n,
        epi,
    );
    record_gemm(m, k, n, start);
    Tensor::from_vec(&[m, n], out)
}

/// Computes `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let start = gmorph_telemetry::enabled().then(std::time::Instant::now);
    let (k, m) = check_rank2(a, "matmul_tn lhs")?;
    let (kb, n) = check_rank2(b, "matmul_tn rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: a.shape().to_string(),
            rhs: b.shape().to_string(),
        });
    }
    let out = gemm_dispatch(
        a.data(),
        Layout::Transposed,
        b.data(),
        Layout::Normal,
        m,
        k,
        n,
        Epilogue::default(),
    );
    record_gemm(m, k, n, start);
    Tensor::from_vec(&[m, n], out)
}

/// The seed project's single-threaded loop-order kernels.
///
/// Kept as the small-matrix path, the benchmark baseline for the blocked
/// engine, and a structurally independent reference for property tests.
/// Unlike the original seed these do **not** skip zero elements of `A`:
/// the branch broke IEEE semantics (`0 * inf`, `0 * nan`, signed zeros)
/// and defeated vectorization of the inner loop.
pub mod naive {
    use crate::tensor::Tensor;
    use crate::Result;

    /// `C += A · B` in `i-k-j` (axpy) order over raw row-major slices.
    pub(crate) fn matmul_into(ad: &[f32], bd: &[f32], m: usize, k: usize, n: usize, out: &mut [f32]) {
        for i in 0..m {
            let arow = &ad[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (p, &av) in arow.iter().enumerate() {
                let brow = &bd[p * n..(p + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    }

    /// `C += A · Bᵀ` as row-by-row dot products over raw slices.
    pub(crate) fn matmul_nt_into(
        ad: &[f32],
        bd: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
    ) {
        for i in 0..m {
            let arow = &ad[i * k..(i + 1) * k];
            let orow = &mut out[i * n..(i + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                let brow = &bd[j * k..(j + 1) * k];
                let mut acc = 0.0f32;
                for (&x, &y) in arow.iter().zip(brow.iter()) {
                    acc += x * y;
                }
                *o += acc;
            }
        }
    }

    /// `C += Aᵀ · B` as rank-1 updates over raw slices.
    pub(crate) fn matmul_tn_into(
        ad: &[f32],
        bd: &[f32],
        m: usize,
        k: usize,
        n: usize,
        out: &mut [f32],
    ) {
        for p in 0..k {
            let arow = &ad[p * m..(p + 1) * m];
            let brow = &bd[p * n..(p + 1) * n];
            for (i, &av) in arow.iter().enumerate() {
                let orow = &mut out[i * n..(i + 1) * n];
                for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                    *o += av * bv;
                }
            }
        }
    }

    /// Single-threaded `C = A · B` (`A: [m, k]`, `B: [k, n]`).
    pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, k) = super::check_rank2(a, "naive matmul lhs")?;
        let n = super::check_rank2(b, "naive matmul rhs")?.1;
        let mut out = vec![0.0f32; m * n];
        matmul_into(a.data(), b.data(), m, k, n, &mut out);
        Tensor::from_vec(&[m, n], out)
    }

    /// Single-threaded `C = A · Bᵀ` (`A: [m, k]`, `B: [n, k]`).
    pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (m, k) = super::check_rank2(a, "naive matmul_nt lhs")?;
        let n = super::check_rank2(b, "naive matmul_nt rhs")?.0;
        let mut out = vec![0.0f32; m * n];
        matmul_nt_into(a.data(), b.data(), m, k, n, &mut out);
        Tensor::from_vec(&[m, n], out)
    }

    /// Single-threaded `C = Aᵀ · B` (`A: [k, m]`, `B: [k, n]`).
    pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
        let (k, m) = super::check_rank2(a, "naive matmul_tn lhs")?;
        let n = super::check_rank2(b, "naive matmul_tn rhs")?.1;
        let mut out = vec![0.0f32; m * n];
        matmul_tn_into(a.data(), b.data(), m, k, n, &mut out);
        Tensor::from_vec(&[m, n], out)
    }
}

/// Transposes a rank-2 tensor.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = check_rank2(a, "transpose")?;
    let ad = a.data();
    // Every element is written below, so recycled contents are fine.
    let mut out = buffer::take_uninit(m * n);
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(&[n, m], out)
}

/// Adds a `[n]` bias row-wise into a `[m, n]` matrix in place.
pub fn add_bias_rows(a: &mut Tensor, bias: &Tensor) -> Result<()> {
    let (m, n) = check_rank2(a, "add_bias_rows")?;
    if bias.shape().rank() != 1 || bias.dims()[0] != n {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias_rows",
            lhs: a.shape().to_string(),
            rhs: bias.shape().to_string(),
        });
    }
    let bd = bias.data().to_vec();
    let ad = a.data_mut();
    for i in 0..m {
        let row = &mut ad[i * n..(i + 1) * n];
        for (r, &b) in row.iter_mut().zip(bd.iter()) {
            *r += b;
        }
    }
    Ok(())
}

/// Sums a `[m, n]` matrix over rows, producing a `[n]` vector.
pub fn sum_rows(a: &Tensor) -> Result<Tensor> {
    let (m, n) = check_rank2(a, "sum_rows")?;
    let ad = a.data();
    let mut out = vec![0.0f32; n];
    for i in 0..m {
        let row = &ad[i * n..(i + 1) * n];
        for (o, &v) in out.iter_mut().zip(row.iter()) {
            *o += v;
        }
    }
    Tensor::from_vec(&[n], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use proptest::prelude::*;

    /// Naive reference implementation used to validate the kernels.
    fn matmul_ref(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.data()[i * k + p] * b.data()[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(&[m, n], out).unwrap()
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::new(0);
        let a = Tensor::randn(&[3, 3], 1.0, &mut rng);
        let mut id = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            id.set(&[i, i], 1.0).unwrap();
        }
        assert_close(&matmul(&a, &id).unwrap(), &a, 1e-6);
        assert_close(&matmul(&id, &a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn nt_and_tn_match_explicit_transpose() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 6], 1.0, &mut rng);
        let c = Tensor::randn(&[4, 7], 1.0, &mut rng);
        assert_close(
            &matmul_nt(&a, &b).unwrap(),
            &matmul_ref(&a, &transpose(&b).unwrap()),
            1e-4,
        );
        assert_close(
            &matmul_tn(&a, &c).unwrap(),
            &matmul_ref(&transpose(&a).unwrap(), &c),
            1e-4,
        );
    }

    #[test]
    fn blocked_path_matches_reference_past_edges() {
        // Sizes straddling the MR/NR/MC/KC boundaries force the blocked
        // path (product >= SMALL) with ragged edge tiles in every dim.
        let mut rng = Rng::new(7);
        for (m, k, n) in [(65, 33, 17), (33, 70, 40), (130, 37, 9)] {
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            assert_close(&matmul(&a, &b).unwrap(), &matmul_ref(&a, &b), 1e-3);
        }
    }

    #[test]
    fn ieee_semantics_preserved() {
        // The seed kernels skipped a == 0.0 terms, which silently dropped
        // 0 * inf = nan and 0 * nan = nan. The rewrite must propagate them.
        let a = Tensor::from_vec(&[1, 2], vec![0.0, 1.0]).unwrap();
        let b = Tensor::from_vec(&[2, 1], vec![f32::INFINITY, 2.0]).unwrap();
        let c = matmul(&a, &b).unwrap();
        assert!(c.data()[0].is_nan(), "0 * inf must contribute nan");

        let bn = Tensor::from_vec(&[2, 1], vec![f32::NAN, 2.0]).unwrap();
        assert!(matmul(&a, &bn).unwrap().data()[0].is_nan());
    }

    #[test]
    fn results_identical_across_thread_counts() {
        let mut rng = Rng::new(9);
        let a = Tensor::randn(&[130, 70], 1.0, &mut rng);
        let b = Tensor::randn(&[70, 90], 1.0, &mut rng);
        let single = crate::engine::with_thread_limit(1, || matmul(&a, &b).unwrap());
        let multi = crate::engine::with_thread_limit(4, || matmul(&a, &b).unwrap());
        assert_eq!(single.data(), multi.data(), "bit-identical across threads");
    }

    #[test]
    fn bias_and_sum_rows() {
        let mut a = Tensor::from_vec(&[2, 3], vec![1.0; 6]).unwrap();
        let bias = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        add_bias_rows(&mut a, &bias).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0, 4.0, 2.0, 3.0, 4.0]);
        let s = sum_rows(&a).unwrap();
        assert_eq!(s.data(), &[4.0, 6.0, 8.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_close(&a, &tt, 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn matmul_matches_reference(
            m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000
        ) {
            let mut rng = Rng::new(seed);
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let fast = matmul(&a, &b).unwrap();
            let slow = matmul_ref(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data().iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn matmul_is_linear_in_lhs(seed in 0u64..1000) {
            let mut rng = Rng::new(seed);
            let a1 = Tensor::randn(&[3, 4], 1.0, &mut rng);
            let a2 = Tensor::randn(&[3, 4], 1.0, &mut rng);
            let b = Tensor::randn(&[4, 2], 1.0, &mut rng);
            let lhs = matmul(&a1.add(&a2).unwrap(), &b).unwrap();
            let rhs = matmul(&a1, &b).unwrap().add(&matmul(&a2, &b).unwrap()).unwrap();
            for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }
}
