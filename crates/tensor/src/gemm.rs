//! Single-threaded GEMM kernels.
//!
//! Matrix multiplication dominates the cost of every layer in this stack
//! (convolution lowers to GEMM via im2col, attention and linear layers are
//! GEMMs outright). The kernels here use the cache-friendly `i-k-j` loop
//! order so the innermost loop streams both the `b` row and the output row,
//! which the compiler auto-vectorizes.
//!
//! Three variants cover forward and backward passes without materializing
//! transposes:
//!
//! - [`matmul`]: `C = A · B`
//! - [`matmul_nt`]: `C = A · Bᵀ` (e.g. grad wrt input of a linear layer)
//! - [`matmul_tn`]: `C = Aᵀ · B` (e.g. grad wrt weights of a linear layer)

use crate::tensor::Tensor;
use crate::{Result, TensorError};

fn check_rank2(t: &Tensor, op: &'static str) -> Result<(usize, usize)> {
    if t.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 2,
            actual: t.shape().rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1]))
}

/// Computes `C = A · B` for `A: [m, k]`, `B: [k, n]`.
///
/// # Examples
///
/// ```
/// use gmorph_tensor::{Tensor, gemm::matmul};
///
/// let a = Tensor::from_vec(&[2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
/// let b = Tensor::from_vec(&[2, 2], vec![5.0, 6.0, 7.0, 8.0]).unwrap();
/// let c = matmul(&a, &b).unwrap();
/// assert_eq!(c.data(), &[19.0, 22.0, 43.0, 50.0]);
/// ```
pub fn matmul(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a, "matmul lhs")?;
    let (kb, n) = check_rank2(b, "matmul rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul",
            lhs: a.shape().to_string(),
            rhs: b.shape().to_string(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (p, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let brow = &bd[p * n..(p + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// Computes `C = A · Bᵀ` for `A: [m, k]`, `B: [n, k]`.
pub fn matmul_nt(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (m, k) = check_rank2(a, "matmul_nt lhs")?;
    let (n, kb) = check_rank2(b, "matmul_nt rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_nt",
            lhs: a.shape().to_string(),
            rhs: b.shape().to_string(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    for i in 0..m {
        let arow = &ad[i * k..(i + 1) * k];
        let orow = &mut out[i * n..(i + 1) * n];
        for (j, o) in orow.iter_mut().enumerate() {
            let brow = &bd[j * k..(j + 1) * k];
            // Dot product of two contiguous rows: vectorizes well.
            let mut acc = 0.0f32;
            for (&x, &y) in arow.iter().zip(brow.iter()) {
                acc += x * y;
            }
            *o = acc;
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// Computes `C = Aᵀ · B` for `A: [k, m]`, `B: [k, n]`.
pub fn matmul_tn(a: &Tensor, b: &Tensor) -> Result<Tensor> {
    let (k, m) = check_rank2(a, "matmul_tn lhs")?;
    let (kb, n) = check_rank2(b, "matmul_tn rhs")?;
    if k != kb {
        return Err(TensorError::ShapeMismatch {
            op: "matmul_tn",
            lhs: a.shape().to_string(),
            rhs: b.shape().to_string(),
        });
    }
    let mut out = vec![0.0f32; m * n];
    let ad = a.data();
    let bd = b.data();
    // Accumulate rank-1 updates: out += a_row ⊗ b_row for each k.
    for p in 0..k {
        let arow = &ad[p * m..(p + 1) * m];
        let brow = &bd[p * n..(p + 1) * n];
        for (i, &av) in arow.iter().enumerate() {
            if av == 0.0 {
                continue;
            }
            let orow = &mut out[i * n..(i + 1) * n];
            for (o, &bv) in orow.iter_mut().zip(brow.iter()) {
                *o += av * bv;
            }
        }
    }
    Tensor::from_vec(&[m, n], out)
}

/// Transposes a rank-2 tensor.
pub fn transpose(a: &Tensor) -> Result<Tensor> {
    let (m, n) = check_rank2(a, "transpose")?;
    let ad = a.data();
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for j in 0..n {
            out[j * m + i] = ad[i * n + j];
        }
    }
    Tensor::from_vec(&[n, m], out)
}

/// Adds a `[n]` bias row-wise into a `[m, n]` matrix in place.
pub fn add_bias_rows(a: &mut Tensor, bias: &Tensor) -> Result<()> {
    let (m, n) = check_rank2(a, "add_bias_rows")?;
    if bias.shape().rank() != 1 || bias.dims()[0] != n {
        return Err(TensorError::ShapeMismatch {
            op: "add_bias_rows",
            lhs: a.shape().to_string(),
            rhs: bias.shape().to_string(),
        });
    }
    let bd = bias.data().to_vec();
    let ad = a.data_mut();
    for i in 0..m {
        let row = &mut ad[i * n..(i + 1) * n];
        for (r, &b) in row.iter_mut().zip(bd.iter()) {
            *r += b;
        }
    }
    Ok(())
}

/// Sums a `[m, n]` matrix over rows, producing a `[n]` vector.
pub fn sum_rows(a: &Tensor) -> Result<Tensor> {
    let (m, n) = check_rank2(a, "sum_rows")?;
    let ad = a.data();
    let mut out = vec![0.0f32; n];
    for i in 0..m {
        let row = &ad[i * n..(i + 1) * n];
        for (o, &v) in out.iter_mut().zip(row.iter()) {
            *o += v;
        }
    }
    Tensor::from_vec(&[n], out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use proptest::prelude::*;

    /// Naive reference implementation used to validate the kernels.
    fn matmul_ref(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k) = (a.dims()[0], a.dims()[1]);
        let n = b.dims()[1];
        let mut out = vec![0.0f32; m * n];
        for i in 0..m {
            for j in 0..n {
                let mut acc = 0.0;
                for p in 0..k {
                    acc += a.data()[i * k + p] * b.data()[p * n + j];
                }
                out[i * n + j] = acc;
            }
        }
        Tensor::from_vec(&[m, n], out).unwrap()
    }

    fn assert_close(a: &Tensor, b: &Tensor, tol: f32) {
        assert_eq!(a.dims(), b.dims());
        for (x, y) in a.data().iter().zip(b.data().iter()) {
            assert!((x - y).abs() <= tol, "{x} vs {y}");
        }
    }

    #[test]
    fn matmul_identity() {
        let mut rng = Rng::new(0);
        let a = Tensor::randn(&[3, 3], 1.0, &mut rng);
        let mut id = Tensor::zeros(&[3, 3]);
        for i in 0..3 {
            id.set(&[i, i], 1.0).unwrap();
        }
        assert_close(&matmul(&a, &id).unwrap(), &a, 1e-6);
        assert_close(&matmul(&id, &a).unwrap(), &a, 1e-6);
    }

    #[test]
    fn matmul_rejects_bad_shapes() {
        let a = Tensor::zeros(&[2, 3]);
        let b = Tensor::zeros(&[4, 2]);
        assert!(matmul(&a, &b).is_err());
        let v = Tensor::zeros(&[3]);
        assert!(matmul(&a, &v).is_err());
    }

    #[test]
    fn nt_and_tn_match_explicit_transpose() {
        let mut rng = Rng::new(1);
        let a = Tensor::randn(&[4, 6], 1.0, &mut rng);
        let b = Tensor::randn(&[5, 6], 1.0, &mut rng);
        let c = Tensor::randn(&[4, 7], 1.0, &mut rng);
        assert_close(
            &matmul_nt(&a, &b).unwrap(),
            &matmul_ref(&a, &transpose(&b).unwrap()),
            1e-4,
        );
        assert_close(
            &matmul_tn(&a, &c).unwrap(),
            &matmul_ref(&transpose(&a).unwrap(), &c),
            1e-4,
        );
    }

    #[test]
    fn bias_and_sum_rows() {
        let mut a = Tensor::from_vec(&[2, 3], vec![1.0; 6]).unwrap();
        let bias = Tensor::from_vec(&[3], vec![1.0, 2.0, 3.0]).unwrap();
        add_bias_rows(&mut a, &bias).unwrap();
        assert_eq!(a.data(), &[2.0, 3.0, 4.0, 2.0, 3.0, 4.0]);
        let s = sum_rows(&a).unwrap();
        assert_eq!(s.data(), &[4.0, 6.0, 8.0]);
    }

    #[test]
    fn transpose_involution() {
        let mut rng = Rng::new(2);
        let a = Tensor::randn(&[3, 5], 1.0, &mut rng);
        let tt = transpose(&transpose(&a).unwrap()).unwrap();
        assert_close(&a, &tt, 0.0);
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn matmul_matches_reference(
            m in 1usize..6, k in 1usize..6, n in 1usize..6, seed in 0u64..1000
        ) {
            let mut rng = Rng::new(seed);
            let a = Tensor::randn(&[m, k], 1.0, &mut rng);
            let b = Tensor::randn(&[k, n], 1.0, &mut rng);
            let fast = matmul(&a, &b).unwrap();
            let slow = matmul_ref(&a, &b);
            for (x, y) in fast.data().iter().zip(slow.data().iter()) {
                prop_assert!((x - y).abs() < 1e-4);
            }
        }

        #[test]
        fn matmul_is_linear_in_lhs(seed in 0u64..1000) {
            let mut rng = Rng::new(seed);
            let a1 = Tensor::randn(&[3, 4], 1.0, &mut rng);
            let a2 = Tensor::randn(&[3, 4], 1.0, &mut rng);
            let b = Tensor::randn(&[4, 2], 1.0, &mut rng);
            let lhs = matmul(&a1.add(&a2).unwrap(), &b).unwrap();
            let rhs = matmul(&a1, &b).unwrap().add(&matmul(&a2, &b).unwrap()).unwrap();
            for (x, y) in lhs.data().iter().zip(rhs.data().iter()) {
                prop_assert!((x - y).abs() < 1e-3);
            }
        }
    }
}
