//! Max/average pooling with backward passes (NCHW layout).

use crate::tensor::Tensor;
use crate::{Result, TensorError};

fn check_nchw(t: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if t.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 4,
            actual: t.shape().rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]))
}

/// Result of a max-pooling forward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolForward {
    /// Pooled `[N, C, OH, OW]` output.
    pub output: Tensor,
    /// Flat input offset of the winning element for each output element.
    pub argmax: Vec<usize>,
}

/// 2×2 (or `k`×`k`) max pooling with stride `k`.
///
/// # Examples
///
/// ```
/// use gmorph_tensor::{Tensor, pool::maxpool2d_forward};
///
/// let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]).unwrap();
/// let y = maxpool2d_forward(&x, 2).unwrap();
/// assert_eq!(y.output.data(), &[5.0]);
/// ```
pub fn maxpool2d_forward(input: &Tensor, k: usize) -> Result<MaxPoolForward> {
    let (n, c, h, w) = check_nchw(input, "maxpool2d_forward")?;
    if k == 0 || h < k || w < k {
        return Err(TensorError::InvalidArgument {
            op: "maxpool2d_forward",
            msg: format!("kernel {k} invalid for input {h}x{w}"),
        });
    }
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let data = input.data();
    let mut oi = 0usize;
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut best = f32::NEG_INFINITY;
                    let mut best_off = 0usize;
                    for ky in 0..k {
                        for kx in 0..k {
                            let off = plane + (oy * k + ky) * w + (ox * k + kx);
                            if data[off] > best {
                                best = data[off];
                                best_off = off;
                            }
                        }
                    }
                    out.data_mut()[oi] = best;
                    argmax[oi] = best_off;
                    oi += 1;
                }
            }
        }
    }
    Ok(MaxPoolForward {
        output: out,
        argmax,
    })
}

/// Backward pass for max pooling: routes gradients to the winners.
pub fn maxpool2d_backward(
    grad_output: &Tensor,
    input_dims: &[usize],
    forward: &MaxPoolForward,
) -> Result<Tensor> {
    if grad_output.numel() != forward.argmax.len() {
        return Err(TensorError::ShapeMismatch {
            op: "maxpool2d_backward",
            lhs: format!("[{}]", forward.argmax.len()),
            rhs: grad_output.shape().to_string(),
        });
    }
    let mut grad_input = Tensor::zeros(input_dims);
    for (i, &src) in forward.argmax.iter().enumerate() {
        grad_input.data_mut()[src] += grad_output.data()[i];
    }
    Ok(grad_input)
}

/// Global average pooling `[N, C, H, W] -> [N, C]`.
pub fn global_avgpool_forward(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "global_avgpool_forward")?;
    let mut out = Tensor::zeros(&[n, c]);
    let area = (h * w) as f32;
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            let sum: f32 = input.data()[plane..plane + h * w].iter().sum();
            out.data_mut()[s * c + ch] = sum / area;
        }
    }
    Ok(out)
}

/// Backward pass for global average pooling.
pub fn global_avgpool_backward(grad_output: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    let (n, c, h, w) = (
        input_dims[0],
        input_dims[1],
        input_dims[2],
        input_dims[3],
    );
    if grad_output.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            op: "global_avgpool_backward",
            lhs: format!("[{n}, {c}]"),
            rhs: grad_output.shape().to_string(),
        });
    }
    let mut grad_input = Tensor::zeros(input_dims);
    let scale = 1.0 / (h * w) as f32;
    for s in 0..n {
        for ch in 0..c {
            let g = grad_output.data()[s * c + ch] * scale;
            let plane = (s * c + ch) * h * w;
            for v in &mut grad_input.data_mut()[plane..plane + h * w] {
                *v = g;
            }
        }
    }
    Ok(grad_input)
}

/// `k`×`k` average pooling with stride `k`.
pub fn avgpool2d_forward(input: &Tensor, k: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "avgpool2d_forward")?;
    if k == 0 || h < k || w < k {
        return Err(TensorError::InvalidArgument {
            op: "avgpool2d_forward",
            msg: format!("kernel {k} invalid for input {h}x{w}"),
        });
    }
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let inv = 1.0 / (k * k) as f32;
    let data = input.data();
    let mut oi = 0usize;
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let mut acc = 0.0f32;
                    for ky in 0..k {
                        for kx in 0..k {
                            acc += data[plane + (oy * k + ky) * w + (ox * k + kx)];
                        }
                    }
                    out.data_mut()[oi] = acc * inv;
                    oi += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Backward pass for `k`×`k` average pooling.
pub fn avgpool2d_backward(grad_output: &Tensor, input_dims: &[usize], k: usize) -> Result<Tensor> {
    let (n, c, h, w) = (
        input_dims[0],
        input_dims[1],
        input_dims[2],
        input_dims[3],
    );
    let (oh, ow) = (h / k, w / k);
    if grad_output.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "avgpool2d_backward",
            lhs: format!("[{n}, {c}, {oh}, {ow}]"),
            rhs: grad_output.shape().to_string(),
        });
    }
    let mut grad_input = Tensor::zeros(input_dims);
    let inv = 1.0 / (k * k) as f32;
    let mut oi = 0usize;
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let g = grad_output.data()[oi] * inv;
                    oi += 1;
                    for ky in 0..k {
                        for kx in 0..k {
                            grad_input.data_mut()
                                [plane + (oy * k + ky) * w + (ox * k + kx)] += g;
                        }
                    }
                }
            }
        }
    }
    Ok(grad_input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn maxpool_picks_max_and_routes_grad() {
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 0.0, 0.0, //
                3.0, 4.0, 0.0, 9.0, //
                0.0, 0.0, 5.0, 6.0, //
                0.0, 0.0, 7.0, 8.0,
            ],
        )
        .unwrap();
        let fwd = maxpool2d_forward(&x, 2).unwrap();
        assert_eq!(fwd.output.data(), &[4.0, 9.0, 0.0, 8.0]);
        let go = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let gi = maxpool2d_backward(&go, x.dims(), &fwd).unwrap();
        assert_eq!(gi.at(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(gi.at(&[0, 0, 1, 3]).unwrap(), 2.0);
        assert_eq!(gi.at(&[0, 0, 3, 3]).unwrap(), 4.0);
        assert_eq!(gi.sum(), 10.0);
    }

    #[test]
    fn avgpool_averages() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let y = avgpool2d_forward(&x, 2).unwrap();
        assert_eq!(y.data(), &[3.0]);
        let go = Tensor::from_vec(&[1, 1, 1, 1], vec![4.0]).unwrap();
        let gi = avgpool2d_backward(&go, x.dims(), 2).unwrap();
        assert_eq!(gi.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_avgpool_roundtrip() {
        let mut rng = Rng::new(0);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let y = global_avgpool_forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        // Matches a manual mean of one plane.
        let manual: f32 = (0..16)
            .map(|i| x.data()[1 * 3 * 16 + 2 * 16 + i])
            .sum::<f32>()
            / 16.0;
        assert!((y.at(&[1, 2]).unwrap() - manual).abs() < 1e-5);
        // Backward spreads gradient uniformly and conserves mass.
        let go = Tensor::ones(&[2, 3]);
        let gi = global_avgpool_backward(&go, x.dims()).unwrap();
        assert!((gi.sum() - 6.0).abs() < 1e-4);
    }

    #[test]
    fn pool_rejects_bad_inputs() {
        let x = Tensor::zeros(&[2, 3]);
        assert!(maxpool2d_forward(&x, 2).is_err());
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(maxpool2d_forward(&x, 0).is_err());
        assert!(maxpool2d_forward(&x, 3).is_err());
    }
}
