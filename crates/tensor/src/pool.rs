//! Max/average pooling with backward passes (NCHW layout).
//!
//! Every op decomposes over `(sample, channel)` planes, which are
//! independent, so planes are dispatched across the shared worker pool
//! ([`crate::engine`]) when the tensor is large enough to pay for the trip.
//! Each plane writes a disjoint output region; results are bit-identical
//! across thread counts.

use crate::engine;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Below this element count, pooling runs serially: the tensors are too
/// small for pool dispatch to pay off.
const PAR_MIN: usize = 1 << 15;

fn check_nchw(t: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if t.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 4,
            actual: t.shape().rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]))
}

/// Result of a max-pooling forward pass.
#[derive(Debug, Clone)]
pub struct MaxPoolForward {
    /// Pooled `[N, C, OH, OW]` output.
    pub output: Tensor,
    /// Flat input offset of the winning element for each output element.
    pub argmax: Vec<usize>,
}

/// 2×2 (or `k`×`k`) max pooling with stride `k`.
///
/// # Examples
///
/// ```
/// use gmorph_tensor::{Tensor, pool::maxpool2d_forward};
///
/// let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 5.0, 3.0, 2.0]).unwrap();
/// let y = maxpool2d_forward(&x, 2).unwrap();
/// assert_eq!(y.output.data(), &[5.0]);
/// ```
pub fn maxpool2d_forward(input: &Tensor, k: usize) -> Result<MaxPoolForward> {
    let (n, c, h, w) = check_nchw(input, "maxpool2d_forward")?;
    if k == 0 || h < k || w < k {
        return Err(TensorError::InvalidArgument {
            op: "maxpool2d_forward",
            msg: format!("kernel {k} invalid for input {h}x{w}"),
        });
    }
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let mut argmax = vec![0usize; n * c * oh * ow];
    let data = input.data();
    let plane_out = oh * ow;

    // One closure per (sample, channel) plane, writing that plane's output
    // and argmax slices.
    let do_plane = |pi: usize, o: &mut [f32], am: &mut [usize]| {
        let plane = pi * h * w;
        let mut oi = 0usize;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut best = f32::NEG_INFINITY;
                let mut best_off = 0usize;
                for ky in 0..k {
                    for kx in 0..k {
                        let off = plane + (oy * k + ky) * w + (ox * k + kx);
                        if data[off] > best {
                            best = data[off];
                            best_off = off;
                        }
                    }
                }
                o[oi] = best;
                am[oi] = best_off;
                oi += 1;
            }
        }
    };

    if input.numel() < PAR_MIN {
        for pi in 0..n * c {
            let (o, am) = (
                &mut out.data_mut()[pi * plane_out..(pi + 1) * plane_out],
                &mut argmax[pi * plane_out..(pi + 1) * plane_out],
            );
            do_plane(pi, o, am);
        }
    } else {
        let per_plane = engine::parallel_map(n * c, |pi| {
            let mut o = vec![0.0f32; plane_out];
            let mut am = vec![0usize; plane_out];
            do_plane(pi, &mut o, &mut am);
            (o, am)
        });
        for (pi, (o, am)) in per_plane.into_iter().enumerate() {
            out.data_mut()[pi * plane_out..(pi + 1) * plane_out].copy_from_slice(&o);
            argmax[pi * plane_out..(pi + 1) * plane_out].copy_from_slice(&am);
        }
    }
    Ok(MaxPoolForward {
        output: out,
        argmax,
    })
}

/// Backward pass for max pooling: routes gradients to the winners.
pub fn maxpool2d_backward(
    grad_output: &Tensor,
    input_dims: &[usize],
    forward: &MaxPoolForward,
) -> Result<Tensor> {
    if grad_output.numel() != forward.argmax.len() {
        return Err(TensorError::ShapeMismatch {
            op: "maxpool2d_backward",
            lhs: format!("[{}]", forward.argmax.len()),
            rhs: grad_output.shape().to_string(),
        });
    }
    let mut grad_input = Tensor::zeros(input_dims);
    for (i, &src) in forward.argmax.iter().enumerate() {
        grad_input.data_mut()[src] += grad_output.data()[i];
    }
    Ok(grad_input)
}

/// Global average pooling `[N, C, H, W] -> [N, C]`.
pub fn global_avgpool_forward(input: &Tensor) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "global_avgpool_forward")?;
    let area = (h * w) as f32;
    let plane_mean = |pi: usize| {
        let plane = pi * h * w;
        input.data()[plane..plane + h * w].iter().sum::<f32>() / area
    };
    let means = if input.numel() < PAR_MIN {
        (0..n * c).map(plane_mean).collect()
    } else {
        engine::parallel_map(n * c, plane_mean)
    };
    Tensor::from_vec(&[n, c], means)
}

/// Backward pass for global average pooling.
pub fn global_avgpool_backward(grad_output: &Tensor, input_dims: &[usize]) -> Result<Tensor> {
    let (n, c, h, w) = (
        input_dims[0],
        input_dims[1],
        input_dims[2],
        input_dims[3],
    );
    if grad_output.dims() != [n, c] {
        return Err(TensorError::ShapeMismatch {
            op: "global_avgpool_backward",
            lhs: format!("[{n}, {c}]"),
            rhs: grad_output.shape().to_string(),
        });
    }
    let mut grad_input = Tensor::zeros(input_dims);
    let scale = 1.0 / (h * w) as f32;
    let go = grad_output.data();
    if grad_input.numel() < PAR_MIN {
        for (pi, plane) in grad_input.data_mut().chunks_mut(h * w).enumerate() {
            plane.fill(go[pi] * scale);
        }
    } else {
        engine::parallel_chunks_mut(grad_input.data_mut(), h * w, |pi, plane| {
            plane.fill(go[pi] * scale);
        });
    }
    Ok(grad_input)
}

/// `k`×`k` average pooling with stride `k`.
pub fn avgpool2d_forward(input: &Tensor, k: usize) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "avgpool2d_forward")?;
    if k == 0 || h < k || w < k {
        return Err(TensorError::InvalidArgument {
            op: "avgpool2d_forward",
            msg: format!("kernel {k} invalid for input {h}x{w}"),
        });
    }
    let (oh, ow) = (h / k, w / k);
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let inv = 1.0 / (k * k) as f32;
    let data = input.data();
    let small = input.numel() < PAR_MIN;

    let do_plane = |pi: usize, o: &mut [f32]| {
        let plane = pi * h * w;
        let mut oi = 0usize;
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = 0.0f32;
                for ky in 0..k {
                    for kx in 0..k {
                        acc += data[plane + (oy * k + ky) * w + (ox * k + kx)];
                    }
                }
                o[oi] = acc * inv;
                oi += 1;
            }
        }
    };

    if small {
        for (pi, o) in out.data_mut().chunks_mut(oh * ow).enumerate() {
            do_plane(pi, o);
        }
    } else {
        engine::parallel_chunks_mut(out.data_mut(), oh * ow, do_plane);
    }
    Ok(out)
}

/// Backward pass for `k`×`k` average pooling.
pub fn avgpool2d_backward(grad_output: &Tensor, input_dims: &[usize], k: usize) -> Result<Tensor> {
    let (n, c, h, w) = (
        input_dims[0],
        input_dims[1],
        input_dims[2],
        input_dims[3],
    );
    let (oh, ow) = (h / k, w / k);
    if grad_output.dims() != [n, c, oh, ow] {
        return Err(TensorError::ShapeMismatch {
            op: "avgpool2d_backward",
            lhs: format!("[{n}, {c}, {oh}, {ow}]"),
            rhs: grad_output.shape().to_string(),
        });
    }
    let mut grad_input = Tensor::zeros(input_dims);
    let inv = 1.0 / (k * k) as f32;
    let go = grad_output.data();
    let small = grad_input.numel() < PAR_MIN;

    let do_plane = |pi: usize, gi: &mut [f32]| {
        let go_plane = pi * oh * ow;
        for oy in 0..oh {
            for ox in 0..ow {
                let g = go[go_plane + oy * ow + ox] * inv;
                for ky in 0..k {
                    for kx in 0..k {
                        gi[(oy * k + ky) * w + (ox * k + kx)] += g;
                    }
                }
            }
        }
    };

    if small {
        for (pi, gi) in grad_input.data_mut().chunks_mut(h * w).enumerate() {
            do_plane(pi, gi);
        }
    } else {
        engine::parallel_chunks_mut(grad_input.data_mut(), h * w, do_plane);
    }
    Ok(grad_input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    #[test]
    fn maxpool_picks_max_and_routes_grad() {
        let x = Tensor::from_vec(
            &[1, 1, 4, 4],
            vec![
                1.0, 2.0, 0.0, 0.0, //
                3.0, 4.0, 0.0, 9.0, //
                0.0, 0.0, 5.0, 6.0, //
                0.0, 0.0, 7.0, 8.0,
            ],
        )
        .unwrap();
        let fwd = maxpool2d_forward(&x, 2).unwrap();
        assert_eq!(fwd.output.data(), &[4.0, 9.0, 0.0, 8.0]);
        let go = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let gi = maxpool2d_backward(&go, x.dims(), &fwd).unwrap();
        assert_eq!(gi.at(&[0, 0, 1, 1]).unwrap(), 1.0);
        assert_eq!(gi.at(&[0, 0, 1, 3]).unwrap(), 2.0);
        assert_eq!(gi.at(&[0, 0, 3, 3]).unwrap(), 4.0);
        assert_eq!(gi.sum(), 10.0);
    }

    #[test]
    fn avgpool_averages() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 6.0]).unwrap();
        let y = avgpool2d_forward(&x, 2).unwrap();
        assert_eq!(y.data(), &[3.0]);
        let go = Tensor::from_vec(&[1, 1, 1, 1], vec![4.0]).unwrap();
        let gi = avgpool2d_backward(&go, x.dims(), 2).unwrap();
        assert_eq!(gi.data(), &[1.0, 1.0, 1.0, 1.0]);
    }

    #[test]
    fn global_avgpool_roundtrip() {
        let mut rng = Rng::new(0);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let y = global_avgpool_forward(&x).unwrap();
        assert_eq!(y.dims(), &[2, 3]);
        // Matches a manual mean of one plane.
        let manual: f32 = (0..16)
            .map(|i| x.data()[3 * 16 + 2 * 16 + i])
            .sum::<f32>()
            / 16.0;
        assert!((y.at(&[1, 2]).unwrap() - manual).abs() < 1e-5);
        // Backward spreads gradient uniformly and conserves mass.
        let go = Tensor::ones(&[2, 3]);
        let gi = global_avgpool_backward(&go, x.dims()).unwrap();
        assert!((gi.sum() - 6.0).abs() < 1e-4);
    }

    #[test]
    fn pool_rejects_bad_inputs() {
        let x = Tensor::zeros(&[2, 3]);
        assert!(maxpool2d_forward(&x, 2).is_err());
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(maxpool2d_forward(&x, 0).is_err());
        assert!(maxpool2d_forward(&x, 3).is_err());
    }
}
