//! The kernel execution engine: a process-wide persistent worker pool.
//!
//! Every hot kernel in this crate (GEMM, convolution, pooling, large
//! elementwise ops) dispatches its outer loop through this pool instead of
//! spawning threads per call. Design constraints, in order:
//!
//! 1. **Determinism.** Results must be bit-identical regardless of thread
//!    count. Work is therefore decomposed into *chunks whose boundaries
//!    depend only on the problem shape*, each output element is written by
//!    exactly one chunk, and the floating-point reduction order inside a
//!    chunk is fixed. Threads only change *which worker* runs a chunk,
//!    never what the chunk computes.
//! 2. **No oversubscription.** The pool is process-wide and lazily grown up
//!    to the configured thread count. Work dispatched from *inside* a pool
//!    worker (e.g. a convolution whose per-sample GEMM would itself
//!    parallelize, or a search candidate evaluated on the pool) runs inline
//!    on that worker, so nesting composes without multiplying threads.
//! 3. **No deadlock.** The submitting thread participates in its own job:
//!    even if every worker is busy elsewhere, the submitter finishes the
//!    job alone and returns.
//!
//! The thread count comes from the `GMORPH_THREADS` environment variable
//! (falling back to the machine's available parallelism), can be overridden
//! globally with [`set_num_threads`], and per-scope with
//! [`with_thread_limit`] — the latter is how tests pin `1` vs `4` threads
//! inside one process.

use std::cell::Cell;
use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// Hard cap on pool size, a guard against absurd `GMORPH_THREADS` values.
const MAX_THREADS: usize = 256;

/// Global configured thread count; 0 means "not yet initialized".
static GLOBAL_THREADS: AtomicUsize = AtomicUsize::new(0);

thread_local! {
    /// Per-scope thread-count override ([`with_thread_limit`]); 0 = unset.
    static LIMIT_OVERRIDE: Cell<usize> = const { Cell::new(0) };
    /// True while this thread is executing pool chunks; nested dispatch
    /// from such a context runs inline.
    static IN_POOL_CONTEXT: Cell<bool> = const { Cell::new(false) };
}

/// Returns the configured kernel thread count.
///
/// Resolution order: [`set_num_threads`] if called, else the
/// `GMORPH_THREADS` environment variable, else the machine's available
/// parallelism. Always at least 1.
pub fn num_threads() -> usize {
    let n = GLOBAL_THREADS.load(Ordering::Relaxed);
    if n != 0 {
        return n;
    }
    let resolved = std::env::var("GMORPH_THREADS")
        .ok()
        .and_then(|v| v.trim().parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(|p| p.get())
                .unwrap_or(1)
        })
        .min(MAX_THREADS);
    // A racing initializer computes the same value; either store wins.
    GLOBAL_THREADS.store(resolved, Ordering::Relaxed);
    resolved
}

/// Overrides the global kernel thread count (clamped to `1..=256`).
pub fn set_num_threads(n: usize) {
    GLOBAL_THREADS.store(n.clamp(1, MAX_THREADS), Ordering::Relaxed);
}

/// Runs `f` with the calling thread's kernel parallelism capped at `n`.
///
/// The cap nests (inner scopes shadow outer ones) and is restored on exit,
/// including on panic. Decomposition is shape-driven, so results are
/// bit-identical across caps — this exists to *prove* that in tests and to
/// let callers serialize kernels inside already-parallel sections.
pub fn with_thread_limit<R>(n: usize, f: impl FnOnce() -> R) -> R {
    struct Restore(usize);
    impl Drop for Restore {
        fn drop(&mut self) {
            LIMIT_OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let prev = LIMIT_OVERRIDE.with(|c| c.replace(n.clamp(1, MAX_THREADS)));
    let _restore = Restore(prev);
    f()
}

/// The thread count effective for dispatch from the calling thread.
pub fn current_threads() -> usize {
    let over = LIMIT_OVERRIDE.with(|c| c.get());
    if over != 0 {
        over
    } else {
        num_threads()
    }
}

/// One dispatched parallel job: `total` chunks claimed by atomic counter.
struct Job {
    /// Lifetime-erased pointer to the chunk closure. Soundness: the
    /// submitting [`WorkerPool::parallel_for`] call does not return until
    /// `pending` reaches zero, i.e. until every dereference of this pointer
    /// has completed, so the borrow it was created from is still live.
    task: TaskPtr,
    /// Total number of chunks.
    total: usize,
    /// Next chunk index to claim.
    next: AtomicUsize,
    /// Chunks not yet finished executing.
    pending: AtomicUsize,
    /// Completion latch.
    done: Mutex<bool>,
    done_cv: Condvar,
    /// First captured panic payload, re-thrown on the submitter.
    panic: Mutex<Option<Box<dyn std::any::Any + Send>>>,
}

struct TaskPtr(*const (dyn Fn(usize) + Sync));
// SAFETY: the pointee is `Sync` (shared calls from any thread are fine) and
// the pointer is only dereferenced while the submitting stack frame keeps
// the closure alive (see `Job::task`).
unsafe impl Send for TaskPtr {}
unsafe impl Sync for TaskPtr {}

impl Job {
    /// Claims and runs chunks until none remain. Called by workers and by
    /// the submitting thread alike.
    fn run_chunks(&self) {
        loop {
            let i = self.next.fetch_add(1, Ordering::Relaxed);
            if i >= self.total {
                return;
            }
            // SAFETY: i < total, so the submitter is still inside
            // `parallel_for` waiting on `pending` and the closure is alive.
            let task = unsafe { &*self.task.0 };
            let entered = IN_POOL_CONTEXT.with(|c| c.replace(true));
            let result = catch_unwind(AssertUnwindSafe(|| task(i)));
            IN_POOL_CONTEXT.with(|c| c.set(entered));
            if let Err(payload) = result {
                let mut slot = self.panic.lock().unwrap();
                if slot.is_none() {
                    *slot = Some(payload);
                }
            }
            if self.pending.fetch_sub(1, Ordering::AcqRel) == 1 {
                let mut done = self.done.lock().unwrap();
                *done = true;
                self.done_cv.notify_all();
            }
        }
    }

    fn exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.total
    }
}

/// Shared state between the pool handle and its worker threads.
struct PoolShared {
    queue: Mutex<VecDeque<Arc<Job>>>,
    work_available: Condvar,
}

/// The process-wide persistent worker pool.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    /// Number of OS worker threads spawned so far.
    spawned: Mutex<usize>,
}

/// Returns the process-wide pool, creating it (without threads) on first use.
pub fn pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool {
        shared: Arc::new(PoolShared {
            queue: Mutex::new(VecDeque::new()),
            work_available: Condvar::new(),
        }),
        spawned: Mutex::new(0),
    })
}

impl WorkerPool {
    /// Grows the pool to at least `target` worker threads.
    fn ensure_workers(&self, target: usize) {
        let target = target.min(MAX_THREADS);
        let mut spawned = self.spawned.lock().unwrap();
        while *spawned < target {
            let shared = Arc::clone(&self.shared);
            let index = *spawned;
            std::thread::Builder::new()
                .name(format!("gmorph-worker-{index}"))
                .spawn(move || worker_loop(shared))
                .expect("spawning a gmorph worker thread");
            *spawned += 1;
        }
    }

    /// Runs `f(0) ..= f(count - 1)`, possibly across the pool, returning
    /// when all calls have finished. Panics propagate to the caller.
    ///
    /// Runs inline (still all `count` chunks, same order) when the caller
    /// is already inside a pool chunk, the effective thread limit is 1, or
    /// `count < 2` — which is exactly why thread count cannot change
    /// results: the decomposition is identical either way.
    pub fn parallel_for(&self, count: usize, f: impl Fn(usize) + Sync) {
        let threads = current_threads();
        let inline = IN_POOL_CONTEXT.with(|c| c.get());
        // One relaxed load; all telemetry below is skipped when disabled.
        let telemetry = gmorph_telemetry::enabled();
        if count < 2 || threads < 2 || inline {
            if telemetry {
                gmorph_telemetry::counter!("engine.dispatch.inline");
                gmorph_telemetry::hist!("engine.chunks.inline", count as f64);
            }
            for i in 0..count {
                f(i);
            }
            return;
        }
        let dispatch_start = telemetry.then(std::time::Instant::now);
        self.ensure_workers(threads - 1);

        let f_ref: &(dyn Fn(usize) + Sync) = &f;
        // SAFETY: erase the borrow's lifetime; `Job::task` documents why
        // the pointer never outlives the borrow.
        let task = TaskPtr(unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f_ref)
        });
        let job = Arc::new(Job {
            task,
            total: count,
            next: AtomicUsize::new(0),
            pending: AtomicUsize::new(count),
            done: Mutex::new(false),
            done_cv: Condvar::new(),
            panic: Mutex::new(None),
        });

        let queue_depth = {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.push_back(Arc::clone(&job));
            queue.len()
        };
        self.shared.work_available.notify_all();
        if telemetry {
            gmorph_telemetry::counter!("engine.dispatch.pooled");
            gmorph_telemetry::hist!("engine.chunks.pooled", count as f64);
            gmorph_telemetry::hist!("engine.queue_depth", queue_depth as f64);
        }

        // Participate, then wait for chunks claimed by workers.
        job.run_chunks();
        let mut done = job.done.lock().unwrap();
        while !*done {
            done = job.done_cv.wait(done).unwrap();
        }
        drop(done);

        // Drop our queue entry if no worker got to it first.
        {
            let mut queue = self.shared.queue.lock().unwrap();
            queue.retain(|j| !Arc::ptr_eq(j, &job));
        }

        if let Some(start) = dispatch_start {
            gmorph_telemetry::hist!("engine.dispatch_us", start.elapsed().as_micros() as f64);
        }

        let payload = job.panic.lock().unwrap().take();
        if let Some(payload) = payload {
            resume_unwind(payload);
        }
    }
}

fn worker_loop(shared: Arc<PoolShared>) {
    IN_POOL_CONTEXT.with(|c| c.set(true));
    loop {
        let job = {
            let mut queue = shared.queue.lock().unwrap();
            loop {
                // Discard finished jobs, take the first live one.
                while queue.front().is_some_and(|j| j.exhausted()) {
                    queue.pop_front();
                }
                if let Some(job) = queue.front() {
                    break Arc::clone(job);
                }
                queue = shared.work_available.wait(queue).unwrap();
            }
        };
        job.run_chunks();
    }
}

/// Runs `f(0) ..= f(count - 1)` on the process-wide pool.
pub fn parallel_for(count: usize, f: impl Fn(usize) + Sync) {
    pool().parallel_for(count, f);
}

/// Maps `f` over `0..count` in parallel, collecting results in index order.
pub fn parallel_map<T: Send>(count: usize, f: impl Fn(usize) -> T + Sync) -> Vec<T> {
    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(count, || None);
    {
        let base = SendPtr(slots.as_mut_ptr());
        parallel_for(count, |i| {
            // SAFETY: each index is claimed by exactly one chunk, so every
            // slot is written by exactly one thread; `parallel_for` joins
            // all writes before `slots` is read below.
            unsafe { *base.get().add(i) = Some(f(i)) };
        });
    }
    slots
        .into_iter()
        .map(|s| s.expect("every parallel_map slot written by its chunk"))
        .collect()
}

/// Splits `data` into `chunk_len`-sized pieces and processes them in
/// parallel; `f` receives the chunk index and the mutable chunk.
pub fn parallel_chunks_mut<T: Send>(
    data: &mut [T],
    chunk_len: usize,
    f: impl Fn(usize, &mut [T]) + Sync,
) {
    assert!(chunk_len > 0, "parallel_chunks_mut: chunk_len must be > 0");
    let len = data.len();
    let count = len.div_ceil(chunk_len);
    let base = SendPtr(data.as_mut_ptr());
    parallel_for(count, |i| {
        let start = i * chunk_len;
        let end = (start + chunk_len).min(len);
        // SAFETY: chunk ranges are disjoint by construction and `data`
        // outlives `parallel_for`, which joins all chunks before returning.
        let chunk = unsafe { std::slice::from_raw_parts_mut(base.get().add(start), end - start) };
        f(i, chunk);
    });
}

/// A raw pointer that may cross thread boundaries. Callers guarantee that
/// concurrent accesses through it are to disjoint regions.
struct SendPtr<T>(*mut T);
unsafe impl<T> Send for SendPtr<T> {}
unsafe impl<T> Sync for SendPtr<T> {}
impl<T> SendPtr<T> {
    fn get(&self) -> *mut T {
        self.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;

    #[test]
    fn parallel_for_visits_every_index_once() {
        for threads in [1, 2, 4] {
            with_thread_limit(threads, || {
                let hits: Vec<AtomicUsize> = (0..100).map(|_| AtomicUsize::new(0)).collect();
                parallel_for(100, |i| {
                    hits[i].fetch_add(1, Ordering::Relaxed);
                });
                assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
            });
        }
    }

    #[test]
    fn parallel_map_preserves_order() {
        with_thread_limit(4, || {
            let out = parallel_map(64, |i| i * i);
            assert_eq!(out, (0..64).map(|i| i * i).collect::<Vec<_>>());
        });
    }

    #[test]
    fn parallel_chunks_cover_disjointly() {
        with_thread_limit(4, || {
            let mut data = vec![0u32; 103];
            parallel_chunks_mut(&mut data, 10, |idx, chunk| {
                for v in chunk.iter_mut() {
                    *v += 1 + idx as u32;
                }
            });
            for (i, &v) in data.iter().enumerate() {
                assert_eq!(v, 1 + (i / 10) as u32, "element {i}");
            }
        });
    }

    #[test]
    fn nested_dispatch_runs_inline_and_completes() {
        with_thread_limit(4, || {
            let total = AtomicU64::new(0);
            parallel_for(8, |_| {
                // Nested call must run inline on the current thread.
                parallel_for(8, |j| {
                    total.fetch_add(j as u64, Ordering::Relaxed);
                });
            });
            assert_eq!(total.load(Ordering::Relaxed), 8 * 28);
        });
    }

    #[test]
    fn with_thread_limit_restores_on_exit() {
        let before = current_threads();
        with_thread_limit(3, || {
            assert_eq!(current_threads(), 3);
            with_thread_limit(1, || assert_eq!(current_threads(), 1));
            assert_eq!(current_threads(), 3);
        });
        assert_eq!(current_threads(), before);
    }

    #[test]
    fn panics_propagate_to_submitter() {
        with_thread_limit(4, || {
            let result = std::panic::catch_unwind(|| {
                parallel_for(16, |i| {
                    if i == 11 {
                        panic!("chunk 11 exploded");
                    }
                });
            });
            let payload = result.expect_err("panic must propagate");
            let msg = payload.downcast_ref::<&str>().copied().unwrap_or("");
            assert!(msg.contains("chunk 11"), "unexpected payload: {msg}");
        });
        // The pool survives a panicked job.
        with_thread_limit(4, || {
            let sum = AtomicU64::new(0);
            parallel_for(16, |i| {
                sum.fetch_add(i as u64, Ordering::Relaxed);
            });
            assert_eq!(sum.load(Ordering::Relaxed), 120);
        });
    }

    #[test]
    fn env_and_override_resolution() {
        // num_threads is at least 1 whatever the environment says.
        assert!(num_threads() >= 1);
        set_num_threads(0); // clamps to 1
        assert_eq!(num_threads(), 1);
        set_num_threads(5);
        assert_eq!(num_threads(), 5);
        // Restore the env-derived default for other tests.
        let env_default = std::env::var("GMORPH_THREADS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or_else(|| {
                std::thread::available_parallelism()
                    .map(|p| p.get())
                    .unwrap_or(1)
            });
        set_num_threads(env_default);
    }
}
