//! A tiny binary format for persisting tensors and weight maps.
//!
//! GMorph caches trained teacher models and elite-candidate weights (the
//! paper's History Database persists "abstract graphs and model weights").
//! The format is deliberately simple:
//!
//! ```text
//! file   := magic(u32=0x474D5248 "GMRH") version(u32) count(u32) entry*
//! entry  := name_len(u32) name(utf8) tensor
//! tensor := rank(u32) dims(u64 * rank) data(f32-le * numel)
//! ```

use crate::tensor::Tensor;
use crate::{Result, TensorError};
use std::io::{Read, Write};

const MAGIC: u32 = 0x474D_5248;
const VERSION: u32 = 1;

fn io_err(e: std::io::Error) -> TensorError {
    TensorError::Io(e.to_string())
}

fn write_u32(w: &mut impl Write, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn write_u64(w: &mut impl Write, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

fn read_u32(r: &mut impl Read) -> Result<u32> {
    let mut buf = [0u8; 4];
    r.read_exact(&mut buf).map_err(io_err)?;
    Ok(u32::from_le_bytes(buf))
}

fn read_u64(r: &mut impl Read) -> Result<u64> {
    let mut buf = [0u8; 8];
    r.read_exact(&mut buf).map_err(io_err)?;
    Ok(u64::from_le_bytes(buf))
}

/// Writes a single tensor to a writer.
pub fn write_tensor(w: &mut impl Write, t: &Tensor) -> Result<()> {
    write_u32(w, t.shape().rank() as u32)?;
    for &d in t.dims() {
        write_u64(w, d as u64)?;
    }
    let mut bytes = Vec::with_capacity(t.numel() * 4);
    for &v in t.data() {
        bytes.extend_from_slice(&v.to_le_bytes());
    }
    w.write_all(&bytes).map_err(io_err)
}

/// Reads a single tensor from a reader.
pub fn read_tensor(r: &mut impl Read) -> Result<Tensor> {
    let rank = read_u32(r)? as usize;
    if rank > 8 {
        return Err(TensorError::Io(format!("implausible tensor rank {rank}")));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(read_u64(r)? as usize);
    }
    let numel: usize = dims.iter().product();
    if numel > 1 << 28 {
        return Err(TensorError::Io(format!("implausible tensor size {numel}")));
    }
    let mut bytes = vec![0u8; numel * 4];
    r.read_exact(&mut bytes).map_err(io_err)?;
    let data = bytes
        .chunks_exact(4)
        .map(|c| f32::from_le_bytes([c[0], c[1], c[2], c[3]]))
        .collect();
    Tensor::from_vec(&dims, data)
}

/// Writes a named collection of tensors (a "state dict").
pub fn write_state_dict(w: &mut impl Write, entries: &[(String, Tensor)]) -> Result<()> {
    write_u32(w, MAGIC)?;
    write_u32(w, VERSION)?;
    write_u32(w, entries.len() as u32)?;
    for (name, t) in entries {
        let bytes = name.as_bytes();
        write_u32(w, bytes.len() as u32)?;
        w.write_all(bytes).map_err(io_err)?;
        write_tensor(w, t)?;
    }
    Ok(())
}

/// Reads a named collection of tensors written by [`write_state_dict`].
pub fn read_state_dict(r: &mut impl Read) -> Result<Vec<(String, Tensor)>> {
    if read_u32(r)? != MAGIC {
        return Err(TensorError::Io("bad magic".to_string()));
    }
    let version = read_u32(r)?;
    if version != VERSION {
        return Err(TensorError::Io(format!("unsupported version {version}")));
    }
    let count = read_u32(r)? as usize;
    if count > 1 << 20 {
        return Err(TensorError::Io(format!("implausible entry count {count}")));
    }
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let name_len = read_u32(r)? as usize;
        if name_len > 4096 {
            return Err(TensorError::Io(format!("implausible name len {name_len}")));
        }
        let mut name = vec![0u8; name_len];
        r.read_exact(&mut name).map_err(io_err)?;
        let name =
            String::from_utf8(name).map_err(|e| TensorError::Io(format!("bad utf8: {e}")))?;
        out.push((name, read_tensor(r)?));
    }
    Ok(out)
}

/// Saves a state dict to a file, creating parent directories.
pub fn save_state_dict(path: &std::path::Path, entries: &[(String, Tensor)]) -> Result<()> {
    if let Some(parent) = path.parent() {
        std::fs::create_dir_all(parent).map_err(io_err)?;
    }
    let mut f = std::io::BufWriter::new(std::fs::File::create(path).map_err(io_err)?);
    write_state_dict(&mut f, entries)
}

/// Loads a state dict from a file.
pub fn load_state_dict(path: &std::path::Path) -> Result<Vec<(String, Tensor)>> {
    let mut f = std::io::BufReader::new(std::fs::File::open(path).map_err(io_err)?);
    read_state_dict(&mut f)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use proptest::prelude::*;

    #[test]
    fn tensor_roundtrip() {
        let mut rng = Rng::new(0);
        let t = Tensor::randn(&[2, 3, 4], 1.0, &mut rng);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        let back = read_tensor(&mut buf.as_slice()).unwrap();
        assert_eq!(t, back);
    }

    #[test]
    fn state_dict_roundtrip() {
        let mut rng = Rng::new(1);
        let entries = vec![
            ("layer0.weight".to_string(), Tensor::randn(&[4, 4], 1.0, &mut rng)),
            ("layer0.bias".to_string(), Tensor::randn(&[4], 1.0, &mut rng)),
            ("scalar".to_string(), Tensor::full(&[], 7.0)),
        ];
        let mut buf = Vec::new();
        write_state_dict(&mut buf, &entries).unwrap();
        let back = read_state_dict(&mut buf.as_slice()).unwrap();
        assert_eq!(entries, back);
    }

    #[test]
    fn rejects_bad_magic() {
        let buf = vec![0u8; 16];
        assert!(read_state_dict(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn rejects_truncated_input() {
        let mut rng = Rng::new(2);
        let t = Tensor::randn(&[8], 1.0, &mut rng);
        let mut buf = Vec::new();
        write_tensor(&mut buf, &t).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_tensor(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn file_roundtrip() {
        let dir = std::env::temp_dir().join("gmorph-test-serialize");
        let path = dir.join("weights.gmrh");
        let entries = vec![("w".to_string(), Tensor::ones(&[3, 3]))];
        save_state_dict(&path, &entries).unwrap();
        let back = load_state_dict(&path).unwrap();
        assert_eq!(entries, back);
        std::fs::remove_dir_all(&dir).ok();
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn arbitrary_roundtrip(
            dims in proptest::collection::vec(1usize..5, 0..4),
            seed in 0u64..1000,
        ) {
            let mut rng = Rng::new(seed);
            let t = Tensor::randn(&dims, 1.0, &mut rng);
            let mut buf = Vec::new();
            write_tensor(&mut buf, &t).unwrap();
            let back = read_tensor(&mut buf.as_slice()).unwrap();
            prop_assert_eq!(t, back);
        }
    }
}
