//! Tensor shapes and index arithmetic.

use crate::{Result, TensorError};
use std::fmt;

/// A dense, row-major tensor shape.
///
/// Shapes in this codebase are small (rank ≤ 4 in practice: `[N, C, H, W]`
/// for vision, `[N, T, D]` for sequences, `[N, D]` for features), so a
/// heap-allocated `Vec<usize>` is fine.
///
/// # Examples
///
/// ```
/// use gmorph_tensor::Shape;
///
/// let s = Shape::new(vec![2, 3, 4]);
/// assert_eq!(s.numel(), 24);
/// assert_eq!(s.rank(), 3);
/// assert_eq!(s.dim(1), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Shape {
    dims: Vec<usize>,
}

impl Shape {
    /// Creates a shape from its dimensions.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape { dims }
    }

    /// Creates a scalar (rank-0) shape.
    pub fn scalar() -> Self {
        Shape { dims: Vec::new() }
    }

    /// Returns the number of dimensions.
    pub fn rank(&self) -> usize {
        self.dims.len()
    }

    /// Returns the size of dimension `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i >= self.rank()`.
    pub fn dim(&self, i: usize) -> usize {
        self.dims[i]
    }

    /// Returns the dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.dims
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.dims.iter().product()
    }

    /// Returns row-major strides for this shape.
    ///
    /// The last dimension is contiguous (stride 1).
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1usize; self.dims.len()];
        for i in (0..self.dims.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.dims[i + 1];
        }
        strides
    }

    /// Converts a multi-dimensional index to a flat offset.
    ///
    /// Returns an error if the index has the wrong rank or any coordinate is
    /// out of bounds.
    pub fn offset(&self, index: &[usize]) -> Result<usize> {
        if index.len() != self.dims.len() {
            return Err(TensorError::RankMismatch {
                op: "offset",
                expected: self.dims.len(),
                actual: index.len(),
            });
        }
        let strides = self.strides();
        let mut off = 0usize;
        for (i, (&ix, &d)) in index.iter().zip(self.dims.iter()).enumerate() {
            if ix >= d {
                return Err(TensorError::OutOfBounds {
                    op: "offset",
                    index: ix,
                    bound: d,
                });
            }
            off += ix * strides[i];
        }
        Ok(off)
    }

    /// Converts a flat offset back into a multi-dimensional index.
    ///
    /// Inverse of [`Shape::offset`] for in-bounds offsets.
    pub fn unravel(&self, mut offset: usize) -> Result<Vec<usize>> {
        if offset >= self.numel().max(1) {
            return Err(TensorError::OutOfBounds {
                op: "unravel",
                index: offset,
                bound: self.numel(),
            });
        }
        let strides = self.strides();
        let mut index = vec![0usize; self.dims.len()];
        for i in 0..self.dims.len() {
            index[i] = offset / strides[i];
            offset %= strides[i];
        }
        Ok(index)
    }

    /// Checks element-count compatibility for a reshape.
    pub fn can_reshape_to(&self, other: &Shape) -> bool {
        self.numel() == other.numel()
    }

    /// Returns true if any dimension equals the corresponding dimension of
    /// `other` (same rank required).
    ///
    /// This is the paper's *similar shape* predicate (§2.2.1): two feature
    /// shapes are similar when "any or all of the width, height, and channel
    /// dimensions are the same".
    pub fn shares_any_dim(&self, other: &Shape) -> bool {
        self.rank() == other.rank()
            && self
                .dims
                .iter()
                .zip(other.dims.iter())
                .any(|(a, b)| a == b)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.dims.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape::new(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape::new(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn numel_and_rank() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.numel(), 24);
        assert_eq!(s.rank(), 3);
        assert_eq!(s.dims(), &[2, 3, 4]);
    }

    #[test]
    fn scalar_shape() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.numel(), 1);
        assert!(s.strides().is_empty());
    }

    #[test]
    fn strides_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
    }

    #[test]
    fn offset_basic() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.offset(&[0, 0, 0]).unwrap(), 0);
        assert_eq!(s.offset(&[1, 2, 3]).unwrap(), 23);
        assert_eq!(s.offset(&[0, 1, 2]).unwrap(), 6);
    }

    #[test]
    fn offset_errors() {
        let s = Shape::new(vec![2, 3]);
        assert!(matches!(
            s.offset(&[0]),
            Err(TensorError::RankMismatch { .. })
        ));
        assert!(matches!(
            s.offset(&[2, 0]),
            Err(TensorError::OutOfBounds { .. })
        ));
    }

    #[test]
    fn shares_any_dim_predicate() {
        let a = Shape::new(vec![8, 16, 16]);
        let b = Shape::new(vec![4, 16, 8]);
        let c = Shape::new(vec![3, 5, 7]);
        assert!(a.shares_any_dim(&b));
        assert!(!a.shares_any_dim(&c));
        // Different rank: never similar.
        let d = Shape::new(vec![8, 16]);
        assert!(!a.shares_any_dim(&d));
    }

    #[test]
    fn display_format() {
        assert_eq!(Shape::new(vec![1, 2]).to_string(), "[1, 2]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    proptest! {
        #[test]
        fn unravel_inverts_offset(dims in proptest::collection::vec(1usize..5, 1..4)) {
            let s = Shape::new(dims);
            for off in 0..s.numel() {
                let ix = s.unravel(off).unwrap();
                prop_assert_eq!(s.offset(&ix).unwrap(), off);
            }
        }

        #[test]
        fn offsets_are_dense_and_unique(dims in proptest::collection::vec(1usize..5, 1..4)) {
            let s = Shape::new(dims);
            let mut seen = vec![false; s.numel()];
            // Enumerate all indices via unravel and confirm bijectivity.
            for off in 0..s.numel() {
                let ix = s.unravel(off).unwrap();
                let o2 = s.offset(&ix).unwrap();
                prop_assert!(!seen[o2]);
                seen[o2] = true;
            }
            prop_assert!(seen.iter().all(|&b| b));
        }
    }
}
