//! The dense `f32` tensor type.

use crate::rng::Rng;
use crate::shape::Shape;
use crate::{Result, TensorError};
use std::fmt;

/// A dense, row-major, heap-allocated `f32` tensor.
///
/// This is the single value type that flows between all computation blocks
/// in the reproduction. It is deliberately simple: owned contiguous storage,
/// no views, no broadcasting beyond what the layer implementations need.
///
/// # Examples
///
/// ```
/// use gmorph_tensor::Tensor;
///
/// let t = Tensor::zeros(&[2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.data().len(), 6);
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Tensor {
    shape: Shape,
    data: Vec<f32>,
}

impl Tensor {
    /// Creates a tensor filled with zeros.
    pub fn zeros(dims: &[usize]) -> Self {
        let shape = Shape::from(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![0.0; n],
        }
    }

    /// Creates a tensor filled with ones.
    pub fn ones(dims: &[usize]) -> Self {
        let shape = Shape::from(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![1.0; n],
        }
    }

    /// Creates a tensor filled with `value`.
    pub fn full(dims: &[usize], value: f32) -> Self {
        let shape = Shape::from(dims);
        let n = shape.numel();
        Tensor {
            shape,
            data: vec![value; n],
        }
    }

    /// Creates a tensor from raw data, validating the element count.
    pub fn from_vec(dims: &[usize], data: Vec<f32>) -> Result<Self> {
        let shape = Shape::from(dims);
        if shape.numel() != data.len() {
            return Err(TensorError::ShapeMismatch {
                op: "from_vec",
                lhs: shape.to_string(),
                rhs: format!("[len={}]", data.len()),
            });
        }
        Ok(Tensor { shape, data })
    }

    /// Creates a tensor with elements drawn from `N(0, std^2)`.
    pub fn randn(dims: &[usize], std: f32, rng: &mut Rng) -> Self {
        let shape = Shape::from(dims);
        let n = shape.numel();
        let data = (0..n).map(|_| rng.normal() * std).collect();
        Tensor { shape, data }
    }

    /// Creates a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(dims: &[usize], lo: f32, hi: f32, rng: &mut Rng) -> Self {
        let shape = Shape::from(dims);
        let n = shape.numel();
        let data = (0..n).map(|_| rng.uniform(lo, hi)).collect();
        Tensor { shape, data }
    }

    /// Returns the shape.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Returns the dimensions as a slice.
    pub fn dims(&self) -> &[usize] {
        self.shape.dims()
    }

    /// Returns the total number of elements.
    pub fn numel(&self) -> usize {
        self.shape.numel()
    }

    /// Returns the underlying data slice.
    pub fn data(&self) -> &[f32] {
        &self.data
    }

    /// Returns the underlying data slice mutably.
    pub fn data_mut(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns its raw data.
    pub fn into_data(self) -> Vec<f32> {
        self.data
    }

    /// Returns the element at a multi-dimensional index.
    pub fn at(&self, index: &[usize]) -> Result<f32> {
        Ok(self.data[self.shape.offset(index)?])
    }

    /// Sets the element at a multi-dimensional index.
    pub fn set(&mut self, index: &[usize], value: f32) -> Result<()> {
        let off = self.shape.offset(index)?;
        self.data[off] = value;
        Ok(())
    }

    /// Reinterprets the tensor with a new shape of equal element count.
    pub fn reshape(&self, dims: &[usize]) -> Result<Tensor> {
        let shape = Shape::from(dims);
        if !self.shape.can_reshape_to(&shape) {
            return Err(TensorError::ShapeMismatch {
                op: "reshape",
                lhs: self.shape.to_string(),
                rhs: shape.to_string(),
            });
        }
        Ok(Tensor {
            shape,
            data: self.data.clone(),
        })
    }

    /// In-place variant of [`Tensor::reshape`] that avoids cloning data.
    pub fn reshape_in_place(&mut self, dims: &[usize]) -> Result<()> {
        let shape = Shape::from(dims);
        if !self.shape.can_reshape_to(&shape) {
            return Err(TensorError::ShapeMismatch {
                op: "reshape_in_place",
                lhs: self.shape.to_string(),
                rhs: shape.to_string(),
            });
        }
        self.shape = shape;
        Ok(())
    }

    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor {
            shape: self.shape.clone(),
            data: self.data.iter().map(|&x| f(x)).collect(),
        }
    }

    /// Applies `f` to every element in place.
    pub fn map_in_place(&mut self, f: impl Fn(f32) -> f32) {
        for x in &mut self.data {
            *x = f(*x);
        }
    }

    /// Combines two same-shaped tensors element-wise.
    pub fn zip(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Result<Tensor> {
        self.check_same_shape(other, "zip")?;
        let data = self
            .data
            .iter()
            .zip(other.data.iter())
            .map(|(&a, &b)| f(a, b))
            .collect();
        Ok(Tensor {
            shape: self.shape.clone(),
            data,
        })
    }

    /// Element-wise addition.
    pub fn add(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a + b)
    }

    /// Element-wise subtraction.
    pub fn sub(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a - b)
    }

    /// Element-wise multiplication.
    pub fn mul(&self, other: &Tensor) -> Result<Tensor> {
        self.zip(other, |a, b| a * b)
    }

    /// In-place `self += other`.
    pub fn add_assign(&mut self, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "add_assign")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += b;
        }
        Ok(())
    }

    /// In-place `self += alpha * other` (axpy).
    pub fn axpy(&mut self, alpha: f32, other: &Tensor) -> Result<()> {
        self.check_same_shape(other, "axpy")?;
        for (a, &b) in self.data.iter_mut().zip(other.data.iter()) {
            *a += alpha * b;
        }
        Ok(())
    }

    /// Multiplies every element by a scalar, returning a new tensor.
    pub fn scale(&self, alpha: f32) -> Tensor {
        self.map(|x| x * alpha)
    }

    /// In-place scalar multiplication.
    pub fn scale_in_place(&mut self, alpha: f32) {
        self.map_in_place(|x| x * alpha);
    }

    /// Fills the tensor with zeros.
    pub fn zero_(&mut self) {
        self.data.iter_mut().for_each(|x| *x = 0.0);
    }

    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.data.iter().sum()
    }

    /// Mean of all elements (0 for empty tensors).
    pub fn mean(&self) -> f32 {
        if self.data.is_empty() {
            0.0
        } else {
            self.sum() / self.data.len() as f32
        }
    }

    /// Maximum element (negative infinity for empty tensors).
    pub fn max(&self) -> f32 {
        self.data.iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Squared L2 norm of all elements.
    pub fn sq_norm(&self) -> f32 {
        self.data.iter().map(|&x| x * x).sum()
    }

    /// Index of the maximum element along the last dimension, per row.
    ///
    /// For a `[N, C]` tensor returns `N` indices; used for classification
    /// argmax during accuracy evaluation.
    pub fn argmax_rows(&self) -> Result<Vec<usize>> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "argmax_rows",
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (n, c) = (self.shape.dim(0), self.shape.dim(1));
        let mut out = Vec::with_capacity(n);
        for i in 0..n {
            let row = &self.data[i * c..(i + 1) * c];
            let mut best = 0usize;
            for (j, &v) in row.iter().enumerate() {
                if v > row[best] {
                    best = j;
                }
            }
            out.push(best);
        }
        Ok(out)
    }

    /// Extracts row `i` from a rank-2 tensor as a new `[C]` tensor.
    pub fn row(&self, i: usize) -> Result<Tensor> {
        if self.shape.rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "row",
                expected: 2,
                actual: self.shape.rank(),
            });
        }
        let (n, c) = (self.shape.dim(0), self.shape.dim(1));
        if i >= n {
            return Err(TensorError::OutOfBounds {
                op: "row",
                index: i,
                bound: n,
            });
        }
        Tensor::from_vec(&[c], self.data[i * c..(i + 1) * c].to_vec())
    }

    /// Stacks rank-`r` tensors of identical shape into a rank-`r+1` tensor.
    pub fn stack(items: &[Tensor]) -> Result<Tensor> {
        let first = items.first().ok_or(TensorError::InvalidArgument {
            op: "stack",
            msg: "empty input".to_string(),
        })?;
        let mut dims = vec![items.len()];
        dims.extend_from_slice(first.dims());
        let mut data = Vec::with_capacity(first.numel() * items.len());
        for t in items {
            if t.shape != first.shape {
                return Err(TensorError::ShapeMismatch {
                    op: "stack",
                    lhs: first.shape.to_string(),
                    rhs: t.shape.to_string(),
                });
            }
            data.extend_from_slice(&t.data);
        }
        Tensor::from_vec(&dims, data)
    }

    /// Selects a subset of leading-dimension slices (a "batch gather").
    ///
    /// For a `[N, ...]` tensor and indices into `0..N`, returns a
    /// `[indices.len(), ...]` tensor.
    pub fn select_rows(&self, indices: &[usize]) -> Result<Tensor> {
        if self.shape.rank() == 0 {
            return Err(TensorError::RankMismatch {
                op: "select_rows",
                expected: 1,
                actual: 0,
            });
        }
        let n = self.shape.dim(0);
        let stride: usize = self.shape.dims()[1..].iter().product();
        let mut data = Vec::with_capacity(indices.len() * stride);
        for &i in indices {
            if i >= n {
                return Err(TensorError::OutOfBounds {
                    op: "select_rows",
                    index: i,
                    bound: n,
                });
            }
            data.extend_from_slice(&self.data[i * stride..(i + 1) * stride]);
        }
        let mut dims = vec![indices.len()];
        dims.extend_from_slice(&self.shape.dims()[1..]);
        Tensor::from_vec(&dims, data)
    }

    fn check_same_shape(&self, other: &Tensor, op: &'static str) -> Result<()> {
        if self.shape != other.shape {
            return Err(TensorError::ShapeMismatch {
                op,
                lhs: self.shape.to_string(),
                rhs: other.shape.to_string(),
            });
        }
        Ok(())
    }
}

impl fmt::Display for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} (", self.shape)?;
        let preview = self.data.iter().take(8);
        for (i, v) in preview.enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{v:.4}")?;
        }
        if self.data.len() > 8 {
            write!(f, ", ...")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use proptest::prelude::*;

    #[test]
    fn constructors() {
        assert_eq!(Tensor::zeros(&[2, 2]).sum(), 0.0);
        assert_eq!(Tensor::ones(&[2, 2]).sum(), 4.0);
        assert_eq!(Tensor::full(&[3], 2.5).sum(), 7.5);
    }

    #[test]
    fn from_vec_validates_len() {
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 4]).is_ok());
        assert!(Tensor::from_vec(&[2, 2], vec![1.0; 3]).is_err());
    }

    #[test]
    fn elementwise_ops() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(&[2], vec![3.0, 5.0]).unwrap();
        assert_eq!(a.add(&b).unwrap().data(), &[4.0, 7.0]);
        assert_eq!(b.sub(&a).unwrap().data(), &[2.0, 3.0]);
        assert_eq!(a.mul(&b).unwrap().data(), &[3.0, 10.0]);
        let mut c = a.clone();
        c.axpy(2.0, &b).unwrap();
        assert_eq!(c.data(), &[7.0, 12.0]);
    }

    #[test]
    fn shape_mismatch_is_error() {
        let a = Tensor::zeros(&[2]);
        let b = Tensor::zeros(&[3]);
        assert!(a.add(&b).is_err());
    }

    #[test]
    fn reshape_preserves_data() {
        let a = Tensor::from_vec(&[2, 3], (0..6).map(|x| x as f32).collect()).unwrap();
        let b = a.reshape(&[3, 2]).unwrap();
        assert_eq!(b.data(), a.data());
        assert!(a.reshape(&[4]).is_err());
    }

    #[test]
    fn argmax_rows_basic() {
        let t = Tensor::from_vec(&[2, 3], vec![0.1, 0.9, 0.2, 3.0, -1.0, 2.0]).unwrap();
        assert_eq!(t.argmax_rows().unwrap(), vec![1, 0]);
    }

    #[test]
    fn stack_and_select() {
        let a = Tensor::from_vec(&[2], vec![1.0, 2.0]).unwrap();
        let b = Tensor::from_vec(&[2], vec![3.0, 4.0]).unwrap();
        let s = Tensor::stack(&[a, b]).unwrap();
        assert_eq!(s.dims(), &[2, 2]);
        let sel = s.select_rows(&[1, 0, 1]).unwrap();
        assert_eq!(sel.dims(), &[3, 2]);
        assert_eq!(sel.data(), &[3.0, 4.0, 1.0, 2.0, 3.0, 4.0]);
        assert!(s.select_rows(&[2]).is_err());
    }

    #[test]
    fn randn_is_deterministic_per_seed() {
        let mut r1 = Rng::new(42);
        let mut r2 = Rng::new(42);
        let a = Tensor::randn(&[16], 1.0, &mut r1);
        let b = Tensor::randn(&[16], 1.0, &mut r2);
        assert_eq!(a.data(), b.data());
    }

    #[test]
    fn randn_statistics_sane() {
        let mut rng = Rng::new(7);
        let t = Tensor::randn(&[10_000], 1.0, &mut rng);
        let mean = t.mean();
        let var = t.map(|x| (x - mean) * (x - mean)).mean();
        assert!(mean.abs() < 0.05, "mean {mean}");
        assert!((var - 1.0).abs() < 0.1, "var {var}");
    }

    proptest! {
        #[test]
        fn add_commutes(xs in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let n = xs.len();
            let a = Tensor::from_vec(&[n], xs.clone()).unwrap();
            let b = Tensor::from_vec(&[n], xs.iter().map(|x| x * 0.5 + 1.0).collect()).unwrap();
            prop_assert_eq!(a.add(&b).unwrap(), b.add(&a).unwrap());
        }

        #[test]
        fn scale_distributes_over_add(xs in proptest::collection::vec(-10.0f32..10.0, 1..32)) {
            let n = xs.len();
            let a = Tensor::from_vec(&[n], xs.clone()).unwrap();
            let b = Tensor::from_vec(&[n], xs.iter().rev().cloned().collect()).unwrap();
            let lhs = a.add(&b).unwrap().scale(2.0);
            let rhs = a.scale(2.0).add(&b.scale(2.0)).unwrap();
            for (l, r) in lhs.data().iter().zip(rhs.data().iter()) {
                prop_assert!((l - r).abs() < 1e-4);
            }
        }
    }
}
