//! Activation functions, softmax, and small reductions.
//!
//! Elementwise ops on large tensors and the row loops of the softmax family
//! run across the shared worker pool ([`crate::engine`]). Chunk boundaries
//! depend only on tensor shape and every element is written by exactly one
//! chunk, so results are bit-identical across thread counts.

use crate::engine;
use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Below this element count the per-call pool dispatch outweighs the win.
const PAR_MIN: usize = 1 << 16;

/// Elements per parallel chunk for flat elementwise traversals.
const CHUNK: usize = 1 << 13;

/// Applies `f` elementwise, on the pool when the tensor is large enough.
fn par_unary(x: &Tensor, f: impl Fn(f32) -> f32 + Sync) -> Tensor {
    if x.numel() < PAR_MIN {
        return x.map(&f);
    }
    let mut out = x.clone();
    engine::parallel_chunks_mut(out.data_mut(), CHUNK, |_ci, chunk| {
        for v in chunk.iter_mut() {
            *v = f(*v);
        }
    });
    out
}

/// Combines two same-shaped tensors elementwise, on the pool when large.
fn par_zip(a: &Tensor, b: &Tensor, f: impl Fn(f32, f32) -> f32 + Sync) -> Result<Tensor> {
    if a.numel() < PAR_MIN || a.dims() != b.dims() {
        // Small tensors, and the error path for mismatched shapes.
        return a.zip(b, &f);
    }
    let mut out = a.clone();
    let bd = b.data();
    engine::parallel_chunks_mut(out.data_mut(), CHUNK, |ci, chunk| {
        let off = ci * CHUNK;
        for (i, v) in chunk.iter_mut().enumerate() {
            *v = f(*v, bd[off + i]);
        }
    });
    Ok(out)
}

/// An activation a fused kernel epilogue can apply while writing output.
///
/// Each variant uses the *same scalar function* as the standalone
/// elementwise pass ([`relu_forward`] / [`gelu_forward`]), so fusing it
/// into a GEMM or convolution write loop is bit-identical to running the
/// separate pass afterwards.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum Activation {
    /// Identity: the epilogue applies only the bias (if any).
    #[default]
    None,
    /// `max(x, 0)`.
    Relu,
    /// GELU, tanh approximation.
    Gelu,
}

impl Activation {
    /// Applies the activation to one value.
    #[inline]
    pub fn apply(self, v: f32) -> f32 {
        match self {
            Activation::None => v,
            Activation::Relu => v.max(0.0),
            Activation::Gelu => gelu_scalar(v),
        }
    }
}

/// ReLU forward: `max(x, 0)`.
pub fn relu_forward(x: &Tensor) -> Tensor {
    par_unary(x, |v| v.max(0.0))
}

/// ReLU backward: gradient flows where the *input* was positive.
pub fn relu_backward(grad_out: &Tensor, input: &Tensor) -> Result<Tensor> {
    par_zip(grad_out, input, |g, x| if x > 0.0 { g } else { 0.0 })
}

/// GELU forward (tanh approximation, as used by ViT/BERT).
pub fn gelu_forward(x: &Tensor) -> Tensor {
    par_unary(x, gelu_scalar)
}

fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

/// GELU backward via the derivative of the tanh approximation.
pub fn gelu_backward(grad_out: &Tensor, input: &Tensor) -> Result<Tensor> {
    par_zip(grad_out, input, |g, x| {
        const C: f32 = 0.797_884_6;
        let u = C * (x + 0.044715 * x * x * x);
        let t = u.tanh();
        let du = C * (1.0 + 3.0 * 0.044715 * x * x);
        let d = 0.5 * (1.0 + t) + 0.5 * x * (1.0 - t * t) * du;
        g * d
    })
}

/// Tanh forward.
pub fn tanh_forward(x: &Tensor) -> Tensor {
    par_unary(x, f32::tanh)
}

/// Tanh backward given the *output* of the forward pass.
pub fn tanh_backward(grad_out: &Tensor, output: &Tensor) -> Result<Tensor> {
    par_zip(grad_out, output, |g, y| g * (1.0 - y * y))
}

/// Sigmoid forward.
pub fn sigmoid_forward(x: &Tensor) -> Tensor {
    par_unary(x, |v| 1.0 / (1.0 + (-v).exp()))
}

/// Sigmoid backward given the *output* of the forward pass.
pub fn sigmoid_backward(grad_out: &Tensor, output: &Tensor) -> Result<Tensor> {
    par_zip(grad_out, output, |g, y| g * y * (1.0 - y))
}

/// Row-wise softmax over the last dimension of a rank-2 tensor.
///
/// Numerically stabilized by subtracting the row max.
///
/// # Examples
///
/// ```
/// use gmorph_tensor::{Tensor, ops::softmax_rows};
///
/// let x = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]).unwrap();
/// let p = softmax_rows(&x).unwrap();
/// assert!((p.sum() - 1.0).abs() < 1e-5);
/// ```
pub fn softmax_rows(x: &Tensor) -> Result<Tensor> {
    if x.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "softmax_rows",
            expected: 2,
            actual: x.shape().rank(),
        });
    }
    let (n, c) = (x.dims()[0], x.dims()[1]);
    let mut out = x.clone();
    let do_row = |row: &mut [f32]| {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let mut sum = 0.0f32;
        for v in row.iter_mut() {
            *v = (*v - m).exp();
            sum += *v;
        }
        let inv = 1.0 / sum;
        for v in row.iter_mut() {
            *v *= inv;
        }
    };
    if n * c < PAR_MIN {
        for row in out.data_mut().chunks_mut(c) {
            do_row(row);
        }
    } else {
        engine::parallel_chunks_mut(out.data_mut(), c, |_i, row| do_row(row));
    }
    Ok(out)
}

/// Backward pass of row-wise softmax given its output `p` and `dL/dp`.
///
/// Uses the Jacobian-vector product `dL/dx_j = p_j (g_j - Σ_i g_i p_i)`.
pub fn softmax_rows_backward(grad_out: &Tensor, output: &Tensor) -> Result<Tensor> {
    if grad_out.dims() != output.dims() {
        return Err(TensorError::ShapeMismatch {
            op: "softmax_rows_backward",
            lhs: grad_out.shape().to_string(),
            rhs: output.shape().to_string(),
        });
    }
    let (n, c) = (output.dims()[0], output.dims()[1]);
    let mut gi = Tensor::zeros(output.dims());
    let do_row = |i: usize, row: &mut [f32]| {
        let p = &output.data()[i * c..(i + 1) * c];
        let g = &grad_out.data()[i * c..(i + 1) * c];
        let dot: f32 = p.iter().zip(g.iter()).map(|(a, b)| a * b).sum();
        for j in 0..c {
            row[j] = p[j] * (g[j] - dot);
        }
    };
    if n * c < PAR_MIN {
        for (i, row) in gi.data_mut().chunks_mut(c).enumerate() {
            do_row(i, row);
        }
    } else {
        engine::parallel_chunks_mut(gi.data_mut(), c, do_row);
    }
    Ok(gi)
}

/// Row-wise log-softmax over the last dimension of a rank-2 tensor.
pub fn log_softmax_rows(x: &Tensor) -> Result<Tensor> {
    if x.shape().rank() != 2 {
        return Err(TensorError::RankMismatch {
            op: "log_softmax_rows",
            expected: 2,
            actual: x.shape().rank(),
        });
    }
    let (n, c) = (x.dims()[0], x.dims()[1]);
    let mut out = x.clone();
    let do_row = |row: &mut [f32]| {
        let m = row.iter().copied().fold(f32::NEG_INFINITY, f32::max);
        let lse = m + row.iter().map(|v| (v - m).exp()).sum::<f32>().ln();
        for v in row.iter_mut() {
            *v -= lse;
        }
    };
    if n * c < PAR_MIN {
        for row in out.data_mut().chunks_mut(c) {
            do_row(row);
        }
    } else {
        engine::parallel_chunks_mut(out.data_mut(), c, |_i, row| do_row(row));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;

    fn numerical_check(
        fwd: impl Fn(&Tensor) -> Tensor,
        bwd: impl Fn(&Tensor, &Tensor) -> Tensor,
        uses_output: bool,
    ) {
        let mut rng = Rng::new(5);
        let x = Tensor::randn(&[8], 1.0, &mut rng);
        let y = fwd(&x);
        let ones = Tensor::ones(&[8]);
        let state = if uses_output { &y } else { &x };
        let ana = bwd(&ones, state);
        let eps = 1e-3;
        for i in 0..8 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (fwd(&xp).sum() - fwd(&xm).sum()) / (2.0 * eps);
            assert!(
                (num - ana.data()[i]).abs() < 2e-2,
                "grad[{i}]: {num} vs {}",
                ana.data()[i]
            );
        }
    }

    #[test]
    fn relu_grad_checks() {
        numerical_check(relu_forward, |g, x| relu_backward(g, x).unwrap(), false);
    }

    #[test]
    fn gelu_grad_checks() {
        numerical_check(gelu_forward, |g, x| gelu_backward(g, x).unwrap(), false);
    }

    #[test]
    fn tanh_grad_checks() {
        numerical_check(tanh_forward, |g, y| tanh_backward(g, y).unwrap(), true);
    }

    #[test]
    fn sigmoid_grad_checks() {
        numerical_check(
            sigmoid_forward,
            |g, y| sigmoid_backward(g, y).unwrap(),
            true,
        );
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let mut rng = Rng::new(1);
        let x = Tensor::randn(&[4, 7], 3.0, &mut rng);
        let p = softmax_rows(&x).unwrap();
        for i in 0..4 {
            let s: f32 = p.data()[i * 7..(i + 1) * 7].iter().sum();
            assert!((s - 1.0).abs() < 1e-5);
        }
        for &v in p.data() {
            assert!(v >= 0.0);
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Tensor::from_vec(&[1, 3], vec![1.0, 2.0, 3.0]).unwrap();
        let shifted = x.map(|v| v + 100.0);
        let a = softmax_rows(&x).unwrap();
        let b = softmax_rows(&shifted).unwrap();
        for (p, q) in a.data().iter().zip(b.data().iter()) {
            assert!((p - q).abs() < 1e-5);
        }
    }

    #[test]
    fn softmax_backward_grad_checks() {
        let mut rng = Rng::new(2);
        let x = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let g = Tensor::randn(&[2, 4], 1.0, &mut rng);
        let p = softmax_rows(&x).unwrap();
        let gi = softmax_rows_backward(&g, &p).unwrap();
        let eps = 1e-3;
        let loss = |t: &Tensor| -> f32 {
            softmax_rows(t)
                .unwrap()
                .data()
                .iter()
                .zip(g.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        for i in 0..8 {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let num = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (num - gi.data()[i]).abs() < 1e-2,
                "{num} vs {}",
                gi.data()[i]
            );
        }
    }

    #[test]
    fn log_softmax_matches_log_of_softmax() {
        let mut rng = Rng::new(3);
        let x = Tensor::randn(&[3, 5], 2.0, &mut rng);
        let a = log_softmax_rows(&x).unwrap();
        let b = softmax_rows(&x).unwrap().map(|v| v.ln());
        for (p, q) in a.data().iter().zip(b.data().iter()) {
            assert!((p - q).abs() < 1e-4);
        }
    }
}
