//! Crash-safe checkpoint container: a versioned, checksummed, atomic
//! on-disk envelope for snapshot payloads.
//!
//! Higher layers (search state, fine-tuning state) serialize themselves
//! into named binary *sections*; this module owns everything that makes
//! the result durable and trustworthy:
//!
//! ```text
//! file    := magic(u32="GMCP") format(u32) body_len(u64) crc32(u32) body
//! body    := kind_len(u32) kind(utf8) schema(u32) count(u32) section*
//! section := name_len(u32) name(utf8) data_len(u64) data
//! ```
//!
//! * **Versioning** — `format` is this envelope's layout version; `kind` +
//!   `schema` identify and version the payload so readers can reject
//!   snapshots written by a different subsystem or an incompatible schema
//!   *before* decoding any payload bytes.
//! * **Checksumming** — `crc32` (IEEE) covers the payload; truncation and
//!   bit flips are detected on load and reported as [`is_corruption`]
//!   errors rather than garbage state.
//! * **Atomicity** — [`save_atomic`] writes to a `<file>.tmp` sibling,
//!   fsyncs, then renames over the target; a crash mid-write leaves either
//!   the old snapshot or a `.tmp` leftover that loaders ignore, never a
//!   half-written checkpoint under the real name.
//!
//! The byte-level primitives ([`ByteWriter`]/[`ByteReader`]) encode floats
//! via `to_bits`, so every snapshot round-trips *bit-exactly* — the
//! foundation of the deterministic-replay guarantee tested in
//! `tests/checkpoint_resume.rs`.

use crate::{Result, TensorError};
use std::io::Write;
use std::path::Path;

/// Envelope magic: "GMCP".
const MAGIC: u32 = 0x474D_4350;

/// Envelope layout version (the outer format, not the payload schema).
pub const FORMAT_VERSION: u32 = 1;

/// Marker prefix distinguishing corruption from plain I/O failures.
const CORRUPT: &str = "checkpoint corrupt: ";

fn corrupt(msg: impl std::fmt::Display) -> TensorError {
    TensorError::Io(format!("{CORRUPT}{msg}"))
}

fn io_err(e: std::io::Error) -> TensorError {
    TensorError::Io(format!("checkpoint io: {e}"))
}

/// True when `err` reports a corrupted or incompatible checkpoint (bad
/// magic/checksum/version/truncation) rather than an ordinary I/O failure.
pub fn is_corruption(err: &TensorError) -> bool {
    matches!(err, TensorError::Io(msg) if msg.contains(CORRUPT))
}

/// FNV-1a 64-bit offset basis — seed for [`fnv1a`] chains.
pub const FNV_OFFSET: u64 = 0xCBF2_9CE4_8422_2325;

/// FNV-1a 64-bit — a fixed, process-independent hash for config
/// fingerprints (unlike `DefaultHasher`, stable across toolchains).
pub fn fnv1a(bytes: &[u8], mut hash: u64) -> u64 {
    for &b in bytes {
        hash ^= b as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01B3);
    }
    hash
}

/// IEEE CRC-32 (the zlib/PNG polynomial), bitwise, no tables.
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc ^= b as u32;
        for _ in 0..8 {
            let mask = (crc & 1).wrapping_neg();
            crc = (crc >> 1) ^ (0xEDB8_8320 & mask);
        }
    }
    !crc
}

// ---------------------------------------------------------------------
// Byte-level codec
// ---------------------------------------------------------------------

/// Appends little-endian primitives to a byte buffer.
#[derive(Debug, Default)]
pub struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    /// Creates an empty writer.
    pub fn new() -> Self {
        ByteWriter::default()
    }

    /// Consumes the writer, returning the bytes.
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Appends one byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Appends a little-endian u32.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends a little-endian u64.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Appends an f32 bit-exactly (NaN payloads included).
    pub fn put_f32(&mut self, v: f32) {
        self.put_u32(v.to_bits());
    }

    /// Appends an f64 bit-exactly.
    pub fn put_f64(&mut self, v: f64) {
        self.put_u64(v.to_bits());
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_u32(s.len() as u32);
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Appends a length-prefixed byte blob.
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.put_u64(bytes.len() as u64);
        self.buf.extend_from_slice(bytes);
    }
}

/// Reads little-endian primitives with bounds checking; every overrun is a
/// corruption error, never a panic.
#[derive(Debug)]
pub struct ByteReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> ByteReader<'a> {
    /// Wraps a byte slice.
    pub fn new(buf: &'a [u8]) -> Self {
        ByteReader { buf, pos: 0 }
    }

    /// Bytes left unread.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(corrupt(format!(
                "wanted {n} bytes at offset {}, only {} left",
                self.pos,
                self.remaining()
            )));
        }
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Reads one byte.
    pub fn get_u8(&mut self) -> Result<u8> {
        Ok(self.take(1)?[0])
    }

    /// Reads a little-endian u32.
    pub fn get_u32(&mut self) -> Result<u32> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().unwrap()))
    }

    /// Reads a little-endian u64.
    pub fn get_u64(&mut self) -> Result<u64> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().unwrap()))
    }

    /// Reads a u64 and narrows it to usize, rejecting implausible sizes.
    pub fn get_len(&mut self, cap: usize) -> Result<usize> {
        let v = self.get_u64()?;
        let v = usize::try_from(v).map_err(|_| corrupt(format!("length {v} overflows usize")))?;
        if v > cap {
            return Err(corrupt(format!("implausible length {v} (cap {cap})")));
        }
        Ok(v)
    }

    /// Reads an f32 bit-exactly.
    pub fn get_f32(&mut self) -> Result<f32> {
        Ok(f32::from_bits(self.get_u32()?))
    }

    /// Reads an f64 bit-exactly.
    pub fn get_f64(&mut self) -> Result<f64> {
        Ok(f64::from_bits(self.get_u64()?))
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn get_str(&mut self) -> Result<String> {
        let n = self.get_u32()? as usize;
        if n > 1 << 24 {
            return Err(corrupt(format!("implausible string length {n}")));
        }
        let bytes = self.take(n)?;
        String::from_utf8(bytes.to_vec()).map_err(|e| corrupt(format!("bad utf8: {e}")))
    }

    /// Reads a length-prefixed byte blob.
    pub fn get_bytes(&mut self) -> Result<Vec<u8>> {
        let n = self.get_len(1 << 32)?;
        Ok(self.take(n)?.to_vec())
    }
}

// ---------------------------------------------------------------------
// Envelope
// ---------------------------------------------------------------------

/// A decoded checkpoint: payload identity plus named sections.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Envelope {
    /// Payload kind (e.g. `"search"`, `"batched"`, `"teacher"`).
    pub kind: String,
    /// Payload schema version, owned by the writer of `kind`.
    pub schema: u32,
    /// Named binary sections, in write order.
    pub sections: Vec<(String, Vec<u8>)>,
}

impl Envelope {
    /// Creates an envelope for a payload kind and schema version.
    pub fn new(kind: &str, schema: u32) -> Self {
        Envelope {
            kind: kind.to_string(),
            schema,
            sections: Vec::new(),
        }
    }

    /// Appends a named section.
    pub fn push(&mut self, name: &str, bytes: Vec<u8>) {
        self.sections.push((name.to_string(), bytes));
    }

    /// Borrows a section's bytes by name.
    pub fn section(&self, name: &str) -> Result<&[u8]> {
        self.sections
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, b)| b.as_slice())
            .ok_or_else(|| corrupt(format!("missing section {name:?}")))
    }

    /// Serializes header + checksummed body into one byte vector.
    ///
    /// The CRC covers *everything* after the checksum field — kind,
    /// schema, and sections alike — so a bit flip anywhere in the file is
    /// detected (flips in magic/format/crc themselves fail their own
    /// checks).
    pub fn encode(&self) -> Vec<u8> {
        let mut body = ByteWriter::new();
        body.put_str(&self.kind);
        body.put_u32(self.schema);
        body.put_u32(self.sections.len() as u32);
        for (name, bytes) in &self.sections {
            body.put_str(name);
            body.put_bytes(bytes);
        }
        let body = body.into_bytes();
        let mut out = ByteWriter::new();
        out.put_u32(MAGIC);
        out.put_u32(FORMAT_VERSION);
        out.put_u64(body.len() as u64);
        out.put_u32(crc32(&body));
        let mut bytes = out.into_bytes();
        bytes.extend_from_slice(&body);
        bytes
    }

    /// Decodes and verifies an encoded envelope.
    ///
    /// Magic, format version, body length, and CRC are all checked before
    /// any body field is interpreted; any mismatch is an [`is_corruption`]
    /// error.
    pub fn decode(bytes: &[u8]) -> Result<Envelope> {
        let mut r = ByteReader::new(bytes);
        if r.get_u32()? != MAGIC {
            return Err(corrupt("bad magic"));
        }
        let format = r.get_u32()?;
        if format != FORMAT_VERSION {
            return Err(corrupt(format!(
                "unsupported envelope format v{format} (expected v{FORMAT_VERSION})"
            )));
        }
        let body_len = r.get_len(1 << 34)?;
        let stored_crc = r.get_u32()?;
        if r.remaining() != body_len {
            return Err(corrupt(format!(
                "body length {body_len} promised, {} present",
                r.remaining()
            )));
        }
        let body = r.take(body_len)?;
        let actual_crc = crc32(body);
        if actual_crc != stored_crc {
            return Err(corrupt(format!(
                "crc mismatch: stored {stored_crc:#010x}, computed {actual_crc:#010x}"
            )));
        }
        let mut pr = ByteReader::new(body);
        let kind = pr.get_str()?;
        let schema = pr.get_u32()?;
        let count = pr.get_u32()? as usize;
        if count > 1 << 16 {
            return Err(corrupt(format!("implausible section count {count}")));
        }
        let mut sections = Vec::with_capacity(count);
        for _ in 0..count {
            let name = pr.get_str()?;
            let bytes = pr.get_bytes()?;
            sections.push((name, bytes));
        }
        Ok(Envelope {
            kind,
            schema,
            sections,
        })
    }
}

/// The `.tmp` sibling a checkpoint is staged in before the atomic rename.
pub fn staging_path(path: &Path) -> std::path::PathBuf {
    let mut name = path.file_name().unwrap_or_default().to_os_string();
    name.push(".tmp");
    path.with_file_name(name)
}

/// Writes an envelope to `path` atomically: stage into `<path>.tmp`,
/// flush + fsync, rename over the target. Readers either see the previous
/// snapshot or the complete new one — never a prefix.
pub fn save_atomic(path: &Path, envelope: &Envelope) -> Result<()> {
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent).map_err(io_err)?;
        }
    }
    let tmp = staging_path(path);
    let bytes = envelope.encode();
    let mut f = std::fs::File::create(&tmp).map_err(io_err)?;
    f.write_all(&bytes).map_err(io_err)?;
    f.sync_all().map_err(io_err)?;
    drop(f);
    std::fs::rename(&tmp, path).map_err(|e| {
        // Never leave a stale staging file behind a failed publish.
        std::fs::remove_file(&tmp).ok();
        io_err(e)
    })
}

/// Loads and verifies an envelope, requiring the expected payload `kind`.
///
/// Schema compatibility is the caller's concern (the payload owner knows
/// which schema versions it can migrate); a *kind* mismatch is always
/// corruption from this layer's point of view.
pub fn load(path: &Path, kind: &str) -> Result<Envelope> {
    let bytes = std::fs::read(path).map_err(io_err)?;
    let env = Envelope::decode(&bytes)?;
    if env.kind != kind {
        return Err(corrupt(format!(
            "payload kind {:?} where {kind:?} was expected",
            env.kind
        )));
    }
    Ok(env)
}

// ---------------------------------------------------------------------
// Durability schedule, rotation, crash hooks, and fallback loading
// ---------------------------------------------------------------------

/// How a checkpointed run simulates a crash (test/CI hook).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CrashKind {
    /// Panic after checkpointing the target iteration: unwinds, so the
    /// manager's `Drop` flush runs (in-process `catch_unwind` tests).
    Panic,
    /// `process::abort` — SIGKILL-like, no unwinding, no `Drop` (CI
    /// resume-smoke uses this from a child process).
    Abort,
}

/// Checkpointing configuration for a search or fine-tuning run.
#[derive(Debug, Clone)]
pub struct CheckpointOptions {
    /// Directory snapshots are written into (created on demand).
    pub dir: std::path::PathBuf,
    /// Write a snapshot every `every` iterations (clamped to ≥ 1).
    pub every: usize,
    /// Resume from the newest valid snapshot in `dir`, when one exists
    /// and its config fingerprint matches.
    pub resume: bool,
    /// Snapshots retained on disk (older ones are rotated out; ≥ 1).
    pub keep: usize,
    /// Simulate a crash after checkpointing iteration `.0`.
    pub crash_after: Option<(usize, CrashKind)>,
}

impl CheckpointOptions {
    /// Checkpointing into `dir` with per-iteration granularity.
    pub fn new(dir: impl Into<std::path::PathBuf>) -> Self {
        CheckpointOptions {
            dir: dir.into(),
            every: 1,
            resume: false,
            keep: 2,
            crash_after: None,
        }
    }

    /// Reads the crash hook from `GMORPH_CRASH_AFTER`.
    ///
    /// Accepts `"12"` (abort after iteration 12) or `"12:panic"`. Returns
    /// `None` when unset or unparseable.
    pub fn crash_after_from_env() -> Option<(usize, CrashKind)> {
        let raw = std::env::var("GMORPH_CRASH_AFTER").ok()?;
        let (iter, kind) = match raw.split_once(':') {
            Some((n, "panic")) => (n, CrashKind::Panic),
            Some((n, _)) => (n, CrashKind::Abort),
            None => (raw.as_str(), CrashKind::Abort),
        };
        iter.trim().parse::<usize>().ok().map(|i| (i, kind))
    }

    /// Executes the crash hook when `iter` is the configured point.
    pub fn maybe_crash(&self, iter: usize) {
        if let Some((at, kind)) = self.crash_after {
            if iter == at {
                match kind {
                    CrashKind::Panic => {
                        panic!("GMORPH_CRASH_AFTER: simulated crash at iteration {iter}")
                    }
                    CrashKind::Abort => {
                        eprintln!("GMORPH_CRASH_AFTER: aborting at iteration {iter}");
                        std::process::abort();
                    }
                }
            }
        }
    }
}

/// Writes snapshots on a durability schedule with rotation.
///
/// `tick` is called once per completed iteration with the fresh snapshot;
/// it writes to disk every `every` iterations and keeps the latest
/// snapshot *pending* in between. `Drop` flushes the pending snapshot —
/// and `Drop` runs during panic unwinding, so a panicking run loses zero
/// completed iterations. (An aborted process skips `Drop`; its loss is
/// bounded by `every`.)
#[derive(Debug)]
pub struct CheckpointManager {
    dir: std::path::PathBuf,
    prefix: &'static str,
    every: usize,
    keep: usize,
    pending: Option<(usize, Envelope)>,
    on_disk: Vec<usize>,
}

impl CheckpointManager {
    /// Creates a manager writing `prefix-NNNNNN.gmck` files under
    /// `opts.dir`.
    pub fn new(opts: &CheckpointOptions, prefix: &'static str) -> Self {
        CheckpointManager {
            dir: opts.dir.clone(),
            prefix,
            every: opts.every.max(1),
            keep: opts.keep.max(1),
            pending: None,
            on_disk: Vec::new(),
        }
    }

    fn path_for(&self, iter: usize) -> std::path::PathBuf {
        self.dir.join(format!("{}-{iter:06}.gmck", self.prefix))
    }

    /// Accepts the snapshot for a completed iteration; writes it out when
    /// the iteration hits the durability schedule.
    pub fn tick(&mut self, iter: usize, env: Envelope) -> Result<()> {
        self.pending = Some((iter, env));
        if iter.is_multiple_of(self.every) {
            self.flush()?;
        }
        Ok(())
    }

    /// Writes the pending snapshot (if any) to disk atomically and rotates
    /// old snapshots out.
    pub fn flush(&mut self) -> Result<()> {
        let Some((iter, env)) = self.pending.take() else {
            return Ok(());
        };
        let _span = gmorph_telemetry::span!("checkpoint.write_span", iter = iter);
        let path = self.path_for(iter);
        save_atomic(&path, &env)?;
        gmorph_telemetry::counter!("checkpoint.write");
        gmorph_telemetry::point!(
            "checkpoint.written",
            iter = iter,
            path = path.display().to_string().as_str()
        );
        self.on_disk.push(iter);
        while self.on_disk.len() > self.keep {
            let old = self.on_disk.remove(0);
            std::fs::remove_file(self.path_for(old)).ok();
        }
        Ok(())
    }
}

impl Drop for CheckpointManager {
    fn drop(&mut self) {
        // Flush runs during panic unwinding too; never double-panic.
        let _ = self.flush();
    }
}

/// Scans `dir` for `prefix-NNNNNN.gmck` snapshots, newest first.
///
/// Leftover `.tmp` staging files never match the pattern, so a crash
/// mid-write is invisible here by construction.
pub fn snapshot_files(dir: &Path, prefix: &str) -> Vec<(usize, std::path::PathBuf)> {
    let Ok(entries) = std::fs::read_dir(dir) else {
        return Vec::new();
    };
    let mut found: Vec<(usize, std::path::PathBuf)> = entries
        .flatten()
        .filter_map(|e| {
            let name = e.file_name().into_string().ok()?;
            let rest = name
                .strip_prefix(prefix)?
                .strip_prefix('-')?
                .strip_suffix(".gmck")?;
            Some((rest.parse::<usize>().ok()?, e.path()))
        })
        .collect();
    found.sort_by_key(|e| std::cmp::Reverse(e.0));
    found
}

/// Loads the newest valid snapshot envelope of `kind` from `dir`.
///
/// Corrupt or unreadable snapshots are skipped (each logging a
/// `checkpoint.corrupt` telemetry event) and the next-newest is tried;
/// `Ok(None)` means no valid snapshot exists — callers start clean.
pub fn load_latest(dir: &Path, prefix: &str, kind: &str) -> Result<Option<Envelope>> {
    for (iter, path) in snapshot_files(dir, prefix) {
        match load(&path, kind) {
            Ok(env) => {
                gmorph_telemetry::counter!("checkpoint.load");
                gmorph_telemetry::point!(
                    "checkpoint.loaded",
                    iter = iter,
                    path = path.display().to_string().as_str()
                );
                return Ok(Some(env));
            }
            Err(err) => {
                gmorph_telemetry::counter!("checkpoint.corrupt");
                gmorph_telemetry::point!(
                    "checkpoint.rejected",
                    iter = iter,
                    path = path.display().to_string().as_str(),
                    corruption = is_corruption(&err),
                    error = err.to_string().as_str()
                );
            }
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Envelope {
        let mut e = Envelope::new("test", 3);
        e.push("alpha", vec![1, 2, 3, 4]);
        e.push("beta", Vec::new());
        e.push("gamma", (0..=255u8).collect());
        e
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // IEEE CRC-32 of "123456789" is the classic check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn byte_codec_roundtrips_bit_exactly() {
        let mut w = ByteWriter::new();
        w.put_u8(7);
        w.put_u32(0xDEAD_BEEF);
        w.put_u64(u64::MAX - 1);
        w.put_f32(f32::NAN);
        w.put_f64(-0.0);
        w.put_str("héllo");
        w.put_bytes(&[9, 9, 9]);
        let bytes = w.into_bytes();
        let mut r = ByteReader::new(&bytes);
        assert_eq!(r.get_u8().unwrap(), 7);
        assert_eq!(r.get_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(r.get_u64().unwrap(), u64::MAX - 1);
        assert_eq!(r.get_f32().unwrap().to_bits(), f32::NAN.to_bits());
        assert_eq!(r.get_f64().unwrap().to_bits(), (-0.0f64).to_bits());
        assert_eq!(r.get_str().unwrap(), "héllo");
        assert_eq!(r.get_bytes().unwrap(), vec![9, 9, 9]);
        assert_eq!(r.remaining(), 0);
    }

    #[test]
    fn reader_rejects_overruns() {
        let mut r = ByteReader::new(&[1, 2]);
        assert!(is_corruption(&r.get_u32().unwrap_err()));
    }

    #[test]
    fn envelope_roundtrips() {
        let e = sample();
        let bytes = e.encode();
        let back = Envelope::decode(&bytes).unwrap();
        assert_eq!(back, e);
        assert_eq!(back.section("gamma").unwrap().len(), 256);
        assert!(is_corruption(&back.section("missing").unwrap_err()));
    }

    #[test]
    fn every_truncation_is_detected() {
        let bytes = sample().encode();
        for cut in 0..bytes.len() {
            let err = Envelope::decode(&bytes[..cut]).unwrap_err();
            assert!(is_corruption(&err), "cut at {cut}: {err:?}");
        }
    }

    #[test]
    fn every_bit_flip_is_detected() {
        let bytes = sample().encode();
        for i in 0..bytes.len() {
            let mut bad = bytes.clone();
            bad[i] ^= 0x40;
            // Either a decode error or (never) silent acceptance of
            // altered content.
            match Envelope::decode(&bad) {
                Err(e) => assert!(is_corruption(&e), "flip at {i}: {e:?}"),
                Ok(env) => panic!("flip at byte {i} went undetected: {env:?}"),
            }
        }
    }

    #[test]
    fn atomic_save_load_roundtrip_and_tmp_cleanup() {
        let dir = std::env::temp_dir().join(format!("gmorph-ckpt-env-{}", std::process::id()));
        let path = dir.join("snap.gmck");
        let e = sample();
        save_atomic(&path, &e).unwrap();
        assert!(!staging_path(&path).exists(), "staging file left behind");
        let back = load(&path, "test").unwrap();
        assert_eq!(back, e);
        // Kind mismatch is corruption.
        assert!(is_corruption(&load(&path, "other").unwrap_err()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
