//! Spatial resizing (nearest and bilinear) with backward passes.
//!
//! This implements the spatial half of the paper's *re-scale operator*
//! (§4.1): when a node reuses features whose width/height differ from what
//! it expects, GMorph "resizes the width and height of the features using
//! interpolation techniques" (the channel half is a 1×1 convolution, which
//! lives in `gmorph-nn`).

use crate::tensor::Tensor;
use crate::{Result, TensorError};

/// Interpolation mode for [`resize2d_forward`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InterpMode {
    /// Nearest-neighbour sampling.
    Nearest,
    /// Bilinear sampling with align_corners=false semantics.
    Bilinear,
}

fn check_nchw(t: &Tensor, op: &'static str) -> Result<(usize, usize, usize, usize)> {
    if t.shape().rank() != 4 {
        return Err(TensorError::RankMismatch {
            op,
            expected: 4,
            actual: t.shape().rank(),
        });
    }
    Ok((t.dims()[0], t.dims()[1], t.dims()[2], t.dims()[3]))
}

/// Source taps and weights for one output pixel.
#[derive(Debug, Clone, Copy)]
struct Taps {
    src: [usize; 4],
    w: [f32; 4],
    n: usize,
}

fn taps_for(
    mode: InterpMode,
    oy: usize,
    ox: usize,
    h: usize,
    w: usize,
    oh: usize,
    ow: usize,
) -> Taps {
    match mode {
        InterpMode::Nearest => {
            let sy = (oy * h) / oh;
            let sx = (ox * w) / ow;
            Taps {
                src: [sy * w + sx, 0, 0, 0],
                w: [1.0, 0.0, 0.0, 0.0],
                n: 1,
            }
        }
        InterpMode::Bilinear => {
            // align_corners = false mapping, clamped to the border.
            let fy = ((oy as f32 + 0.5) * h as f32 / oh as f32 - 0.5)
                .clamp(0.0, (h - 1) as f32);
            let fx = ((ox as f32 + 0.5) * w as f32 / ow as f32 - 0.5)
                .clamp(0.0, (w - 1) as f32);
            let y0 = fy.floor() as usize;
            let x0 = fx.floor() as usize;
            let y1 = (y0 + 1).min(h - 1);
            let x1 = (x0 + 1).min(w - 1);
            let dy = fy - y0 as f32;
            let dx = fx - x0 as f32;
            Taps {
                src: [y0 * w + x0, y0 * w + x1, y1 * w + x0, y1 * w + x1],
                w: [
                    (1.0 - dy) * (1.0 - dx),
                    (1.0 - dy) * dx,
                    dy * (1.0 - dx),
                    dy * dx,
                ],
                n: 4,
            }
        }
    }
}

/// Resizes a `[N, C, H, W]` tensor to spatial size `(oh, ow)`.
///
/// # Examples
///
/// ```
/// use gmorph_tensor::{Tensor, interp::{resize2d_forward, InterpMode}};
///
/// let x = Tensor::ones(&[1, 2, 4, 4]);
/// let y = resize2d_forward(&x, 8, 8, InterpMode::Bilinear).unwrap();
/// assert_eq!(y.dims(), &[1, 2, 8, 8]);
/// // Interpolating a constant image stays constant.
/// assert!((y.sum() - 128.0).abs() < 1e-3);
/// ```
pub fn resize2d_forward(input: &Tensor, oh: usize, ow: usize, mode: InterpMode) -> Result<Tensor> {
    let (n, c, h, w) = check_nchw(input, "resize2d_forward")?;
    if oh == 0 || ow == 0 {
        return Err(TensorError::InvalidArgument {
            op: "resize2d_forward",
            msg: "target size must be nonzero".to_string(),
        });
    }
    if (oh, ow) == (h, w) {
        return Ok(input.clone());
    }
    let mut out = Tensor::zeros(&[n, c, oh, ow]);
    let data = input.data();
    let mut oi = 0usize;
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let t = taps_for(mode, oy, ox, h, w, oh, ow);
                    let mut acc = 0.0f32;
                    for i in 0..t.n {
                        acc += t.w[i] * data[plane + t.src[i]];
                    }
                    out.data_mut()[oi] = acc;
                    oi += 1;
                }
            }
        }
    }
    Ok(out)
}

/// Backward pass of [`resize2d_forward`] (the adjoint scatter).
pub fn resize2d_backward(
    grad_output: &Tensor,
    input_dims: &[usize],
    mode: InterpMode,
) -> Result<Tensor> {
    let (n, c, h, w) = (
        input_dims[0],
        input_dims[1],
        input_dims[2],
        input_dims[3],
    );
    let (gn, gc, oh, ow) = check_nchw(grad_output, "resize2d_backward")?;
    if gn != n || gc != c {
        return Err(TensorError::ShapeMismatch {
            op: "resize2d_backward",
            lhs: format!("[{n}, {c}, ..]"),
            rhs: grad_output.shape().to_string(),
        });
    }
    if (oh, ow) == (h, w) {
        return Ok(grad_output.clone());
    }
    let mut grad_input = Tensor::zeros(input_dims);
    let god = grad_output.data();
    let mut oi = 0usize;
    for s in 0..n {
        for ch in 0..c {
            let plane = (s * c + ch) * h * w;
            for oy in 0..oh {
                for ox in 0..ow {
                    let t = taps_for(mode, oy, ox, h, w, oh, ow);
                    let g = god[oi];
                    oi += 1;
                    for i in 0..t.n {
                        grad_input.data_mut()[plane + t.src[i]] += t.w[i] * g;
                    }
                }
            }
        }
    }
    Ok(grad_input)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::Rng;
    use proptest::prelude::*;

    #[test]
    fn identity_resize_is_noop() {
        let mut rng = Rng::new(0);
        let x = Tensor::randn(&[1, 2, 3, 3], 1.0, &mut rng);
        let y = resize2d_forward(&x, 3, 3, InterpMode::Bilinear).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn nearest_upsample_repeats() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![1.0, 2.0, 3.0, 4.0]).unwrap();
        let y = resize2d_forward(&x, 4, 4, InterpMode::Nearest).unwrap();
        assert_eq!(y.at(&[0, 0, 0, 0]).unwrap(), 1.0);
        assert_eq!(y.at(&[0, 0, 0, 1]).unwrap(), 1.0);
        assert_eq!(y.at(&[0, 0, 3, 3]).unwrap(), 4.0);
    }

    #[test]
    fn bilinear_preserves_constant_fields() {
        let x = Tensor::full(&[1, 1, 5, 7], 2.5);
        for &(oh, ow) in &[(3usize, 4usize), (10, 14), (1, 1), (7, 5)] {
            let y = resize2d_forward(&x, oh, ow, InterpMode::Bilinear).unwrap();
            for &v in y.data() {
                assert!((v - 2.5).abs() < 1e-5);
            }
        }
    }

    #[test]
    fn bilinear_downsample_2x_averages() {
        let x = Tensor::from_vec(&[1, 1, 2, 2], vec![0.0, 2.0, 4.0, 6.0]).unwrap();
        let y = resize2d_forward(&x, 1, 1, InterpMode::Bilinear).unwrap();
        assert!((y.data()[0] - 3.0).abs() < 1e-5);
    }

    #[test]
    fn backward_is_adjoint_of_forward() {
        // <resize(x), g> == <x, resize_backward(g)> for random x, g.
        let mut rng = Rng::new(9);
        for &mode in &[InterpMode::Nearest, InterpMode::Bilinear] {
            let x = Tensor::randn(&[1, 2, 4, 5], 1.0, &mut rng);
            let g = Tensor::randn(&[1, 2, 7, 3], 1.0, &mut rng);
            let y = resize2d_forward(&x, 7, 3, mode).unwrap();
            let gx = resize2d_backward(&g, x.dims(), mode).unwrap();
            let lhs: f32 = y.data().iter().zip(g.data()).map(|(a, b)| a * b).sum();
            let rhs: f32 = x.data().iter().zip(gx.data()).map(|(a, b)| a * b).sum();
            assert!((lhs - rhs).abs() < 1e-3, "{lhs} vs {rhs} ({mode:?})");
        }
    }

    #[test]
    fn rejects_zero_target() {
        let x = Tensor::zeros(&[1, 1, 2, 2]);
        assert!(resize2d_forward(&x, 0, 2, InterpMode::Nearest).is_err());
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(24))]

        #[test]
        fn output_within_input_bounds(
            h in 1usize..6, w in 1usize..6, oh in 1usize..8, ow in 1usize..8, seed in 0u64..100
        ) {
            let mut rng = Rng::new(seed);
            let x = Tensor::rand_uniform(&[1, 1, h, w], -1.0, 1.0, &mut rng);
            for mode in [InterpMode::Nearest, InterpMode::Bilinear] {
                let y = resize2d_forward(&x, oh, ow, mode).unwrap();
                let (lo, hi) = x.data().iter().fold(
                    (f32::INFINITY, f32::NEG_INFINITY),
                    |(lo, hi), &v| (lo.min(v), hi.max(v)),
                );
                for &v in y.data() {
                    prop_assert!(v >= lo - 1e-4 && v <= hi + 1e-4);
                }
            }
        }
    }
}
