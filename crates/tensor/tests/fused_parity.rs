//! Bit-exactness of the fused kernel epilogues and determinism of the
//! buffer pool.
//!
//! The fused GEMM/conv variants promise *bit-identical* results to the
//! separate bias-add + activation passes (the epilogue applies the same
//! scalar sequence after full accumulation), and the buffer pool promises
//! to be invisible: same bits whether it is on or off, and for any thread
//! count. These tests pin both promises down across the naive and blocked
//! kernel paths with deliberately odd shapes.

use std::sync::Mutex;

use gmorph_tensor::conv::{conv2d_forward, conv2d_forward_act, Conv2dGeom};
use gmorph_tensor::ops::{gelu_forward, relu_forward, Activation};
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{buffer, engine, gemm, Tensor};

/// Serializes tests that flip the process-wide pool switch.
static POOL_GATE: Mutex<()> = Mutex::new(());

fn unfused_act(t: &Tensor, act: Activation) -> Tensor {
    match act {
        Activation::None => t.clone(),
        Activation::Relu => relu_forward(t),
        Activation::Gelu => gelu_forward(t),
    }
}

const ACTS: [Activation; 3] = [Activation::None, Activation::Relu, Activation::Gelu];

/// Shapes on both sides of the SMALL (32³) threshold, with ragged edges
/// relative to the MR=4 / NR=8 / MC=64 / KC=256 blocking.
const SHAPES: [(usize, usize, usize); 4] = [(3, 5, 7), (17, 9, 31), (65, 33, 17), (70, 300, 41)];

#[test]
fn fused_gemm_epilogue_is_bit_exact() {
    let mut rng = Rng::new(41);
    for (m, k, n) in SHAPES {
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[k, n], 1.0, &mut rng);
        let bias = Tensor::randn(&[n], 0.5, &mut rng);
        for act in ACTS {
            for bias in [None, Some(&bias)] {
                let fused = gemm::matmul_bias_act(&a, &b, bias, act).unwrap();
                let mut plain = gemm::matmul(&a, &b).unwrap();
                if let Some(b) = bias {
                    gemm::add_bias_rows(&mut plain, b).unwrap();
                }
                let reference = unfused_act(&plain, act);
                assert_eq!(
                    fused.data(),
                    reference.data(),
                    "matmul {m}x{k}x{n} act {act:?} bias {}",
                    bias.is_some()
                );
            }
        }
    }
}

#[test]
fn fused_gemm_nt_epilogue_is_bit_exact() {
    let mut rng = Rng::new(42);
    for (m, k, n) in SHAPES {
        let a = Tensor::randn(&[m, k], 1.0, &mut rng);
        let b = Tensor::randn(&[n, k], 1.0, &mut rng);
        let bias = Tensor::randn(&[n], 0.5, &mut rng);
        for act in ACTS {
            let fused = gemm::matmul_nt_bias_act(&a, &b, Some(&bias), act).unwrap();
            let mut plain = gemm::matmul_nt(&a, &b).unwrap();
            gemm::add_bias_rows(&mut plain, &bias).unwrap();
            let reference = unfused_act(&plain, act);
            assert_eq!(fused.data(), reference.data(), "nt {m}x{k}x{n} act {act:?}");
        }
    }
}

#[test]
fn fused_conv_epilogue_is_bit_exact() {
    let mut rng = Rng::new(43);
    // Odd spatial sizes, stride and padding variations.
    for (h, w, stride, padding) in [(7, 5, 1, 1), (9, 9, 2, 1), (6, 11, 1, 0)] {
        let geom = Conv2dGeom::new(3, stride, padding).unwrap();
        let x = Tensor::randn(&[2, 3, h, w], 1.0, &mut rng);
        let wt = Tensor::randn(&[5, 3, 3, 3], 0.5, &mut rng);
        let bias = Tensor::randn(&[5], 0.3, &mut rng);
        for act in ACTS {
            for bias in [None, Some(&bias)] {
                let fused = conv2d_forward_act(&x, &wt, bias, geom, act).unwrap();
                let plain = conv2d_forward(&x, &wt, bias, geom).unwrap();
                let reference = unfused_act(&plain.output, act);
                assert_eq!(
                    fused.output.data(),
                    reference.data(),
                    "conv {h}x{w} s{stride} p{padding} act {act:?} bias {}",
                    bias.is_some()
                );
            }
        }
    }
}

#[test]
fn fused_gemm_rejects_bad_bias_shapes() {
    let a = Tensor::zeros(&[2, 3]);
    let b = Tensor::zeros(&[3, 4]);
    let bad = Tensor::zeros(&[5]);
    assert!(gemm::matmul_bias_act(&a, &b, Some(&bad), Activation::Relu).is_err());
    let rank2 = Tensor::zeros(&[1, 4]);
    assert!(gemm::matmul_bias_act(&a, &b, Some(&rank2), Activation::None).is_err());
}

#[test]
fn pooled_kernels_are_thread_count_invariant() {
    let _gate = POOL_GATE.lock().unwrap();
    buffer::set_enabled(Some(true));
    buffer::clear();
    let mut rng = Rng::new(44);
    let a = Tensor::randn(&[130, 70], 1.0, &mut rng);
    let b = Tensor::randn(&[70, 90], 1.0, &mut rng);
    let bias = Tensor::randn(&[90], 0.5, &mut rng);
    let x = Tensor::randn(&[6, 3, 12, 12], 1.0, &mut rng);
    let wt = Tensor::randn(&[8, 3, 3, 3], 0.5, &mut rng);
    let geom = Conv2dGeom::new(3, 1, 1).unwrap();

    let run = || {
        let g = gemm::matmul_bias_act(&a, &b, Some(&bias), Activation::Gelu).unwrap();
        let c = conv2d_forward_act(&x, &wt, None, geom, Activation::Relu).unwrap();
        (g, c.output)
    };
    // Warm the pool so the multi-threaded run actually reuses buffers.
    let _ = run();
    let (g1, c1) = engine::with_thread_limit(1, run);
    let (g4, c4) = engine::with_thread_limit(4, run);
    assert_eq!(g1.data(), g4.data(), "gemm bit-identical across threads");
    assert_eq!(c1.data(), c4.data(), "conv bit-identical across threads");
    buffer::set_enabled(None);
    buffer::clear();
}

#[test]
fn pool_on_and_off_produce_identical_bits() {
    let _gate = POOL_GATE.lock().unwrap();
    let mut rng = Rng::new(45);
    let a = Tensor::randn(&[65, 33], 1.0, &mut rng);
    let b = Tensor::randn(&[33, 17], 1.0, &mut rng);
    let bias = Tensor::randn(&[17], 0.5, &mut rng);

    buffer::set_enabled(Some(false));
    let off = gemm::matmul_bias_act(&a, &b, Some(&bias), Activation::Relu).unwrap();
    buffer::set_enabled(Some(true));
    buffer::clear();
    // Twice: the second run draws from a warm pool.
    let _ = gemm::matmul_bias_act(&a, &b, Some(&bias), Activation::Relu).unwrap();
    let on = gemm::matmul_bias_act(&a, &b, Some(&bias), Activation::Relu).unwrap();
    assert_eq!(off.data(), on.data());
    buffer::set_enabled(None);
    buffer::clear();
}

#[test]
fn disabled_pool_holds_no_bytes() {
    let _gate = POOL_GATE.lock().unwrap();
    buffer::set_enabled(Some(false));
    buffer::clear();
    let mut rng = Rng::new(46);
    let a = Tensor::randn(&[40, 40], 1.0, &mut rng);
    let b = Tensor::randn(&[40, 40], 1.0, &mut rng);
    let _ = gemm::matmul(&a, &b).unwrap();
    assert_eq!(buffer::pooled_bytes(), 0, "disabled pool must stay empty");
    buffer::set_enabled(None);
    buffer::clear();
}
