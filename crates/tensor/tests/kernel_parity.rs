//! Parity tests for the threaded, blocked kernel engine.
//!
//! The blocked GEMM paths and the batch-parallel conv kernels must produce
//! bit-identical results to a naive triple-loop reference, at every thread
//! count. These tests sweep the shape grid `m, k, n ∈ {1, 3, 17, 64, 130}`
//! (covering sub-microkernel edges, one-block, and multi-block cases) for
//! all three GEMM variants, then check conv forward/backward at 1 vs 4
//! threads.

use gmorph_tensor::conv::{conv2d_backward_geom, conv2d_forward, Conv2dGeom};
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{engine, gemm, Tensor};
use proptest::prelude::*;

const SIZES: [usize; 5] = [1, 3, 17, 64, 130];

/// Naive triple-loop reference: `C = A · B` with A `[m, k]`, B `[k, n]`.
fn reference_matmul(a: &[f32], b: &[f32], m: usize, k: usize, n: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; m * n];
    for i in 0..m {
        for p in 0..k {
            let av = a[i * k + p];
            for j in 0..n {
                out[i * n + j] += av * b[p * n + j];
            }
        }
    }
    out
}

fn fill(rng: &mut Rng, len: usize) -> Vec<f32> {
    (0..len).map(|_| rng.normal()).collect()
}

/// Transposes a row-major `[r, c]` buffer into `[c, r]`.
fn transposed(src: &[f32], r: usize, c: usize) -> Vec<f32> {
    let mut out = vec![0.0f32; r * c];
    for i in 0..r {
        for j in 0..c {
            out[j * r + i] = src[i * c + j];
        }
    }
    out
}

#[test]
fn gemm_variants_match_reference_over_size_grid() {
    let mut rng = Rng::new(0xB10C);
    for &m in &SIZES {
        for &k in &SIZES {
            for &n in &SIZES {
                let a = fill(&mut rng, m * k);
                let b = fill(&mut rng, k * n);
                let want = reference_matmul(&a, &b, m, k, n);

                let at = Tensor::from_vec(&[m, k], a.clone()).unwrap();
                let bt = Tensor::from_vec(&[k, n], b.clone()).unwrap();
                let got = gemm::matmul(&at, &bt).unwrap();
                assert_eq!(got.data(), &want[..], "matmul {m}x{k}x{n}");

                // matmul_nt takes B as [n, k] (transposed storage).
                let bnt = Tensor::from_vec(&[n, k], transposed(&b, k, n)).unwrap();
                let got_nt = gemm::matmul_nt(&at, &bnt).unwrap();
                assert_eq!(got_nt.data(), &want[..], "matmul_nt {m}x{k}x{n}");

                // matmul_tn takes A as [k, m] (transposed storage).
                let atn = Tensor::from_vec(&[k, m], transposed(&a, m, k)).unwrap();
                let got_tn = gemm::matmul_tn(&atn, &bt).unwrap();
                assert_eq!(got_tn.data(), &want[..], "matmul_tn {m}x{k}x{n}");
            }
        }
    }
}

#[test]
fn gemm_grid_identical_at_one_and_four_threads() {
    // Thread count must never change a single bit of the output.
    let mut rng = Rng::new(0x7EAD);
    for &(m, k, n) in &[(130usize, 64usize, 130usize), (64, 130, 17), (17, 17, 130)] {
        let at = Tensor::from_vec(&[m, k], fill(&mut rng, m * k)).unwrap();
        let bt = Tensor::from_vec(&[k, n], fill(&mut rng, k * n)).unwrap();
        let one = engine::with_thread_limit(1, || gemm::matmul(&at, &bt).unwrap());
        let four = engine::with_thread_limit(4, || gemm::matmul(&at, &bt).unwrap());
        assert_eq!(one.data(), four.data(), "{m}x{k}x{n}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn random_shapes_match_reference(
        m in 1usize..48,
        k in 1usize..48,
        n in 1usize..48,
        seed in 0u64..1_000_000,
    ) {
        let mut rng = Rng::new(seed);
        let a = fill(&mut rng, m * k);
        let b = fill(&mut rng, k * n);
        let want = reference_matmul(&a, &b, m, k, n);
        let at = Tensor::from_vec(&[m, k], a).unwrap();
        let bt = Tensor::from_vec(&[k, n], b).unwrap();
        let got = gemm::matmul(&at, &bt).unwrap();
        prop_assert_eq!(got.data(), &want[..]);
    }
}

#[test]
fn conv_forward_backward_identical_at_one_and_four_threads() {
    let run = |threads: usize| {
        engine::with_thread_limit(threads, || {
            let mut rng = Rng::new(42);
            let x = Tensor::randn(&[4, 3, 9, 9], 0.8, &mut rng);
            let w = Tensor::randn(&[5, 3, 3, 3], 0.5, &mut rng);
            let b = Tensor::randn(&[5], 0.1, &mut rng);
            let geom = Conv2dGeom::new(3, 1, 1).unwrap();
            let fwd = conv2d_forward(&x, &w, Some(&b), geom).unwrap();
            let go = Tensor::ones(fwd.output.dims());
            let grads = conv2d_backward_geom(&go, &w, x.dims(), &fwd, geom).unwrap();
            (
                fwd.output,
                grads.grad_input,
                grads.grad_weight,
                grads.grad_bias,
            )
        })
    };
    let (y1, gi1, gw1, gb1) = run(1);
    let (y4, gi4, gw4, gb4) = run(4);
    assert_eq!(y1.data(), y4.data(), "conv forward differs");
    assert_eq!(gi1.data(), gi4.data(), "conv grad_input differs");
    assert_eq!(gw1.data(), gw4.data(), "conv grad_weight differs");
    assert_eq!(gb1.data(), gb4.data(), "conv grad_bias differs");
}
