//! Inference compilation: the real counterpart of the `Fused` backend.
//!
//! The paper compiles baselines and fused models with TensorRT to show
//! GMorph is complementary to graph-compiler optimizations (Table 3). Our
//! analytic `Fused` backend models that; this module *implements* the most
//! impactful of the classic inference optimizations — folding batch
//! normalization into the preceding convolution — on the real engine, so
//! the complementarity claim can also be demonstrated with measured
//! wall-clock numbers:
//!
//! ```text
//! W'[o, ...] = W[o, ...] · γ_o / sqrt(σ²_o + ε)
//! b'_o       = (b_o − μ_o) · γ_o / sqrt(σ²_o + ε) + β_o
//! ```
//!
//! After folding, the batch-norm layer becomes an identity in eval mode.
//! The compiled model is inference-only: training it again would use the
//! stale (folded) statistics, so [`compile_for_inference`] returns a new
//! model rather than mutating in place.

use gmorph_graph::TreeModel;
use gmorph_nn::layers::{BatchNorm2d, Conv2d};
use gmorph_nn::{Block, Tensor};
use gmorph_tensor::ops::Activation;
use gmorph_tensor::Result;

const EPS: f32 = 1e-5;

/// Folds one batch norm into its preceding convolution.
fn fold_pair(conv: &mut Conv2d, bn: &mut BatchNorm2d) {
    let c_out = conv.out_channels();
    let per_filter = conv.weight.value.numel() / c_out;
    for o in 0..c_out {
        let inv_std = 1.0 / (bn.running_var.data()[o] + EPS).sqrt();
        let scale = bn.gamma.value.data()[o] * inv_std;
        for i in 0..per_filter {
            conv.weight.value.data_mut()[o * per_filter + i] *= scale;
        }
        let b = conv.bias.value.data()[o];
        conv.bias.value.data_mut()[o] =
            (b - bn.running_mean.data()[o]) * scale + bn.beta.value.data()[o];
    }
    // Neutralize the norm: identity in eval mode.
    bn.gamma.value = Tensor::ones(&[c_out]);
    bn.beta.value = Tensor::zeros(&[c_out]);
    bn.running_mean = Tensor::zeros(&[c_out]);
    bn.running_var = Tensor::ones(&[c_out]);
    bn.fused = true;
}

/// Folds every conv+bn pair inside one block. Returns how many batch
/// norms were folded.
pub fn fold_block(block: &mut Block) -> usize {
    match block {
        Block::ConvBnRelu { conv, bn, .. } => {
            fold_pair(conv, bn);
            1
        }
        Block::Residual {
            conv1,
            bn1,
            conv2,
            bn2,
            down,
            ..
        } => {
            fold_pair(conv1, bn1);
            fold_pair(conv2, bn2);
            let mut n = 2;
            if let Some((dc, dbn)) = down {
                fold_pair(dc, dbn);
                n += 1;
            }
            n
        }
        _ => 0,
    }
}

/// Rewrites one block's activation onto the preceding kernel's fused
/// epilogue. Returns how many activations were fused.
///
/// Only applies where the kernel output feeds the activation directly:
/// `Conv→ReLU` (including `Conv→BN→ReLU` once the norm has been folded to
/// an identity by [`fold_block`]) and the transformer MLP's
/// `Linear→bias→GELU`. The rewrite is eval-only by construction — the
/// layers ignore `fused_act` in `Mode::Train`, so training semantics are
/// untouched — and bit-exact: the epilogue applies the same scalar
/// sequence (`act(v + bias)`) the separate elementwise pass would.
pub fn fuse_epilogues(block: &mut Block) -> usize {
    match block {
        Block::ConvRelu { conv, .. } => {
            conv.fused_act = Activation::Relu;
            1
        }
        // Unfolded BN still rescales between the conv and the ReLU, so
        // fusion is only legal after fold_block neutralized it.
        Block::ConvBnRelu { conv, bn, .. } if bn.fused => {
            conv.fused_act = Activation::Relu;
            1
        }
        Block::Transformer { fc1, .. } => {
            fc1.fused_act = Activation::Gelu;
            1
        }
        _ => 0,
    }
}

/// Produces an inference-compiled copy of a multi-task model with all
/// batch norms folded and eval activations fused into kernel epilogues.
/// Returns the model and the fold count.
pub fn compile_for_inference(model: &TreeModel) -> Result<(TreeModel, usize)> {
    let mut compiled = model.clone();
    let mut folded = 0usize;
    let mut fused = 0usize;
    // TreeModel exposes nodes read-only; rebuild via visit over a clone.
    // The node arena is private, so fold through the public parameter
    // surface: clone, then fold block-by-block using the mutable
    // re-assembly below.
    compiled.clear_caches();
    compiled.for_each_block_mut(&mut |b: &mut Block| {
        folded += fold_block(b);
        fused += fuse_epilogues(b);
    });
    gmorph_telemetry::counter!("compile.fused_epilogues", fused as u64);
    Ok((compiled, folded))
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_nn::Mode;
    use gmorph_tensor::rng::Rng;

    /// Builds a ConvBnRelu block with non-trivial statistics.
    fn primed_block(rng: &mut Rng) -> Block {
        let mut b = Block::conv_bn_relu(3, 5, 3, 1, rng).unwrap();
        // Run a few training passes so running stats are non-trivial.
        for _ in 0..4 {
            let x = Tensor::randn(&[4, 3, 6, 6], 1.5, rng).map(|v| v + 0.3);
            b.forward(&x, Mode::Train).unwrap();
        }
        b.clear_cache();
        b
    }

    #[test]
    fn folded_block_matches_unfolded_in_eval() {
        let mut rng = Rng::new(0);
        let mut orig = primed_block(&mut rng);
        let mut folded = orig.clone();
        assert_eq!(fold_block(&mut folded), 1);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let y0 = orig.forward(&x, Mode::Eval).unwrap();
        let y1 = folded.forward(&x, Mode::Eval).unwrap();
        for (a, b) in y0.data().iter().zip(y1.data()) {
            assert!((a - b).abs() < 1e-4, "{a} vs {b}");
        }
    }

    #[test]
    fn residual_block_folds_all_norms() {
        let mut rng = Rng::new(1);
        let mut b = Block::residual(3, 6, 2, &mut rng).unwrap();
        for _ in 0..3 {
            let x = Tensor::randn(&[4, 3, 8, 8], 1.0, &mut rng);
            b.forward(&x, Mode::Train).unwrap();
        }
        b.clear_cache();
        let mut folded = b.clone();
        assert_eq!(fold_block(&mut folded), 3); // bn1, bn2, downsample bn.
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let y0 = b.forward(&x, Mode::Eval).unwrap();
        let y1 = folded.forward(&x, Mode::Eval).unwrap();
        for (a, c) in y0.data().iter().zip(y1.data()) {
            assert!((a - c).abs() < 1e-3, "{a} vs {c}");
        }
    }

    #[test]
    fn non_bn_blocks_are_untouched() {
        let mut rng = Rng::new(2);
        let mut b = Block::conv_relu(3, 4, &mut rng).unwrap();
        assert_eq!(fold_block(&mut b), 0);
        let mut p = Block::maxpool(2);
        assert_eq!(fold_block(&mut p), 0);
    }

    #[test]
    fn fused_conv_relu_matches_bitwise_in_eval() {
        let mut rng = Rng::new(7);
        let mut plain = Block::conv_relu(3, 4, &mut rng).unwrap();
        let mut fused = plain.clone();
        assert_eq!(fuse_epilogues(&mut fused), 1);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let y0 = plain.forward(&x, Mode::Eval).unwrap();
        let y1 = fused.forward(&x, Mode::Eval).unwrap();
        // The epilogue applies the same scalar sequence: bit-identical.
        assert_eq!(y0.data(), y1.data());
    }

    #[test]
    fn folded_then_fused_conv_bn_matches_folded_only() {
        let mut rng = Rng::new(8);
        let orig = primed_block(&mut rng);
        let mut folded = orig.clone();
        fold_block(&mut folded);
        let mut fused = folded.clone();
        assert_eq!(fuse_epilogues(&mut fused), 1);
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let y0 = folded.forward(&x, Mode::Eval).unwrap();
        let y1 = fused.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y0.data(), y1.data());
    }

    #[test]
    fn unfolded_conv_bn_is_not_fused() {
        // Live BN rescales between the conv and the ReLU, so the fusion
        // pattern must not match.
        let mut rng = Rng::new(9);
        let mut b = Block::conv_bn_relu(3, 4, 3, 1, &mut rng).unwrap();
        assert_eq!(fuse_epilogues(&mut b), 0);
    }

    #[test]
    fn fused_transformer_matches_bitwise_in_eval() {
        let mut rng = Rng::new(10);
        let mut plain = Block::transformer(8, 2, &mut rng).unwrap();
        let mut fused = plain.clone();
        assert_eq!(fuse_epilogues(&mut fused), 1);
        let x = Tensor::randn(&[2, 4, 8], 1.0, &mut rng);
        let y0 = plain.forward(&x, Mode::Eval).unwrap();
        let y1 = fused.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y0.data(), y1.data());
    }

    #[test]
    fn rewritten_block_still_trains_correctly() {
        // fused_act must be inert in Mode::Train: the finite-difference
        // gradient check passes on a block the compile pass rewrote.
        let mut rng = Rng::new(11);
        let mut b = Block::conv_relu(2, 3, &mut rng).unwrap();
        assert_eq!(fuse_epilogues(&mut b), 1);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = b.forward(&x, Mode::Train).unwrap();
        let gx = b.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 1e-2f32;
        let loss = |b: &mut Block, x: &Tensor| -> f32 {
            b.forward(x, Mode::Train).unwrap().sum()
        };
        for &flat in &[0usize, 7, 15, 31] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let mut b2 = b.clone();
            let num = (loss(&mut b2, &xp) - loss(&mut b2, &xm)) / (2.0 * eps);
            let ana = gx.data()[flat];
            assert!((num - ana).abs() < 0.05, "dX[{flat}]: {num} vs {ana}");
        }
    }

    #[test]
    fn compiled_tree_matches_original_outputs() {
        use gmorph_data::TaskSpec;
        let mut rng = Rng::new(3);
        let tasks = vec![TaskSpec::classification("a", 2)];
        let mut m = TreeModel::new(tasks);
        let stem = m
            .add_node((0, 0), primed_block(&mut rng), None)
            .unwrap();
        m.add_node((0, 1), gmorph_nn::Block::head(5, 2, &mut rng), Some(stem))
            .unwrap();
        let x = Tensor::randn(&[2, 3, 6, 6], 1.0, &mut rng);
        let y0 = m.forward(&x, Mode::Eval).unwrap();
        let (mut compiled, folded) = compile_for_inference(&m).unwrap();
        assert_eq!(folded, 1);
        let y1 = compiled.forward(&x, Mode::Eval).unwrap();
        for (a, b) in y0[0].data().iter().zip(y1[0].data()) {
            assert!((a - b).abs() < 1e-4);
        }
        // The original is untouched.
        let y2 = m.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y0[0], y2[0]);
    }
}
