//! Predictive filtering (§5.1): rule-based filtering and predictive early
//! termination.

use gmorph_graph::CapacityVector;

/// Which rule of the capacity filter matched a skipped candidate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FilterVerdict {
    /// The candidate repeats a recorded failure exactly.
    ExactMatch,
    /// The candidate shares strictly more capacity than a recorded failure.
    MoreAggressive,
    /// The candidate is structurally similar (same capacity or more
    /// aggressive) to a quarantined repeat offender — a graph whose
    /// evaluation failed (NaN, panic, timeout) past its retry budget.
    Quarantined,
}

impl FilterVerdict {
    /// Stable name for telemetry (`filter.rule.*` counters).
    pub fn as_str(&self) -> &'static str {
        match self {
            FilterVerdict::ExactMatch => "exact",
            FilterVerdict::MoreAggressive => "more_aggressive",
            FilterVerdict::Quarantined => "quarantined",
        }
    }
}

/// Rule-based filtering over capacity vectors.
///
/// "When a mutated abs-graph is trained and shown to be non-promising,
/// then all mutated abs-graphs that are more aggressive in feature sharing
/// are also non-promising." The filter records the capacity vectors of
/// failed candidates; a new candidate is skipped (never fine-tuned) when
/// it is more aggressive than any recorded failure.
///
/// The filter also holds the supervisor's **quarantine list**: graph
/// signatures (plus their capacity vectors) of candidates whose evaluation
/// failed past the retry budget. Unlike accuracy failures — which only
/// apply when the user opts into rule filtering — quarantine checks are
/// always consulted by the search driver, because re-evaluating a graph
/// that reliably NaNs or times out is never useful.
#[derive(Debug, Clone, Default)]
pub struct CapacityRuleFilter {
    failures: Vec<CapacityVector>,
    quarantined: Vec<(String, CapacityVector)>,
}

impl CapacityRuleFilter {
    /// Creates an empty filter.
    pub fn new() -> Self {
        CapacityRuleFilter::default()
    }

    /// Number of recorded failures.
    pub fn len(&self) -> usize {
        self.failures.len()
    }

    /// True when no failures are recorded.
    pub fn is_empty(&self) -> bool {
        self.failures.is_empty()
    }

    /// Recorded failures in insertion order (checkpointed search state).
    pub fn failures(&self) -> &[CapacityVector] {
        &self.failures
    }

    /// Rebuilds a filter from checkpointed failures, preserving order.
    pub fn from_failures(failures: Vec<CapacityVector>) -> Self {
        CapacityRuleFilter {
            failures,
            quarantined: Vec::new(),
        }
    }

    /// Rebuilds a filter from checkpointed failures and quarantine
    /// entries, preserving order (resume must replay bit-exactly).
    pub fn from_parts(
        failures: Vec<CapacityVector>,
        quarantined: Vec<(String, CapacityVector)>,
    ) -> Self {
        CapacityRuleFilter {
            failures,
            quarantined,
        }
    }

    /// Quarantine entries in insertion order (checkpointed search state).
    pub fn quarantined(&self) -> &[(String, CapacityVector)] {
        &self.quarantined
    }

    /// Adds a repeat offender to the quarantine list. Idempotent per
    /// signature so retried checkpoint replays cannot double-record.
    pub fn record_quarantine(&mut self, signature: String, cv: CapacityVector) {
        if self.quarantined.iter().any(|(s, _)| *s == signature) {
            return;
        }
        self.quarantined.push((signature, cv));
    }

    /// Quarantine check: `Some(Quarantined)` when `signature` is itself
    /// quarantined, or when `cv` matches / is more aggressive than a
    /// quarantined candidate's capacity (the same §5.1 dominance rule,
    /// applied to evaluation failures instead of accuracy failures).
    pub fn quarantine_verdict(
        &self,
        signature: &str,
        cv: &CapacityVector,
    ) -> Option<FilterVerdict> {
        let hit = self.quarantined.iter().any(|(s, q)| {
            s == signature || cv == q || cv.more_aggressive_than(q)
        });
        hit.then_some(FilterVerdict::Quarantined)
    }

    /// Records a candidate that failed to meet the accuracy target.
    ///
    /// Dominated entries (failures that are themselves more aggressive
    /// than the new one) are pruned: the new, *less* aggressive failure
    /// subsumes them.
    pub fn record_failure(&mut self, cv: CapacityVector) {
        self.failures
            .retain(|old| !old.more_aggressive_than(&cv) && old != &cv);
        self.failures.push(cv);
    }

    /// True when `cv` should be skipped without fine-tuning.
    pub fn should_skip(&self, cv: &CapacityVector) -> bool {
        self.verdict(cv).is_some()
    }

    /// Why `cv` would be skipped, or `None` when it passes the filter.
    /// An exact repeat is reported as [`FilterVerdict::ExactMatch`] even
    /// though it is also trivially "as aggressive as" the failure.
    pub fn verdict(&self, cv: &CapacityVector) -> Option<FilterVerdict> {
        if self.failures.iter().any(|f| cv == f) {
            return Some(FilterVerdict::ExactMatch);
        }
        if self.failures.iter().any(|f| cv.more_aggressive_than(f)) {
            return Some(FilterVerdict::MoreAggressive);
        }
        None
    }
}

/// Predictive early termination via learning-curve extrapolation.
///
/// Implements the paper's convergence-rate formula over four consecutive
/// validation accuracies `f(x), f(x+δ), f(x+2δ), f(x+3δ)`:
///
/// ```text
/// α = [log|f(x+2δ)-f(x+3δ)| - log|f(x+δ)-f(x+2δ)|]
///   / [log|f(x+δ)-f(x+2δ)| - log|f(x)-f(x+δ)|]
/// ```
///
/// With the estimated per-step contraction the remaining improvement is
/// extrapolated geometrically to the end of the budget.
#[derive(Debug, Clone, Default)]
pub struct ConvergencePredictor {
    history: Vec<f32>,
}

impl ConvergencePredictor {
    /// Creates an empty predictor.
    pub fn new() -> Self {
        ConvergencePredictor::default()
    }

    /// Appends a validation accuracy measurement.
    pub fn push(&mut self, accuracy: f32) {
        self.history.push(accuracy);
    }

    /// Number of measurements so far.
    pub fn len(&self) -> usize {
        self.history.len()
    }

    /// True when no measurements have been recorded.
    pub fn is_empty(&self) -> bool {
        self.history.is_empty()
    }

    /// Estimates the per-step contraction ratio of successive improvement
    /// deltas from the last four measurements, or `None` when fewer than
    /// four measurements exist or the deltas are degenerate.
    pub fn contraction(&self) -> Option<f32> {
        let n = self.history.len();
        if n < 4 {
            return None;
        }
        let f = &self.history[n - 4..];
        let d0 = (f[1] - f[0]).abs();
        let d1 = (f[2] - f[1]).abs();
        let d2 = (f[3] - f[2]).abs();
        if d0 < 1e-7 || d1 < 1e-7 || d2 < 1e-7 {
            return None;
        }
        // For geometrically converging curves the paper's α is ≈ 1 and the
        // per-step contraction of the deltas is the quantity that drives
        // the extrapolation.
        Some((d2 / d1).clamp(0.0, 0.999))
    }

    /// The paper's order-of-convergence α from the log-ratio formula, or
    /// `None` when the history is too short or degenerate.
    pub fn alpha(&self) -> Option<f32> {
        let n = self.history.len();
        if n < 4 {
            return None;
        }
        let f = &self.history[n - 4..];
        let d0 = (f[1] - f[0]).abs();
        let d1 = (f[2] - f[1]).abs();
        let d2 = (f[3] - f[2]).abs();
        if d0 < 1e-7 || d1 < 1e-7 || d2 < 1e-7 {
            return None;
        }
        let denom = d1.ln() - d0.ln();
        if denom.abs() < 1e-6 {
            return None;
        }
        Some((d2.ln() - d1.ln()) / denom)
    }

    /// Extrapolates the accuracy after `steps_left` more validation
    /// intervals; `None` when not enough history exists.
    pub fn predict_final(&self, steps_left: usize) -> Option<f32> {
        let r = self.contraction()?;
        let n = self.history.len();
        let last = self.history[n - 1];
        let prev = self.history[n - 2];
        let direction = (last - prev).signum();
        let mut delta = (last - prev).abs();
        let mut acc = last;
        for _ in 0..steps_left {
            delta *= r;
            acc += direction * delta;
        }
        Some(acc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv(total: usize, tt: Vec<usize>, ts: Vec<usize>, shared: usize) -> CapacityVector {
        CapacityVector {
            total,
            per_task_total: tt,
            per_task_specific: ts,
            shared,
        }
    }

    #[test]
    fn rule_filter_skips_more_aggressive_candidates() {
        let mut f = CapacityRuleFilter::new();
        assert!(f.is_empty());
        f.record_failure(cv(100, vec![60, 70], vec![40, 50], 20));
        // More aggressive than the failure: skipped.
        assert!(f.should_skip(&cv(80, vec![50, 60], vec![20, 30], 30)));
        // Less aggressive: not skipped.
        assert!(!f.should_skip(&cv(120, vec![70, 80], vec![60, 70], 10)));
        // The exact same configuration is skipped too.
        assert!(f.should_skip(&cv(100, vec![60, 70], vec![40, 50], 20)));
    }

    #[test]
    fn verdict_distinguishes_rules() {
        let mut f = CapacityRuleFilter::new();
        f.record_failure(cv(100, vec![60, 70], vec![40, 50], 20));
        assert_eq!(
            f.verdict(&cv(100, vec![60, 70], vec![40, 50], 20)),
            Some(FilterVerdict::ExactMatch)
        );
        assert_eq!(
            f.verdict(&cv(80, vec![50, 60], vec![20, 30], 30)),
            Some(FilterVerdict::MoreAggressive)
        );
        assert_eq!(f.verdict(&cv(120, vec![70, 80], vec![60, 70], 10)), None);
    }

    #[test]
    fn rule_filter_prunes_dominated_failures() {
        let mut f = CapacityRuleFilter::new();
        f.record_failure(cv(80, vec![50, 60], vec![20, 30], 30));
        assert_eq!(f.len(), 1);
        // A less aggressive failure subsumes the earlier one.
        f.record_failure(cv(100, vec![60, 70], vec![40, 50], 20));
        assert_eq!(f.len(), 1);
        assert!(f.should_skip(&cv(80, vec![50, 60], vec![20, 30], 30)));
    }

    #[test]
    fn rule_filter_never_skips_on_empty() {
        let f = CapacityRuleFilter::new();
        assert!(!f.should_skip(&cv(10, vec![10], vec![10], 0)));
    }

    #[test]
    fn quarantine_matches_signature_and_capacity() {
        let mut f = CapacityRuleFilter::new();
        assert_eq!(f.quarantine_verdict("g1", &cv(10, vec![10], vec![10], 0)), None);
        f.record_quarantine("g1".into(), cv(100, vec![60, 70], vec![40, 50], 20));
        // Same signature, regardless of capacity.
        assert_eq!(
            f.quarantine_verdict("g1", &cv(999, vec![900], vec![900], 0)),
            Some(FilterVerdict::Quarantined)
        );
        // Different signature, identical capacity.
        assert_eq!(
            f.quarantine_verdict("g2", &cv(100, vec![60, 70], vec![40, 50], 20)),
            Some(FilterVerdict::Quarantined)
        );
        // Different signature, more aggressive sharing.
        assert_eq!(
            f.quarantine_verdict("g3", &cv(80, vec![50, 60], vec![20, 30], 30)),
            Some(FilterVerdict::Quarantined)
        );
        // Less aggressive: passes.
        assert_eq!(
            f.quarantine_verdict("g4", &cv(120, vec![70, 80], vec![60, 70], 10)),
            None
        );
        // Quarantine never leaks into the accuracy-failure rule.
        assert!(!f.should_skip(&cv(100, vec![60, 70], vec![40, 50], 20)));
    }

    #[test]
    fn quarantine_is_idempotent_and_checkpointable() {
        let mut f = CapacityRuleFilter::new();
        f.record_quarantine("g1".into(), cv(10, vec![10], vec![10], 0));
        f.record_quarantine("g1".into(), cv(10, vec![10], vec![10], 0));
        assert_eq!(f.quarantined().len(), 1);
        let restored = CapacityRuleFilter::from_parts(
            f.failures().to_vec(),
            f.quarantined().to_vec(),
        );
        assert_eq!(
            restored.quarantine_verdict("g1", &cv(10, vec![10], vec![10], 0)),
            Some(FilterVerdict::Quarantined)
        );
    }

    #[test]
    fn predictor_needs_four_points() {
        let mut p = ConvergencePredictor::new();
        p.push(0.5);
        p.push(0.6);
        p.push(0.65);
        assert!(p.contraction().is_none());
        assert!(p.predict_final(10).is_none());
        p.push(0.675);
        assert!(p.contraction().is_some());
    }

    #[test]
    fn predictor_extrapolates_geometric_curves() {
        // accuracy(e) = 0.8 - 0.4 * 0.5^e converges to 0.8.
        let mut p = ConvergencePredictor::new();
        for e in 1..=4 {
            p.push(0.8 - 0.4 * 0.5f32.powi(e));
        }
        let r = p.contraction().unwrap();
        assert!((r - 0.5).abs() < 0.05, "r = {r}");
        let projected = p.predict_final(50).unwrap();
        assert!((projected - 0.8).abs() < 0.02, "projected {projected}");
    }

    #[test]
    fn predictor_identifies_hopeless_candidates() {
        // Converging to 0.70: a 0.78 target is unreachable.
        let mut p = ConvergencePredictor::new();
        for e in 1..=4 {
            p.push(0.70 - 0.3 * 0.6f32.powi(e));
        }
        let projected = p.predict_final(100).unwrap();
        assert!(projected < 0.75, "projected {projected}");
    }

    #[test]
    fn predictor_handles_flat_curves() {
        let mut p = ConvergencePredictor::new();
        for _ in 0..4 {
            p.push(0.5);
        }
        // Degenerate deltas: no prediction rather than a bogus one.
        assert!(p.contraction().is_none());
    }
}
