//! The Accuracy Estimator: distillation fine-tuning and its surrogate.
//!
//! The *Real* path implements §5.2 faithfully: the multi-task model is
//! fine-tuned to match the output features of the original task-specific
//! teachers under a weighted ℓ1 loss — no task labels are consumed during
//! training — with early stopping once the accuracy target is met and
//! optional predictive early termination (§5.1).
//!
//! The *Surrogate* path is a calibrated analytic stand-in used by the
//! large experiment grids (DESIGN.md §1): the asymptotic accuracy drop is
//! a function of how much task capacity the mutation removed (matching the
//! empirical Figure 1 relation), convergence is geometric with a rate that
//! improves with the fraction of inherited weights (matching Figure 2),
//! and a seeded initialization noise reproduces the Figure 3 spread.

use crate::filter::ConvergencePredictor;
use gmorph_data::{metrics, MultiTaskDataset};
use gmorph_graph::{AbsGraph, CapacityVector, TreeModel};
use gmorph_nn::health::{self, GradVerdict, HealthConfig};
use gmorph_nn::loss::weighted_l1_multi;
use gmorph_nn::optim::Optim;
use gmorph_nn::Mode;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{error, FaultKind, Result, Tensor, TensorError};

/// Fine-tuning configuration (the paper's optimization parameters, §6.1).
#[derive(Debug, Clone)]
pub struct FinetuneConfig {
    /// Maximum fine-tuning epochs (paper: 35/40/16 depending on bench).
    pub max_epochs: usize,
    /// Batch size.
    pub batch: usize,
    /// Adam learning rate (minimum of the teachers' rates, per §6.1/A).
    pub lr: f32,
    /// Validation cadence in epochs (the paper's δ: 5 for B1-B5, 2 for
    /// B6-B7).
    pub eval_every: usize,
    /// Target accuracy drop (0.0, 0.01, 0.02 in the evaluation).
    pub target_drop: f32,
    /// Per-task loss weights (uniform when empty).
    pub task_weights: Vec<f32>,
    /// Enables predictive early termination.
    pub early_termination: bool,
    /// Seed for shuffling.
    pub seed: u64,
    /// Numeric-health supervision: gradient clipping, non-finite
    /// detection, and divergence policy (see [`gmorph_nn::health`]).
    pub health: HealthConfig,
    /// Per-candidate wall-clock deadline. A fine-tune run past this
    /// budget halts with a classified timeout (checked at epoch
    /// boundaries). `None` disables the check — the default, because
    /// wall-clock outcomes are machine-dependent and resume replays must
    /// stay bit-exact unless the user opts in.
    pub wall_deadline_ms: Option<u64>,
    /// Fault injection for resilience testing: poisons this run per the
    /// given mode. Set by the supervisor from `GMORPH_FAULT`; never by
    /// ordinary code paths.
    pub inject: Option<FaultKind>,
}

impl Default for FinetuneConfig {
    fn default() -> Self {
        FinetuneConfig {
            max_epochs: 12,
            batch: 32,
            lr: 1e-3,
            eval_every: 2,
            target_drop: 0.01,
            task_weights: Vec::new(),
            early_termination: false,
            seed: 0,
            health: HealthConfig::default(),
            wall_deadline_ms: None,
            inject: None,
        }
    }
}

/// One validation measurement during fine-tuning.
#[derive(Debug, Clone, PartialEq)]
pub struct EvalRecord {
    /// Epoch at which the measurement was taken (1-based).
    pub epoch: usize,
    /// Maximum per-task accuracy drop vs the teachers at this point.
    pub drop: f32,
    /// Per-task scores.
    pub scores: Vec<f32>,
}

/// Outcome of evaluating one candidate's accuracy.
#[derive(Debug, Clone)]
pub struct FinetuneResult {
    /// Whether the target drop was met.
    pub met_target: bool,
    /// Final maximum per-task drop.
    pub final_drop: f32,
    /// Final per-task scores.
    pub final_scores: Vec<f32>,
    /// Epochs actually run (early stopping / termination shortens this).
    pub epochs_run: usize,
    /// All validation measurements.
    pub records: Vec<EvalRecord>,
    /// True when predictive early termination cut the run short.
    pub terminated_early: bool,
}

/// Precomputes teacher output features over the representative inputs —
/// the distillation targets (no task labels involved).
pub fn teacher_targets(
    teachers: &mut [gmorph_models::SingleTaskModel],
    inputs: &Tensor,
) -> Result<Vec<Tensor>> {
    teachers
        .iter_mut()
        .map(|t| {
            let y = t.forward(inputs, Mode::Eval)?;
            t.clear_caches();
            Ok(y)
        })
        .collect()
}

/// Scores a multi-task model on every task of a labelled test set.
pub fn score_tree(model: &mut TreeModel, test: &MultiTaskDataset) -> Result<Vec<f32>> {
    // Batched eval to bound activation memory.
    let n = test.len();
    let batch = 64usize;
    let mut per_task_rows: Vec<Vec<Tensor>> = vec![Vec::new(); test.tasks.len()];
    let mut i = 0;
    while i < n {
        let hi = (i + batch).min(n);
        let ix: Vec<usize> = (i..hi).collect();
        let x = test.inputs.select_rows(&ix)?;
        let ys = model.forward(&x, Mode::Eval)?;
        for (t, y) in ys.into_iter().enumerate() {
            for r in 0..y.dims()[0] {
                per_task_rows[t].push(y.row(r)?);
            }
        }
        i = hi;
    }
    let mut scores = Vec::with_capacity(test.tasks.len());
    for (t, rows) in per_task_rows.into_iter().enumerate() {
        let logits = Tensor::stack(&rows)?;
        scores.push(metrics::score(
            test.tasks[t].metric,
            &logits,
            &test.labels[t],
        )?);
    }
    model.clear_caches();
    Ok(scores)
}

/// Maximum per-task drop of `scores` relative to `teacher_scores`.
pub fn max_drop(scores: &[f32], teacher_scores: &[f32]) -> f32 {
    scores
        .iter()
        .zip(teacher_scores.iter())
        .map(|(s, t)| t - s)
        .fold(f32::NEG_INFINITY, f32::max)
}

/// Distillation-based fine-tuning (§5.2) with early stopping and optional
/// predictive early termination.
///
/// `train_inputs` are the representative (unlabeled) inputs; `targets` are
/// the teacher outputs from [`teacher_targets`]; `test` provides the
/// labelled evaluation split; `teacher_scores` anchor the drop.
pub fn finetune(
    model: &mut TreeModel,
    train_inputs: &Tensor,
    targets: &[Tensor],
    test: &MultiTaskDataset,
    teacher_scores: &[f32],
    cfg: &FinetuneConfig,
) -> Result<FinetuneResult> {
    let n_tasks = model.tasks.len();
    if targets.len() != n_tasks || teacher_scores.len() != n_tasks {
        return Err(TensorError::InvalidArgument {
            op: "finetune",
            msg: format!(
                "{} targets / {} teacher scores for {} tasks",
                targets.len(),
                teacher_scores.len(),
                n_tasks
            ),
        });
    }
    let weights = if cfg.task_weights.is_empty() {
        vec![1.0; n_tasks]
    } else {
        cfg.task_weights.clone()
    };
    let n = train_inputs.dims()[0];
    let mut rng = Rng::new(cfg.seed ^ 0xF17E);
    let mut opt = Optim::adam(cfg.lr);
    let mut records = Vec::new();
    let mut terminated_early = false;
    let mut epochs_run = 0usize;
    let mut predictor = ConvergencePredictor::new();
    let _span = gmorph_telemetry::span!(
        "finetune",
        mode = "real",
        max_epochs = cfg.max_epochs,
        target_drop = cfg.target_drop
    );
    gmorph_telemetry::counter!("finetune.runs");

    let started = std::time::Instant::now();
    'outer: for epoch in 1..=cfg.max_epochs {
        // Deadline and OOM guards run at epoch boundaries: cheap, and a
        // pathological candidate is caught within one epoch of tripping.
        if let Some(ms) = cfg.wall_deadline_ms {
            let elapsed = started.elapsed().as_millis() as u64;
            if elapsed > ms {
                return Err(error::timeout(
                    "finetune",
                    format!("wall deadline {ms}ms exceeded ({elapsed}ms) before epoch {epoch}"),
                ));
            }
        }
        if let Some((served, budget)) = gmorph_tensor::buffer::budget_exceeded() {
            return Err(error::oom_guard(
                "finetune",
                format!("pool byte budget {budget} exceeded ({served} served) before epoch {epoch}"),
            ));
        }
        if cfg.inject == Some(FaultKind::SlowCandidate) {
            std::thread::sleep(std::time::Duration::from_millis(25));
        }
        let mut ix: Vec<usize> = (0..n).collect();
        rng.shuffle(&mut ix);
        for chunk in ix.chunks(cfg.batch.max(1)) {
            let x = train_inputs.select_rows(chunk)?;
            let ys = model.forward(&x, Mode::Train)?;
            let batch_targets: Vec<Tensor> = targets
                .iter()
                .map(|t| t.select_rows(chunk))
                .collect::<Result<Vec<_>>>()?;
            let (mut loss, mut grads) = weighted_l1_multi(&ys, &batch_targets, &weights)?;
            match cfg.inject {
                Some(FaultKind::NanLoss) => {
                    loss = f32::NAN;
                    for g in &mut grads {
                        g.data_mut().fill(f32::NAN);
                    }
                }
                Some(FaultKind::GradExplode) => {
                    for g in &mut grads {
                        for v in g.data_mut() {
                            *v *= 1e30;
                        }
                    }
                }
                Some(FaultKind::PanicEval) => {
                    panic!("GMORPH_FAULT: injected panic in finetune epoch {epoch}");
                }
                _ => {}
            }
            health::check_loss("finetune", loss)?;
            model.backward(&grads)?;
            // Global gradient norm: doubles as a whole-model non-finite
            // probe (any NaN grad makes the norm NaN) and feeds clipping.
            let mut sq = 0f64;
            model.visit_params(&mut |p| sq += health::grad_sq_sum(p));
            match health::grad_verdict(&cfg.health, "finetune", sq.sqrt() as f32) {
                GradVerdict::Ok => {
                    opt.begin_step();
                    model.visit_params(&mut |p| opt.update(p));
                }
                GradVerdict::Clip(scale) => {
                    model.visit_params(&mut |p| health::scale_grad(p, scale));
                    opt.begin_step();
                    model.visit_params(&mut |p| opt.update(p));
                }
                GradVerdict::AbortStep => {
                    model.visit_params(&mut |p| p.zero_grad());
                }
                GradVerdict::Halt(event) => return Err(event.to_error()),
            }
        }
        epochs_run = epoch;
        if epoch % cfg.eval_every.max(1) == 0 || epoch == cfg.max_epochs {
            let scores = score_tree(model, test)?;
            let drop = max_drop(&scores, teacher_scores);
            gmorph_telemetry::point!("finetune.eval", mode = "real", epoch = epoch, drop = drop);
            records.push(EvalRecord {
                epoch,
                drop,
                scores: scores.clone(),
            });
            // Early stopping: target met.
            if drop <= cfg.target_drop {
                break 'outer;
            }
            // Predictive early termination (§5.1): extrapolate the
            // learning curve; quit if the projected final accuracy cannot
            // reach the target.
            if cfg.early_termination {
                // The predictor consumes accuracies; use 1 - drop as the
                // improving quantity.
                predictor.push(1.0 - drop);
                if let Some(projected) = predictor.predict_final(
                    (cfg.max_epochs - epoch) / cfg.eval_every.max(1),
                ) {
                    if 1.0 - projected > cfg.target_drop + 0.002 {
                        terminated_early = true;
                        gmorph_telemetry::point!(
                            "finetune.early_term",
                            mode = "real",
                            epoch = epoch,
                            projected_drop = 1.0 - projected
                        );
                        break 'outer;
                    }
                }
            }
        }
    }
    gmorph_telemetry::counter!("finetune.epochs", epochs_run as u64);
    if terminated_early {
        gmorph_telemetry::counter!("finetune.early_terminated");
    }
    let (final_drop, final_scores) = match records.last() {
        Some(r) => (r.drop, r.scores.clone()),
        None => {
            let scores = score_tree(model, test)?;
            let drop = max_drop(&scores, teacher_scores);
            (drop, scores)
        }
    };
    // A non-finite drop means the scores themselves diverged even though
    // every step's loss stayed finite — still a halt-worthy candidate.
    health::check_loss("finetune", final_drop)?;
    Ok(FinetuneResult {
        met_target: final_drop <= cfg.target_drop,
        final_drop,
        final_scores,
        epochs_run,
        records,
        terminated_early,
    })
}

// ---------------------------------------------------------------------
// Surrogate
// ---------------------------------------------------------------------

/// Calibration constants of the surrogate accuracy model.
#[derive(Debug, Clone)]
pub struct SurrogateParams {
    /// Fraction of a task's capacity that can be removed before accuracy
    /// starts to suffer (tasks share latent structure, so early features
    /// are redundant across models).
    pub free_share: f32,
    /// Maximum asymptotic drop when nearly all capacity is removed.
    pub max_drop: f32,
    /// Penalty weight for the fraction of a task's path that is *shared*
    /// with other tasks: even capacity-preserving cross-branch sharing
    /// de-specializes features (the Figure 1 red-curve slope).
    pub share_penalty: f32,
    /// Shared-path fraction below which sharing is free.
    pub free_shared_frac: f32,
    /// Extra asymptotic drop per re-scale adapter between *dissimilar*
    /// shapes (Figure 1's blue points).
    pub dissimilar_penalty: f32,
    /// Standard deviation of the initialization noise (Figure 3's spread).
    pub init_noise: f32,
    /// Mean of the initialization noise (slightly pessimistic: most inits
    /// cost a little accuracy, a lucky few improve — Figure 3).
    pub noise_mean: f32,
    /// Epoch constant of the geometric convergence.
    pub tau_epochs: f32,
}

impl Default for SurrogateParams {
    fn default() -> Self {
        SurrogateParams {
            free_share: 0.30,
            max_drop: 0.40,
            share_penalty: 0.02,
            free_shared_frac: 0.40,
            dissimilar_penalty: 0.08,
            init_noise: 0.006,
            noise_mean: 0.005,
            tau_epochs: 6.0,
        }
    }
}

/// Deterministic per-candidate hash used to seed initialization noise.
fn graph_noise_seed(graph: &AbsGraph, salt: u64) -> u64 {
    use std::collections::hash_map::DefaultHasher;
    use std::hash::{Hash, Hasher};
    let mut h = DefaultHasher::new();
    graph.signature().hash(&mut h);
    salt.hash(&mut h);
    h.finish()
}

/// Counts re-scale nodes joining shapes that share no dimension.
fn dissimilar_rescales(graph: &AbsGraph) -> usize {
    graph
        .iter()
        .filter(|(_, n)| {
            if let gmorph_nn::BlockSpec::Rescale { from, to } = &n.spec {
                from.len() == to.len() && from.iter().zip(to.iter()).all(|(a, b)| a != b)
            } else {
                false
            }
        })
        .count()
}

/// The surrogate's asymptotic accuracy drop for a candidate.
pub fn surrogate_asymptote(
    candidate: &AbsGraph,
    original: &CapacityVector,
    params: &SurrogateParams,
    noise_salt: u64,
) -> Result<f32> {
    let cv = CapacityVector::of(candidate)?;
    let mut worst = 0.0f32;
    for t in 0..original.per_task_total.len() {
        let orig = original.per_task_total[t].max(1) as f32;
        let now = cv.per_task_total.get(t).copied().unwrap_or(0) as f32;
        // Capacity actually removed from the task's path.
        let removed = (1.0 - now / orig).max(0.0);
        let over_r = (removed - params.free_share).max(0.0) / (1.0 - params.free_share);
        // Fraction of the task's remaining path shared with other tasks:
        // sharing de-specializes features even at constant capacity.
        let specific = cv.per_task_specific.get(t).copied().unwrap_or(0) as f32;
        let shared_frac = (1.0 - specific / now.max(1.0)).clamp(0.0, 1.0);
        let over_s = (shared_frac - params.free_shared_frac).max(0.0)
            / (1.0 - params.free_shared_frac);
        worst = worst.max(
            params.max_drop * over_r * over_r + params.share_penalty * over_s * over_s,
        );
    }
    worst += params.dissimilar_penalty * dissimilar_rescales(candidate) as f32;
    let mut noise_rng = Rng::new(graph_noise_seed(candidate, noise_salt));
    // Asymmetric noise, mostly harmless, occasionally an improvement —
    // matching the -1%..+3% initialization spread of Figure 3.
    let noise = noise_rng.normal() * params.init_noise + params.noise_mean;
    Ok((worst + noise).max(-0.01))
}

/// Surrogate fine-tuning: produces the same [`FinetuneResult`] shape as
/// the real path without training, following a geometric learning curve.
///
/// `inherited_frac` is the fraction of nodes initialized from a trained
/// candidate (1.0 when mutating an elite, lower when re-scales were
/// inserted); it speeds convergence, reproducing Figure 2.
pub fn surrogate_finetune(
    candidate: &AbsGraph,
    original: &CapacityVector,
    inherited_frac: f32,
    params: &SurrogateParams,
    cfg: &FinetuneConfig,
    noise_salt: u64,
    teacher_scores: &[f32],
) -> Result<FinetuneResult> {
    let mut asymptote = surrogate_asymptote(candidate, original, params, noise_salt)?;
    match cfg.inject {
        // Poisoned analytic curve: the same non-finite detection that
        // protects the real path must catch it.
        Some(FaultKind::NanLoss) => asymptote = f32::NAN,
        Some(FaultKind::GradExplode) => asymptote = f32::INFINITY,
        // Stall long enough for the supervisor's wall-clock deadline.
        Some(FaultKind::SlowCandidate) => {
            std::thread::sleep(std::time::Duration::from_millis(30));
        }
        Some(FaultKind::PanicEval) => {
            panic!("GMORPH_FAULT: injected panic in surrogate evaluation");
        }
        None => {}
    }
    // Initial drop right after mutation: a margin above the asymptote
    // that shrinks as more weights are inherited (fine-tuning can only
    // recover *toward* the architecture's asymptote, never below it).
    let init_drop = asymptote + 0.06 + 0.5 * (1.0 - inherited_frac.clamp(0.0, 1.0));
    let tau = params.tau_epochs * (2.0 - inherited_frac.clamp(0.0, 1.0));
    let drop_at = |e: usize| -> f32 {
        asymptote + (init_drop - asymptote) * (-(e as f32) / tau).exp()
    };

    let mut records = Vec::new();
    let mut terminated_early = false;
    let mut epochs_run = 0usize;
    let mut predictor = ConvergencePredictor::new();
    let _span = gmorph_telemetry::span!(
        "finetune",
        mode = "surrogate",
        max_epochs = cfg.max_epochs,
        target_drop = cfg.target_drop
    );
    gmorph_telemetry::counter!("finetune.runs");
    'outer: for epoch in (cfg.eval_every.max(1)..=cfg.max_epochs).step_by(cfg.eval_every.max(1))
    {
        epochs_run = epoch;
        let drop = drop_at(epoch);
        let scores: Vec<f32> = teacher_scores.iter().map(|t| t - drop).collect();
        gmorph_telemetry::point!(
            "finetune.eval",
            mode = "surrogate",
            epoch = epoch,
            drop = drop
        );
        records.push(EvalRecord {
            epoch,
            drop,
            scores,
        });
        if drop <= cfg.target_drop {
            break 'outer;
        }
        if cfg.early_termination {
            predictor.push(1.0 - drop);
            if let Some(projected) =
                predictor.predict_final((cfg.max_epochs - epoch) / cfg.eval_every.max(1))
            {
                if 1.0 - projected > cfg.target_drop + 0.002 {
                    terminated_early = true;
                    gmorph_telemetry::point!(
                        "finetune.early_term",
                        mode = "surrogate",
                        epoch = epoch,
                        projected_drop = 1.0 - projected
                    );
                    break 'outer;
                }
            }
        }
    }
    if epochs_run == 0 {
        epochs_run = cfg.max_epochs.min(cfg.eval_every.max(1));
        let drop = drop_at(epochs_run);
        records.push(EvalRecord {
            epoch: epochs_run,
            drop,
            scores: teacher_scores.iter().map(|t| t - drop).collect(),
        });
    }
    gmorph_telemetry::counter!("finetune.epochs", epochs_run as u64);
    if terminated_early {
        gmorph_telemetry::counter!("finetune.early_terminated");
    }
    let last = records.last().expect("at least one record");
    health::check_loss("surrogate_finetune", last.drop)?;
    Ok(FinetuneResult {
        met_target: last.drop <= cfg.target_drop,
        final_drop: last.drop,
        final_scores: last.scores.clone(),
        epochs_run,
        records,
        terminated_early,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_data::faces::{generate, FaceTask, FacesConfig};
    use gmorph_data::TaskSpec;
    use gmorph_graph::parser::{parse_models, parse_specs};
    use gmorph_graph::{generator, mutation, pairs};
    use gmorph_models::families::{vgg, VggDepth, VisionScale};
    use gmorph_models::train::{train_teacher, TrainConfig};
    use gmorph_nn::BlockSpec;

    #[test]
    fn max_drop_takes_worst_task() {
        assert!((max_drop(&[0.8, 0.9], &[0.85, 0.88]) - 0.05).abs() < 1e-6);
        // Improvements yield negative drop.
        assert!(max_drop(&[0.9, 0.95], &[0.85, 0.88]) < 0.0);
    }

    #[test]
    fn distillation_recovers_unmutated_model_instantly() {
        // An unmutated fused model equals its teachers, so the drop is ~0
        // and fine-tuning early-stops at the first evaluation.
        let mut rng = Rng::new(0);
        let cfg = FacesConfig {
            samples: 64,
            ..Default::default()
        };
        let ds = generate(&cfg, &[FaceTask::Gender, FaceTask::Age], &mut rng).unwrap();
        let split = ds.split(0.7, &mut rng).unwrap();
        let mut teachers: Vec<_> = ds
            .tasks
            .iter()
            .map(|t| {
                let spec = vgg(VggDepth::Vgg11, VisionScale::mini(), t).unwrap();
                let mut m = spec.build(&mut rng).unwrap();
                train_teacher(
                    &mut m,
                    &split.train,
                    &split.test,
                    ds.tasks.iter().position(|x| x == t).unwrap(),
                    &TrainConfig {
                        epochs: 2,
                        batch: 32,
                        lr: 2e-3,
                        seed: 0,
                    },
                )
                .unwrap();
                m
            })
            .collect();
        let teacher_scores: Vec<f32> = (0..2)
            .map(|t| {
                gmorph_models::train::evaluate(&mut teachers[t], &split.test, t).unwrap()
            })
            .collect();
        let (graph, store) = parse_models(&teachers).unwrap();
        let (mut tree, _) = generator::generate(&graph, &store, &mut rng).unwrap();
        let targets = teacher_targets(&mut teachers, &split.train.inputs).unwrap();
        let result = finetune(
            &mut tree,
            &split.train.inputs,
            &targets,
            &split.test,
            &teacher_scores,
            &FinetuneConfig {
                max_epochs: 4,
                eval_every: 1,
                target_drop: 0.005,
                batch: 32,
                lr: 5e-4,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(result.met_target, "drop = {}", result.final_drop);
        assert_eq!(result.epochs_run, 1, "should early-stop immediately");
    }

    #[test]
    fn distillation_trains_a_rescaled_mutant() {
        // A mild cross-task mutation plus a couple of distillation epochs
        // must improve (or at least not explode) the fused model.
        let mut rng = Rng::new(1);
        let cfg = FacesConfig {
            samples: 64,
            ..Default::default()
        };
        let ds = generate(&cfg, &[FaceTask::Gender, FaceTask::Age], &mut rng).unwrap();
        let split = ds.split(0.7, &mut rng).unwrap();
        let mut teachers: Vec<_> = ds
            .tasks
            .iter()
            .enumerate()
            .map(|(i, t)| {
                let spec = vgg(VggDepth::Vgg11, VisionScale::mini(), t).unwrap();
                let mut m = spec.build(&mut rng).unwrap();
                train_teacher(
                    &mut m,
                    &split.train,
                    &split.test,
                    i,
                    &TrainConfig {
                        epochs: 2,
                        batch: 32,
                        lr: 2e-3,
                        seed: 0,
                    },
                )
                .unwrap();
                m
            })
            .collect();
        let teacher_scores = vec![0.9f32, 0.5];
        let (graph, store) = parse_models(&teachers).unwrap();
        let prs = pairs::shareable_pairs(&graph).unwrap();
        let cross = prs
            .iter()
            .find(|&&(n, m)| {
                graph.node(n).unwrap().task_id != graph.node(m).unwrap().task_id
            })
            .copied()
            .unwrap();
        let (mutated, _) = mutation::mutation_pass(&graph, &[cross]).unwrap();
        let (mut tree, _) = generator::generate(&mutated, &store, &mut rng).unwrap();
        let targets = teacher_targets(&mut teachers, &split.train.inputs).unwrap();
        let r = finetune(
            &mut tree,
            &split.train.inputs,
            &targets,
            &split.test,
            &teacher_scores,
            &FinetuneConfig {
                max_epochs: 2,
                eval_every: 1,
                target_drop: -1.0, // Never met: run both epochs.
                batch: 32,
                lr: 1e-3,
                ..Default::default()
            },
        )
        .unwrap();
        assert_eq!(r.epochs_run, 2);
        assert_eq!(r.records.len(), 2);
        assert!(r.final_drop.is_finite());
    }

    fn toy_graph_pair() -> (AbsGraph, AbsGraph) {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        let g = parse_specs(&[
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1).unwrap(),
        ])
        .unwrap();
        // Aggressive mutation: task 1's head reuses a mid conv of task 0.
        let heads = g.head_of_task().unwrap();
        let mid = g
            .iter()
            .find(|(_, n)| n.task_id == 0 && n.op_id == 6)
            .map(|(id, _)| id)
            .unwrap();
        let (aggressive, _) = mutation::mutation_pass(&g, &[(mid, heads[1])]).unwrap();
        (g, aggressive)
    }

    #[test]
    fn surrogate_asymptote_grows_with_aggressiveness() {
        let (orig, aggressive) = toy_graph_pair();
        let cv = CapacityVector::of(&orig).unwrap();
        let p = SurrogateParams::default();
        let base = surrogate_asymptote(&orig, &cv, &p, 1).unwrap();
        let hard = surrogate_asymptote(&aggressive, &cv, &p, 1).unwrap();
        assert!(hard > base, "{hard} !> {base}");
    }

    #[test]
    fn surrogate_noise_varies_with_salt_but_is_deterministic() {
        let (orig, _) = toy_graph_pair();
        let cv = CapacityVector::of(&orig).unwrap();
        let p = SurrogateParams::default();
        let a1 = surrogate_asymptote(&orig, &cv, &p, 1).unwrap();
        let a1b = surrogate_asymptote(&orig, &cv, &p, 1).unwrap();
        let a2 = surrogate_asymptote(&orig, &cv, &p, 2).unwrap();
        assert_eq!(a1, a1b);
        assert_ne!(a1, a2);
    }

    #[test]
    fn surrogate_inheritance_speeds_convergence() {
        let (orig, aggressive) = toy_graph_pair();
        let cv = CapacityVector::of(&orig).unwrap();
        let p = SurrogateParams::default();
        let cfg = FinetuneConfig {
            max_epochs: 40,
            eval_every: 1,
            target_drop: 0.02,
            ..Default::default()
        };
        let scores = vec![0.8f32, 0.8];
        let fresh =
            surrogate_finetune(&aggressive, &cv, 0.2, &p, &cfg, 3, &scores).unwrap();
        let inherited =
            surrogate_finetune(&aggressive, &cv, 1.0, &p, &cfg, 3, &scores).unwrap();
        assert!(
            inherited.epochs_run <= fresh.epochs_run,
            "inherited {} !<= fresh {}",
            inherited.epochs_run,
            fresh.epochs_run
        );
    }

    #[test]
    fn surrogate_curve_is_monotone_toward_asymptote() {
        let (orig, aggressive) = toy_graph_pair();
        let cv = CapacityVector::of(&orig).unwrap();
        let cfg = FinetuneConfig {
            max_epochs: 30,
            eval_every: 1,
            target_drop: -1.0,
            ..Default::default()
        };
        let r = surrogate_finetune(
            &aggressive,
            &cv,
            0.5,
            &SurrogateParams::default(),
            &cfg,
            7,
            &[0.8, 0.8],
        )
        .unwrap();
        for w in r.records.windows(2) {
            assert!(w[1].drop <= w[0].drop + 1e-5);
        }
    }

    #[test]
    fn surrogate_injection_classifies_as_non_finite() {
        let (orig, aggressive) = toy_graph_pair();
        let cv = CapacityVector::of(&orig).unwrap();
        for kind in [FaultKind::NanLoss, FaultKind::GradExplode] {
            let cfg = FinetuneConfig {
                max_epochs: 8,
                eval_every: 1,
                target_drop: 0.02,
                inject: Some(kind),
                ..Default::default()
            };
            let err = surrogate_finetune(
                &aggressive,
                &cv,
                0.5,
                &SurrogateParams::default(),
                &cfg,
                7,
                &[0.8, 0.8],
            )
            .unwrap_err();
            assert_eq!(
                error::classify(&err),
                gmorph_tensor::FailureKind::NonFinite,
                "{kind:?}"
            );
        }
    }

    #[test]
    fn dissimilar_rescale_counting() {
        let t0 = TaskSpec::classification("a", 2);
        let g = parse_specs(&[vgg(VggDepth::Vgg11, VisionScale::mini(), &t0).unwrap()])
            .unwrap();
        assert_eq!(dissimilar_rescales(&g), 0);
        let spec = BlockSpec::Rescale {
            from: vec![4, 16, 16],
            to: vec![8, 8, 8],
        };
        // All dims differ: counts as dissimilar.
        assert!(matches!(spec, BlockSpec::Rescale { .. }));
    }
}
