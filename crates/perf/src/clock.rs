//! Virtual clock: search-cost accounting in paper-scale GPU-hours.
//!
//! The paper's Table 5 reports search time in hours on an RTX 8000. We
//! cannot run hours of GPU fine-tuning, so the search drivers account
//! every unit of work they *would* have spent at paper scale: each
//! fine-tuning epoch of a candidate costs
//! `3 × paper_flops × samples / throughput` seconds (forward + backward ≈
//! 3× forward), and each evaluation pass costs the forward part. Filtering
//! mechanisms shorten searches by skipping candidates and epochs, so their
//! savings show up in virtual time exactly as they do in wall-clock time
//! on the authors' testbed.

/// Accumulates simulated seconds of search cost.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    seconds: f64,
    /// Assumed training throughput in FLOP/s (effective, not peak).
    throughput: f64,
    /// Representative-input count used for fine-tuning (paper: 10-20k).
    samples: u64,
}

/// Default effective training throughput, FLOP/s (RTX-8000-class).
pub const DEFAULT_THROUGHPUT: f64 = 20e12;

impl VirtualClock {
    /// Creates a clock with the default paper-scale assumptions.
    pub fn new(samples: u64) -> Self {
        VirtualClock::with_throughput(samples, DEFAULT_THROUGHPUT)
    }

    /// Creates a clock with an explicit effective training throughput in
    /// FLOP/s — the knob for modelling accelerators other than the
    /// paper's RTX 8000. Non-positive values fall back to the default.
    pub fn with_throughput(samples: u64, throughput: f64) -> Self {
        let throughput = if throughput > 0.0 {
            throughput
        } else {
            DEFAULT_THROUGHPUT
        };
        VirtualClock {
            seconds: 0.0,
            throughput,
            samples,
        }
    }

    /// The assumed effective training throughput, FLOP/s.
    pub fn throughput(&self) -> f64 {
        self.throughput
    }

    /// Elapsed virtual seconds.
    pub fn seconds(&self) -> f64 {
        self.seconds
    }

    /// Elapsed virtual hours.
    pub fn hours(&self) -> f64 {
        self.seconds / 3600.0
    }

    /// Charges `epochs` fine-tuning epochs of a candidate whose
    /// paper-scale per-sample forward cost is `paper_flops`.
    pub fn charge_finetune(&mut self, paper_flops: u64, epochs: usize) {
        let per_epoch = 3.0 * paper_flops as f64 * self.samples as f64 / self.throughput;
        self.seconds += per_epoch * epochs as f64;
    }

    /// Charges one evaluation (forward-only) pass.
    pub fn charge_eval(&mut self, paper_flops: u64) {
        self.seconds += paper_flops as f64 * self.samples as f64 / self.throughput;
    }

    /// Charges fixed overhead seconds (mutation, generation, bookkeeping).
    pub fn charge_overhead(&mut self, seconds: f64) {
        self.seconds += seconds;
    }

    /// Restores the accumulated seconds bit-exactly from a checkpoint.
    pub fn restore_seconds(&mut self, seconds: f64) {
        self.seconds = seconds;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_accumulate() {
        let mut c = VirtualClock::new(10_000);
        assert_eq!(c.seconds(), 0.0);
        c.charge_finetune(1_000_000_000, 10);
        let after_ft = c.seconds();
        assert!(after_ft > 0.0);
        c.charge_eval(1_000_000_000);
        assert!(c.seconds() > after_ft);
        c.charge_overhead(5.0);
        assert!((c.seconds() - after_ft).abs() > 5.0 - 1e-9);
    }

    #[test]
    fn paper_scale_epochs_land_in_hours() {
        // A ~30 GFLOP multi-DNN (three paper-scale VGG-13s) fine-tuned for
        // 35 epochs over 20k samples should cost on the order of an hour —
        // the same order as Table 5's per-candidate share.
        let mut c = VirtualClock::new(20_000);
        c.charge_finetune(30_000_000_000, 35);
        assert!(c.hours() > 0.2 && c.hours() < 40.0, "hours = {}", c.hours());
    }

    #[test]
    fn throughput_scales_charges() {
        let mut fast = VirtualClock::with_throughput(10_000, 40e12);
        let mut slow = VirtualClock::with_throughput(10_000, 10e12);
        fast.charge_finetune(1_000_000_000, 10);
        slow.charge_finetune(1_000_000_000, 10);
        assert!((slow.seconds() / fast.seconds() - 4.0).abs() < 1e-9);
        assert_eq!(fast.throughput(), 40e12);
        // Degenerate throughput falls back to the default.
        assert_eq!(
            VirtualClock::with_throughput(1, 0.0).throughput(),
            DEFAULT_THROUGHPUT
        );
        assert_eq!(VirtualClock::new(1).throughput(), DEFAULT_THROUGHPUT);
    }

    #[test]
    fn fewer_epochs_cost_less() {
        let mut a = VirtualClock::new(10_000);
        let mut b = VirtualClock::new(10_000);
        a.charge_finetune(1_000_000_000, 35);
        b.charge_finetune(1_000_000_000, 10);
        assert!(b.seconds() < a.seconds());
    }
}
