//! Performance Estimation (§5) for the GMorph reproduction.
//!
//! "Performance estimation computes several commonly-used performance
//! metrics including latency, FLOPs, and accuracy." This crate provides:
//!
//! - [`estimator`]: the FLOPs Estimator and the Latency Estimator — both a
//!   *measured* path (wall-clock of the real mini-scale tree model) and an
//!   *analytic* path over paper-scale abstract graphs with two backends,
//!   `Eager` (PyTorch-like per-op launch overhead) and `Fused`
//!   (TensorRT-like fusion + higher effective throughput),
//! - [`accuracy`]: the Accuracy Estimator — distillation-based fine-tuning
//!   (§5.2, the `Real` path) and a calibrated analytic `Surrogate` that
//!   preserves the search dynamics at a fraction of the cost (see
//!   DESIGN.md §1 for the substitution argument),
//! - [`compile`]: inference compilation (batch-norm folding) — the real,
//!   measurable counterpart of the `Fused` backend,
//! - [`filter`]: predictive filtering (§5.1) — rule-based capacity
//!   filtering and learning-curve predictive early termination,
//! - [`clock`]: the virtual clock that accounts search cost in paper-scale
//!   GPU-hours.

pub mod accuracy;
pub mod clock;
pub mod compile;
pub mod estimator;
pub mod filter;

pub use accuracy::{EvalRecord, FinetuneConfig, FinetuneResult};
pub use clock::VirtualClock;
pub use estimator::Backend;
pub use filter::{CapacityRuleFilter, ConvergencePredictor};
