//! FLOPs and latency estimation.
//!
//! Two latency paths exist, mirroring how we substitute for the paper's
//! GPU testbed (DESIGN.md §1):
//!
//! - [`measure_latency_ms`]: wall-clock of the real mini-scale
//!   [`TreeModel`] on this CPU — ground truth for our engine,
//! - [`estimate_latency_ms`]: an analytic model over *paper-scale*
//!   abstract graphs: each node costs a per-op launch overhead plus
//!   `flops / throughput`. The [`Backend::Eager`] constants approximate a
//!   PyTorch-style eager executor; [`Backend::Fused`] approximates a
//!   TensorRT-style compiled engine (lower launch overhead, higher
//!   effective throughput from operator fusion). The *ratio* structure —
//!   which model is faster and by how much — is what Table 3 depends on.

use gmorph_graph::{AbsGraph, TreeModel};
use gmorph_nn::Mode;
use gmorph_tensor::{Result, Tensor};
use std::time::Instant;

/// Execution backend for the analytic latency model.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Backend {
    /// PyTorch-like eager execution: high per-op overhead.
    Eager,
    /// TensorRT-like compiled execution: fused ops, lower overhead.
    Fused,
}

impl Backend {
    /// Per-operator launch overhead in microseconds.
    pub fn per_op_overhead_us(self) -> f64 {
        match self {
            Backend::Eager => 30.0,
            Backend::Fused => 6.0,
        }
    }

    /// Effective arithmetic throughput in GFLOP/s.
    pub fn throughput_gflops(self) -> f64 {
        match self {
            Backend::Eager => 14_000.0,
            Backend::Fused => 21_000.0,
        }
    }
}

impl std::fmt::Display for Backend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Backend::Eager => write!(f, "Eager"),
            Backend::Fused => write!(f, "Fused"),
        }
    }
}

/// Total per-sample FLOPs of an abstract graph (the FLOPs Estimator).
pub fn flops_of(graph: &AbsGraph) -> Result<u64> {
    graph.flops()
}

/// Analytic latency of one inference pass over an abstract graph, in
/// milliseconds.
pub fn estimate_latency_ms(graph: &AbsGraph, backend: Backend) -> Result<f64> {
    let mut ms = 0.0f64;
    for (_, node) in graph.iter() {
        let flops = node.spec.flops(&node.input_shape)? as f64;
        ms += backend.per_op_overhead_us() / 1000.0
            + flops / backend.throughput_gflops() / 1e6;
    }
    Ok(ms)
}

/// Approximate bytes moved by one node: inputs + outputs + parameters,
/// 4 bytes each (the dominant traffic of a straightforward executor).
fn node_bytes(node: &gmorph_graph::AbsNode) -> Result<u64> {
    let input: usize = node.input_shape.iter().product();
    let output: usize = node.out_shape()?.iter().product();
    Ok(4 * (input + output + node.capacity) as u64)
}

/// Roofline-model latency: each node costs its launch overhead plus the
/// *maximum* of its compute time and its memory time.
///
/// The default [`estimate_latency_ms`] is compute-only, which is accurate
/// for the conv/attention-dominated models GMorph fuses; the roofline
/// variant additionally charges memory-bound operators (pooling,
/// re-scales, batch-norm tails) their bandwidth cost, which matters when
/// mutations leave graphs dominated by cheap ops. Reported alongside the
/// default in diagnostics; never lower than it.
pub fn estimate_latency_roofline_ms(graph: &AbsGraph, backend: Backend) -> Result<f64> {
    // Effective memory bandwidth in GB/s (RTX 8000-class for Eager;
    // compiled engines overlap transfers better).
    let bandwidth_gbps = match backend {
        Backend::Eager => 550.0,
        Backend::Fused => 672.0,
    };
    let mut ms = 0.0f64;
    for (_, node) in graph.iter() {
        let flops = node.spec.flops(&node.input_shape)? as f64;
        let bytes = node_bytes(node)? as f64;
        let compute_ms = flops / backend.throughput_gflops() / 1e6;
        let memory_ms = bytes / bandwidth_gbps / 1e6;
        ms += backend.per_op_overhead_us() / 1000.0 + compute_ms.max(memory_ms);
    }
    Ok(ms)
}

/// Measures wall-clock inference latency of a tree model on this CPU.
///
/// Runs `warmup` unmeasured passes, then `iters` measured passes, and
/// returns the median in milliseconds. Caches are cleared first so the
/// measurement covers inference only.
pub fn measure_latency_ms(
    model: &mut TreeModel,
    input: &Tensor,
    warmup: usize,
    iters: usize,
) -> Result<f64> {
    model.clear_caches();
    for _ in 0..warmup {
        model.forward(input, Mode::Eval)?;
    }
    let mut samples = Vec::with_capacity(iters.max(1));
    for _ in 0..iters.max(1) {
        let t0 = Instant::now();
        model.forward(input, Mode::Eval)?;
        samples.push(t0.elapsed().as_secs_f64() * 1000.0);
    }
    samples.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
    Ok(samples[samples.len() / 2])
}

/// Measures serving throughput in queries (samples) per second.
///
/// The paper's second deployment scenario (§7): "GMorph can be applied to
/// optimize multi-DNNs in model serving systems to improve serving
/// throughput, which is measured as queries per second." Runs batched
/// inference repeatedly for at least `min_duration` and reports
/// samples/second.
pub fn measure_throughput_qps(
    model: &mut TreeModel,
    input: &Tensor,
    min_duration: std::time::Duration,
) -> Result<f64> {
    model.clear_caches();
    model.forward(input, Mode::Eval)?; // Warm-up.
    let batch = input.dims().first().copied().unwrap_or(1);
    let t0 = Instant::now();
    let mut queries = 0usize;
    while t0.elapsed() < min_duration {
        model.forward(input, Mode::Eval)?;
        queries += batch;
    }
    Ok(queries as f64 / t0.elapsed().as_secs_f64())
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_data::TaskSpec;
    use gmorph_graph::parser::{parse_models, parse_specs};
    use gmorph_graph::{generator, mutation, pairs};
    use gmorph_models::families::{vgg, VggDepth, VisionScale};
    use gmorph_tensor::rng::Rng;

    fn graphs() -> (AbsGraph, AbsGraph) {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        let mini = parse_specs(&[
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1).unwrap(),
        ])
        .unwrap();
        let paper = parse_specs(&[
            vgg(VggDepth::Vgg13, VisionScale::paper(), &t0).unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::paper(), &t1).unwrap(),
        ])
        .unwrap();
        (mini, paper)
    }

    #[test]
    fn fused_is_faster_than_eager() {
        let (_, paper) = graphs();
        let eager = estimate_latency_ms(&paper, Backend::Eager).unwrap();
        let fused = estimate_latency_ms(&paper, Backend::Fused).unwrap();
        assert!(fused < eager, "{fused} !< {eager}");
        assert!(eager > 0.0);
    }

    #[test]
    fn paper_scale_latency_in_milliseconds_range() {
        // Two paper-scale VGG-13s should land in the single-digit
        // millisecond range, like Table 7's originals.
        let (_, paper) = graphs();
        let eager = estimate_latency_ms(&paper, Backend::Eager).unwrap();
        assert!(eager > 0.5 && eager < 50.0, "eager = {eager} ms");
    }

    #[test]
    fn mutation_reduces_estimated_latency_on_both_backends() {
        let (_, paper) = graphs();
        let prs = pairs::shareable_pairs(&paper).unwrap();
        let cross = prs
            .iter()
            .find(|&&(n, m)| {
                paper.node(n).unwrap().task_id != paper.node(m).unwrap().task_id
                    && paper.node(m).unwrap().op_id > 3
            })
            .copied()
            .unwrap();
        let (mutated, ops) = mutation::mutation_pass(&paper, &[cross]).unwrap();
        assert_eq!(ops.len(), 1);
        for b in [Backend::Eager, Backend::Fused] {
            let before = estimate_latency_ms(&paper, b).unwrap();
            let after = estimate_latency_ms(&mutated, b).unwrap();
            assert!(after < before, "{b}: {after} !< {before}");
        }
    }

    #[test]
    fn measured_latency_positive_and_shrinks_with_sharing() {
        let mut rng = Rng::new(0);
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        let models = vec![
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t0)
                .unwrap()
                .build(&mut rng)
                .unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1)
                .unwrap()
                .build(&mut rng)
                .unwrap(),
        ];
        let (graph, store) = parse_models(&models).unwrap();
        let x = Tensor::randn(&[4, 3, 16, 16], 1.0, &mut rng);

        let (mut orig, _) = generator::generate(&graph, &store, &mut rng).unwrap();
        let lat_orig = measure_latency_ms(&mut orig, &x, 1, 5).unwrap();
        assert!(lat_orig > 0.0);

        // Share the whole backbone: task 1's head reuses task 0's deepest
        // conv input.
        let heads = graph.head_of_task().unwrap();
        let deep = graph
            .iter()
            .find(|(_, n)| n.task_id == 0 && n.op_id == 10)
            .map(|(id, _)| id)
            .unwrap();
        let (mutated, _) = mutation::mutation_pass(&graph, &[(deep, heads[1])]).unwrap();
        let (mut fused, _) = generator::generate(&mutated, &store, &mut rng).unwrap();
        let lat_fused = measure_latency_ms(&mut fused, &x, 1, 5).unwrap();
        assert!(
            lat_fused < lat_orig,
            "fused {lat_fused} ms !< original {lat_orig} ms"
        );
    }

    #[test]
    fn roofline_never_undercuts_the_compute_model() {
        let (mini, paper) = graphs();
        for g in [&mini, &paper] {
            for b in [Backend::Eager, Backend::Fused] {
                let compute = estimate_latency_ms(g, b).unwrap();
                let roofline = estimate_latency_roofline_ms(g, b).unwrap();
                assert!(
                    roofline >= compute - 1e-9,
                    "roofline {roofline} < compute {compute}"
                );
            }
        }
    }

    #[test]
    fn roofline_preserves_fusion_speedups() {
        let (_, paper) = graphs();
        let prs = pairs::shareable_pairs(&paper).unwrap();
        let cross = prs
            .iter()
            .find(|&&(n, m)| {
                paper.node(n).unwrap().task_id != paper.node(m).unwrap().task_id
                    && paper.node(m).unwrap().op_id > 3
            })
            .copied()
            .unwrap();
        let (mutated, _) = mutation::mutation_pass(&paper, &[cross]).unwrap();
        let before = estimate_latency_roofline_ms(&paper, Backend::Eager).unwrap();
        let after = estimate_latency_roofline_ms(&mutated, Backend::Eager).unwrap();
        assert!(after < before);
    }

    #[test]
    fn throughput_improves_with_fusion() {
        let mut rng = Rng::new(5);
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        let models = vec![
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t0)
                .unwrap()
                .build(&mut rng)
                .unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1)
                .unwrap()
                .build(&mut rng)
                .unwrap(),
        ];
        let (graph, store) = parse_models(&models).unwrap();
        let x = Tensor::randn(&[4, 3, 16, 16], 1.0, &mut rng);
        let dur = std::time::Duration::from_millis(120);

        let (mut orig, _) = generator::generate(&graph, &store, &mut rng).unwrap();
        let qps_orig = measure_throughput_qps(&mut orig, &x, dur).unwrap();
        assert!(qps_orig > 0.0);

        let heads = graph.head_of_task().unwrap();
        let deep = graph
            .iter()
            .find(|(_, n)| n.task_id == 0 && n.op_id == 10)
            .map(|(id, _)| id)
            .unwrap();
        let (mutated, _) = mutation::mutation_pass(&graph, &[(deep, heads[1])]).unwrap();
        let (mut fused, _) = generator::generate(&mutated, &store, &mut rng).unwrap();
        let qps_fused = measure_throughput_qps(&mut fused, &x, dur).unwrap();
        assert!(
            qps_fused > qps_orig,
            "fused {qps_fused:.0} qps !> original {qps_orig:.0} qps"
        );
    }

    #[test]
    fn flops_of_matches_graph_flops() {
        let (mini, _) = graphs();
        assert_eq!(flops_of(&mini).unwrap(), mini.flops().unwrap());
    }
}
