//! The end-to-end GMorph session: teachers → graphs → search.

use crate::baselines;
use crate::config::{AccuracyMode, OptimizationConfig, SessionConfig};
use gmorph_data::dataset::Split;
use gmorph_graph::parser::{parse_models, parse_specs};
use gmorph_graph::{generator, AbsGraph, CapacityVector, TreeModel, WeightStore};
use gmorph_models::cache::load_or_train;
use gmorph_models::zoo::BenchmarkDef;
use gmorph_models::SingleTaskModel;
use gmorph_perf::accuracy::{teacher_targets, SurrogateParams};
use gmorph_perf::estimator::{estimate_latency_ms, Backend};
use gmorph_search::driver::{run_search_checkpointed, SearchResult};
use gmorph_search::evaluator::{EvalMode, RealContext, SurrogateContext};
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, TensorError};

/// A prepared GMorph session: trained teachers, parsed graphs, splits.
///
/// This corresponds to the paper's framework inputs: "a set of well-trained
/// DNNs" plus "a configuration file" (§3). [`Session::prepare`] produces
/// the well-trained DNNs (training or loading cached teachers);
/// [`Session::optimize`] runs graph mutation optimization under an
/// [`OptimizationConfig`].
#[derive(Debug, Clone)]
pub struct Session {
    /// The benchmark (models at both scales + dataset).
    pub bench: BenchmarkDef,
    /// Trained teachers, one per task.
    pub teachers: Vec<SingleTaskModel>,
    /// Teacher test scores (the accuracy-drop anchors).
    pub teacher_scores: Vec<f32>,
    /// Train/test split of the benchmark dataset.
    pub split: Split,
    /// Mini-scale abstract graph of the input multi-DNNs.
    pub mini_graph: AbsGraph,
    /// Paper-scale abstract graph, node-id aligned with `mini_graph`.
    pub paper_graph: AbsGraph,
    /// Well-trained teacher weights keyed by node identity.
    pub weights: WeightStore,
    /// Session seed.
    pub seed: u64,
    /// Virtual-clock throughput carried into every optimization run.
    pub virtual_throughput: f64,
}

impl Session {
    /// Trains (or loads cached) teachers and parses the graphs.
    pub fn prepare(bench: BenchmarkDef, cfg: &SessionConfig) -> Result<Session> {
        cfg.apply_threads();
        cfg.apply_telemetry()
            .map_err(|e| TensorError::Io(format!("installing telemetry sink: {e}")))?;
        let _span = gmorph_telemetry::span!(
            "session.prepare",
            bench = bench.id.name(),
            tasks = bench.mini.len(),
            seed = cfg.seed
        );
        gmorph_telemetry::meta!(
            "session.meta",
            bench = bench.id.name(),
            tasks = bench.mini.len(),
            seed = cfg.seed,
            train_frac = cfg.train_frac,
            use_cache = cfg.use_cache,
            virtual_throughput = cfg.virtual_throughput
        );
        let mut rng = Rng::new(cfg.seed ^ 0x005E_5510);
        let split = bench.dataset.split(cfg.train_frac, &mut rng)?;
        let mut teachers = Vec::with_capacity(bench.mini.len());
        let mut teacher_scores = Vec::with_capacity(bench.mini.len());
        for (task_idx, spec) in bench.mini.iter().enumerate() {
            let (model, score) = if cfg.use_cache {
                load_or_train(spec, &split, task_idx, &cfg.teacher, cfg.seed)?
            } else {
                let mut m = spec.build(&mut rng)?;
                let report = gmorph_models::train::train_teacher(
                    &mut m,
                    &split.train,
                    &split.test,
                    task_idx,
                    &cfg.teacher,
                )?;
                (m, report.final_score)
            };
            teachers.push(model);
            teacher_scores.push(score);
        }
        let (mini_graph, weights) = parse_models(&teachers)?;
        let paper_graph = parse_specs(&bench.paper)?;
        if mini_graph.len() != paper_graph.len() {
            return Err(TensorError::InvalidArgument {
                op: "Session::prepare",
                msg: "mini/paper graphs disagree on node count".to_string(),
            });
        }
        Ok(Session {
            bench,
            teachers,
            teacher_scores,
            split,
            mini_graph,
            paper_graph,
            weights,
            seed: cfg.seed,
            virtual_throughput: cfg.virtual_throughput,
        })
    }

    /// Builds the accuracy-evaluation backend for a configuration.
    pub fn eval_mode(&self, mode: AccuracyMode) -> Result<EvalMode> {
        match mode {
            AccuracyMode::Real => {
                let mut teachers = self.teachers.clone();
                let targets = teacher_targets(&mut teachers, &self.split.train.inputs)?;
                Ok(EvalMode::Real(RealContext {
                    train_inputs: self.split.train.inputs.clone(),
                    targets,
                    test: self.split.test.clone(),
                    teacher_scores: self.teacher_scores.clone(),
                }))
            }
            AccuracyMode::Surrogate => Ok(EvalMode::Surrogate(SurrogateContext {
                orig_capacity: CapacityVector::of(&self.mini_graph)?,
                params: SurrogateParams::default(),
                teacher_scores: self.teacher_scores.clone(),
            })),
        }
    }

    /// Runs graph mutation optimization (Algorithm 1).
    pub fn optimize(&self, cfg: &OptimizationConfig) -> Result<SearchResult> {
        let _span = gmorph_telemetry::span!(
            "session.optimize",
            iterations = cfg.iterations,
            seed = cfg.seed
        );
        let mode = self.eval_mode(cfg.mode)?;
        let mut search_cfg = cfg.to_search_config();
        search_cfg.virtual_throughput = self.virtual_throughput;
        let result = run_search_checkpointed(
            &self.mini_graph,
            &self.paper_graph,
            &self.weights,
            &mode,
            &search_cfg,
            cfg.checkpoint_options().as_ref(),
        )?;
        // Surface failure containment at the session level: a run that
        // quarantined candidates still completed, but the operator should
        // see how much of the budget went to failures.
        if result.failed > 0 || result.quarantined > 0 {
            gmorph_telemetry::point!(
                "session.resilience",
                failed = result.failed,
                quarantined = result.quarantined,
                iterations = result.trace.len()
            );
        }
        Ok(result)
    }

    /// Estimated paper-scale latency of the original multi-DNNs.
    pub fn original_latency_ms(&self, backend: Backend) -> Result<f64> {
        estimate_latency_ms(&self.paper_graph, backend)
    }

    /// Materializes the trainable multi-task model of a (mini-scale)
    /// abstract graph with teacher-weight inheritance.
    pub fn materialize(&self, graph: &AbsGraph, weights: &WeightStore) -> Result<TreeModel> {
        let mut rng = Rng::new(self.seed ^ 0x6E6E);
        let (tree, _) = generator::generate(graph, weights, &mut rng)?;
        Ok(tree)
    }

    /// The All-shared baseline graph (§6.1) at both scales.
    pub fn all_shared(&self) -> Result<(AbsGraph, AbsGraph)> {
        Ok((
            baselines::all_shared(&self.bench.mini)?,
            baselines::all_shared(&self.bench.paper)?,
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_models::zoo::{build, BenchId, DataProfile};

    fn quick_session() -> Session {
        let bench = build(BenchId::B1, &DataProfile::smoke(), 3).unwrap();
        let cfg = SessionConfig {
            teacher: gmorph_models::train::TrainConfig {
                epochs: 1,
                batch: 32,
                lr: 3e-3,
                seed: 3,
            },
            seed: 3,
            use_cache: false,
            ..Default::default()
        };
        Session::prepare(bench, &cfg).unwrap()
    }

    #[test]
    fn prepare_wires_graphs_and_teachers() {
        let s = quick_session();
        assert_eq!(s.teachers.len(), 3);
        assert_eq!(s.teacher_scores.len(), 3);
        assert_eq!(s.mini_graph.len(), s.paper_graph.len());
        s.mini_graph.validate().unwrap();
        s.paper_graph.validate().unwrap();
        assert!(s.original_latency_ms(Backend::Eager).unwrap() > 0.0);
    }

    #[test]
    fn surrogate_optimize_beats_original() {
        let s = quick_session();
        let cfg = OptimizationConfig {
            iterations: 30,
            accuracy_threshold: 0.02,
            max_epochs: 20,
            eval_every: 2,
            ..Default::default()
        };
        let r = s.optimize(&cfg).unwrap();
        assert!(r.speedup > 1.0, "speedup {}", r.speedup);
    }
}
