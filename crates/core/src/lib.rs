//! GMorph: accelerating multi-DNN inference via model fusion.
//!
//! A from-scratch Rust reproduction of the EuroSys 2024 paper. Given a set
//! of separately pre-trained, possibly heterogeneous task-specific DNNs
//! over one input stream, GMorph searches for a single multi-task model
//! that shares intermediate features across the tasks, cutting inference
//! latency while holding every task within an accuracy-drop budget.
//!
//! # Quickstart
//!
//! ```no_run
//! use gmorph::prelude::*;
//!
//! // Build benchmark B1 (three VGG-13 face models over one stream).
//! let bench = gmorph::zoo::build(BenchId::B1, &DataProfile::smoke(), 0).unwrap();
//! // Train (or load cached) teachers and wire the session.
//! let session = Session::prepare(bench, &SessionConfig::default()).unwrap();
//! // Search for a fused model within a 1% accuracy-drop budget.
//! let cfg = OptimizationConfig {
//!     accuracy_threshold: 0.01,
//!     ..OptimizationConfig::default()
//! };
//! let result = session.optimize(&cfg).unwrap();
//! println!("speedup: {:.2}x", result.speedup);
//! ```
//!
//! The crate re-exports the whole stack: `gmorph::tensor` (the CPU tensor
//! engine), `gmorph::nn` (layers and computation blocks), `gmorph::data`
//! (synthetic multi-task datasets and metrics), `gmorph::models` (the
//! model zoo and benchmark registry), `gmorph::graph` (abstract graphs and
//! mutation — the paper's core contribution), `gmorph::perf` (performance
//! estimation and predictive filtering), and `gmorph::search` (the
//! simulated-annealing search driver).

pub mod baselines;
pub mod config;
pub mod configfile;
pub mod session;

pub use config::{AccuracyMode, OptimizationConfig, SessionConfig};
pub use session::Session;

pub use gmorph_data as data;
pub use gmorph_graph as graph;
pub use gmorph_models as models;
pub use gmorph_nn as nn;
pub use gmorph_perf as perf;
pub use gmorph_search as search;
pub use gmorph_telemetry as telemetry;
pub use gmorph_tensor as tensor;

/// Re-export of the benchmark registry for ergonomic access.
pub use gmorph_models::zoo;

/// The most commonly used types, for glob import.
pub mod prelude {
    pub use crate::baselines;
    pub use crate::config::{AccuracyMode, OptimizationConfig, SessionConfig};
    pub use crate::session::Session;
    pub use gmorph_data::{Labels, Metric, MultiTaskDataset, TaskSpec};
    pub use gmorph_graph::{AbsGraph, CapacityVector, TreeModel, WeightStore};
    pub use gmorph_models::zoo::{build as build_benchmark, BenchId, DataProfile};
    pub use gmorph_models::{ModelSpec, SingleTaskModel};
    pub use gmorph_nn::{Block, BlockSpec, Mode};
    pub use gmorph_perf::estimator::Backend;
    pub use gmorph_search::driver::{Objective, SearchResult};
    pub use gmorph_search::policy::PolicyKind;
    pub use gmorph_tensor::{rng::Rng, Shape, Tensor};
}
