//! The comparison baselines of §6.1: All-shared and TreeMTL.
//!
//! - **All-shared**: "the most commonly used multi-task architecture where
//!   all identical layers are shared across tasks". We take the longest
//!   common prefix of architecturally identical blocks and merge it into a
//!   single trunk; each task keeps its remaining chain as a private
//!   branch. Heterogeneous models share little or nothing, which is the
//!   baseline's documented limitation.
//! - **TreeMTL**: the state-of-the-art MTL recommender, restricted (as MTL
//!   fundamentally is) to sharing *identical common* layers. It enumerates
//!   branch points along the common prefix and recommends the deepest one
//!   its own — systematically optimistic — accuracy estimate accepts,
//!   which reproduces the paper's observation that TreeMTL can over-share
//!   (B2's 2.79% drop) or under-share (B3/B4's ≤1.16× speedups).

use gmorph_graph::absgraph::{AbsGraph, AbsNode};
use gmorph_graph::parser::op_type_of;
use gmorph_graph::CapacityVector;
use gmorph_models::ModelSpec;
use gmorph_perf::accuracy::{surrogate_asymptote, SurrogateParams};
use gmorph_tensor::{Result, TensorError};

/// Builds the All-shared baseline graph: one trunk of the longest common
/// identical prefix, then per-task branches.
///
/// Shared trunk nodes carry task 0's `(task_id, op_id)` identity so the
/// model generator inherits task 0's weights for them, exactly like the
/// hard-parameter-sharing baselines the paper compares against.
pub fn all_shared(specs: &[ModelSpec]) -> Result<AbsGraph> {
    let first = specs.first().ok_or(TensorError::InvalidArgument {
        op: "baselines::all_shared",
        msg: "no models".to_string(),
    })?;
    for s in specs {
        if s.input_shape != first.input_shape {
            return Err(TensorError::InvalidArgument {
                op: "baselines::all_shared",
                msg: "models disagree on input shape".to_string(),
            });
        }
    }
    // Longest common prefix of identical block specs (never includes a
    // task head: heads differ per task and must stay private).
    let mut prefix = 0usize;
    'outer: while let Some(block) = first.blocks.get(prefix) {
        if matches!(block, gmorph_nn::BlockSpec::Head { .. }) {
            break;
        }
        for s in &specs[1..] {
            if s.blocks.get(prefix) != Some(block)
                || matches!(s.blocks.get(prefix), Some(gmorph_nn::BlockSpec::Head { .. }))
            {
                break 'outer;
            }
        }
        prefix += 1;
    }
    build_branched(specs, prefix)
}

/// Builds a tree sharing the first `branch_at` common-prefix blocks.
///
/// `branch_at` must not exceed the common identical prefix; 0 reproduces
/// the original separate models.
pub fn build_branched(specs: &[ModelSpec], branch_at: usize) -> Result<AbsGraph> {
    let first = specs.first().ok_or(TensorError::InvalidArgument {
        op: "baselines::build_branched",
        msg: "no models".to_string(),
    })?;
    for s in specs {
        if s.blocks.len() < branch_at
            || s.blocks[..branch_at] != first.blocks[..branch_at]
        {
            return Err(TensorError::InvalidArgument {
                op: "baselines::build_branched",
                msg: format!("branch point {branch_at} exceeds the identical prefix"),
            });
        }
    }
    let tasks = specs.iter().map(|s| s.task.clone()).collect();
    let mut g = AbsGraph::new(first.input_shape.clone(), tasks);
    // Shared trunk, identified as task 0's nodes.
    let mut trunk_tail = None;
    for (op_id, block) in first.blocks[..branch_at].iter().enumerate() {
        let input_shape = g.feed_shape(trunk_tail)?;
        let id = g.add_node(AbsNode {
            task_id: 0,
            op_id,
            op_type: op_type_of(block),
            spec: block.clone(),
            input_shape,
            capacity: 0,
            parent: trunk_tail,
            children: vec![],
        })?;
        trunk_tail = Some(id);
    }
    // Private branches.
    for (task_id, spec) in specs.iter().enumerate() {
        let mut prev = trunk_tail;
        for (op_id, block) in spec.blocks.iter().enumerate().skip(branch_at) {
            // Task 0's trunk nodes already exist; skip re-adding them.
            if task_id == 0 && op_id < branch_at {
                continue;
            }
            let input_shape = g.feed_shape(prev)?;
            let id = g.add_node(AbsNode {
                task_id,
                op_id,
                op_type: op_type_of(block),
                spec: block.clone(),
                input_shape,
                capacity: 0,
                parent: prev,
                children: vec![],
            })?;
            prev = Some(id);
        }
    }
    g.validate()?;
    Ok(g)
}

/// Length of the longest common identical (non-head) prefix.
pub fn common_prefix_len(specs: &[ModelSpec]) -> usize {
    let Some(first) = specs.first() else {
        return 0;
    };
    let mut prefix = 0usize;
    loop {
        let Some(block) = first.blocks.get(prefix) else {
            return prefix;
        };
        if matches!(block, gmorph_nn::BlockSpec::Head { .. }) {
            return prefix;
        }
        if specs[1..]
            .iter()
            .any(|s| s.blocks.get(prefix) != Some(block))
        {
            return prefix;
        }
        prefix += 1;
    }
}

/// TreeMTL's recommendation: the deepest branch point whose *optimistic*
/// accuracy estimate stays within the threshold.
///
/// TreeMTL's accuracy model has no access to fine-tuning feedback, so it
/// is emulated with a noise-free surrogate whose `free_share` is higher
/// than reality (it over-trusts task affinity) — reproducing the paper's
/// over-/under-sharing failure modes.
pub fn treemtl_recommend(specs: &[ModelSpec], threshold: f32) -> Result<AbsGraph> {
    let max_branch = common_prefix_len(specs);
    let original = build_branched(specs, 0)?;
    let orig_cv = CapacityVector::of(&original)?;
    let optimistic = SurrogateParams {
        free_share: 0.62,
        share_penalty: 0.0, // TreeMTL's affinity model over-trusts sharing.
        init_noise: 0.0,
        noise_mean: 0.0,
        ..Default::default()
    };
    let mut best = original;
    for branch_at in 1..=max_branch {
        let candidate = build_branched(specs, branch_at)?;
        let predicted = surrogate_asymptote(&candidate, &orig_cv, &optimistic, 0)?;
        if predicted <= threshold {
            best = candidate; // Deeper sharing always means lower latency.
        }
    }
    Ok(best)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_data::TaskSpec;
    use gmorph_models::families::{resnet, vgg, ResNetDepth, VggDepth, VisionScale};

    fn vgg13_pair() -> Vec<ModelSpec> {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        vec![
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1).unwrap(),
        ]
    }

    fn hetero_pair() -> Vec<ModelSpec> {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        vec![
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t1).unwrap(),
        ]
    }

    #[test]
    fn identical_models_share_everything_but_heads() {
        let specs = vgg13_pair();
        let g = all_shared(&specs).unwrap();
        // Trunk = all non-head blocks once, + 2 heads.
        let expected = (specs[0].blocks.len() - 1) + 2;
        assert_eq!(g.len(), expected);
        g.validate().unwrap();
        // Both tasks still have heads.
        assert_eq!(g.head_of_task().unwrap().len(), 2);
    }

    #[test]
    fn heterogeneous_models_share_little() {
        let specs = hetero_pair();
        let prefix = common_prefix_len(&specs);
        // VGG-13 and VGG-11 diverge after the first conv (stage 1 has two
        // convs vs one).
        assert_eq!(prefix, 1);
        let g = all_shared(&specs).unwrap();
        let separate = specs.iter().map(|s| s.blocks.len()).sum::<usize>();
        assert_eq!(g.len(), separate - prefix);
    }

    #[test]
    fn cross_family_models_share_nothing() {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        let specs = vec![
            resnet(ResNetDepth::ResNet34, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg16, VisionScale::mini(), &t1).unwrap(),
        ];
        assert_eq!(common_prefix_len(&specs), 0);
        let g = all_shared(&specs).unwrap();
        assert_eq!(g.roots.len(), 2);
    }

    #[test]
    fn branched_builds_are_valid_and_cheaper_when_deeper() {
        let specs = vgg13_pair();
        let max = common_prefix_len(&specs);
        assert!(max >= 2);
        let shallow = build_branched(&specs, 1).unwrap();
        let deep = build_branched(&specs, max).unwrap();
        shallow.validate().unwrap();
        deep.validate().unwrap();
        assert!(deep.flops().unwrap() < shallow.flops().unwrap());
        // Beyond the identical prefix: rejected.
        let hetero = hetero_pair();
        assert!(build_branched(&hetero, 3).is_err());
    }

    #[test]
    fn treemtl_recommends_deeper_sharing_for_looser_thresholds() {
        let specs = vgg13_pair();
        let strict = treemtl_recommend(&specs, 0.0).unwrap();
        let loose = treemtl_recommend(&specs, 0.05).unwrap();
        assert!(loose.flops().unwrap() <= strict.flops().unwrap());
        loose.validate().unwrap();
    }
}
