//! The optimization configuration (the paper's "configuration file", §3).

use gmorph_graph::pairs::PairPolicy;
use gmorph_models::train::TrainConfig;
use gmorph_nn::health::HealthConfig;
use gmorph_perf::accuracy::FinetuneConfig;
use gmorph_search::driver::{Objective, SearchConfig};
use gmorph_search::policy::PolicyKind;
use gmorph_search::supervisor::SupervisorConfig;
use gmorph_tensor::FaultSpec;

/// How candidate accuracy is estimated.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccuracyMode {
    /// Distillation fine-tuning of the real mini-scale model (§5.2).
    Real,
    /// Calibrated analytic surrogate (DESIGN.md §1): used by the large
    /// experiment grids.
    Surrogate,
}

/// Session-level configuration: how teachers are prepared.
#[derive(Debug, Clone)]
pub struct SessionConfig {
    /// Teacher-training hyperparameters.
    pub teacher: TrainConfig,
    /// Session seed (teachers, splits, search defaults derive from it).
    pub seed: u64,
    /// Train fraction of the dataset split.
    pub train_frac: f32,
    /// Use the on-disk teacher cache.
    pub use_cache: bool,
    /// Kernel worker threads for this session. `None` keeps the process
    /// default (the `GMORPH_THREADS` environment variable, falling back to
    /// the machine's core count). Thread count never changes results —
    /// kernels decompose by shape with fixed reduction orders — only
    /// wall-clock time.
    pub threads: Option<usize>,
    /// Write a structured JSONL telemetry trace to this path. `None`
    /// falls back to the `GMORPH_TRACE` environment variable; telemetry
    /// stays disabled (near-zero overhead) when neither is set.
    pub trace: Option<std::path::PathBuf>,
    /// Suppress informational console output.
    pub quiet: bool,
    /// Virtual-clock effective training throughput in FLOP/s used to
    /// account paper-scale search cost (default: the paper's RTX-8000
    /// assumption).
    pub virtual_throughput: f64,
}

impl Default for SessionConfig {
    fn default() -> Self {
        SessionConfig {
            teacher: TrainConfig {
                epochs: 6,
                batch: 32,
                lr: 3e-3,
                seed: 0,
            },
            seed: 0,
            train_frac: 0.75,
            use_cache: true,
            threads: None,
            trace: None,
            quiet: false,
            virtual_throughput: gmorph_perf::clock::DEFAULT_THROUGHPUT,
        }
    }
}

impl SessionConfig {
    /// Applies the thread setting to the process-wide kernel engine.
    ///
    /// Called by `Session::prepare`; callers driving the lower layers
    /// directly can invoke it themselves.
    pub fn apply_threads(&self) {
        if let Some(n) = self.threads {
            gmorph_tensor::engine::set_num_threads(n);
        }
    }

    /// Installs the telemetry sink named by `trace` (or by `GMORPH_TRACE`
    /// when `trace` is `None`). Returns the trace path when telemetry was
    /// enabled. A no-op when a sink is already installed.
    pub fn apply_telemetry(&self) -> std::io::Result<Option<std::path::PathBuf>> {
        if gmorph_telemetry::enabled() {
            return Ok(None);
        }
        if let Some(path) = &self.trace {
            let sink = gmorph_telemetry::JsonlSink::create(path)?;
            gmorph_telemetry::install(std::sync::Arc::new(sink));
            return Ok(Some(path.clone()));
        }
        Ok(gmorph_telemetry::init_from_env())
    }
}

/// The graph-mutation optimization configuration.
///
/// Mirrors the paper's configuration file: "(1) the metric to be optimized
/// (i.e., latency or FLOPS) and the acceptable task accuracy threshold,
/// (2) representative DNN inputs for multi-task model fine-tuning, (3)
/// testing data and scripts to evaluate task accuracy, (4) optimization
/// hyperparameters". Items (2) and (3) come from the session's dataset;
/// this struct carries (1) and (4).
#[derive(Debug, Clone)]
pub struct OptimizationConfig {
    /// Metric to minimize.
    pub objective: Objective,
    /// Acceptable accuracy drop (0.0 / 0.01 / 0.02 in the evaluation).
    pub accuracy_threshold: f32,
    /// Search rounds (paper: 200).
    pub iterations: usize,
    /// Accuracy estimation backend.
    pub mode: AccuracyMode,
    /// Sampling policy.
    pub policy: PolicyKind,
    /// Enables rule-based filtering ("+R").
    pub rule_filter: bool,
    /// Enables predictive early termination ("+P").
    pub early_termination: bool,
    /// Pair-enumeration policy (similar shapes by default).
    pub pair_policy: PairPolicy,
    /// Maximum fine-tuning epochs per candidate.
    pub max_epochs: usize,
    /// Validation cadence in epochs (the paper's δ).
    pub eval_every: usize,
    /// Fine-tuning learning rate.
    pub lr: f32,
    /// Fine-tuning batch size.
    pub batch: usize,
    /// Maximum mutation operations per pass.
    pub max_ops_per_pass: usize,
    /// Simulated-annealing cooling constant α.
    pub sa_alpha: f32,
    /// Search seed.
    pub seed: u64,
    /// Directory for crash-safe search checkpoints (`None` disables
    /// checkpointing).
    pub checkpoint_dir: Option<std::path::PathBuf>,
    /// Snapshot-to-disk cadence in iterations (pending snapshots between
    /// writes are flushed on drop/panic).
    pub checkpoint_every: usize,
    /// Resume from the newest valid checkpoint in `checkpoint_dir` whose
    /// config fingerprint matches.
    pub resume: bool,
    /// Bounded retries for transiently failing candidates (panic or
    /// non-finite): each retry reseeds the initialization and backs off
    /// the learning rate.
    pub max_retries: usize,
    /// Per-candidate wall-clock deadline in milliseconds (`None`
    /// disables; wall deadlines are machine-dependent and so off by
    /// default).
    pub candidate_deadline_ms: Option<u64>,
    /// Global-norm gradient clipping threshold for candidate fine-tuning
    /// (`None` disables clipping — the default, preserving bit-exact
    /// behavior of earlier versions).
    pub grad_clip: Option<f32>,
}

impl Default for OptimizationConfig {
    fn default() -> Self {
        OptimizationConfig {
            objective: Objective::Latency,
            accuracy_threshold: 0.01,
            iterations: 24,
            mode: AccuracyMode::Surrogate,
            policy: PolicyKind::SimulatedAnnealing,
            rule_filter: false,
            early_termination: false,
            pair_policy: PairPolicy::SimilarShape,
            max_epochs: 10,
            eval_every: 2,
            lr: 1e-3,
            batch: 32,
            max_ops_per_pass: 2,
            sa_alpha: 0.99,
            seed: 0,
            checkpoint_dir: None,
            checkpoint_every: 4,
            resume: false,
            max_retries: 2,
            candidate_deadline_ms: None,
            grad_clip: None,
        }
    }
}

impl OptimizationConfig {
    /// Lowers the checkpoint settings into driver form, wiring in the
    /// `GMORPH_CRASH_AFTER` crash hook (used by the CI resume-smoke job).
    pub fn checkpoint_options(&self) -> Option<gmorph_search::CheckpointOptions> {
        let dir = self.checkpoint_dir.clone()?;
        let mut opts = gmorph_search::CheckpointOptions::new(dir);
        opts.every = self.checkpoint_every.max(1);
        opts.resume = self.resume;
        opts.crash_after = gmorph_search::CheckpointOptions::crash_after_from_env();
        Some(opts)
    }

    /// Lowers this configuration into the search-driver form.
    pub fn to_search_config(&self) -> SearchConfig {
        SearchConfig {
            iterations: self.iterations,
            objective: self.objective,
            policy: self.policy,
            max_ops_per_pass: self.max_ops_per_pass,
            sa_alpha: self.sa_alpha,
            pair_policy: self.pair_policy,
            rule_filter: self.rule_filter,
            finetune: FinetuneConfig {
                max_epochs: self.max_epochs,
                batch: self.batch,
                lr: self.lr,
                eval_every: self.eval_every,
                target_drop: self.accuracy_threshold,
                task_weights: Vec::new(),
                early_termination: self.early_termination,
                seed: self.seed,
                health: HealthConfig {
                    grad_clip: self.grad_clip,
                    ..HealthConfig::default()
                },
                wall_deadline_ms: self.candidate_deadline_ms,
                inject: None,
            },
            virtual_samples: 20_000,
            virtual_throughput: gmorph_perf::clock::DEFAULT_THROUGHPUT,
            seed: self.seed,
            supervisor: SupervisorConfig {
                max_retries: self.max_retries,
                candidate_deadline_ms: self.candidate_deadline_ms,
                // Fault injection comes from the environment only, read
                // once here at configuration time (the CI fault-smoke
                // hook, mirroring GMORPH_CRASH_AFTER).
                fault: FaultSpec::from_env(),
                ..SupervisorConfig::default()
            },
        }
    }

    /// The paper's "GMorph w P" variant.
    pub fn with_p(mut self) -> Self {
        self.early_termination = true;
        self
    }

    /// The paper's "GMorph w P+R" variant.
    pub fn with_p_r(mut self) -> Self {
        self.early_termination = true;
        self.rule_filter = true;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn variants_set_flags() {
        let base = OptimizationConfig::default();
        assert!(!base.early_termination && !base.rule_filter);
        let p = OptimizationConfig::default().with_p();
        assert!(p.early_termination && !p.rule_filter);
        let pr = OptimizationConfig::default().with_p_r();
        assert!(pr.early_termination && pr.rule_filter);
    }

    #[test]
    fn lowering_preserves_fields() {
        let cfg = OptimizationConfig {
            accuracy_threshold: 0.02,
            iterations: 77,
            max_epochs: 9,
            ..Default::default()
        };
        let sc = cfg.to_search_config();
        assert_eq!(sc.iterations, 77);
        assert_eq!(sc.finetune.max_epochs, 9);
        assert!((sc.finetune.target_drop - 0.02).abs() < 1e-9);
    }

    #[test]
    fn resilience_knobs_lower_into_supervisor_and_health() {
        let cfg = OptimizationConfig {
            max_retries: 5,
            candidate_deadline_ms: Some(750),
            grad_clip: Some(2.5),
            ..Default::default()
        };
        let sc = cfg.to_search_config();
        assert_eq!(sc.supervisor.max_retries, 5);
        assert_eq!(sc.supervisor.candidate_deadline_ms, Some(750));
        assert_eq!(sc.finetune.wall_deadline_ms, Some(750));
        assert_eq!(sc.finetune.health.grad_clip, Some(2.5));
        assert_eq!(sc.finetune.inject, None);
        // The default stays inert so clean runs remain bit-identical.
        let default = OptimizationConfig::default().to_search_config();
        assert_eq!(default.finetune.health.grad_clip, None);
        assert_eq!(default.supervisor.candidate_deadline_ms, None);
    }
}
