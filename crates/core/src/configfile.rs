//! Parsing the paper's "configuration file" (§3).
//!
//! GMorph takes, besides the well-trained DNNs, "a configuration file for
//! the graph mutation optimization". This module parses a simple
//! `key = value` format (with `#` comments) into an
//! [`OptimizationConfig`]:
//!
//! ```text
//! # GMorph optimization config
//! metric              = latency      # or flops
//! accuracy_threshold  = 0.01
//! iterations          = 200
//! mode                = surrogate    # or real
//! policy              = simulated_annealing  # or random
//! rule_filter         = true
//! early_termination   = true
//! pair_policy         = similar      # similar | dissimilar | any
//! max_epochs          = 35
//! eval_every          = 5
//! lr                  = 0.001
//! batch               = 64
//! max_ops_per_pass    = 2
//! sa_alpha            = 0.99
//! seed                = 7
//! ```
//!
//! Unknown keys are rejected (catching typos beats silently ignoring
//! them); omitted keys keep their defaults.

use crate::config::{AccuracyMode, OptimizationConfig};
use gmorph_graph::pairs::PairPolicy;
use gmorph_search::driver::Objective;
use gmorph_search::policy::PolicyKind;
use gmorph_tensor::{Result, TensorError};

fn bad(line_no: usize, msg: String) -> TensorError {
    TensorError::InvalidArgument {
        op: "configfile::parse",
        msg: format!("line {line_no}: {msg}"),
    }
}

fn parse_bool(line_no: usize, v: &str) -> Result<bool> {
    match v {
        "true" | "yes" | "1" | "on" => Ok(true),
        "false" | "no" | "0" | "off" => Ok(false),
        other => Err(bad(line_no, format!("expected a boolean, got {other:?}"))),
    }
}

/// Parses configuration text into an [`OptimizationConfig`].
///
/// # Examples
///
/// ```
/// use gmorph::configfile::parse;
///
/// let cfg = parse("accuracy_threshold = 0.02\niterations = 50\n").unwrap();
/// assert_eq!(cfg.iterations, 50);
/// assert!((cfg.accuracy_threshold - 0.02).abs() < 1e-6);
/// ```
pub fn parse(text: &str) -> Result<OptimizationConfig> {
    let mut cfg = OptimizationConfig::default();
    for (i, raw) in text.lines().enumerate() {
        let line_no = i + 1;
        let line = raw.split('#').next().unwrap_or("").trim();
        if line.is_empty() {
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(bad(line_no, format!("expected `key = value`, got {line:?}")));
        };
        let key = key.trim();
        let value = value.trim();
        let num = |what: &str| -> Result<f32> {
            value
                .parse::<f32>()
                .map_err(|_| bad(line_no, format!("{what} expects a number, got {value:?}")))
        };
        let int = |what: &str| -> Result<usize> {
            value
                .parse::<usize>()
                .map_err(|_| bad(line_no, format!("{what} expects an integer, got {value:?}")))
        };
        match key {
            "metric" => {
                cfg.objective = match value {
                    "latency" => Objective::Latency,
                    "flops" => Objective::Flops,
                    other => return Err(bad(line_no, format!("unknown metric {other:?}"))),
                }
            }
            "accuracy_threshold" => cfg.accuracy_threshold = num("accuracy_threshold")?,
            "iterations" => cfg.iterations = int("iterations")?,
            "mode" => {
                cfg.mode = match value {
                    "real" => AccuracyMode::Real,
                    "surrogate" => AccuracyMode::Surrogate,
                    other => return Err(bad(line_no, format!("unknown mode {other:?}"))),
                }
            }
            "policy" => {
                cfg.policy = match value {
                    "simulated_annealing" | "sa" => PolicyKind::SimulatedAnnealing,
                    "random" => PolicyKind::RandomSampling,
                    other => return Err(bad(line_no, format!("unknown policy {other:?}"))),
                }
            }
            "rule_filter" => cfg.rule_filter = parse_bool(line_no, value)?,
            "early_termination" => cfg.early_termination = parse_bool(line_no, value)?,
            "pair_policy" => {
                cfg.pair_policy = match value {
                    "similar" => PairPolicy::SimilarShape,
                    "dissimilar" => PairPolicy::DissimilarShape,
                    "any" => PairPolicy::AnyShape,
                    other => {
                        return Err(bad(line_no, format!("unknown pair policy {other:?}")))
                    }
                }
            }
            "max_epochs" => cfg.max_epochs = int("max_epochs")?,
            "eval_every" => cfg.eval_every = int("eval_every")?,
            "lr" => cfg.lr = num("lr")?,
            "batch" => cfg.batch = int("batch")?,
            "max_ops_per_pass" => cfg.max_ops_per_pass = int("max_ops_per_pass")?,
            "sa_alpha" => cfg.sa_alpha = num("sa_alpha")?,
            "seed" => cfg.seed = int("seed")? as u64,
            "max_retries" => cfg.max_retries = int("max_retries")?,
            "candidate_deadline_ms" => {
                cfg.candidate_deadline_ms = Some(int("candidate_deadline_ms")? as u64)
            }
            "grad_clip" => {
                let v = num("grad_clip")?;
                if !v.is_finite() || v <= 0.0 {
                    return Err(bad(
                        line_no,
                        format!("grad_clip expects a positive finite norm, got {value:?}"),
                    ));
                }
                cfg.grad_clip = Some(v);
            }
            other => return Err(bad(line_no, format!("unknown key {other:?}"))),
        }
    }
    Ok(cfg)
}

/// Loads and parses a configuration file from disk.
pub fn load(path: &std::path::Path) -> Result<OptimizationConfig> {
    let text = std::fs::read_to_string(path)
        .map_err(|e| TensorError::Io(format!("{}: {e}", path.display())))?;
    parse(&text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_config_roundtrip() {
        let cfg = parse(
            "\
# everything set
metric = flops
accuracy_threshold = 0.02
iterations = 123
mode = real
policy = random
rule_filter = yes
early_termination = on
pair_policy = any
max_epochs = 16
eval_every = 2
lr = 0.0005
batch = 128
max_ops_per_pass = 3
sa_alpha = 0.9
seed = 42
",
        )
        .unwrap();
        assert_eq!(cfg.objective, Objective::Flops);
        assert_eq!(cfg.iterations, 123);
        assert_eq!(cfg.mode, AccuracyMode::Real);
        assert_eq!(cfg.policy, PolicyKind::RandomSampling);
        assert!(cfg.rule_filter && cfg.early_termination);
        assert_eq!(cfg.pair_policy, PairPolicy::AnyShape);
        assert_eq!(cfg.max_epochs, 16);
        assert_eq!(cfg.eval_every, 2);
        assert_eq!(cfg.batch, 128);
        assert_eq!(cfg.max_ops_per_pass, 3);
        assert_eq!(cfg.seed, 42);
        assert!((cfg.lr - 0.0005).abs() < 1e-9);
        assert!((cfg.sa_alpha - 0.9).abs() < 1e-6);
    }

    #[test]
    fn defaults_survive_partial_configs() {
        let cfg = parse("iterations = 7\n").unwrap();
        let def = OptimizationConfig::default();
        assert_eq!(cfg.iterations, 7);
        assert_eq!(cfg.max_epochs, def.max_epochs);
        assert_eq!(cfg.policy, def.policy);
    }

    #[test]
    fn comments_and_blank_lines_ignored() {
        let cfg = parse("\n# comment only\n  \nseed = 5 # trailing\n").unwrap();
        assert_eq!(cfg.seed, 5);
    }

    #[test]
    fn rejects_unknown_keys_and_bad_values() {
        assert!(parse("nope = 1\n").is_err());
        assert!(parse("iterations = many\n").is_err());
        assert!(parse("rule_filter = maybe\n").is_err());
        assert!(parse("metric = vibes\n").is_err());
        assert!(parse("just a line\n").is_err());
        // Error names the line.
        let err = parse("seed = 1\nnope = 2\n").unwrap_err();
        assert!(err.to_string().contains("line 2"), "{err}");
    }

    #[test]
    fn load_missing_file_errors() {
        assert!(load(std::path::Path::new("/nonexistent/gmorph.conf")).is_err());
    }
}
