//! The `gmorph` command-line tool.
//!
//! ```text
//! gmorph optimize --bench B1 [--config FILE] [--threshold 0.01]
//!                 [--mode real|surrogate] [--iterations N] [--seed N]
//!                 [--batch-size K] [--render]
//! gmorph benchmarks
//! gmorph baselines --bench B1
//! ```
//!
//! `optimize` prepares a benchmark session (training or loading cached
//! teachers) and runs graph mutation optimization; `--config` reads the
//! paper-style configuration file (see `gmorph::configfile`), with
//! command-line flags overriding file values. `--batch-size` switches to
//! the batched parallel search (§7 extension).

use gmorph::perf::estimator::estimate_latency_ms;
use gmorph::prelude::*;
use gmorph::search::batched::run_search_batched;
use gmorph::{baselines, configfile};
use std::process::ExitCode;

struct Cli {
    command: String,
    bench: Option<BenchId>,
    config: Option<std::path::PathBuf>,
    threshold: Option<f32>,
    mode: Option<AccuracyMode>,
    iterations: Option<usize>,
    seed: Option<u64>,
    batch_size: Option<usize>,
    render: bool,
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    let mut cli = Cli {
        command,
        bench: None,
        config: None,
        threshold: None,
        mode: None,
        iterations: None,
        seed: None,
        batch_size: None,
        render: false,
    };
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--bench" => {
                let v = take("--bench")?;
                cli.bench = Some(BenchId::parse(&v).ok_or(format!("unknown benchmark {v}"))?);
            }
            "--config" => cli.config = Some(take("--config")?.into()),
            "--threshold" => {
                cli.threshold =
                    Some(take("--threshold")?.parse().map_err(|_| "bad threshold")?)
            }
            "--mode" => {
                cli.mode = Some(match take("--mode")?.as_str() {
                    "real" => AccuracyMode::Real,
                    "surrogate" => AccuracyMode::Surrogate,
                    other => return Err(format!("unknown mode {other}")),
                })
            }
            "--iterations" => {
                cli.iterations =
                    Some(take("--iterations")?.parse().map_err(|_| "bad iterations")?)
            }
            "--seed" => cli.seed = Some(take("--seed")?.parse().map_err(|_| "bad seed")?),
            "--batch-size" => {
                cli.batch_size =
                    Some(take("--batch-size")?.parse().map_err(|_| "bad batch size")?)
            }
            "--render" => cli.render = true,
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(cli)
}

fn cmd_benchmarks() {
    println!("benchmark  tasks and models (Table 2)");
    println!("---------  -----------------------------------------------");
    let rows = [
        ("B1", "Age/Gender/Ethnicity: 3x VGG-13 (SynthFaces)"),
        ("B2", "Emotion/Age/Gender: 3x VGG-16 (SynthFaces)"),
        ("B3", "Emotion/Age/Gender: VGG-13/16/11 (SynthFaces)"),
        ("B4", "Object: ResNet-34, Salient: ResNet-18 (SynthScenes)"),
        ("B5", "Object: ResNet-34, Salient: VGG-16 (SynthScenes)"),
        ("B6", "Object: ViT-Large, Salient: ViT-Base (SynthScenes)"),
        ("B7", "CoLA: BERT-Large, SST: BERT-Base (SynthText)"),
    ];
    for (id, desc) in rows {
        println!("{id:<9}  {desc}");
    }
}

fn cmd_baselines(bench: BenchId, seed: u64) -> gmorph::tensor::Result<()> {
    let b = build_benchmark(bench, &DataProfile::standard(), seed)?;
    let prefix = baselines::common_prefix_len(&b.paper);
    println!("{bench}: identical common prefix = {prefix} blocks");
    let original = gmorph::graph::parser::parse_specs(&b.paper)?;
    let orig = estimate_latency_ms(&original, Backend::Eager)?;
    println!("original latency (paper scale, eager): {orig:.2} ms");
    let shared = baselines::all_shared(&b.paper)?;
    let lat = estimate_latency_ms(&shared, Backend::Eager)?;
    println!("All-shared: {lat:.2} ms ({:.2}x)", orig / lat);
    if prefix > 0 {
        let tm = baselines::treemtl_recommend(&b.paper, 0.01)?;
        let lat = estimate_latency_ms(&tm, Backend::Eager)?;
        println!("TreeMTL @1%: {lat:.2} ms ({:.2}x)", orig / lat);
    } else {
        println!("TreeMTL @1%: not applicable (no identical layers)");
    }
    Ok(())
}

fn cmd_optimize(cli: &Cli) -> Result<(), String> {
    let bench_id = cli.bench.ok_or("optimize needs --bench")?;
    let mut cfg = match &cli.config {
        Some(path) => configfile::load(path).map_err(|e| e.to_string())?,
        None => OptimizationConfig::default(),
    };
    if let Some(t) = cli.threshold {
        cfg.accuracy_threshold = t;
    }
    if let Some(m) = cli.mode {
        cfg.mode = m;
    }
    if let Some(i) = cli.iterations {
        cfg.iterations = i;
    }
    if let Some(s) = cli.seed {
        cfg.seed = s;
    }

    println!("preparing {bench_id} (teachers train once, then cache)...");
    let bench = build_benchmark(bench_id, &DataProfile::standard(), cfg.seed)
        .map_err(|e| e.to_string())?;
    let session = Session::prepare(
        bench,
        &SessionConfig {
            seed: cfg.seed,
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    for (spec, score) in session.bench.mini.iter().zip(&session.teacher_scores) {
        println!("  teacher {:<28} score {score:.3}", spec.name);
    }

    println!(
        "searching: {} iterations, {:?} mode, {:.1}% budget{}...",
        cfg.iterations,
        cfg.mode,
        cfg.accuracy_threshold * 100.0,
        cli.batch_size
            .map(|k| format!(", batch size {k}"))
            .unwrap_or_default()
    );
    let (best_mini, latency, orig, speedup, drop) = match cli.batch_size {
        Some(k) => {
            let mode = session.eval_mode(cfg.mode).map_err(|e| e.to_string())?;
            let r = run_search_batched(
                &session.mini_graph,
                &session.paper_graph,
                &session.weights,
                &mode,
                &cfg.to_search_config(),
                k,
            )
            .map_err(|e| e.to_string())?;
            (
                r.best_mini,
                r.best_latency_ms,
                r.original_latency_ms,
                r.speedup,
                f32::NAN,
            )
        }
        None => {
            let r = session.optimize(&cfg).map_err(|e| e.to_string())?;
            (
                r.best.mini,
                r.best.latency_ms,
                r.original_latency_ms,
                r.speedup,
                r.best.drop,
            )
        }
    };
    println!("original {orig:.2} ms -> fused {latency:.2} ms ({speedup:.2}x)");
    if drop.is_finite() {
        println!("accuracy drop: {:.2}%", drop.max(0.0) * 100.0);
    }
    if cli.render {
        println!("\n{}", best_mini.render());
    }
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: gmorph <optimize|benchmarks|baselines> [options]");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match cli.command.as_str() {
        "benchmarks" => {
            cmd_benchmarks();
            Ok(())
        }
        "baselines" => {
            let Some(bench) = cli.bench else {
                eprintln!("error: baselines needs --bench");
                return ExitCode::FAILURE;
            };
            cmd_baselines(bench, cli.seed.unwrap_or(0)).map_err(|e| e.to_string())
        }
        "optimize" => cmd_optimize(&cli),
        other => Err(format!("unknown command {other}")),
    };
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
