//! The `gmorph` command-line tool.
//!
//! ```text
//! gmorph optimize --bench B1 [--config FILE] [--threshold 0.01]
//!                 [--mode real|surrogate] [--iterations N] [--seed N]
//!                 [--batch-size K] [--throughput FLOPS] [--render]
//!                 [--trace PATH] [--quiet]
//! gmorph benchmarks
//! gmorph baselines --bench B1
//! gmorph trace-validate PATH
//! ```
//!
//! `optimize` prepares a benchmark session (training or loading cached
//! teachers) and runs graph mutation optimization; `--config` reads the
//! paper-style configuration file (see `gmorph::configfile`), with
//! command-line flags overriding file values. `--batch-size` switches to
//! the batched parallel search (§7 extension).
//!
//! `--trace PATH` (or the `GMORPH_TRACE` environment variable) enables
//! structured telemetry: every span, search iteration, and metric flush is
//! appended to PATH as JSONL, and the search trace is additionally saved
//! next to it as `PATH.trace.jsonl` for offline curve plotting.
//! `trace-validate` checks such a file against the documented schema.

use gmorph::perf::estimator::estimate_latency_ms;
use gmorph::prelude::*;
use gmorph::search::batched::run_search_batched;
use gmorph::{baselines, configfile, telemetry};
use std::process::ExitCode;

struct Cli {
    command: String,
    bench: Option<BenchId>,
    config: Option<std::path::PathBuf>,
    threshold: Option<f32>,
    mode: Option<AccuracyMode>,
    iterations: Option<usize>,
    seed: Option<u64>,
    batch_size: Option<usize>,
    throughput: Option<f64>,
    trace: Option<std::path::PathBuf>,
    quiet: bool,
    render: bool,
    /// Positional argument (the file for `trace-validate`).
    target: Option<std::path::PathBuf>,
}

/// `println!` that respects `--quiet`. Progress chatter goes through this;
/// hard results and errors print unconditionally.
macro_rules! say {
    ($cli:expr, $($t:tt)*) => {
        if !$cli.quiet {
            println!($($t)*);
        }
    };
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    let mut cli = Cli {
        command,
        bench: None,
        config: None,
        threshold: None,
        mode: None,
        iterations: None,
        seed: None,
        batch_size: None,
        throughput: None,
        trace: None,
        quiet: false,
        render: false,
        target: None,
    };
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--bench" => {
                let v = take("--bench")?;
                cli.bench = Some(BenchId::parse(&v).ok_or(format!("unknown benchmark {v}"))?);
            }
            "--config" => cli.config = Some(take("--config")?.into()),
            "--threshold" => {
                cli.threshold =
                    Some(take("--threshold")?.parse().map_err(|_| "bad threshold")?)
            }
            "--mode" => {
                cli.mode = Some(match take("--mode")?.as_str() {
                    "real" => AccuracyMode::Real,
                    "surrogate" => AccuracyMode::Surrogate,
                    other => return Err(format!("unknown mode {other}")),
                })
            }
            "--iterations" => {
                cli.iterations =
                    Some(take("--iterations")?.parse().map_err(|_| "bad iterations")?)
            }
            "--seed" => cli.seed = Some(take("--seed")?.parse().map_err(|_| "bad seed")?),
            "--batch-size" => {
                cli.batch_size =
                    Some(take("--batch-size")?.parse().map_err(|_| "bad batch size")?)
            }
            "--throughput" => {
                cli.throughput =
                    Some(take("--throughput")?.parse().map_err(|_| "bad throughput")?)
            }
            "--trace" => cli.trace = Some(take("--trace")?.into()),
            "--quiet" => cli.quiet = true,
            "--render" => cli.render = true,
            other if !other.starts_with('-') && cli.target.is_none() => {
                cli.target = Some(other.into());
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(cli)
}

fn cmd_benchmarks() {
    println!("benchmark  tasks and models (Table 2)");
    println!("---------  -----------------------------------------------");
    let rows = [
        ("B1", "Age/Gender/Ethnicity: 3x VGG-13 (SynthFaces)"),
        ("B2", "Emotion/Age/Gender: 3x VGG-16 (SynthFaces)"),
        ("B3", "Emotion/Age/Gender: VGG-13/16/11 (SynthFaces)"),
        ("B4", "Object: ResNet-34, Salient: ResNet-18 (SynthScenes)"),
        ("B5", "Object: ResNet-34, Salient: VGG-16 (SynthScenes)"),
        ("B6", "Object: ViT-Large, Salient: ViT-Base (SynthScenes)"),
        ("B7", "CoLA: BERT-Large, SST: BERT-Base (SynthText)"),
    ];
    for (id, desc) in rows {
        println!("{id:<9}  {desc}");
    }
}

fn cmd_baselines(bench: BenchId, seed: u64) -> gmorph::tensor::Result<()> {
    let b = build_benchmark(bench, &DataProfile::standard(), seed)?;
    let prefix = baselines::common_prefix_len(&b.paper);
    println!("{bench}: identical common prefix = {prefix} blocks");
    let original = gmorph::graph::parser::parse_specs(&b.paper)?;
    let orig = estimate_latency_ms(&original, Backend::Eager)?;
    println!("original latency (paper scale, eager): {orig:.2} ms");
    let shared = baselines::all_shared(&b.paper)?;
    let lat = estimate_latency_ms(&shared, Backend::Eager)?;
    println!("All-shared: {lat:.2} ms ({:.2}x)", orig / lat);
    if prefix > 0 {
        let tm = baselines::treemtl_recommend(&b.paper, 0.01)?;
        let lat = estimate_latency_ms(&tm, Backend::Eager)?;
        println!("TreeMTL @1%: {lat:.2} ms ({:.2}x)", orig / lat);
    } else {
        println!("TreeMTL @1%: not applicable (no identical layers)");
    }
    Ok(())
}

fn cmd_trace_validate(cli: &Cli) -> Result<(), String> {
    let path = cli.target.as_ref().ok_or("trace-validate needs a file path")?;
    let stats = telemetry::schema::validate_file(path)?;
    say!(cli, "{}: {} events, schema OK", path.display(), stats.lines);
    for (kind, n) in &stats.by_kind {
        say!(cli, "  {kind:<12} {n}");
    }
    say!(
        cli,
        "  {} distinct names, {} threads, {} spans balanced",
        stats.names,
        stats.threads,
        stats.spans
    );
    Ok(())
}

/// The trace path in effect: `--trace` beats the `GMORPH_TRACE` variable.
fn effective_trace(cli: &Cli) -> Option<std::path::PathBuf> {
    cli.trace
        .clone()
        .or_else(|| std::env::var_os("GMORPH_TRACE").map(Into::into))
}

fn cmd_optimize(cli: &Cli) -> Result<(), String> {
    let bench_id = cli.bench.ok_or("optimize needs --bench")?;
    let mut cfg = match &cli.config {
        Some(path) => configfile::load(path).map_err(|e| e.to_string())?,
        None => OptimizationConfig::default(),
    };
    if let Some(t) = cli.threshold {
        cfg.accuracy_threshold = t;
    }
    if let Some(m) = cli.mode {
        cfg.mode = m;
    }
    if let Some(i) = cli.iterations {
        cfg.iterations = i;
    }
    if let Some(s) = cli.seed {
        cfg.seed = s;
    }

    say!(cli, "preparing {bench_id} (teachers train once, then cache)...");
    let bench = build_benchmark(bench_id, &DataProfile::standard(), cfg.seed)
        .map_err(|e| e.to_string())?;
    let session = Session::prepare(
        bench,
        &SessionConfig {
            seed: cfg.seed,
            trace: cli.trace.clone(),
            quiet: cli.quiet,
            virtual_throughput: cli
                .throughput
                .unwrap_or(gmorph::perf::clock::DEFAULT_THROUGHPUT),
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    for (spec, score) in session.bench.mini.iter().zip(&session.teacher_scores) {
        say!(cli, "  teacher {:<28} score {score:.3}", spec.name);
    }

    say!(
        cli,
        "searching: {} iterations, {:?} mode, {:.1}% budget{}...",
        cfg.iterations,
        cfg.mode,
        cfg.accuracy_threshold * 100.0,
        cli.batch_size
            .map(|k| format!(", batch size {k}"))
            .unwrap_or_default()
    );
    let trace_path = effective_trace(cli);
    let (best_mini, latency, orig, speedup, drop) = match cli.batch_size {
        Some(k) => {
            let mode = session.eval_mode(cfg.mode).map_err(|e| e.to_string())?;
            let mut search_cfg = cfg.to_search_config();
            search_cfg.virtual_throughput = session.virtual_throughput;
            let r = run_search_batched(
                &session.mini_graph,
                &session.paper_graph,
                &session.weights,
                &mode,
                &search_cfg,
                k,
            )
            .map_err(|e| e.to_string())?;
            (
                r.best_mini,
                r.best_latency_ms,
                r.original_latency_ms,
                r.speedup,
                f32::NAN,
            )
        }
        None => {
            let r = session.optimize(&cfg).map_err(|e| e.to_string())?;
            if let Some(path) = &trace_path {
                let artifact = path.with_extension("trace.jsonl");
                gmorph::search::persist::save_trace(&artifact, &r)
                    .map_err(|e| format!("saving search trace: {e}"))?;
                say!(cli, "search trace saved to {}", artifact.display());
            }
            (
                r.best.mini,
                r.best.latency_ms,
                r.original_latency_ms,
                r.speedup,
                r.best.drop,
            )
        }
    };
    println!("original {orig:.2} ms -> fused {latency:.2} ms ({speedup:.2}x)");
    if drop.is_finite() {
        println!("accuracy drop: {:.2}%", drop.max(0.0) * 100.0);
    }
    if cli.render {
        println!("\n{}", best_mini.render());
    }
    if telemetry::enabled() && !cli.quiet {
        print!("\n{}", telemetry::metrics::summary_table());
    }
    Ok(())
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: gmorph <optimize|benchmarks|baselines|trace-validate> [options]");
            return ExitCode::FAILURE;
        }
    };
    let outcome = match cli.command.as_str() {
        "benchmarks" => {
            cmd_benchmarks();
            Ok(())
        }
        "baselines" => {
            let Some(bench) = cli.bench else {
                eprintln!("error: baselines needs --bench");
                return ExitCode::FAILURE;
            };
            cmd_baselines(bench, cli.seed.unwrap_or(0)).map_err(|e| e.to_string())
        }
        "optimize" => cmd_optimize(&cli),
        "trace-validate" => cmd_trace_validate(&cli),
        other => Err(format!("unknown command {other}")),
    };
    // Flush and close the telemetry sink (no-op when disabled).
    telemetry::shutdown();
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
