//! The `gmorph` command-line tool.
//!
//! ```text
//! gmorph optimize --bench B1 [--config FILE] [--threshold 0.01]
//!                 [--mode real|surrogate] [--iterations N] [--seed N]
//!                 [--batch-size K] [--throughput FLOPS] [--render]
//!                 [--trace PATH] [--quiet]
//!                 [--checkpoint-dir DIR] [--checkpoint-every K] [--resume]
//!                 [--max-retries N] [--candidate-deadline-ms MS]
//!                 [--grad-clip NORM]
//! gmorph benchmarks
//! gmorph baselines --bench B1
//! gmorph trace-validate PATH
//! gmorph checkpoint-inspect PATH
//! gmorph trace-diff A B
//! ```
//!
//! `optimize` prepares a benchmark session (training or loading cached
//! teachers) and runs graph mutation optimization; `--config` reads the
//! paper-style configuration file (see `gmorph::configfile`), with
//! command-line flags overriding file values. `--batch-size` switches to
//! the batched parallel search (§7 extension).
//!
//! `--checkpoint-dir DIR` makes the search crash-safe: its full state is
//! snapshotted into DIR every `--checkpoint-every` iterations (and on
//! panic), and `--resume` continues bit-exactly from the newest valid
//! snapshot after a crash. `checkpoint-inspect` prints a snapshot's
//! header and contents; `trace-diff` compares two search-trace JSONL
//! files ignoring wall-clock fields (the resume-smoke CI check).
//!
//! `--trace PATH` (or the `GMORPH_TRACE` environment variable) enables
//! structured telemetry: every span, search iteration, and metric flush is
//! appended to PATH as JSONL, and the search trace is additionally saved
//! next to it as `PATH.trace.jsonl` for offline curve plotting.
//! `trace-validate` checks such a file against the documented schema.

use gmorph::perf::estimator::estimate_latency_ms;
use gmorph::prelude::*;
use gmorph::search::batched::run_search_batched_checkpointed;
use gmorph::{baselines, configfile, telemetry};
use std::process::ExitCode;

struct Cli {
    command: String,
    bench: Option<BenchId>,
    config: Option<std::path::PathBuf>,
    threshold: Option<f32>,
    mode: Option<AccuracyMode>,
    iterations: Option<usize>,
    seed: Option<u64>,
    batch_size: Option<usize>,
    throughput: Option<f64>,
    trace: Option<std::path::PathBuf>,
    quiet: bool,
    render: bool,
    checkpoint_dir: Option<std::path::PathBuf>,
    checkpoint_every: Option<usize>,
    resume: bool,
    max_retries: Option<usize>,
    candidate_deadline_ms: Option<u64>,
    grad_clip: Option<f32>,
    /// Positional arguments (files for `trace-validate` / `trace-diff`).
    target: Option<std::path::PathBuf>,
    target2: Option<std::path::PathBuf>,
}

/// `println!` that respects `--quiet`. Progress chatter goes through this;
/// hard results and errors print unconditionally.
macro_rules! say {
    ($cli:expr, $($t:tt)*) => {
        if !$cli.quiet {
            println!($($t)*);
        }
    };
}

fn parse_cli() -> Result<Cli, String> {
    let mut args = std::env::args().skip(1);
    let command = args.next().ok_or("missing command")?;
    let mut cli = Cli {
        command,
        bench: None,
        config: None,
        threshold: None,
        mode: None,
        iterations: None,
        seed: None,
        batch_size: None,
        throughput: None,
        trace: None,
        quiet: false,
        render: false,
        checkpoint_dir: None,
        checkpoint_every: None,
        resume: false,
        max_retries: None,
        candidate_deadline_ms: None,
        grad_clip: None,
        target: None,
        target2: None,
    };
    while let Some(arg) = args.next() {
        let mut take = |what: &str| args.next().ok_or(format!("{what} needs a value"));
        match arg.as_str() {
            "--bench" => {
                let v = take("--bench")?;
                cli.bench = Some(BenchId::parse(&v).ok_or(format!("unknown benchmark {v}"))?);
            }
            "--config" => cli.config = Some(take("--config")?.into()),
            "--threshold" => {
                cli.threshold =
                    Some(take("--threshold")?.parse().map_err(|_| "bad threshold")?)
            }
            "--mode" => {
                cli.mode = Some(match take("--mode")?.as_str() {
                    "real" => AccuracyMode::Real,
                    "surrogate" => AccuracyMode::Surrogate,
                    other => return Err(format!("unknown mode {other}")),
                })
            }
            "--iterations" => {
                cli.iterations =
                    Some(take("--iterations")?.parse().map_err(|_| "bad iterations")?)
            }
            "--seed" => cli.seed = Some(take("--seed")?.parse().map_err(|_| "bad seed")?),
            "--batch-size" => {
                cli.batch_size =
                    Some(take("--batch-size")?.parse().map_err(|_| "bad batch size")?)
            }
            "--throughput" => {
                cli.throughput =
                    Some(take("--throughput")?.parse().map_err(|_| "bad throughput")?)
            }
            "--trace" => cli.trace = Some(take("--trace")?.into()),
            "--quiet" => cli.quiet = true,
            "--render" => cli.render = true,
            "--checkpoint-dir" => cli.checkpoint_dir = Some(take("--checkpoint-dir")?.into()),
            "--checkpoint-every" => {
                cli.checkpoint_every = Some(
                    take("--checkpoint-every")?
                        .parse()
                        .map_err(|_| "bad checkpoint-every")?,
                )
            }
            "--resume" => cli.resume = true,
            "--max-retries" => {
                cli.max_retries =
                    Some(take("--max-retries")?.parse().map_err(|_| "bad max-retries")?)
            }
            "--candidate-deadline-ms" => {
                cli.candidate_deadline_ms = Some(
                    take("--candidate-deadline-ms")?
                        .parse()
                        .map_err(|_| "bad candidate-deadline-ms")?,
                )
            }
            "--grad-clip" => {
                let v: f32 = take("--grad-clip")?.parse().map_err(|_| "bad grad-clip")?;
                if !v.is_finite() || v <= 0.0 {
                    return Err("grad-clip must be a positive finite norm".to_string());
                }
                cli.grad_clip = Some(v);
            }
            other if !other.starts_with('-') && cli.target.is_none() => {
                cli.target = Some(other.into());
            }
            other if !other.starts_with('-') && cli.target2.is_none() => {
                cli.target2 = Some(other.into());
            }
            other => return Err(format!("unknown option {other}")),
        }
    }
    Ok(cli)
}

fn cmd_benchmarks() {
    println!("benchmark  tasks and models (Table 2)");
    println!("---------  -----------------------------------------------");
    let rows = [
        ("B1", "Age/Gender/Ethnicity: 3x VGG-13 (SynthFaces)"),
        ("B2", "Emotion/Age/Gender: 3x VGG-16 (SynthFaces)"),
        ("B3", "Emotion/Age/Gender: VGG-13/16/11 (SynthFaces)"),
        ("B4", "Object: ResNet-34, Salient: ResNet-18 (SynthScenes)"),
        ("B5", "Object: ResNet-34, Salient: VGG-16 (SynthScenes)"),
        ("B6", "Object: ViT-Large, Salient: ViT-Base (SynthScenes)"),
        ("B7", "CoLA: BERT-Large, SST: BERT-Base (SynthText)"),
    ];
    for (id, desc) in rows {
        println!("{id:<9}  {desc}");
    }
}

fn cmd_baselines(bench: BenchId, seed: u64) -> gmorph::tensor::Result<()> {
    let b = build_benchmark(bench, &DataProfile::standard(), seed)?;
    let prefix = baselines::common_prefix_len(&b.paper);
    println!("{bench}: identical common prefix = {prefix} blocks");
    let original = gmorph::graph::parser::parse_specs(&b.paper)?;
    let orig = estimate_latency_ms(&original, Backend::Eager)?;
    println!("original latency (paper scale, eager): {orig:.2} ms");
    let shared = baselines::all_shared(&b.paper)?;
    let lat = estimate_latency_ms(&shared, Backend::Eager)?;
    println!("All-shared: {lat:.2} ms ({:.2}x)", orig / lat);
    if prefix > 0 {
        let tm = baselines::treemtl_recommend(&b.paper, 0.01)?;
        let lat = estimate_latency_ms(&tm, Backend::Eager)?;
        println!("TreeMTL @1%: {lat:.2} ms ({:.2}x)", orig / lat);
    } else {
        println!("TreeMTL @1%: not applicable (no identical layers)");
    }
    Ok(())
}

fn cmd_trace_validate(cli: &Cli) -> Result<(), String> {
    let path = cli.target.as_ref().ok_or("trace-validate needs a file path")?;
    let stats = telemetry::schema::validate_file(path)?;
    say!(cli, "{}: {} events, schema OK", path.display(), stats.lines);
    for (kind, n) in &stats.by_kind {
        say!(cli, "  {kind:<12} {n}");
    }
    say!(
        cli,
        "  {} distinct names, {} threads, {} spans balanced",
        stats.names,
        stats.threads,
        stats.spans
    );
    Ok(())
}

/// The trace path in effect: `--trace` beats the `GMORPH_TRACE` variable.
fn effective_trace(cli: &Cli) -> Option<std::path::PathBuf> {
    cli.trace
        .clone()
        .or_else(|| std::env::var_os("GMORPH_TRACE").map(Into::into))
}

fn cmd_optimize(cli: &Cli) -> Result<(), String> {
    let bench_id = cli.bench.ok_or("optimize needs --bench")?;
    let mut cfg = match &cli.config {
        Some(path) => configfile::load(path).map_err(|e| e.to_string())?,
        None => OptimizationConfig::default(),
    };
    if let Some(t) = cli.threshold {
        cfg.accuracy_threshold = t;
    }
    if let Some(m) = cli.mode {
        cfg.mode = m;
    }
    if let Some(i) = cli.iterations {
        cfg.iterations = i;
    }
    if let Some(s) = cli.seed {
        cfg.seed = s;
    }
    if let Some(dir) = &cli.checkpoint_dir {
        cfg.checkpoint_dir = Some(dir.clone());
    }
    if let Some(k) = cli.checkpoint_every {
        cfg.checkpoint_every = k;
    }
    cfg.resume = cfg.resume || cli.resume;
    if let Some(n) = cli.max_retries {
        cfg.max_retries = n;
    }
    if let Some(ms) = cli.candidate_deadline_ms {
        cfg.candidate_deadline_ms = Some(ms);
    }
    if let Some(c) = cli.grad_clip {
        cfg.grad_clip = Some(c);
    }

    say!(cli, "preparing {bench_id} (teachers train once, then cache)...");
    let bench = build_benchmark(bench_id, &DataProfile::standard(), cfg.seed)
        .map_err(|e| e.to_string())?;
    let session = Session::prepare(
        bench,
        &SessionConfig {
            seed: cfg.seed,
            trace: cli.trace.clone(),
            quiet: cli.quiet,
            virtual_throughput: cli
                .throughput
                .unwrap_or(gmorph::perf::clock::DEFAULT_THROUGHPUT),
            ..Default::default()
        },
    )
    .map_err(|e| e.to_string())?;
    for (spec, score) in session.bench.mini.iter().zip(&session.teacher_scores) {
        say!(cli, "  teacher {:<28} score {score:.3}", spec.name);
    }

    say!(
        cli,
        "searching: {} iterations, {:?} mode, {:.1}% budget{}...",
        cfg.iterations,
        cfg.mode,
        cfg.accuracy_threshold * 100.0,
        cli.batch_size
            .map(|k| format!(", batch size {k}"))
            .unwrap_or_default()
    );
    let trace_path = effective_trace(cli);
    let (best_mini, latency, orig, speedup, drop) = match cli.batch_size {
        Some(k) => {
            let mode = session.eval_mode(cfg.mode).map_err(|e| e.to_string())?;
            let mut search_cfg = cfg.to_search_config();
            search_cfg.virtual_throughput = session.virtual_throughput;
            let r = run_search_batched_checkpointed(
                &session.mini_graph,
                &session.paper_graph,
                &session.weights,
                &mode,
                &search_cfg,
                k,
                cfg.checkpoint_options().as_ref(),
            )
            .map_err(|e| e.to_string())?;
            (
                r.best_mini,
                r.best_latency_ms,
                r.original_latency_ms,
                r.speedup,
                f32::NAN,
            )
        }
        None => {
            let r = session.optimize(&cfg).map_err(|e| e.to_string())?;
            if let Some(path) = &trace_path {
                let artifact = path.with_extension("trace.jsonl");
                gmorph::search::persist::save_trace(&artifact, &r)
                    .map_err(|e| format!("saving search trace: {e}"))?;
                say!(cli, "search trace saved to {}", artifact.display());
            }
            (
                r.best.mini,
                r.best.latency_ms,
                r.original_latency_ms,
                r.speedup,
                r.best.drop,
            )
        }
    };
    println!("original {orig:.2} ms -> fused {latency:.2} ms ({speedup:.2}x)");
    if drop.is_finite() {
        println!("accuracy drop: {:.2}%", drop.max(0.0) * 100.0);
    }
    if cli.render {
        println!("\n{}", best_mini.render());
    }
    if telemetry::enabled() && !cli.quiet {
        print!("\n{}", telemetry::metrics::summary_table());
    }
    Ok(())
}

/// Prints a checkpoint file's envelope header and, for known payload
/// kinds, its decoded summary. Corrupt files report *why* they are
/// rejected — the same classification the resume fallback uses.
fn cmd_checkpoint_inspect(cli: &Cli) -> Result<(), String> {
    use gmorph::search::checkpoint::{BatchedSnapshot, SearchSnapshot, BATCHED_KIND, SEARCH_KIND};
    use gmorph::tensor::checkpoint::{is_corruption, Envelope};

    let path = cli.target.as_ref().ok_or("checkpoint-inspect needs a file path")?;
    let bytes = std::fs::read(path).map_err(|e| format!("reading {}: {e}", path.display()))?;
    let env = Envelope::decode(&bytes).map_err(|e| {
        if is_corruption(&e) {
            format!("{}: CORRUPT — {e}", path.display())
        } else {
            format!("{}: {e}", path.display())
        }
    })?;
    println!("{}: {} bytes", path.display(), bytes.len());
    println!("  kind    {}", env.kind);
    println!("  schema  v{}", env.schema);
    for (name, data) in &env.sections {
        println!("  section {name:<10} {} bytes", data.len());
    }
    match env.kind.as_str() {
        SEARCH_KIND => {
            let snap = SearchSnapshot::decode(&env).map_err(|e| e.to_string())?;
            println!("  fingerprint   {:#018x}", snap.state.fingerprint);
            println!("  next iter     {}", snap.state.next_iter);
            println!("  evaluated     {}", snap.evaluated_count);
            println!("  rule filtered {}", snap.rule_filtered);
            println!("  duplicates    {}", snap.duplicates);
            println!("  failed        {}", snap.failed);
            println!("  quarantined   {}", snap.quarantined_count);
            println!("  elites        {}", snap.state.elites.len());
            println!("  best latency  {:.3} ms", snap.best.latency_ms);
            println!("  virtual hours {:.4}", snap.state.clock_seconds / 3600.0);
            println!("  trace records {}", snap.trace.len());
        }
        BATCHED_KIND => {
            let snap = BatchedSnapshot::decode(&env).map_err(|e| e.to_string())?;
            println!("  fingerprint   {:#018x}", snap.state.fingerprint);
            println!("  next round    {}", snap.state.next_iter);
            println!("  elites        {}", snap.state.elites.len());
            println!("  best latency  {:.3} ms", snap.best_latency);
            println!("  rounds        {}", snap.rounds.len());
        }
        other => println!("  (no decoder for payload kind {other:?})"),
    }
    Ok(())
}

/// Compares two search-trace JSONL files, ignoring wall-clock fields
/// (`wall_seconds` is never bit-identical across runs; everything else
/// must be). This is the CI resume-smoke equality check.
fn cmd_trace_diff(cli: &Cli) -> Result<(), String> {
    let a_path = cli.target.as_ref().ok_or("trace-diff needs two file paths")?;
    let b_path = cli.target2.as_ref().ok_or("trace-diff needs two file paths")?;
    let (a_meta, a_recs) = gmorph::search::persist::load_trace(a_path)?;
    let (b_meta, b_recs) = gmorph::search::persist::load_trace(b_path)?;

    let mut diffs = Vec::new();
    if a_meta.iterations != b_meta.iterations {
        diffs.push(format!(
            "meta.iterations: {} vs {}",
            a_meta.iterations, b_meta.iterations
        ));
    }
    for (name, x, y) in [
        ("original_latency_ms", a_meta.original_latency_ms, b_meta.original_latency_ms),
        ("best_latency_ms", a_meta.best_latency_ms, b_meta.best_latency_ms),
        ("speedup", a_meta.speedup, b_meta.speedup),
        ("virtual_hours", a_meta.virtual_hours, b_meta.virtual_hours),
    ] {
        if x.to_bits() != y.to_bits() {
            diffs.push(format!("meta.{name}: {x} vs {y}"));
        }
    }
    if a_recs.len() != b_recs.len() {
        diffs.push(format!("record count: {} vs {}", a_recs.len(), b_recs.len()));
    }
    for (i, (x, y)) in a_recs.iter().zip(&b_recs).enumerate() {
        let mut field_diffs = Vec::new();
        if x.iter != y.iter {
            field_diffs.push(format!("iter {} vs {}", x.iter, y.iter));
        }
        if x.status != y.status {
            field_diffs.push(format!("status {:?} vs {:?}", x.status, y.status));
        }
        if x.from_elite != y.from_elite {
            field_diffs.push("from_elite".to_string());
        }
        if x.drop.to_bits() != y.drop.to_bits() && !(x.drop.is_nan() && y.drop.is_nan()) {
            field_diffs.push(format!("drop {} vs {}", x.drop, y.drop));
        }
        if x.met_target != y.met_target {
            field_diffs.push("met_target".to_string());
        }
        if x.candidate_latency_ms.to_bits() != y.candidate_latency_ms.to_bits()
            && !(x.candidate_latency_ms.is_nan() && y.candidate_latency_ms.is_nan())
        {
            field_diffs.push(format!(
                "candidate_latency_ms {} vs {}",
                x.candidate_latency_ms, y.candidate_latency_ms
            ));
        }
        if x.best_latency_ms.to_bits() != y.best_latency_ms.to_bits() {
            field_diffs.push(format!(
                "best_latency_ms {} vs {}",
                x.best_latency_ms, y.best_latency_ms
            ));
        }
        if x.epochs != y.epochs {
            field_diffs.push(format!("epochs {} vs {}", x.epochs, y.epochs));
        }
        if x.virtual_hours.to_bits() != y.virtual_hours.to_bits() {
            field_diffs.push(format!(
                "virtual_hours {} vs {}",
                x.virtual_hours, y.virtual_hours
            ));
        }
        // wall_seconds deliberately ignored.
        if !field_diffs.is_empty() {
            diffs.push(format!("record {i}: {}", field_diffs.join(", ")));
        }
    }
    if diffs.is_empty() {
        say!(
            cli,
            "{} and {} are identical ({} records; wall-clock ignored)",
            a_path.display(),
            b_path.display(),
            a_recs.len()
        );
        Ok(())
    } else {
        for d in diffs.iter().take(20) {
            eprintln!("  {d}");
        }
        Err(format!(
            "traces differ in {} place(s): {} vs {}",
            diffs.len(),
            a_path.display(),
            b_path.display()
        ))
    }
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(c) => c,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!(
                "usage: gmorph <optimize|benchmarks|baselines|trace-validate|checkpoint-inspect|trace-diff> [options]"
            );
            return ExitCode::FAILURE;
        }
    };
    let outcome = match cli.command.as_str() {
        "benchmarks" => {
            cmd_benchmarks();
            Ok(())
        }
        "baselines" => {
            let Some(bench) = cli.bench else {
                eprintln!("error: baselines needs --bench");
                return ExitCode::FAILURE;
            };
            cmd_baselines(bench, cli.seed.unwrap_or(0)).map_err(|e| e.to_string())
        }
        "optimize" => cmd_optimize(&cli),
        "trace-validate" => cmd_trace_validate(&cli),
        "checkpoint-inspect" => cmd_checkpoint_inspect(&cli),
        "trace-diff" => cmd_trace_diff(&cli),
        other => Err(format!("unknown command {other}")),
    };
    // Flush and close the telemetry sink (no-op when disabled).
    telemetry::shutdown();
    match outcome {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}
