//! Accuracy-evaluation backends for the search driver.
//!
//! `Real` runs §5.2's distillation fine-tuning on the mini-scale model —
//! end-to-end faithful, used for the small-budget experiments and tests.
//! `Surrogate` replaces fine-tuning with the calibrated analytic model of
//! `gmorph_perf::accuracy` so the full 7-benchmark grids run in minutes
//! while preserving the search dynamics (see DESIGN.md §1).

use gmorph_data::MultiTaskDataset;
use gmorph_graph::{generator, parser, AbsGraph, CapacityVector, WeightStore};
use gmorph_perf::accuracy::{
    finetune, surrogate_finetune, FinetuneConfig, FinetuneResult, SurrogateParams,
};
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor};

/// State for real distillation-based evaluation.
#[derive(Debug, Clone)]
pub struct RealContext {
    /// Representative (unlabeled) fine-tuning inputs.
    pub train_inputs: Tensor,
    /// Teacher outputs over `train_inputs`, one per task.
    pub targets: Vec<Tensor>,
    /// Labelled test split for scoring.
    pub test: MultiTaskDataset,
    /// Teacher test scores anchoring the drop.
    pub teacher_scores: Vec<f32>,
}

/// State for surrogate evaluation.
#[derive(Debug, Clone)]
pub struct SurrogateContext {
    /// Capacity vector of the original multi-DNN graph.
    pub orig_capacity: CapacityVector,
    /// Surrogate calibration.
    pub params: SurrogateParams,
    /// Teacher test scores anchoring the drop.
    pub teacher_scores: Vec<f32>,
}

/// The evaluation backend.
#[derive(Debug, Clone)]
pub enum EvalMode {
    /// Distillation fine-tuning of the generated mini-scale model.
    Real(RealContext),
    /// Calibrated analytic learning-curve model.
    Surrogate(SurrogateContext),
}

/// Result of evaluating one candidate: the fine-tuning outcome, the
/// (possibly trained) weights to store for inheritance, and the fraction
/// of nodes that inherited weights.
#[derive(Debug, Clone)]
pub struct Evaluation {
    /// Fine-tuning outcome.
    pub result: FinetuneResult,
    /// Weights to record in the History Database for this candidate.
    pub weights: WeightStore,
    /// Fraction of candidate nodes initialized from the base weights.
    pub inherited_frac: f32,
}

/// Fraction of `candidate` nodes whose `(key, spec)` resolve in `weights`.
pub fn inherited_fraction(candidate: &AbsGraph, weights: &WeightStore) -> f32 {
    let total = candidate.len().max(1);
    let hits = candidate
        .iter()
        .filter(|(_, n)| weights.lookup(n.key(), &n.spec).is_some())
        .count();
    hits as f32 / total as f32
}

impl EvalMode {
    /// Teacher scores the drop is measured against.
    pub fn teacher_scores(&self) -> &[f32] {
        match self {
            EvalMode::Real(c) => &c.teacher_scores,
            EvalMode::Surrogate(c) => &c.teacher_scores,
        }
    }

    /// Evaluates a candidate initialized from `base_weights`.
    ///
    /// `noise_salt` keeps surrogate initialization noise distinct across
    /// re-evaluations of identical architectures (the Figure 3 effect).
    pub fn evaluate(
        &self,
        candidate: &AbsGraph,
        base_weights: &WeightStore,
        cfg: &FinetuneConfig,
        rng: &mut Rng,
        noise_salt: u64,
    ) -> Result<Evaluation> {
        let inherited_frac = inherited_fraction(candidate, base_weights);
        match self {
            EvalMode::Real(ctx) => {
                let (mut tree, _) = generator::generate(candidate, base_weights, rng)?;
                let result = finetune(
                    &mut tree,
                    &ctx.train_inputs,
                    &ctx.targets,
                    &ctx.test,
                    &ctx.teacher_scores,
                    cfg,
                )?;
                let weights = parser::extract_weights(&tree);
                Ok(Evaluation {
                    result,
                    weights,
                    inherited_frac,
                })
            }
            EvalMode::Surrogate(ctx) => {
                let result = surrogate_finetune(
                    candidate,
                    &ctx.orig_capacity,
                    inherited_frac,
                    &ctx.params,
                    cfg,
                    noise_salt,
                    &ctx.teacher_scores,
                )?;
                // Mark every node of the candidate as "trained" so future
                // mutations of this candidate count as inheriting.
                let mut weights = WeightStore::new();
                for (_, n) in candidate.iter() {
                    weights.insert(n.key(), n.spec.clone(), Vec::new());
                }
                Ok(Evaluation {
                    result,
                    weights,
                    inherited_frac,
                })
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_data::TaskSpec;
    use gmorph_graph::parser::parse_specs;
    use gmorph_graph::{mutation, pairs};
    use gmorph_models::families::{vgg, VggDepth, VisionScale};

    fn graph() -> AbsGraph {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        parse_specs(&[
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t1).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn inherited_fraction_counts_lookup_hits() {
        let g = graph();
        let empty = WeightStore::new();
        assert_eq!(inherited_fraction(&g, &empty), 0.0);
        let mut full = WeightStore::new();
        for (_, n) in g.iter() {
            full.insert(n.key(), n.spec.clone(), Vec::new());
        }
        assert_eq!(inherited_fraction(&g, &full), 1.0);
    }

    #[test]
    fn surrogate_evaluation_marks_all_nodes_trained() {
        let g = graph();
        let ctx = SurrogateContext {
            orig_capacity: CapacityVector::of(&g).unwrap(),
            params: SurrogateParams::default(),
            teacher_scores: vec![0.8, 0.8],
        };
        let mode = EvalMode::Surrogate(ctx);
        let mut rng = Rng::new(0);
        let cfg = FinetuneConfig {
            max_epochs: 10,
            eval_every: 1,
            target_drop: 0.02,
            ..Default::default()
        };
        let ev = mode
            .evaluate(&g, &WeightStore::new(), &cfg, &mut rng, 1)
            .unwrap();
        assert_eq!(ev.weights.len(), g.len());
        assert_eq!(ev.inherited_frac, 0.0);
        // Mutating the evaluated candidate now inherits almost fully.
        let prs = pairs::shareable_pairs(&g).unwrap();
        let (mutated, _) = mutation::mutation_pass(&g, &[prs[0]]).unwrap();
        let frac = inherited_fraction(&mutated, &ev.weights);
        assert!(frac > 0.8, "frac = {frac}");
    }

    #[test]
    fn surrogate_unmutated_graph_meets_target_quickly() {
        let g = graph();
        let ctx = SurrogateContext {
            orig_capacity: CapacityVector::of(&g).unwrap(),
            params: SurrogateParams::default(),
            teacher_scores: vec![0.8, 0.8],
        };
        let mode = EvalMode::Surrogate(ctx);
        let mut rng = Rng::new(0);
        let mut full = WeightStore::new();
        for (_, n) in g.iter() {
            full.insert(n.key(), n.spec.clone(), Vec::new());
        }
        let cfg = FinetuneConfig {
            max_epochs: 30,
            eval_every: 1,
            target_drop: 0.05,
            ..Default::default()
        };
        let ev = mode.evaluate(&g, &full, &cfg, &mut rng, 2).unwrap();
        assert!(ev.result.met_target);
        assert!(ev.result.epochs_run < 30);
    }
}
