//! Batched search: the paper's §7 extension implemented.
//!
//! "Our current implementation samples only one multi-task model at a
//! time, which limits the efficiency of the iterative process. We can
//! accelerate this process by sampling multiple models in parallel or
//! adopting parallel simulated annealing algorithms."
//!
//! [`run_search_batched`] samples `batch_size` candidates per round from
//! the same base distribution as the sequential driver and evaluates them
//! concurrently with [`crate::parallel::evaluate_batch`]. Elites and
//! filters are updated once per round with all results, which is the
//! classic synchronous parallel-SA scheme: slightly staler feedback in
//! exchange for `batch_size`-way parallel fine-tuning.

use crate::checkpoint::{
    config_fingerprint, load_latest_batched, BatchedSnapshot, CheckpointManager,
    CheckpointOptions, LoopState, BATCHED_KIND,
};
use crate::driver::{propose_candidate, Objective, SearchConfig};
use crate::evaluator::EvalMode;
use crate::history::{Elite, History};
use crate::parallel::try_evaluate_batch;
use crate::policy::{PolicyKind, SimulatedAnnealing};
use gmorph_graph::{AbsGraph, CapacityVector, WeightStore};
use gmorph_perf::estimator::{estimate_latency_ms, Backend};
use gmorph_perf::filter::CapacityRuleFilter;
use gmorph_perf::VirtualClock;
use gmorph_tensor::error;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, TensorError};

/// Outcome of a batched search round for diagnostics.
#[derive(Debug, Clone)]
pub struct BatchRound {
    /// Round number (1-based).
    pub round: usize,
    /// Candidates evaluated this round.
    pub evaluated: usize,
    /// Candidates skipped (duplicate or rule-filtered).
    pub skipped: usize,
    /// Best satisfying latency after this round.
    pub best_latency_ms: f64,
    /// Virtual hours so far.
    pub virtual_hours: f64,
}

/// Result of a batched search.
#[derive(Debug, Clone)]
pub struct BatchedResult {
    /// Best satisfying graph at mini scale.
    pub best_mini: AbsGraph,
    /// Best satisfying graph at paper scale.
    pub best_paper: AbsGraph,
    /// Best latency (ms, Eager, paper scale).
    pub best_latency_ms: f64,
    /// Latency of the original graph.
    pub original_latency_ms: f64,
    /// Speedup over the original.
    pub speedup: f64,
    /// Per-round diagnostics.
    pub rounds: Vec<BatchRound>,
    /// Total virtual search hours.
    pub virtual_hours: f64,
}

/// Runs Algorithm 1 with `batch_size` candidates per round.
///
/// `cfg.iterations` counts *candidates*, so a batched run with
/// `batch_size = 4` performs `iterations / 4` rounds and is directly
/// comparable to a sequential run of the same `iterations`.
pub fn run_search_batched(
    mini: &AbsGraph,
    paper: &AbsGraph,
    teacher_weights: &WeightStore,
    mode: &EvalMode,
    cfg: &SearchConfig,
    batch_size: usize,
) -> Result<BatchedResult> {
    run_search_batched_checkpointed(mini, paper, teacher_weights, mode, cfg, batch_size, None)
}

/// Runs the batched search with optional crash-safe checkpointing.
///
/// Snapshot granularity is one *round* (`batch_size` candidates): the
/// shared state is only mutated between rounds, so a round boundary is
/// the natural consistent cut. Resuming replays the remaining rounds
/// bit-exactly — the parallel evaluator derives each candidate's RNG from
/// the round seed, not from thread scheduling.
pub fn run_search_batched_checkpointed(
    mini: &AbsGraph,
    paper: &AbsGraph,
    teacher_weights: &WeightStore,
    mode: &EvalMode,
    cfg: &SearchConfig,
    batch_size: usize,
    ckpt: Option<&CheckpointOptions>,
) -> Result<BatchedResult> {
    if batch_size == 0 {
        return Err(TensorError::InvalidArgument {
            op: "run_search_batched",
            msg: "batch_size must be nonzero".to_string(),
        });
    }
    let mut rng = Rng::new(cfg.seed ^ 0xBA7C4);
    let mut policy = SimulatedAnnealing::new();
    policy.alpha = cfg.sa_alpha;
    let mut history = History::new(policy.max_elites);
    let mut rule_filter = CapacityRuleFilter::new();
    let mut clock = VirtualClock::with_throughput(cfg.virtual_samples, cfg.virtual_throughput);
    let original_latency_ms = estimate_latency_ms(paper, Backend::Eager)?;
    let _run_span = gmorph_telemetry::span!(
        "search.run_batched",
        iterations = cfg.iterations,
        batch_size = batch_size,
        seed = cfg.seed
    );
    gmorph_telemetry::meta!(
        "search.run_meta",
        iterations = cfg.iterations,
        seed = cfg.seed,
        rule_filter = cfg.rule_filter,
        early_termination = cfg.finetune.early_termination,
        sa_alpha = cfg.sa_alpha,
        virtual_samples = cfg.virtual_samples,
        virtual_throughput = clock.throughput(),
        original_latency_ms = original_latency_ms,
        nodes = mini.len()
    );

    let mut best_mini = mini.clone();
    let mut best_paper = paper.clone();
    let mut best_latency = original_latency_ms;
    let mut rounds: Vec<BatchRound> = Vec::new();
    let n_rounds = cfg.iterations.div_ceil(batch_size);

    // Fold the batch size into the fingerprint: the same config at a
    // different batch size is a different (non-resumable) run.
    let fingerprint = config_fingerprint(cfg, mini, paper)
        ^ (batch_size as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15);
    let mut start_round = 1usize;
    if let Some(opts) = ckpt {
        if opts.resume {
            if let Some(snap) = load_latest_batched(&opts.dir, fingerprint)? {
                rng = Rng::restore(&snap.state.rng);
                policy.restore_last_drop(snap.state.last_drop);
                history =
                    History::from_parts(snap.state.evaluated, snap.state.elites, policy.max_elites);
                rule_filter = CapacityRuleFilter::from_parts(
                    snap.state.failures,
                    snap.state.quarantined,
                );
                clock.restore_seconds(snap.state.clock_seconds);
                best_mini = snap.best_mini;
                best_paper = snap.best_paper;
                best_latency = snap.best_latency;
                rounds = snap
                    .rounds
                    .into_iter()
                    .map(|(round, evaluated, skipped, best_latency_ms, virtual_hours)| BatchRound {
                        round,
                        evaluated,
                        skipped,
                        best_latency_ms,
                        virtual_hours,
                    })
                    .collect();
                start_round = snap.state.next_iter;
                gmorph_telemetry::point!(
                    "search.resumed",
                    next_round = start_round,
                    elites = history.elite_count(),
                    virtual_hours = clock.hours()
                );
            }
        }
    }
    let mut manager = ckpt.map(|opts| CheckpointManager::new(opts, BATCHED_KIND));

    for round in start_round..=n_rounds {
        // Sample a batch of candidates from the current policy state.
        let mut batch: Vec<(AbsGraph, AbsGraph, WeightStore)> = Vec::new();
        let mut skipped = 0usize;
        while batch.len() < batch_size {
            let use_elite = match cfg.policy {
                PolicyKind::SimulatedAnnealing => policy.sample_from_elites(
                    round * batch_size,
                    history.elite_count(),
                    &mut rng,
                ),
                PolicyKind::RandomSampling => false,
            };
            let (base_mini, base_paper, base_weights) =
                if use_elite && history.elite_count() > 0 {
                    let e = &history.elites()[rng.below(history.elite_count())];
                    (e.mini.clone(), e.paper.clone(), e.weights.clone())
                } else {
                    (mini.clone(), paper.clone(), teacher_weights.clone())
                };
            let Some((cand_mini, cand_paper)) = propose_candidate(
                &base_mini,
                &base_paper,
                cfg.pair_policy,
                cfg.max_ops_per_pass,
                &mut rng,
            )?
            else {
                skipped += 1;
                if skipped > batch_size * 4 {
                    break;
                }
                continue;
            };
            // Consult the history before spending any evaluation effort
            // (the whole batch is fine-tuned concurrently below).
            let signature = cand_mini.signature();
            if history.seen(&signature) {
                gmorph_telemetry::counter!("search.dedup_hit");
                skipped += 1;
                if skipped > batch_size * 4 {
                    break;
                }
                continue;
            }
            history.record_evaluated(signature.clone());
            let cv = CapacityVector::of(&cand_mini)?;
            // Quarantine is always consulted: its entries record
            // *evaluation failures*, independent of the `rule_filter`
            // accuracy heuristic.
            if rule_filter.quarantine_verdict(&signature, &cv).is_some() {
                skipped += 1;
                clock.charge_overhead(2.0);
                gmorph_telemetry::counter!("filter.rule.quarantined");
                if skipped > batch_size * 4 {
                    break;
                }
                continue;
            }
            if cfg.rule_filter && rule_filter.should_skip(&cv) {
                skipped += 1;
                clock.charge_overhead(2.0);
                continue;
            }
            batch.push((cand_mini, cand_paper, base_weights));
        }
        if batch.is_empty() {
            break;
        }

        // Evaluate the whole batch concurrently.
        let inputs: Vec<(AbsGraph, WeightStore)> = batch
            .iter()
            .map(|(m, _, w)| (m.clone(), w.clone()))
            .collect();
        // Fault injection (GMORPH_FAULT) maps its candidate iteration
        // onto the round holding it; the whole round's batch is poisoned,
        // which is the coarsest containment unit here anyway.
        let mut round_cfg = cfg.finetune.clone();
        if let Some(fault) = cfg.supervisor.fault {
            let lo = (round - 1) * batch_size + 1;
            if fault.at_iter >= lo && fault.at_iter <= round * batch_size {
                round_cfg.inject = Some(fault.kind);
            }
        }
        let evals = try_evaluate_batch(
            &inputs,
            mode,
            &round_cfg,
            cfg.seed ^ (round as u64) << 16,
        );

        // Fold results back into the shared state, sequentially. A failed
        // candidate is contained: classified, quarantined, and scored as
        // a rejection — the rest of the round proceeds.
        for ((cand_mini, cand_paper, _), outcome) in batch.into_iter().zip(evals) {
            let ev = match outcome {
                Ok(ev) => ev,
                Err(err) => {
                    let kind = error::classify(&err);
                    clock.charge_overhead(2.0);
                    policy.observe_drop(1.0);
                    rule_filter
                        .record_quarantine(cand_mini.signature(), CapacityVector::of(&cand_mini)?);
                    gmorph_telemetry::counter!("search.failed");
                    gmorph_telemetry::counter!("eval.quarantine");
                    gmorph_telemetry::point!(
                        "eval.quarantine",
                        round = round,
                        kind = kind.as_str(),
                        signature = cand_mini.signature().as_str(),
                        error = err.to_string().as_str()
                    );
                    continue;
                }
            };
            let paper_flops = cand_paper.flops()?;
            clock.charge_finetune(paper_flops, ev.result.epochs_run);
            clock.charge_eval(paper_flops * ev.result.records.len().max(1) as u64);
            policy.observe_drop(ev.result.final_drop.max(0.0));
            let latency = estimate_latency_ms(&cand_paper, Backend::Eager)?;
            let objective = match cfg.objective {
                Objective::Latency => latency,
                Objective::Flops => paper_flops as f64,
            };
            let best_objective = match cfg.objective {
                Objective::Latency => best_latency,
                Objective::Flops => best_paper.flops()? as f64,
            };
            if ev.result.met_target {
                if objective < best_objective {
                    best_mini = cand_mini.clone();
                    best_paper = cand_paper.clone();
                    best_latency = latency;
                }
                history.add_elite(Elite {
                    mini: cand_mini,
                    paper: cand_paper,
                    weights: ev.weights,
                    drop: ev.result.final_drop,
                    latency_ms: latency,
                    scores: ev.result.final_scores,
                });
            } else if cfg.rule_filter {
                rule_filter.record_failure(CapacityVector::of(&cand_mini)?);
            }
        }
        rounds.push(BatchRound {
            round,
            evaluated: inputs.len(),
            skipped,
            best_latency_ms: best_latency,
            virtual_hours: clock.hours(),
        });

        // Round boundary: the only point where shared state is consistent.
        if let Some(mgr) = manager.as_mut() {
            let snapshot = BatchedSnapshot {
                state: LoopState {
                    fingerprint,
                    next_iter: round + 1,
                    rng: rng.state(),
                    last_drop: policy.last_drop(),
                    clock_seconds: clock.seconds(),
                    wall_offset: 0.0,
                    failures: rule_filter.failures().to_vec(),
                    quarantined: rule_filter.quarantined().to_vec(),
                    evaluated: history
                        .evaluated_signatures()
                        .into_iter()
                        .map(str::to_string)
                        .collect(),
                    elites: history.elites().to_vec(),
                },
                best_mini: best_mini.clone(),
                best_paper: best_paper.clone(),
                best_latency,
                rounds: rounds
                    .iter()
                    .map(|r| (r.round, r.evaluated, r.skipped, r.best_latency_ms, r.virtual_hours))
                    .collect(),
            };
            mgr.tick(round, snapshot.encode()?)?;
        }
        if let Some(opts) = ckpt {
            opts.maybe_crash(round);
        }
    }

    Ok(BatchedResult {
        speedup: original_latency_ms / best_latency,
        best_mini,
        best_paper,
        best_latency_ms: best_latency,
        original_latency_ms,
        rounds,
        virtual_hours: clock.hours(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SurrogateContext;
    use gmorph_data::TaskSpec;
    use gmorph_graph::parser::parse_specs;
    use gmorph_models::families::{vgg, VggDepth, VisionScale};
    use gmorph_perf::accuracy::{FinetuneConfig, SurrogateParams};

    fn setup() -> (AbsGraph, AbsGraph, WeightStore, EvalMode) {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        let mini = parse_specs(&[
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1).unwrap(),
        ])
        .unwrap();
        let paper = parse_specs(&[
            vgg(VggDepth::Vgg13, VisionScale::paper(), &t0).unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::paper(), &t1).unwrap(),
        ])
        .unwrap();
        let mut weights = WeightStore::new();
        for (_, n) in mini.iter() {
            weights.insert(n.key(), n.spec.clone(), Vec::new());
        }
        let mode = EvalMode::Surrogate(SurrogateContext {
            orig_capacity: CapacityVector::of(&mini).unwrap(),
            params: SurrogateParams::default(),
            teacher_scores: vec![0.85, 0.80],
        });
        (mini, paper, weights, mode)
    }

    fn cfg(iterations: usize) -> SearchConfig {
        SearchConfig {
            iterations,
            finetune: FinetuneConfig {
                max_epochs: 20,
                eval_every: 2,
                target_drop: 0.02,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn batched_search_finds_satisfying_speedup() {
        let (mini, paper, weights, mode) = setup();
        let r = run_search_batched(&mini, &paper, &weights, &mode, &cfg(32), 4).unwrap();
        assert!(r.speedup > 1.0, "speedup {}", r.speedup);
        assert!(!r.rounds.is_empty());
        r.best_mini.validate().unwrap();
        r.best_paper.validate().unwrap();
        // Candidate count respects the budget (rounds * batch).
        let evaluated: usize = r.rounds.iter().map(|x| x.evaluated).sum();
        assert!(evaluated <= 32);
    }

    #[test]
    fn batched_matches_sequential_quality_roughly() {
        let (mini, paper, weights, mode) = setup();
        let seq = crate::driver::run_search(&mini, &paper, &weights, &mode, &cfg(32)).unwrap();
        let bat = run_search_batched(&mini, &paper, &weights, &mode, &cfg(32), 4).unwrap();
        // Same candidate budget: quality within a factor.
        assert!(bat.speedup > seq.speedup * 0.5, "{} vs {}", bat.speedup, seq.speedup);
    }

    #[test]
    fn best_latency_monotone_across_rounds() {
        let (mini, paper, weights, mode) = setup();
        let r = run_search_batched(&mini, &paper, &weights, &mode, &cfg(24), 3).unwrap();
        for w in r.rounds.windows(2) {
            assert!(w[1].best_latency_ms <= w[0].best_latency_ms + 1e-9);
            assert!(w[1].virtual_hours >= w[0].virtual_hours);
        }
    }

    #[test]
    fn zero_batch_rejected() {
        let (mini, paper, weights, mode) = setup();
        assert!(run_search_batched(&mini, &paper, &weights, &mode, &cfg(8), 0).is_err());
    }

    #[test]
    fn rule_filter_works_in_batched_mode() {
        let (mini, paper, weights, mode) = setup();
        let mut c = cfg(48);
        c.finetune.target_drop = 0.0;
        c.rule_filter = true;
        let r = run_search_batched(&mini, &paper, &weights, &mode, &c, 4).unwrap();
        let skipped: usize = r.rounds.iter().map(|x| x.skipped).sum();
        assert!(skipped > 0);
    }
}
