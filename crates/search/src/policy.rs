//! Sampling policies (§4.3.1).

use gmorph_tensor::rng::Rng;

/// Which sampling policy a search uses.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyKind {
    /// The paper's simulated-annealing policy: explore from the original
    /// graph early, exploit elite candidates late.
    SimulatedAnnealing,
    /// The §6.4 baseline: always mutate the original multi-DNN graph.
    RandomSampling,
}

/// The simulated-annealing sampling state.
///
/// The paper updates the elite-sampling probability as
/// `p = (1 − exp(−(1−Δ)/τ)) · sqrt(Nc/Ni)` with temperature
/// `Tc = Ti · α^iter` (α = 0.99, Ti = 90, Ni = 16). We use the
/// dimensionless temperature `τ = Tc/Ti = α^iter` inside the exponent:
/// with the printed `Tc·Ti` denominator the exponent stays ≈ 1e-4 for the
/// whole run and the policy would essentially never exploit elites, which
/// contradicts the stated design ("in the later iterations, the policy
/// tends to find base abs-graphs from the elite candidates"). With the
/// normalized temperature, `p` starts near 0 (no elites, high τ) and
/// approaches `sqrt(Nc/Ni)` ≈ 1 as the temperature decays — the intended
/// explore-to-exploit schedule.
#[derive(Debug, Clone)]
pub struct SimulatedAnnealing {
    /// Initial temperature `Ti` (paper: 90).
    pub initial_temp: f32,
    /// Cooling constant `α` (paper: 0.99).
    pub alpha: f32,
    /// Elite-list capacity `Ni` (paper: 16).
    pub max_elites: usize,
    /// Most recent fine-tuning accuracy drop `Δ`.
    last_drop: f32,
}

impl Default for SimulatedAnnealing {
    fn default() -> Self {
        SimulatedAnnealing {
            initial_temp: 90.0,
            alpha: 0.99,
            max_elites: 16,
            last_drop: 0.0,
        }
    }
}

impl SimulatedAnnealing {
    /// Creates the policy with the paper's constants.
    pub fn new() -> Self {
        SimulatedAnnealing::default()
    }

    /// Records the accuracy drop of the latest evaluated candidate.
    pub fn observe_drop(&mut self, drop: f32) {
        self.last_drop = drop.clamp(0.0, 1.0);
    }

    /// The most recent observed drop `Δ` (checkpointed search state).
    pub fn last_drop(&self) -> f32 {
        self.last_drop
    }

    /// Restores the observed drop bit-exactly from a checkpoint.
    pub fn restore_last_drop(&mut self, drop: f32) {
        self.last_drop = drop;
    }

    /// Current temperature `Tc = Ti · α^iter`.
    pub fn temperature(&self, iter: usize) -> f32 {
        self.initial_temp * self.alpha.powi(iter as i32)
    }

    /// Probability of sampling an elite as the base graph at `iter` with
    /// `n_elites` elites recorded.
    pub fn elite_probability(&self, iter: usize, n_elites: usize) -> f32 {
        if n_elites == 0 {
            return 0.0;
        }
        let tau = (self.temperature(iter) / self.initial_temp).max(1e-6);
        let explore = 1.0 - (-(1.0 - self.last_drop) / tau).exp();
        let fill = ((n_elites.min(self.max_elites)) as f32 / self.max_elites as f32).sqrt();
        (explore * fill).clamp(0.0, 1.0)
    }

    /// Decides whether to draw the base from the elites this iteration.
    pub fn sample_from_elites(&self, iter: usize, n_elites: usize, rng: &mut Rng) -> bool {
        rng.coin(self.elite_probability(iter, n_elites))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temperature_decays() {
        let p = SimulatedAnnealing::new();
        assert!((p.temperature(0) - 90.0).abs() < 1e-4);
        assert!(p.temperature(100) < p.temperature(10));
        assert!(p.temperature(200) > 0.0);
    }

    #[test]
    fn probability_zero_without_elites() {
        let p = SimulatedAnnealing::new();
        assert_eq!(p.elite_probability(50, 0), 0.0);
    }

    #[test]
    fn probability_grows_with_iterations() {
        let p = SimulatedAnnealing::new();
        let early = p.elite_probability(0, 8);
        let late = p.elite_probability(200, 8);
        assert!(late > early, "{late} !> {early}");
    }

    #[test]
    fn probability_grows_with_elite_count() {
        let p = SimulatedAnnealing::new();
        let few = p.elite_probability(100, 2);
        let many = p.elite_probability(100, 16);
        assert!(many > few);
    }

    #[test]
    fn probability_bounded_and_monotone_in_fill() {
        let mut p = SimulatedAnnealing::new();
        p.observe_drop(0.5);
        for iter in [0usize, 50, 100, 200, 400] {
            for n in 0..=16 {
                let prob = p.elite_probability(iter, n);
                assert!((0.0..=1.0).contains(&prob));
            }
        }
        // Elite counts above capacity saturate.
        assert_eq!(
            p.elite_probability(100, 16),
            p.elite_probability(100, 40)
        );
    }

    #[test]
    fn higher_drop_lowers_probability() {
        let mut good = SimulatedAnnealing::new();
        good.observe_drop(0.0);
        let mut bad = SimulatedAnnealing::new();
        bad.observe_drop(0.9);
        assert!(bad.elite_probability(150, 8) < good.elite_probability(150, 8));
    }

    #[test]
    fn sampling_respects_probability() {
        let p = SimulatedAnnealing::new();
        let mut rng = Rng::new(0);
        // Late iterations with a full elite list: should mostly exploit.
        let hits = (0..500)
            .filter(|_| p.sample_from_elites(300, 16, &mut rng))
            .count();
        assert!(hits > 350, "hits = {hits}");
    }
}
