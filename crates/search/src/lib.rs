//! Graph-mutation search (§3, Algorithm 1) for the GMorph reproduction.
//!
//! - [`policy`]: sampling policies — the simulated-annealing policy of
//!   §4.3.1 (elite list, temperature schedule, elite-sampling probability)
//!   and the random-sampling baseline of §6.4,
//! - [`history`]: the History Database of evaluated candidates and elites,
//! - [`evaluator`]: the accuracy-evaluation backend — `Real` (distillation
//!   fine-tuning of the mini-scale model) or `Surrogate` (calibrated
//!   analytic model; see DESIGN.md §1),
//! - [`driver`]: Algorithm 1 — the graph mutation optimization loop with
//!   predictive filtering and dual-scale (mini + paper) graph tracking,
//! - [`parallel`]: batch candidate evaluation on worker threads (§7's
//!   "sampling multiple models in parallel" extension),
//! - [`supervisor`]: resilient candidate evaluation — catch-unwind
//!   containment, deadlines, retry with LR backoff and reseeded init, and
//!   failure classification feeding quarantine (DESIGN.md §13),
//! - [`persist`]: JSONL persistence of search traces (the Figure 8 run
//!   artifacts),
//! - [`checkpoint`]: crash-safe checkpoint/resume — versioned, checksummed
//!   snapshots of the full search state, written atomically on a
//!   durability schedule, restoring bit-identical runs (DESIGN.md §12).

pub mod batched;
pub mod checkpoint;
pub mod driver;
pub mod evaluator;
pub mod history;
pub mod parallel;
pub mod persist;
pub mod policy;
pub mod supervisor;

pub use batched::{run_search_batched, run_search_batched_checkpointed, BatchedResult};
pub use checkpoint::{CheckpointManager, CheckpointOptions, CrashKind};
pub use driver::{
    run_search, run_search_checkpointed, SearchConfig, SearchResult, TraceRecord,
};
pub use persist::{load_trace, save_trace, TraceMeta};
pub use evaluator::{EvalMode, RealContext, SurrogateContext};
pub use supervisor::{FailureReport, SupervisorConfig};
pub use history::{Elite, History};
pub use policy::{PolicyKind, SimulatedAnnealing};
