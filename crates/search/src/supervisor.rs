//! Resilient candidate evaluation: deadlines, retry/backoff, quarantine.
//!
//! Algorithm 1 fine-tunes thousands of *generated* candidate graphs, and
//! some of them are simply bad: they diverge to NaN, train pathologically
//! slowly, or tickle a panic in a kernel. The supervisor wraps
//! [`EvalMode::evaluate`] in a containment boundary so that a failing
//! candidate becomes a *classified, scored-as-rejected* search step instead
//! of an aborted run:
//!
//! - every attempt runs under `catch_unwind`, so a panicking candidate is
//!   caught and classified as [`FailureKind::Panic`],
//! - a wall-clock deadline ([`SupervisorConfig::candidate_deadline_ms`]) is
//!   enforced both inside the fine-tune loop (epoch granularity) and as a
//!   post-check here,
//! - an optional tensor-pool byte budget
//!   ([`SupervisorConfig::pool_byte_budget`]) arms the OOM guard in
//!   [`gmorph_tensor::buffer`] for the duration of each attempt,
//! - *transient* failures (panic, non-finite) are retried up to
//!   [`SupervisorConfig::max_retries`] times with an exponentially
//!   backed-off learning rate and a **reseeded** initialization drawn from
//!   an RNG stream disjoint from the search stream,
//! - *permanent* failures (timeout, OOM-guard: properties of the graph,
//!   not of the draw) skip retries entirely,
//! - exhausted candidates come back as a [`FailureReport`] the driver
//!   quarantines by graph signature.
//!
//! # Determinism
//!
//! Attempt 0 consumes the main search RNG exactly like an unsupervised
//! evaluation, so a clean run under the default config is bit-identical to
//! the pre-supervisor driver. Retry attempts use fresh
//! `Rng::new(retry_seed(..))` streams derived from `(seed, iter, attempt)`
//! — they never touch the search stream, so a retried candidate perturbs
//! nothing downstream and kill/resume at the retry boundary replays
//! bit-exactly (checkpoints snapshot the search RNG per iteration; the
//! retry streams are reconstructed from scratch).

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Instant;

use crate::evaluator::{EvalMode, Evaluation};
use gmorph_graph::{AbsGraph, WeightStore};
use gmorph_perf::accuracy::FinetuneConfig;
use gmorph_tensor::buffer;
use gmorph_tensor::error::{self, FailureKind, FaultSpec};
use gmorph_tensor::rng::Rng;

/// Supervision knobs for candidate evaluation.
///
/// The default configuration is *inert*: no retries beyond the two bounded
/// re-attempts would ever trigger on a healthy candidate, no deadlines, no
/// byte budget, no fault injection — and attempt 0 uses the main search
/// RNG, so default-config runs are bit-identical to unsupervised ones.
#[derive(Debug, Clone, PartialEq)]
pub struct SupervisorConfig {
    /// Bounded retry attempts after the first try (transient failures
    /// only).
    pub max_retries: usize,
    /// Per-attempt wall-clock deadline in milliseconds. `None` (default)
    /// disables the check: wall-clock outcomes are machine-dependent, so
    /// enabling it trades bit-exact resume for liveness.
    pub candidate_deadline_ms: Option<u64>,
    /// Per-candidate virtual-clock budget in hours, checked by the driver
    /// against the deterministic virtual cost the candidate charged.
    /// Deterministic — safe to combine with checkpoint/resume.
    pub virtual_deadline_hours: Option<f64>,
    /// Learning-rate multiplier applied per retry attempt
    /// (`lr * backoff^attempt`).
    pub lr_backoff: f32,
    /// Tensor-pool byte budget armed during each attempt (the OOM guard).
    /// Process-global: meaningful for the sequential driver, advisory for
    /// the parallel batched path.
    pub pool_byte_budget: Option<usize>,
    /// Fault injection (from `GMORPH_FAULT`): poisons the candidate at the
    /// configured iteration on *every* attempt — a faulty graph stays
    /// faulty, which is what drives it into quarantine.
    pub fault: Option<FaultSpec>,
}

impl Default for SupervisorConfig {
    fn default() -> Self {
        SupervisorConfig {
            max_retries: 2,
            candidate_deadline_ms: None,
            virtual_deadline_hours: None,
            lr_backoff: 0.5,
            pool_byte_budget: None,
            fault: None,
        }
    }
}

/// A candidate that failed every permitted attempt, classified.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Classification of the *final* failure.
    pub kind: FailureKind,
    /// Attempts actually made (1 for permanent failures).
    pub attempts: usize,
    /// Final failure message.
    pub message: String,
}

/// Derives the RNG seed for retry attempt `attempt` (≥ 1) of iteration
/// `iter`.
///
/// The constant salt keeps the derived seeds out of the search stream's
/// seed space (`cfg.seed ^ 0x5EA_4C4`) and the parallel batch's per-index
/// space; distinct `(iter, attempt)` pairs map to distinct seeds.
pub fn retry_seed(seed: u64, iter: usize, attempt: usize) -> u64 {
    seed ^ 0xF0A1_7E57_D00D_0000u64
        ^ (iter as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15)
        ^ ((attempt as u64) << 48)
}

/// Derives the surrogate noise salt for retry attempt `attempt` (≥ 1):
/// perturbing the salt reseeds the analytic model's noise draw, the
/// surrogate analogue of a reseeded weight initialization.
pub fn retry_salt(noise_salt: u64, attempt: usize) -> u64 {
    noise_salt ^ (attempt as u64).wrapping_mul(0xA5A5_5A5A_1234_5678)
}

/// Renders a panic payload's message, when it carries one.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "<non-string panic payload>".to_string()
    }
}

/// Evaluates one candidate under supervision.
///
/// On success returns the evaluation; on exhaustion returns a
/// [`FailureReport`] the driver turns into a rejected step plus a
/// quarantine entry. This function never panics on a candidate failure and
/// never returns a raw error: every outcome is classified.
#[allow(clippy::too_many_arguments)]
pub fn evaluate_supervised(
    mode: &EvalMode,
    candidate: &AbsGraph,
    base_weights: &WeightStore,
    finetune: &FinetuneConfig,
    sup: &SupervisorConfig,
    seed: u64,
    iter: usize,
    rng: &mut Rng,
    noise_salt: u64,
) -> std::result::Result<Evaluation, FailureReport> {
    let total_attempts = 1 + sup.max_retries;
    let mut last: Option<(FailureKind, String)> = None;
    let mut attempts = 0usize;

    for attempt in 0..total_attempts {
        attempts = attempt + 1;
        let mut cfg = finetune.clone();
        if attempt > 0 {
            cfg.lr = finetune.lr * sup.lr_backoff.powi(attempt as i32);
        }
        cfg.wall_deadline_ms = cfg.wall_deadline_ms.or(sup.candidate_deadline_ms);
        if let Some(fault) = sup.fault {
            if fault.at_iter == iter {
                cfg.inject = Some(fault.kind);
            }
        }

        // Arm the pool OOM guard for this attempt only. The guard is
        // process-global; resetting the served-bytes counter per attempt
        // gives each attempt the full budget.
        let armed = sup.pool_byte_budget.is_some();
        if armed {
            buffer::reset_served_bytes();
            buffer::set_byte_budget(sup.pool_byte_budget);
        }
        let started = Instant::now();
        let caught = if attempt == 0 {
            // First attempt: the main search stream, bit-compatible with
            // an unsupervised evaluation.
            catch_unwind(AssertUnwindSafe(|| {
                mode.evaluate(candidate, base_weights, &cfg, rng, noise_salt)
            }))
        } else {
            // Retry: a fresh stream disjoint from the search stream, plus
            // a perturbed noise salt — a reseeded initialization.
            let mut retry_rng = Rng::new(retry_seed(seed, iter, attempt));
            let salt = retry_salt(noise_salt, attempt);
            catch_unwind(AssertUnwindSafe(|| {
                mode.evaluate(candidate, base_weights, &cfg, &mut retry_rng, salt)
            }))
        };
        if armed {
            buffer::set_byte_budget(None);
            buffer::reset_served_bytes();
        }

        let outcome = match caught {
            Ok(res) => res,
            Err(payload) => Err(error::panic_failure(
                "supervisor::evaluate",
                format!(
                    "attempt {attempt} panicked: {}",
                    panic_message(payload.as_ref())
                ),
            )),
        };
        // Post-check the wall deadline: an attempt that "succeeded" after
        // blowing its budget is still a timeout (the in-loop check only
        // fires at epoch boundaries).
        let outcome = match outcome {
            Ok(eval) => {
                let elapsed_ms = started.elapsed().as_millis() as u64;
                match sup.candidate_deadline_ms {
                    Some(limit) if elapsed_ms > limit => Err(error::timeout(
                        "supervisor::evaluate",
                        format!("attempt {attempt} took {elapsed_ms}ms, deadline {limit}ms"),
                    )),
                    _ => Ok(eval),
                }
            }
            err => err,
        };

        match outcome {
            Ok(eval) => {
                if attempt > 0 {
                    gmorph_telemetry::counter!("eval.retry_recovered");
                }
                return Ok(eval);
            }
            Err(err) => {
                let kind = error::classify(&err);
                let message = err.to_string();
                let will_retry = kind.is_transient() && attempt + 1 < total_attempts;
                gmorph_telemetry::counter!("eval.attempt_failed");
                gmorph_telemetry::point!(
                    "eval.retry",
                    iter = iter,
                    attempt = attempt,
                    kind = kind.as_str(),
                    transient = kind.is_transient(),
                    will_retry = will_retry,
                    next_lr = if will_retry {
                        (finetune.lr * sup.lr_backoff.powi(attempt as i32 + 1)) as f64
                    } else {
                        f64::NAN
                    },
                    error = message.as_str()
                );
                last = Some((kind, message));
                if !will_retry {
                    break;
                }
                gmorph_telemetry::counter!("eval.retry");
            }
        }
    }

    let (kind, message) = last.expect("at least one attempt ran");
    Err(FailureReport {
        kind,
        attempts,
        message,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SurrogateContext;
    use gmorph_data::TaskSpec;
    use gmorph_graph::parser::parse_specs;
    use gmorph_graph::{mutation, pairs, CapacityVector};
    use gmorph_models::families::{vgg, VggDepth, VisionScale};
    use gmorph_perf::accuracy::SurrogateParams;
    use gmorph_tensor::error::FaultKind;

    fn test_candidate() -> (AbsGraph, WeightStore, EvalMode) {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        let g = parse_specs(&[
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t1).unwrap(),
        ])
        .unwrap();
        let prs = pairs::shareable_pairs(&g).unwrap();
        let (m, _) = mutation::mutation_pass(&g, &[prs[0]]).unwrap();
        let mode = EvalMode::Surrogate(SurrogateContext {
            orig_capacity: CapacityVector::of(&g).unwrap(),
            params: SurrogateParams::default(),
            teacher_scores: vec![0.85, 0.80],
        });
        (m, WeightStore::new(), mode)
    }

    fn cfg() -> FinetuneConfig {
        FinetuneConfig {
            max_epochs: 10,
            eval_every: 1,
            target_drop: 0.02,
            ..Default::default()
        }
    }

    #[test]
    fn default_supervision_is_bit_identical_to_direct_eval() {
        let (cand, weights, mode) = test_candidate();
        let mut rng_a = Rng::new(99);
        let mut rng_b = Rng::new(99);
        let direct = mode
            .evaluate(&cand, &weights, &cfg(), &mut rng_a, 1234)
            .unwrap();
        let supervised = evaluate_supervised(
            &mode,
            &cand,
            &weights,
            &cfg(),
            &SupervisorConfig::default(),
            7,
            1,
            &mut rng_b,
            1234,
        )
        .unwrap();
        assert_eq!(
            direct.result.final_drop.to_bits(),
            supervised.result.final_drop.to_bits()
        );
        assert_eq!(direct.result.epochs_run, supervised.result.epochs_run);
        // The search stream advanced identically.
        assert_eq!(rng_a.state(), rng_b.state());
    }

    #[test]
    fn nan_fault_exhausts_retries_and_classifies_non_finite() {
        let (cand, weights, mode) = test_candidate();
        let sup = SupervisorConfig {
            fault: Some(FaultSpec {
                kind: FaultKind::NanLoss,
                at_iter: 3,
            }),
            ..Default::default()
        };
        let mut rng = Rng::new(1);
        let report = evaluate_supervised(
            &mode, &cand, &weights, &cfg(), &sup, 7, 3, &mut rng, 42,
        )
        .unwrap_err();
        assert_eq!(report.kind, FailureKind::NonFinite);
        assert_eq!(report.attempts, 1 + sup.max_retries);
    }

    #[test]
    fn fault_at_other_iteration_is_inert() {
        let (cand, weights, mode) = test_candidate();
        let sup = SupervisorConfig {
            fault: Some(FaultSpec {
                kind: FaultKind::NanLoss,
                at_iter: 3,
            }),
            ..Default::default()
        };
        let mut rng = Rng::new(1);
        assert!(evaluate_supervised(
            &mode, &cand, &weights, &cfg(), &sup, 7, 4, &mut rng, 42,
        )
        .is_ok());
    }

    #[test]
    fn panic_fault_is_caught_and_retried() {
        let (cand, weights, mode) = test_candidate();
        let sup = SupervisorConfig {
            max_retries: 1,
            fault: Some(FaultSpec {
                kind: FaultKind::PanicEval,
                at_iter: 2,
            }),
            ..Default::default()
        };
        let mut rng = Rng::new(1);
        let report = evaluate_supervised(
            &mode, &cand, &weights, &cfg(), &sup, 7, 2, &mut rng, 42,
        )
        .unwrap_err();
        assert_eq!(report.kind, FailureKind::Panic);
        assert_eq!(report.attempts, 2, "panic is transient: one retry");
    }

    #[test]
    fn slow_candidate_times_out_without_retry() {
        let (cand, weights, mode) = test_candidate();
        let sup = SupervisorConfig {
            candidate_deadline_ms: Some(1),
            fault: Some(FaultSpec {
                kind: FaultKind::SlowCandidate,
                at_iter: 5,
            }),
            ..Default::default()
        };
        let mut rng = Rng::new(1);
        let report = evaluate_supervised(
            &mode, &cand, &weights, &cfg(), &sup, 7, 5, &mut rng, 42,
        )
        .unwrap_err();
        assert_eq!(report.kind, FailureKind::Timeout);
        assert_eq!(report.attempts, 1, "timeouts are permanent: no retry");
    }

    #[test]
    fn retry_seeds_are_disjoint_from_search_stream() {
        // The search stream seeds as cfg.seed ^ 0x5EA_4C4; retry streams
        // must never collide with it (or with each other).
        for seed in [0u64, 7, 42, 0xFFFF_FFFF] {
            let search_seed = seed ^ 0x5EA_4C4;
            let mut seen = std::collections::HashSet::new();
            for iter in 1..20 {
                for attempt in 1..4 {
                    let rs = retry_seed(seed, iter, attempt);
                    assert_ne!(rs, search_seed);
                    assert!(seen.insert(rs), "duplicate retry seed");
                }
            }
        }
    }
}
