//! The History Database: evaluated candidates and elite models.
//!
//! The Graph Mutator "saves abstract graphs and model weights in its
//! History Database" (§3). Elites are candidates that met the accuracy
//! target; they are the mutation bases exploitation draws from, and their
//! well-trained weights seed the mutations' initialization (§2.2.2).

use gmorph_graph::{AbsGraph, WeightStore};
use std::collections::HashSet;

/// A candidate that met the accuracy target.
#[derive(Debug, Clone)]
pub struct Elite {
    /// Mini-scale (trainable) abstract graph.
    pub mini: AbsGraph,
    /// Paper-scale (estimation) abstract graph, node-id aligned with
    /// `mini`.
    pub paper: AbsGraph,
    /// Well-trained weights of the mini-scale model.
    pub weights: WeightStore,
    /// Accuracy drop achieved after fine-tuning.
    pub drop: f32,
    /// Optimized-metric value (paper-scale estimated latency, ms).
    pub latency_ms: f64,
    /// Per-task scores after fine-tuning.
    pub scores: Vec<f32>,
}

/// Evaluated-candidate and elite bookkeeping.
#[derive(Debug, Clone)]
pub struct History {
    evaluated: HashSet<String>,
    elites: Vec<Elite>,
    max_elites: usize,
}

impl History {
    /// Creates a history with the given elite-list capacity (paper: 16).
    pub fn new(max_elites: usize) -> Self {
        History {
            evaluated: HashSet::new(),
            elites: Vec::new(),
            max_elites: max_elites.max(1),
        }
    }

    /// Number of elites currently held.
    pub fn elite_count(&self) -> usize {
        self.elites.len()
    }

    /// Elite-list capacity (`N_i` in the sampling-probability formula).
    pub fn max_elites(&self) -> usize {
        self.max_elites
    }

    /// Read access to the elites.
    pub fn elites(&self) -> &[Elite] {
        &self.elites
    }

    /// Records a candidate signature; returns false when it was already
    /// evaluated (the caller should skip it).
    pub fn record_evaluated(&mut self, signature: String) -> bool {
        self.evaluated.insert(signature)
    }

    /// True when the signature was evaluated before.
    pub fn seen(&self, signature: &str) -> bool {
        self.evaluated.contains(signature)
    }

    /// Number of distinct candidates evaluated.
    pub fn evaluated_count(&self) -> usize {
        self.evaluated.len()
    }

    /// Evaluated signatures in sorted order.
    ///
    /// The dedup set is order-free (membership only), so sorting gives a
    /// canonical serialization for checkpoints.
    pub fn evaluated_signatures(&self) -> Vec<&str> {
        let mut sigs: Vec<&str> = self.evaluated.iter().map(String::as_str).collect();
        sigs.sort_unstable();
        sigs
    }

    /// Reconstructs a history from checkpointed parts.
    ///
    /// `elites` must be in their original insertion order: the sampling
    /// policy indexes into the elite list with the run's RNG, so order is
    /// part of the deterministic-replay state.
    pub fn from_parts(evaluated: Vec<String>, elites: Vec<Elite>, max_elites: usize) -> History {
        History {
            evaluated: evaluated.into_iter().collect(),
            elites,
            max_elites: max_elites.max(1),
        }
    }

    /// Adds an elite, evicting the slowest one when full.
    pub fn add_elite(&mut self, elite: Elite) {
        if self.elites.len() >= self.max_elites {
            // Keep the list focused on the fastest satisfying models.
            if let Some((worst_idx, worst)) = self
                .elites
                .iter()
                .enumerate()
                .max_by(|a, b| {
                    a.1.latency_ms
                        .partial_cmp(&b.1.latency_ms)
                        .unwrap_or(std::cmp::Ordering::Equal)
                })
            {
                if worst.latency_ms > elite.latency_ms {
                    self.elites[worst_idx] = elite;
                }
                return;
            }
        }
        self.elites.push(elite);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_data::TaskSpec;

    fn elite(latency: f64) -> Elite {
        let g = AbsGraph::new(vec![3, 8, 8], vec![TaskSpec::classification("t", 2)]);
        Elite {
            mini: g.clone(),
            paper: g,
            weights: WeightStore::new(),
            drop: 0.0,
            latency_ms: latency,
            scores: vec![0.9],
        }
    }

    #[test]
    fn dedup_by_signature() {
        let mut h = History::new(4);
        assert!(h.record_evaluated("a".to_string()));
        assert!(!h.record_evaluated("a".to_string()));
        assert!(h.seen("a"));
        assert!(!h.seen("b"));
        assert_eq!(h.evaluated_count(), 1);
    }

    #[test]
    fn elites_grow_until_capacity() {
        let mut h = History::new(3);
        for i in 0..3 {
            h.add_elite(elite(i as f64));
        }
        assert_eq!(h.elite_count(), 3);
        assert_eq!(h.max_elites(), 3);
    }

    #[test]
    fn elite_capacity_evicts_slowest() {
        let mut h = History::new(2);
        h.add_elite(elite(5.0));
        h.add_elite(elite(3.0));
        assert_eq!(h.elite_count(), 2);
        // A faster elite replaces the 5.0 one.
        h.add_elite(elite(1.0));
        assert_eq!(h.elite_count(), 2);
        let lats: Vec<f64> = h.elites().iter().map(|e| e.latency_ms).collect();
        assert!(lats.contains(&1.0) && lats.contains(&3.0));
        // A slower elite is rejected when full.
        h.add_elite(elite(9.0));
        assert!(!h.elites().iter().any(|e| e.latency_ms == 9.0));
    }
}
