//! Parallel candidate evaluation (§7's extension).
//!
//! The paper notes its prototype "samples only one multi-task model at a
//! time" and suggests sampling multiple models in parallel. This module
//! evaluates a batch of candidates on crossbeam scoped threads. On the
//! single-core machines this reproduction targets it mostly demonstrates
//! correctness (results are identical to sequential evaluation); on
//! multi-core machines it shortens wall-clock search time.

use crate::evaluator::{EvalMode, Evaluation};
use gmorph_graph::{AbsGraph, WeightStore};
use gmorph_perf::accuracy::FinetuneConfig;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, TensorError};

/// Evaluates candidates concurrently, preserving input order.
///
/// Each candidate gets an independent RNG derived from `seed` and its
/// index, so results match a sequential run with the same derivation.
pub fn evaluate_batch(
    candidates: &[(AbsGraph, WeightStore)],
    mode: &EvalMode,
    cfg: &FinetuneConfig,
    seed: u64,
) -> Result<Vec<Evaluation>> {
    let mut slots: Vec<Option<Result<Evaluation>>> = Vec::new();
    slots.resize_with(candidates.len(), || None);
    crossbeam::thread::scope(|scope| {
        for (i, slot) in slots.iter_mut().enumerate() {
            let (graph, weights) = &candidates[i];
            scope.spawn(move |_| {
                let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
                let salt = seed.wrapping_add(i as u64);
                *slot = Some(mode.evaluate(graph, weights, cfg, &mut rng, salt));
            });
        }
    })
    .map_err(|_| TensorError::InvalidArgument {
        op: "parallel::evaluate_batch",
        msg: "a worker thread panicked".to_string(),
    })?;
    slots
        .into_iter()
        .map(|s| s.expect("every slot written by its worker"))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SurrogateContext;
    use gmorph_data::TaskSpec;
    use gmorph_graph::parser::parse_specs;
    use gmorph_graph::{mutation, pairs, CapacityVector};
    use gmorph_models::families::{vgg, VggDepth, VisionScale};
    use gmorph_perf::accuracy::SurrogateParams;

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        let g = parse_specs(&[
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t1).unwrap(),
        ])
        .unwrap();
        let prs = pairs::shareable_pairs(&g).unwrap();
        let candidates: Vec<(AbsGraph, WeightStore)> = prs
            .iter()
            .take(4)
            .map(|&p| {
                let (m, _) = mutation::mutation_pass(&g, &[p]).unwrap();
                (m, WeightStore::new())
            })
            .collect();
        let mode = EvalMode::Surrogate(SurrogateContext {
            orig_capacity: CapacityVector::of(&g).unwrap(),
            params: SurrogateParams::default(),
            teacher_scores: vec![0.85, 0.80],
        });
        let cfg = FinetuneConfig {
            max_epochs: 10,
            eval_every: 1,
            target_drop: 0.02,
            ..Default::default()
        };
        let parallel = evaluate_batch(&candidates, &mode, &cfg, 7).unwrap();
        // Sequential reference with the same per-index derivation.
        for (i, (graph, weights)) in candidates.iter().enumerate() {
            let mut rng = Rng::new(7 ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let seq = mode
                .evaluate(graph, weights, &cfg, &mut rng, 7 + i as u64)
                .unwrap();
            assert_eq!(parallel[i].result.final_drop, seq.result.final_drop);
            assert_eq!(parallel[i].result.epochs_run, seq.result.epochs_run);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mode = EvalMode::Surrogate(SurrogateContext {
            orig_capacity: CapacityVector {
                total: 1,
                per_task_total: vec![1],
                per_task_specific: vec![1],
                shared: 0,
            },
            params: SurrogateParams::default(),
            teacher_scores: vec![0.8],
        });
        let out = evaluate_batch(&[], &mode, &FinetuneConfig::default(), 0).unwrap();
        assert!(out.is_empty());
    }
}
