//! Parallel candidate evaluation (§7's extension).
//!
//! The paper notes its prototype "samples only one multi-task model at a
//! time" and suggests sampling multiple models in parallel. This module
//! evaluates a batch of candidates on the process-wide kernel worker pool
//! ([`gmorph_tensor::engine`]) instead of spawning one OS thread per
//! candidate: scheduling is bounded by the configured thread count
//! (`GMORPH_THREADS`), and the tensor kernels a candidate runs nest inline
//! on the same worker, so candidate-level and kernel-level parallelism
//! compose without oversubscription.
//!
//! Each candidate derives its RNG from `seed` and its index only, so the
//! results — and the accepted/rejected decisions the driver makes from
//! them — are identical to a sequential run at any thread count.

use std::panic::{catch_unwind, AssertUnwindSafe};

use crate::evaluator::{EvalMode, Evaluation};
use gmorph_graph::{AbsGraph, WeightStore};
use gmorph_perf::accuracy::FinetuneConfig;
use gmorph_tensor::engine;
use gmorph_tensor::error;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, TensorError};

/// Renders a panic payload's message, when it carries one.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> &str {
    if let Some(s) = payload.downcast_ref::<&str>() {
        s
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s
    } else {
        "<non-string panic payload>"
    }
}

/// Evaluates candidates concurrently, preserving input order, and returns
/// one outcome *per candidate*.
///
/// Each candidate gets an independent RNG derived from `seed` and its
/// index, so results match a sequential run with the same derivation. A
/// panicking candidate does not abort the rest of the batch: it is caught
/// at this boundary and classified as a [`error::FailureKind::Panic`]
/// failure in its own slot, so callers (the batched driver) can contain
/// individual failures instead of aborting the round.
pub fn try_evaluate_batch(
    candidates: &[(AbsGraph, WeightStore)],
    mode: &EvalMode,
    cfg: &FinetuneConfig,
    seed: u64,
) -> Vec<Result<Evaluation>> {
    let outcomes = engine::parallel_map(candidates.len(), |i| {
        let (graph, weights) = &candidates[i];
        catch_unwind(AssertUnwindSafe(|| {
            let mut rng = Rng::new(seed ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let salt = seed.wrapping_add(i as u64);
            mode.evaluate(graph, weights, cfg, &mut rng, salt)
        }))
    });
    outcomes
        .into_iter()
        .enumerate()
        .map(|(i, outcome)| match outcome {
            Ok(result) => result,
            Err(payload) => Err(error::panic_failure(
                "parallel::evaluate_batch",
                format!(
                    "candidate {i} of {} panicked during evaluation: {}",
                    candidates.len(),
                    panic_message(payload.as_ref())
                ),
            )),
        })
        .collect()
}

/// All-or-nothing wrapper over [`try_evaluate_batch`].
///
/// When several candidates fail, the error aggregates *every* failing
/// index and message into one structured report (not first-wins), so a
/// multi-candidate failure is fully diagnosable from the single error.
pub fn evaluate_batch(
    candidates: &[(AbsGraph, WeightStore)],
    mode: &EvalMode,
    cfg: &FinetuneConfig,
    seed: u64,
) -> Result<Vec<Evaluation>> {
    let mut ok = Vec::with_capacity(candidates.len());
    let mut failures: Vec<(usize, TensorError)> = Vec::new();
    for (i, outcome) in try_evaluate_batch(candidates, mode, cfg, seed)
        .into_iter()
        .enumerate()
    {
        match outcome {
            Ok(eval) => ok.push(eval),
            Err(err) => failures.push((i, err)),
        }
    }
    match failures.len() {
        0 => Ok(ok),
        1 => Err(failures.remove(0).1),
        n => {
            let indices: Vec<String> =
                failures.iter().map(|(i, _)| i.to_string()).collect();
            let detail: Vec<String> =
                failures.iter().map(|(i, e)| format!("[{i}] {e}")).collect();
            // The aggregate keeps the first failure's classification; every
            // individual classification is preserved in the detail list.
            let kind = error::classify(&failures[0].1);
            Err(TensorError::Failed {
                kind,
                op: "parallel::evaluate_batch",
                msg: format!(
                    "{n} of {} candidates failed (indices {}): {}",
                    candidates.len(),
                    indices.join(", "),
                    detail.join("; ")
                ),
            })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SurrogateContext;
    use gmorph_data::TaskSpec;
    use gmorph_graph::parser::parse_specs;
    use gmorph_graph::{mutation, pairs, CapacityVector};
    use gmorph_models::families::{vgg, VggDepth, VisionScale};
    use gmorph_perf::accuracy::SurrogateParams;

    fn test_mode_and_candidates() -> (Vec<(AbsGraph, WeightStore)>, EvalMode) {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        let g = parse_specs(&[
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t1).unwrap(),
        ])
        .unwrap();
        let prs = pairs::shareable_pairs(&g).unwrap();
        let candidates: Vec<(AbsGraph, WeightStore)> = prs
            .iter()
            .take(4)
            .map(|&p| {
                let (m, _) = mutation::mutation_pass(&g, &[p]).unwrap();
                (m, WeightStore::new())
            })
            .collect();
        let mode = EvalMode::Surrogate(SurrogateContext {
            orig_capacity: CapacityVector::of(&g).unwrap(),
            params: SurrogateParams::default(),
            teacher_scores: vec![0.85, 0.80],
        });
        (candidates, mode)
    }

    #[test]
    fn batch_matches_sequential_and_preserves_order() {
        let (candidates, mode) = test_mode_and_candidates();
        let cfg = FinetuneConfig {
            max_epochs: 10,
            eval_every: 1,
            target_drop: 0.02,
            ..Default::default()
        };
        let parallel = evaluate_batch(&candidates, &mode, &cfg, 7).unwrap();
        // Sequential reference with the same per-index derivation.
        for (i, (graph, weights)) in candidates.iter().enumerate() {
            let mut rng = Rng::new(7 ^ (i as u64).wrapping_mul(0x9E37_79B9));
            let seq = mode
                .evaluate(graph, weights, &cfg, &mut rng, 7 + i as u64)
                .unwrap();
            assert_eq!(parallel[i].result.final_drop, seq.result.final_drop);
            assert_eq!(parallel[i].result.epochs_run, seq.result.epochs_run);
        }
    }

    #[test]
    fn batch_identical_across_thread_counts() {
        let (candidates, mode) = test_mode_and_candidates();
        let cfg = FinetuneConfig {
            max_epochs: 10,
            eval_every: 1,
            target_drop: 0.02,
            ..Default::default()
        };
        let run = || evaluate_batch(&candidates, &mode, &cfg, 42).unwrap();
        let single = engine::with_thread_limit(1, run);
        let multi = engine::with_thread_limit(4, run);
        assert_eq!(single.len(), multi.len());
        for (a, b) in single.iter().zip(multi.iter()) {
            assert_eq!(a.result.final_drop, b.result.final_drop);
            assert_eq!(a.result.epochs_run, b.result.epochs_run);
        }
    }

    #[test]
    fn multi_panic_error_names_every_failing_index() {
        let (candidates, mode) = test_mode_and_candidates();
        // Injected panic poisons every candidate in the batch: the
        // aggregate error must list all four indices, not just the first.
        let cfg = FinetuneConfig {
            max_epochs: 10,
            eval_every: 1,
            target_drop: 0.02,
            inject: Some(gmorph_tensor::FaultKind::PanicEval),
            ..Default::default()
        };
        let err = evaluate_batch(&candidates, &mode, &cfg, 7).unwrap_err();
        assert_eq!(error::classify(&err), gmorph_tensor::FailureKind::Panic);
        let msg = err.to_string();
        for i in 0..candidates.len() {
            assert!(msg.contains(&format!("[{i}]")), "index {i} missing: {msg}");
        }
        // Per-candidate outcomes carry one classified failure each.
        let outcomes = try_evaluate_batch(&candidates, &mode, &cfg, 7);
        assert_eq!(outcomes.len(), candidates.len());
        for o in outcomes {
            let e = o.unwrap_err();
            assert_eq!(error::classify(&e), gmorph_tensor::FailureKind::Panic);
        }
    }

    #[test]
    fn empty_batch_is_fine() {
        let mode = EvalMode::Surrogate(SurrogateContext {
            orig_capacity: CapacityVector {
                total: 1,
                per_task_total: vec![1],
                per_task_specific: vec![1],
                shared: 0,
            },
            params: SurrogateParams::default(),
            teacher_scores: vec![0.8],
        });
        let out = evaluate_batch(&[], &mode, &FinetuneConfig::default(), 0).unwrap();
        assert!(out.is_empty());
    }
}
