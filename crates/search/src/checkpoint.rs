//! Crash-safe checkpoint/resume for the search drivers.
//!
//! The search loop's full state — RNG stream, SA policy temperature state,
//! elite list and dedup set, capacity-rule failures, virtual clock, best
//! model, outcome counters, and the per-iteration trace — is snapshotted
//! into a [`gmorph_tensor::checkpoint`] envelope after every iteration and
//! written to disk every K iterations (and on drop/panic unwind) by the
//! [`CheckpointManager`]. Resuming from the newest valid snapshot replays
//! the remainder of the run *bit-exactly*: the resumed `SearchResult`
//! (everything except wall-clock seconds) and fused model bytes equal the
//! uninterrupted run's. Corrupt snapshots (truncation, bit flips, version
//! skew, leftover `.tmp` staging files) are skipped with a
//! `checkpoint.corrupt` telemetry event, falling back to the next-newest
//! valid snapshot or a clean start — never a panic.

use crate::driver::{BestModel, CandidateStatus, SearchConfig, TraceRecord};
use crate::history::Elite;
use gmorph_graph::persist::{decode_graph_exact, decode_model_bytes, encode_graph_exact, encode_model_bytes_exact};
use gmorph_graph::{AbsGraph, CapacityVector};
use gmorph_tensor::checkpoint::{
    fnv1a, is_corruption, load, snapshot_files, ByteReader, ByteWriter, Envelope, FNV_OFFSET,
};
use gmorph_tensor::rng::RngState;
use gmorph_tensor::{Result, TensorError};
use std::path::Path;

pub use gmorph_tensor::checkpoint::{
    load_latest, CheckpointManager, CheckpointOptions, CrashKind,
};

/// Payload kind of sequential-search snapshots.
pub const SEARCH_KIND: &str = "search";
/// Payload kind of batched-search snapshots.
pub const BATCHED_KIND: &str = "batched";
/// Schema version of both search snapshot payloads. v2 added quarantine
/// entries to the filter section and failed/quarantined outcome counters.
pub const SEARCH_SCHEMA: u32 = 2;

/// Fingerprints a search configuration plus its input graphs.
///
/// A snapshot resumes only under the exact config and inputs it was
/// written for; anything else would silently diverge from the
/// uninterrupted run the resume claims to continue.
pub fn config_fingerprint(cfg: &SearchConfig, mini: &AbsGraph, paper: &AbsGraph) -> u64 {
    let mut h = FNV_OFFSET;
    h = fnv1a(format!("{cfg:?}").as_bytes(), h);
    h = fnv1a(mini.signature().as_bytes(), h);
    h = fnv1a(paper.signature().as_bytes(), h);
    h
}

// ---------------------------------------------------------------------
// Field-level codecs
// ---------------------------------------------------------------------

fn put_rng(w: &mut ByteWriter, s: &RngState) {
    for k in s.key {
        w.put_u32(k);
    }
    w.put_u64(s.counter);
    for b in s.buf {
        w.put_u32(b);
    }
    w.put_u64(s.index as u64);
    match s.spare_normal {
        Some(z) => {
            w.put_u8(1);
            w.put_f32(z);
        }
        None => w.put_u8(0),
    }
}

fn get_rng(r: &mut ByteReader) -> Result<RngState> {
    let mut key = [0u32; 8];
    for k in &mut key {
        *k = r.get_u32()?;
    }
    let counter = r.get_u64()?;
    let mut buf = [0u32; 16];
    for b in &mut buf {
        *b = r.get_u32()?;
    }
    let index = r.get_len(16)?;
    let spare_normal = match r.get_u8()? {
        0 => None,
        _ => Some(r.get_f32()?),
    };
    Ok(RngState {
        key,
        counter,
        buf,
        index,
        spare_normal,
    })
}

fn put_capacity(w: &mut ByteWriter, cv: &CapacityVector) {
    w.put_u64(cv.total as u64);
    w.put_u32(cv.per_task_total.len() as u32);
    for &v in &cv.per_task_total {
        w.put_u64(v as u64);
    }
    w.put_u32(cv.per_task_specific.len() as u32);
    for &v in &cv.per_task_specific {
        w.put_u64(v as u64);
    }
    w.put_u64(cv.shared as u64);
}

fn get_capacity(r: &mut ByteReader) -> Result<CapacityVector> {
    let total = r.get_u64()? as usize;
    let n = r.get_u32()? as usize;
    let mut per_task_total = Vec::with_capacity(n.min(1024));
    for _ in 0..n {
        per_task_total.push(r.get_u64()? as usize);
    }
    let m = r.get_u32()? as usize;
    let mut per_task_specific = Vec::with_capacity(m.min(1024));
    for _ in 0..m {
        per_task_specific.push(r.get_u64()? as usize);
    }
    let shared = r.get_u64()? as usize;
    Ok(CapacityVector {
        total,
        per_task_total,
        per_task_specific,
        shared,
    })
}

fn put_scores(w: &mut ByteWriter, scores: &[f32]) {
    w.put_u32(scores.len() as u32);
    for &s in scores {
        w.put_f32(s);
    }
}

fn get_scores(r: &mut ByteReader) -> Result<Vec<f32>> {
    let n = r.get_u32()? as usize;
    let mut out = Vec::with_capacity(n.min(4096));
    for _ in 0..n {
        out.push(r.get_f32()?);
    }
    Ok(out)
}

fn put_elite(w: &mut ByteWriter, e: &Elite) -> Result<()> {
    w.put_bytes(&encode_model_bytes_exact(&e.mini, &e.weights)?);
    w.put_str(&encode_graph_exact(&e.paper));
    w.put_f32(e.drop);
    w.put_f64(e.latency_ms);
    put_scores(w, &e.scores);
    Ok(())
}

fn get_elite(r: &mut ByteReader) -> Result<Elite> {
    let (mini, weights) = decode_model_bytes(&r.get_bytes()?)?;
    let paper = decode_graph_exact(&r.get_str()?)?;
    let drop = r.get_f32()?;
    let latency_ms = r.get_f64()?;
    let scores = get_scores(r)?;
    Ok(Elite {
        mini,
        paper,
        weights,
        drop,
        latency_ms,
        scores,
    })
}

fn put_trace(w: &mut ByteWriter, trace: &[TraceRecord]) {
    w.put_u64(trace.len() as u64);
    for t in trace {
        w.put_u64(t.iter as u64);
        w.put_str(t.status.as_str());
        w.put_u8(t.from_elite as u8);
        w.put_f32(t.drop);
        w.put_u8(t.met_target as u8);
        w.put_f64(t.candidate_latency_ms);
        w.put_f64(t.best_latency_ms);
        w.put_u64(t.epochs as u64);
        w.put_f64(t.virtual_hours);
        w.put_f64(t.wall_seconds);
    }
}

fn get_trace(r: &mut ByteReader) -> Result<Vec<TraceRecord>> {
    let n = r.get_len(1 << 24)?;
    let mut out = Vec::with_capacity(n.min(1 << 16));
    for _ in 0..n {
        let iter = r.get_u64()? as usize;
        let status_str = r.get_str()?;
        let status = CandidateStatus::parse(&status_str).ok_or_else(|| {
            TensorError::Io(format!("checkpoint corrupt: unknown status {status_str:?}"))
        })?;
        out.push(TraceRecord {
            iter,
            status,
            from_elite: r.get_u8()? != 0,
            drop: r.get_f32()?,
            met_target: r.get_u8()? != 0,
            candidate_latency_ms: r.get_f64()?,
            best_latency_ms: r.get_f64()?,
            epochs: r.get_u64()? as usize,
            virtual_hours: r.get_f64()?,
            wall_seconds: r.get_f64()?,
        });
    }
    Ok(out)
}

// ---------------------------------------------------------------------
// Snapshots
// ---------------------------------------------------------------------

/// Shared per-loop state both drivers checkpoint: everything the next
/// iteration's decisions depend on.
#[derive(Debug, Clone)]
pub struct LoopState {
    /// Config + input-graph fingerprint the snapshot is valid for.
    pub fingerprint: u64,
    /// First iteration (or round) the resumed run should execute.
    pub next_iter: usize,
    /// RNG stream position.
    pub rng: RngState,
    /// SA policy's last observed drop `Δ`.
    pub last_drop: f32,
    /// Virtual clock's accumulated seconds.
    pub clock_seconds: f64,
    /// Wall-clock seconds spent before this snapshot (resume adds its own
    /// elapsed time on top; never part of bit-identity comparisons).
    pub wall_offset: f64,
    /// Capacity-rule failures, in insertion order.
    pub failures: Vec<CapacityVector>,
    /// Quarantined evaluation failures: (graph signature, capacity), in
    /// insertion order.
    pub quarantined: Vec<(String, CapacityVector)>,
    /// Evaluated-candidate signatures (sorted; membership-only set).
    pub evaluated: Vec<String>,
    /// Elite list, in insertion order (the policy indexes into it).
    pub elites: Vec<Elite>,
}

impl LoopState {
    fn encode_into(&self, env: &mut Envelope) -> Result<()> {
        let mut w = ByteWriter::new();
        w.put_u64(self.fingerprint);
        w.put_u64(self.next_iter as u64);
        w.put_f32(self.last_drop);
        w.put_f64(self.clock_seconds);
        w.put_f64(self.wall_offset);
        env.push("loop", w.into_bytes());

        let mut w = ByteWriter::new();
        put_rng(&mut w, &self.rng);
        env.push("rng", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_u32(self.failures.len() as u32);
        for f in &self.failures {
            put_capacity(&mut w, f);
        }
        w.put_u32(self.quarantined.len() as u32);
        for (sig, cv) in &self.quarantined {
            w.put_str(sig);
            put_capacity(&mut w, cv);
        }
        env.push("filter", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_u64(self.evaluated.len() as u64);
        for s in &self.evaluated {
            w.put_str(s);
        }
        w.put_u32(self.elites.len() as u32);
        for e in &self.elites {
            put_elite(&mut w, e)?;
        }
        env.push("history", w.into_bytes());
        Ok(())
    }

    fn decode_from(env: &Envelope) -> Result<LoopState> {
        let mut r = ByteReader::new(env.section("loop")?);
        let fingerprint = r.get_u64()?;
        let next_iter = r.get_u64()? as usize;
        let last_drop = r.get_f32()?;
        let clock_seconds = r.get_f64()?;
        let wall_offset = r.get_f64()?;

        let mut r = ByteReader::new(env.section("rng")?);
        let rng = get_rng(&mut r)?;

        let mut r = ByteReader::new(env.section("filter")?);
        let nf = r.get_u32()? as usize;
        let mut failures = Vec::with_capacity(nf.min(4096));
        for _ in 0..nf {
            failures.push(get_capacity(&mut r)?);
        }
        let nq = r.get_u32()? as usize;
        let mut quarantined = Vec::with_capacity(nq.min(4096));
        for _ in 0..nq {
            let sig = r.get_str()?;
            quarantined.push((sig, get_capacity(&mut r)?));
        }

        let mut r = ByteReader::new(env.section("history")?);
        let ns = r.get_len(1 << 24)?;
        let mut evaluated = Vec::with_capacity(ns.min(1 << 16));
        for _ in 0..ns {
            evaluated.push(r.get_str()?);
        }
        let ne = r.get_u32()? as usize;
        let mut elites = Vec::with_capacity(ne.min(1024));
        for _ in 0..ne {
            elites.push(get_elite(&mut r)?);
        }

        Ok(LoopState {
            fingerprint,
            next_iter,
            rng,
            last_drop,
            clock_seconds,
            wall_offset,
            failures,
            quarantined,
            evaluated,
            elites,
        })
    }
}

/// Complete snapshot of a sequential [`crate::driver::run_search`] run.
#[derive(Debug, Clone)]
pub struct SearchSnapshot {
    /// Shared loop state.
    pub state: LoopState,
    /// Best satisfying model so far.
    pub best: BestModel,
    /// Candidates fine-tuned so far.
    pub evaluated_count: usize,
    /// Candidates skipped by rule-based filtering so far.
    pub rule_filtered: usize,
    /// Candidates terminated early so far.
    pub early_terminated: usize,
    /// Duplicates skipped so far.
    pub duplicates: usize,
    /// Candidates that failed every permitted attempt so far.
    pub failed: usize,
    /// Candidates skipped by quarantine so far.
    pub quarantined_count: usize,
    /// Per-iteration trace so far.
    pub trace: Vec<TraceRecord>,
}

impl SearchSnapshot {
    /// Serializes the snapshot into an envelope.
    pub fn encode(&self) -> Result<Envelope> {
        let mut env = Envelope::new(SEARCH_KIND, SEARCH_SCHEMA);
        self.state.encode_into(&mut env)?;

        let mut w = ByteWriter::new();
        w.put_bytes(&encode_model_bytes_exact(&self.best.mini, &self.best.weights)?);
        w.put_str(&encode_graph_exact(&self.best.paper));
        w.put_f64(self.best.latency_ms);
        w.put_f32(self.best.drop);
        put_scores(&mut w, &self.best.scores);
        env.push("best", w.into_bytes());

        let mut w = ByteWriter::new();
        w.put_u64(self.evaluated_count as u64);
        w.put_u64(self.rule_filtered as u64);
        w.put_u64(self.early_terminated as u64);
        w.put_u64(self.duplicates as u64);
        w.put_u64(self.failed as u64);
        w.put_u64(self.quarantined_count as u64);
        env.push("counters", w.into_bytes());

        let mut w = ByteWriter::new();
        put_trace(&mut w, &self.trace);
        env.push("trace", w.into_bytes());
        Ok(env)
    }

    /// Restores a snapshot from an envelope, checking the schema version.
    pub fn decode(env: &Envelope) -> Result<SearchSnapshot> {
        if env.schema != SEARCH_SCHEMA {
            return Err(TensorError::Io(format!(
                "checkpoint corrupt: search schema v{} unsupported (expected v{SEARCH_SCHEMA})",
                env.schema
            )));
        }
        let state = LoopState::decode_from(env)?;

        let mut r = ByteReader::new(env.section("best")?);
        let (mini, weights) = decode_model_bytes(&r.get_bytes()?)?;
        let paper = decode_graph_exact(&r.get_str()?)?;
        let latency_ms = r.get_f64()?;
        let drop = r.get_f32()?;
        let scores = get_scores(&mut r)?;
        let best = BestModel {
            mini,
            paper,
            weights,
            latency_ms,
            drop,
            scores,
        };

        let mut r = ByteReader::new(env.section("counters")?);
        let evaluated_count = r.get_u64()? as usize;
        let rule_filtered = r.get_u64()? as usize;
        let early_terminated = r.get_u64()? as usize;
        let duplicates = r.get_u64()? as usize;
        let failed = r.get_u64()? as usize;
        let quarantined_count = r.get_u64()? as usize;

        let mut r = ByteReader::new(env.section("trace")?);
        let trace = get_trace(&mut r)?;

        Ok(SearchSnapshot {
            state,
            best,
            evaluated_count,
            rule_filtered,
            early_terminated,
            duplicates,
            failed,
            quarantined_count,
            trace,
        })
    }
}

/// Complete snapshot of a [`crate::batched::run_search_batched`] run.
#[derive(Debug, Clone)]
pub struct BatchedSnapshot {
    /// Shared loop state (`next_iter` counts *rounds* here).
    pub state: LoopState,
    /// Best satisfying mini-scale graph so far.
    pub best_mini: AbsGraph,
    /// Best satisfying paper-scale graph so far.
    pub best_paper: AbsGraph,
    /// Best satisfying latency so far (ms).
    pub best_latency: f64,
    /// Per-round diagnostics so far: (round, evaluated, skipped,
    /// best_latency_ms, virtual_hours).
    pub rounds: Vec<(usize, usize, usize, f64, f64)>,
}

impl BatchedSnapshot {
    /// Serializes the snapshot into an envelope.
    pub fn encode(&self) -> Result<Envelope> {
        let mut env = Envelope::new(BATCHED_KIND, SEARCH_SCHEMA);
        self.state.encode_into(&mut env)?;

        let mut w = ByteWriter::new();
        w.put_str(&encode_graph_exact(&self.best_mini));
        w.put_str(&encode_graph_exact(&self.best_paper));
        w.put_f64(self.best_latency);
        w.put_u32(self.rounds.len() as u32);
        for &(round, evaluated, skipped, lat, vh) in &self.rounds {
            w.put_u64(round as u64);
            w.put_u64(evaluated as u64);
            w.put_u64(skipped as u64);
            w.put_f64(lat);
            w.put_f64(vh);
        }
        env.push("best", w.into_bytes());
        Ok(env)
    }

    /// Restores a snapshot from an envelope, checking the schema version.
    pub fn decode(env: &Envelope) -> Result<BatchedSnapshot> {
        if env.schema != SEARCH_SCHEMA {
            return Err(TensorError::Io(format!(
                "checkpoint corrupt: batched schema v{} unsupported (expected v{SEARCH_SCHEMA})",
                env.schema
            )));
        }
        let state = LoopState::decode_from(env)?;
        let mut r = ByteReader::new(env.section("best")?);
        let best_mini = decode_graph_exact(&r.get_str()?)?;
        let best_paper = decode_graph_exact(&r.get_str()?)?;
        let best_latency = r.get_f64()?;
        let n = r.get_u32()? as usize;
        let mut rounds = Vec::with_capacity(n.min(1 << 16));
        for _ in 0..n {
            rounds.push((
                r.get_u64()? as usize,
                r.get_u64()? as usize,
                r.get_u64()? as usize,
                r.get_f64()?,
                r.get_f64()?,
            ));
        }
        Ok(BatchedSnapshot {
            state,
            best_mini,
            best_paper,
            best_latency,
            rounds,
        })
    }
}

// ---------------------------------------------------------------------
// Loading with corruption fallback
// ---------------------------------------------------------------------

/// Loads the newest valid [`SearchSnapshot`] whose fingerprint matches.
///
/// A snapshot of the right kind whose schema or fingerprint mismatches is
/// treated like corruption: logged, skipped, and the next-newest tried.
pub fn load_latest_search(dir: &Path, fingerprint: u64) -> Result<Option<SearchSnapshot>> {
    load_matching(dir, SEARCH_KIND, fingerprint, SearchSnapshot::decode)
}

/// Loads the newest valid [`BatchedSnapshot`] whose fingerprint matches.
pub fn load_latest_batched(dir: &Path, fingerprint: u64) -> Result<Option<BatchedSnapshot>> {
    load_matching(dir, BATCHED_KIND, fingerprint, BatchedSnapshot::decode)
}

fn load_matching<T>(
    dir: &Path,
    kind: &str,
    fingerprint: u64,
    decode: impl Fn(&Envelope) -> Result<T>,
) -> Result<Option<T>>
where
    T: HasFingerprint,
{
    for (iter, path) in snapshot_files(dir, kind) {
        let snap = load(&path, kind).and_then(|env| decode(&env));
        match snap {
            Ok(snap) if snap.fingerprint() == fingerprint => {
                gmorph_telemetry::counter!("checkpoint.load");
                gmorph_telemetry::point!(
                    "checkpoint.loaded",
                    iter = iter,
                    path = path.display().to_string().as_str()
                );
                return Ok(Some(snap));
            }
            Ok(snap) => {
                gmorph_telemetry::counter!("checkpoint.fingerprint_mismatch");
                gmorph_telemetry::point!(
                    "checkpoint.rejected",
                    iter = iter,
                    path = path.display().to_string().as_str(),
                    corruption = false,
                    error = format!(
                        "config fingerprint {:#018x} does not match this run's {fingerprint:#018x}",
                        snap.fingerprint()
                    )
                    .as_str()
                );
            }
            Err(err) => {
                gmorph_telemetry::counter!("checkpoint.corrupt");
                gmorph_telemetry::point!(
                    "checkpoint.rejected",
                    iter = iter,
                    path = path.display().to_string().as_str(),
                    corruption = is_corruption(&err),
                    error = err.to_string().as_str()
                );
            }
        }
    }
    Ok(None)
}

trait HasFingerprint {
    fn fingerprint(&self) -> u64;
}

impl HasFingerprint for SearchSnapshot {
    fn fingerprint(&self) -> u64 {
        self.state.fingerprint
    }
}

impl HasFingerprint for BatchedSnapshot {
    fn fingerprint(&self) -> u64 {
        self.state.fingerprint
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_graph::WeightStore;
    use gmorph_tensor::rng::Rng;
    use std::path::PathBuf;

    fn tmp_dir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("gmorph-ckpt-{tag}-{}", std::process::id()));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn sample_snapshot() -> SearchSnapshot {
        let task = gmorph_data::TaskSpec::classification("t", 2);
        let spec = gmorph_models::families::vgg(
            gmorph_models::families::VggDepth::Vgg11,
            gmorph_models::families::VisionScale::mini(),
            &task,
        )
        .unwrap();
        let g = gmorph_graph::parser::parse_specs(&[spec]).unwrap();
        let mut store = WeightStore::new();
        for (_, n) in g.iter() {
            store.insert(n.key(), n.spec.clone(), Vec::new());
        }
        let mut rng = Rng::new(7);
        rng.normal();
        SearchSnapshot {
            state: LoopState {
                fingerprint: 0xABCD,
                next_iter: 5,
                rng: rng.state(),
                last_drop: 0.013,
                clock_seconds: 123.456,
                wall_offset: 1.5,
                failures: vec![CapacityVector {
                    total: 10,
                    per_task_total: vec![6, 7],
                    per_task_specific: vec![4, 5],
                    shared: 2,
                }],
                quarantined: vec![(
                    "sig-q".to_string(),
                    CapacityVector {
                        total: 8,
                        per_task_total: vec![5, 6],
                        per_task_specific: vec![3, 4],
                        shared: 2,
                    },
                )],
                evaluated: vec!["a".to_string(), "b".to_string()],
                elites: vec![Elite {
                    mini: g.clone(),
                    paper: g.clone(),
                    weights: store.clone(),
                    drop: 0.01,
                    latency_ms: 3.5,
                    scores: vec![0.9],
                }],
            },
            best: BestModel {
                mini: g.clone(),
                paper: g,
                weights: store.clone(),
                latency_ms: 4.2,
                drop: 0.0,
                scores: vec![0.92],
            },
            evaluated_count: 3,
            rule_filtered: 1,
            early_terminated: 0,
            duplicates: 2,
            failed: 1,
            quarantined_count: 1,
            trace: vec![TraceRecord {
                iter: 1,
                status: CandidateStatus::Evaluated,
                from_elite: false,
                drop: 0.02,
                met_target: true,
                candidate_latency_ms: 5.0,
                best_latency_ms: 4.2,
                epochs: 6,
                virtual_hours: 0.25,
                wall_seconds: 0.5,
            }],
        }
    }

    #[test]
    fn search_snapshot_roundtrips() {
        let snap = sample_snapshot();
        let env = snap.encode().unwrap();
        let back = SearchSnapshot::decode(&env).unwrap();
        assert_eq!(back.state.fingerprint, snap.state.fingerprint);
        assert_eq!(back.state.next_iter, snap.state.next_iter);
        assert_eq!(back.state.rng, snap.state.rng);
        assert_eq!(back.state.last_drop.to_bits(), snap.state.last_drop.to_bits());
        assert_eq!(
            back.state.clock_seconds.to_bits(),
            snap.state.clock_seconds.to_bits()
        );
        assert_eq!(back.state.failures, snap.state.failures);
        assert_eq!(back.state.quarantined, snap.state.quarantined);
        assert_eq!(back.state.evaluated, snap.state.evaluated);
        assert_eq!(back.state.elites.len(), 1);
        assert_eq!(
            back.state.elites[0].mini.signature(),
            snap.state.elites[0].mini.signature()
        );
        assert_eq!(back.best.latency_ms.to_bits(), snap.best.latency_ms.to_bits());
        assert_eq!(back.duplicates, 2);
        assert_eq!(back.failed, 1);
        assert_eq!(back.quarantined_count, 1);
        assert_eq!(back.trace.len(), 1);
        assert_eq!(back.trace[0].status, CandidateStatus::Evaluated);
    }

    #[test]
    fn schema_skew_is_rejected() {
        let snap = sample_snapshot();
        let mut env = snap.encode().unwrap();
        env.schema = SEARCH_SCHEMA + 1;
        assert!(SearchSnapshot::decode(&env).is_err());
    }

    #[test]
    fn manager_writes_on_schedule_and_rotates() {
        let dir = tmp_dir("mgr");
        let mut opts = CheckpointOptions::new(&dir);
        opts.every = 2;
        opts.keep = 2;
        let mut mgr = CheckpointManager::new(&opts, SEARCH_KIND);
        for iter in 1..=6 {
            let mut snap = sample_snapshot();
            snap.state.next_iter = iter + 1;
            mgr.tick(iter, snap.encode().unwrap()).unwrap();
        }
        // Writes at 2, 4, 6; rotation keeps the newest 2.
        let found = snapshot_files(&dir, SEARCH_KIND);
        let iters: Vec<usize> = found.iter().map(|(i, _)| *i).collect();
        assert_eq!(iters, vec![6, 4]);
        let latest = load_latest_search(&dir, 0xABCD).unwrap().unwrap();
        assert_eq!(latest.state.next_iter, 7);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn drop_flushes_pending() {
        let dir = tmp_dir("dropflush");
        let mut opts = CheckpointOptions::new(&dir);
        opts.every = 100; // Never hits the schedule.
        {
            let mut mgr = CheckpointManager::new(&opts, SEARCH_KIND);
            mgr.tick(3, sample_snapshot().encode().unwrap()).unwrap();
        } // Drop writes iteration 3.
        assert_eq!(snapshot_files(&dir, SEARCH_KIND).len(), 1);
        assert!(load_latest_search(&dir, 0xABCD).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_newest_falls_back_to_older() {
        let dir = tmp_dir("fallback");
        let opts = CheckpointOptions::new(&dir);
        let mut mgr = CheckpointManager::new(&opts, SEARCH_KIND);
        let mut a = sample_snapshot();
        a.state.next_iter = 2;
        mgr.tick(1, a.encode().unwrap()).unwrap();
        let mut b = sample_snapshot();
        b.state.next_iter = 3;
        mgr.tick(2, b.encode().unwrap()).unwrap();
        // Corrupt the newest in place.
        let newest = dir.join(format!("{SEARCH_KIND}-000002.gmck"));
        let mut bytes = std::fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0xFF;
        std::fs::write(&newest, bytes).unwrap();
        let got = load_latest_search(&dir, 0xABCD).unwrap().unwrap();
        assert_eq!(got.state.next_iter, 2, "fell back to the older snapshot");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn fingerprint_mismatch_is_skipped() {
        let dir = tmp_dir("fpr");
        let opts = CheckpointOptions::new(&dir);
        let mut mgr = CheckpointManager::new(&opts, SEARCH_KIND);
        mgr.tick(1, sample_snapshot().encode().unwrap()).unwrap();
        assert!(load_latest_search(&dir, 0xDEAD).unwrap().is_none());
        assert!(load_latest_search(&dir, 0xABCD).unwrap().is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crash_env_parsing() {
        // No env poking from tests (parallel test runners share the
        // process env); exercise the parser via a direct call path by
        // checking maybe_crash is a no-op when unset.
        let opts = CheckpointOptions::new(std::env::temp_dir());
        opts.maybe_crash(5); // No crash configured: must return.
        let mut with = opts.clone();
        with.crash_after = Some((3, CrashKind::Panic));
        with.maybe_crash(2); // Wrong iteration: must return.
        let err = std::panic::catch_unwind(|| with.maybe_crash(3)).unwrap_err();
        let msg = err.downcast_ref::<String>().cloned().unwrap_or_default();
        assert!(msg.contains("simulated crash"), "{msg}");
    }
}
