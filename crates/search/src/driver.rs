//! Algorithm 1: the graph mutation optimization loop.
//!
//! Each iteration (1) samples a base abstract graph — the original
//! multi-DNN graph or an elite — under the sampling policy, (2) samples
//! input-shareable node pairs and applies a graph mutation pass, (3)
//! generates and evaluates the candidate (with predictive filtering), and
//! (4) updates the elites and the best model when the accuracy target is
//! met.
//!
//! The driver tracks every candidate at two scales simultaneously: the
//! *mini* graph (trainable) and the *paper* graph (analytic estimation),
//! replaying the same mutation operations on both. Node ids are aligned by
//! construction (both graphs are parsed from parallel spec lists and
//! mutated identically), which the driver asserts every iteration.

use crate::checkpoint::{
    config_fingerprint, load_latest_search, CheckpointManager, CheckpointOptions, LoopState,
    SearchSnapshot, SEARCH_KIND,
};
use crate::evaluator::EvalMode;
use crate::history::{Elite, History};
use crate::policy::{PolicyKind, SimulatedAnnealing};
use crate::supervisor::{self, FailureReport, SupervisorConfig};
use gmorph_graph::pairs::{pairs_with, PairPolicy};
use gmorph_graph::{mutation, AbsGraph, CapacityVector, NodeId, WeightStore};
use gmorph_perf::accuracy::FinetuneConfig;
use gmorph_perf::estimator::{estimate_latency_ms, Backend};
use gmorph_perf::filter::CapacityRuleFilter;
use gmorph_perf::VirtualClock;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, TensorError};
use std::time::Instant;

/// The metric the search minimizes (the paper's config item (1)).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Objective {
    /// Estimated paper-scale latency (ms, Eager backend).
    Latency,
    /// Total paper-scale FLOPs.
    Flops,
}

/// Search configuration (the paper's "configuration file", §3).
#[derive(Debug, Clone)]
pub struct SearchConfig {
    /// Total optimization rounds `N` (paper: 200).
    pub iterations: usize,
    /// Metric to optimize.
    pub objective: Objective,
    /// Sampling policy.
    pub policy: PolicyKind,
    /// Maximum mutation operations per pass.
    pub max_ops_per_pass: usize,
    /// Simulated-annealing cooling constant α (paper: 0.99).
    pub sa_alpha: f32,
    /// Pair-enumeration policy (similar shapes by default).
    pub pair_policy: PairPolicy,
    /// Enables rule-based filtering (the "+R" variants).
    pub rule_filter: bool,
    /// Fine-tuning configuration; `target_drop` is the accuracy threshold
    /// and `early_termination` enables the "+P" variant.
    pub finetune: FinetuneConfig,
    /// Virtual-clock sample count (paper-scale representative inputs).
    pub virtual_samples: u64,
    /// Virtual-clock effective training throughput in FLOP/s (the paper's
    /// RTX-8000 assumption by default).
    pub virtual_throughput: f64,
    /// RNG seed.
    pub seed: u64,
    /// Candidate-evaluation supervision: deadlines, retry/backoff, fault
    /// injection (see [`crate::supervisor`]). The default is inert for
    /// healthy candidates, so clean runs stay bit-identical.
    pub supervisor: SupervisorConfig,
}

impl Default for SearchConfig {
    fn default() -> Self {
        SearchConfig {
            iterations: 24,
            objective: Objective::Latency,
            policy: PolicyKind::SimulatedAnnealing,
            sa_alpha: 0.99,
            max_ops_per_pass: 2,
            pair_policy: PairPolicy::SimilarShape,
            rule_filter: false,
            finetune: FinetuneConfig::default(),
            virtual_samples: 20_000,
            virtual_throughput: gmorph_perf::clock::DEFAULT_THROUGHPUT,
            seed: 0,
            supervisor: SupervisorConfig::default(),
        }
    }
}

/// What happened to one candidate during the search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateStatus {
    /// Evaluated by fine-tuning (real or surrogate).
    Evaluated,
    /// Skipped: identical architecture already evaluated.
    Duplicate,
    /// Skipped by rule-based filtering before fine-tuning.
    RuleFiltered,
    /// Fine-tuning cut short by predictive early termination.
    TerminatedEarly,
    /// No legal mutation was found this round.
    NoMutation,
    /// Evaluation failed every permitted attempt (classified, rejected).
    Failed,
    /// Skipped before evaluation: matched a quarantined failure.
    Quarantined,
}

impl CandidateStatus {
    /// Stable wire name used in telemetry events and persisted traces.
    pub fn as_str(&self) -> &'static str {
        match self {
            CandidateStatus::Evaluated => "evaluated",
            CandidateStatus::Duplicate => "duplicate",
            CandidateStatus::RuleFiltered => "rule_filtered",
            CandidateStatus::TerminatedEarly => "terminated_early",
            CandidateStatus::NoMutation => "no_mutation",
            CandidateStatus::Failed => "failed",
            CandidateStatus::Quarantined => "quarantined",
        }
    }

    /// Parses a wire name written by [`CandidateStatus::as_str`].
    pub fn parse(s: &str) -> Option<CandidateStatus> {
        Some(match s {
            "evaluated" => CandidateStatus::Evaluated,
            "duplicate" => CandidateStatus::Duplicate,
            "rule_filtered" => CandidateStatus::RuleFiltered,
            "terminated_early" => CandidateStatus::TerminatedEarly,
            "no_mutation" => CandidateStatus::NoMutation,
            "failed" => CandidateStatus::Failed,
            "quarantined" => CandidateStatus::Quarantined,
            _ => return None,
        })
    }
}

/// Per-iteration trace record (drives Figure 8's curves).
#[derive(Debug, Clone)]
pub struct TraceRecord {
    /// Iteration number (1-based).
    pub iter: usize,
    /// Candidate status.
    pub status: CandidateStatus,
    /// Whether the base graph was an elite (exploitation) rather than the
    /// original multi-DNN graph.
    pub from_elite: bool,
    /// Accuracy drop after fine-tuning (`NaN` when not evaluated).
    pub drop: f32,
    /// Whether the accuracy target was met.
    pub met_target: bool,
    /// Estimated paper-scale latency of the candidate (ms).
    pub candidate_latency_ms: f64,
    /// Best satisfying latency found so far (ms).
    pub best_latency_ms: f64,
    /// Fine-tuning epochs spent.
    pub epochs: usize,
    /// Virtual search time so far (hours).
    pub virtual_hours: f64,
    /// Wall-clock time so far (seconds).
    pub wall_seconds: f64,
}

/// The best model found by a search.
#[derive(Debug, Clone)]
pub struct BestModel {
    /// Mini-scale abstract graph.
    pub mini: AbsGraph,
    /// Paper-scale abstract graph.
    pub paper: AbsGraph,
    /// Trained weights (real mode) or inheritance markers (surrogate).
    pub weights: WeightStore,
    /// Estimated paper-scale latency (ms, Eager backend).
    pub latency_ms: f64,
    /// Accuracy drop.
    pub drop: f32,
    /// Per-task scores.
    pub scores: Vec<f32>,
}

/// Outcome of a full search run.
#[derive(Debug, Clone)]
pub struct SearchResult {
    /// Best satisfying model (the original when nothing beat it).
    pub best: BestModel,
    /// Latency of the original multi-DNN graph (ms, Eager backend).
    pub original_latency_ms: f64,
    /// Speedup of `best` over the original.
    pub speedup: f64,
    /// Per-iteration trace.
    pub trace: Vec<TraceRecord>,
    /// Total virtual search time (hours).
    pub virtual_hours: f64,
    /// Total wall-clock time (seconds).
    pub wall_seconds: f64,
    /// Candidates fine-tuned.
    pub evaluated: usize,
    /// Candidates skipped by rule-based filtering.
    pub rule_filtered: usize,
    /// Candidates whose fine-tuning was terminated early.
    pub early_terminated: usize,
    /// Duplicate candidates skipped.
    pub duplicates: usize,
    /// Candidates that failed every permitted evaluation attempt.
    pub failed: usize,
    /// Candidates skipped because they matched a quarantined failure.
    pub quarantined: usize,
}

struct Base<'a> {
    mini: &'a AbsGraph,
    paper: &'a AbsGraph,
    weights: &'a WeightStore,
}

/// Runs Algorithm 1.
///
/// `mini` and `paper` are the abstract graphs of the input multi-DNNs at
/// the two scales (node-id aligned); `teacher_weights` hold the
/// well-trained single-task weights; `mode` selects real or surrogate
/// accuracy evaluation.
pub fn run_search(
    mini: &AbsGraph,
    paper: &AbsGraph,
    teacher_weights: &WeightStore,
    mode: &EvalMode,
    cfg: &SearchConfig,
) -> Result<SearchResult> {
    run_search_checkpointed(mini, paper, teacher_weights, mode, cfg, None)
}

/// Runs Algorithm 1 with optional crash-safe checkpointing.
///
/// With `ckpt = Some(opts)` the loop snapshots its complete state after
/// every iteration (written to disk every `opts.every` iterations and on
/// drop/panic), and — when `opts.resume` is set — restores the newest
/// valid snapshot whose config fingerprint matches before iterating.
/// A resumed run replays the remaining iterations bit-exactly: every
/// field of the final [`SearchResult`] except wall-clock seconds equals
/// the uninterrupted run's.
pub fn run_search_checkpointed(
    mini: &AbsGraph,
    paper: &AbsGraph,
    teacher_weights: &WeightStore,
    mode: &EvalMode,
    cfg: &SearchConfig,
    ckpt: Option<&CheckpointOptions>,
) -> Result<SearchResult> {
    if mini.len() != paper.len() {
        return Err(TensorError::InvalidArgument {
            op: "run_search",
            msg: format!(
                "mini graph has {} nodes, paper graph {} — scales out of sync",
                mini.len(),
                paper.len()
            ),
        });
    }
    let wall_start = Instant::now();
    let mut rng = Rng::new(cfg.seed ^ 0x5EA_4C4);
    let mut policy = SimulatedAnnealing::new();
    policy.alpha = cfg.sa_alpha;
    let mut history = History::new(policy.max_elites);
    let mut rule_filter = CapacityRuleFilter::new();
    let mut clock = VirtualClock::with_throughput(cfg.virtual_samples, cfg.virtual_throughput);
    let mut trace: Vec<TraceRecord> = Vec::with_capacity(cfg.iterations);

    let original_latency_ms = estimate_latency_ms(paper, Backend::Eager)?;
    let _run_span = gmorph_telemetry::span!(
        "search.run",
        iterations = cfg.iterations,
        seed = cfg.seed,
        objective = match cfg.objective {
            Objective::Latency => "latency",
            Objective::Flops => "flops",
        }
    );
    gmorph_telemetry::meta!(
        "search.run_meta",
        iterations = cfg.iterations,
        seed = cfg.seed,
        rule_filter = cfg.rule_filter,
        early_termination = cfg.finetune.early_termination,
        sa_alpha = cfg.sa_alpha,
        virtual_samples = cfg.virtual_samples,
        virtual_throughput = clock.throughput(),
        original_latency_ms = original_latency_ms,
        nodes = mini.len()
    );
    let teacher_scores = mode.teacher_scores().to_vec();
    let mut best = BestModel {
        mini: mini.clone(),
        paper: paper.clone(),
        weights: teacher_weights.clone(),
        latency_ms: original_latency_ms,
        drop: 0.0,
        scores: teacher_scores.clone(),
    };
    let mut evaluated = 0usize;
    let mut rule_filtered = 0usize;
    let mut early_terminated = 0usize;
    let mut duplicates = 0usize;
    let mut failed = 0usize;
    let mut quarantined = 0usize;

    // Resume: restore the newest valid snapshot whose fingerprint matches
    // this exact config + input graphs, then continue from its iteration.
    let fingerprint = config_fingerprint(cfg, mini, paper);
    let mut start_iter = 1usize;
    let mut wall_offset = 0.0f64;
    if let Some(opts) = ckpt {
        if opts.resume {
            if let Some(snap) = load_latest_search(&opts.dir, fingerprint)? {
                rng = Rng::restore(&snap.state.rng);
                policy.restore_last_drop(snap.state.last_drop);
                history =
                    History::from_parts(snap.state.evaluated, snap.state.elites, policy.max_elites);
                rule_filter = CapacityRuleFilter::from_parts(
                    snap.state.failures,
                    snap.state.quarantined,
                );
                clock.restore_seconds(snap.state.clock_seconds);
                best = snap.best;
                evaluated = snap.evaluated_count;
                rule_filtered = snap.rule_filtered;
                early_terminated = snap.early_terminated;
                duplicates = snap.duplicates;
                failed = snap.failed;
                quarantined = snap.quarantined_count;
                trace = snap.trace;
                start_iter = snap.state.next_iter;
                wall_offset = snap.state.wall_offset;
                gmorph_telemetry::point!(
                    "search.resumed",
                    next_iter = start_iter,
                    evaluated = evaluated,
                    elites = history.elite_count(),
                    virtual_hours = clock.hours()
                );
            }
        }
    }
    let mut manager = ckpt.map(|opts| CheckpointManager::new(opts, SEARCH_KIND));

    for iter in start_iter..=cfg.iterations {
        // The labeled block gives every early-exit path (no mutation,
        // duplicate, rule-filtered) a single common continuation: the
        // per-iteration checkpoint tick below.
        'body: {
        // Step 1: sample the base graph (original or elite).
        let use_elite = match cfg.policy {
            PolicyKind::SimulatedAnnealing => {
                policy.sample_from_elites(iter, history.elite_count(), &mut rng)
            }
            PolicyKind::RandomSampling => false,
        };
        let elite_pick = if use_elite && history.elite_count() > 0 {
            Some(rng.below(history.elite_count()))
        } else {
            None
        };
        // Clone the elite out so `history` stays mutably borrowable below;
        // elite graphs are small (tens of nodes) and surrogate weight
        // stores hold empty tensors, so this is cheap.
        let elite_base = elite_pick.map(|i| {
            let e = &history.elites()[i];
            (e.mini.clone(), e.paper.clone(), e.weights.clone())
        });
        let base = match &elite_base {
            Some((m, p, w)) => Base {
                mini: m,
                paper: p,
                weights: w,
            },
            None => Base {
                mini,
                paper,
                weights: teacher_weights,
            },
        };

        // Step 2: sample pairs and run the mutation pass on both scales.
        let candidate = propose_candidate(
            base.mini,
            base.paper,
            cfg.pair_policy,
            cfg.max_ops_per_pass,
            &mut rng,
        )?;
        let temperature = policy.temperature(iter);
        let (cand_mini, cand_paper) = match candidate {
            Some(c) => c,
            None => {
                trace.push(record(
                    iter,
                    CandidateStatus::NoMutation,
                    elite_pick.is_some(),
                    f32::NAN,
                    false,
                    f64::NAN,
                    &best,
                    0,
                    &clock,
                    wall_start,
                    wall_offset,
                ));
                gmorph_telemetry::counter!("search.no_mutation");
                emit_iter(trace.last().unwrap(), temperature, "no_mutation", -1, -1);
                break 'body;
            }
        };
        let cand_nodes = cand_mini.len() as i64;
        let cand_rescales = cand_mini
            .iter()
            .filter(|(_, n)| matches!(n.spec, gmorph_nn::BlockSpec::Rescale { .. }))
            .count() as i64;
        // Deduplicate by structural signature *before* any evaluation
        // work: a previously seen candidate skips even the latency
        // estimate, not just the fine-tuning.
        let signature = cand_mini.signature();
        if history.seen(&signature) {
            duplicates += 1;
            clock.charge_overhead(1.0);
            trace.push(record(
                iter,
                CandidateStatus::Duplicate,
                elite_pick.is_some(),
                f32::NAN,
                false,
                f64::NAN,
                &best,
                0,
                &clock,
                wall_start,
                wall_offset,
            ));
            gmorph_telemetry::counter!("search.duplicates");
            gmorph_telemetry::counter!("search.dedup_hit");
            emit_iter(
                trace.last().unwrap(),
                temperature,
                "duplicate",
                cand_nodes,
                cand_rescales,
            );
            break 'body;
        }
        history.record_evaluated(signature.clone());

        let cand_latency = estimate_latency_ms(&cand_paper, Backend::Eager)?;
        let cand_objective = match cfg.objective {
            Objective::Latency => cand_latency,
            Objective::Flops => cand_paper.flops()? as f64,
        };

        // Quarantine check: always on (independent of `rule_filter`),
        // because quarantine entries record *evaluation failures* — a
        // candidate matching one would fail the same way again. The §5.1
        // dominance rule applies: an equal or more aggressive merge of a
        // quarantined capacity is skipped too.
        let capacity = CapacityVector::of(&cand_mini)?;
        if let Some(verdict) = rule_filter.quarantine_verdict(&signature, &capacity) {
            quarantined += 1;
            clock.charge_overhead(2.0);
            trace.push(record(
                iter,
                CandidateStatus::Quarantined,
                elite_pick.is_some(),
                f32::NAN,
                false,
                cand_latency,
                &best,
                0,
                &clock,
                wall_start,
                wall_offset,
            ));
            gmorph_telemetry::counter!("search.quarantine_skipped");
            gmorph_telemetry::counter!("filter.rule.quarantined");
            emit_iter(
                trace.last().unwrap(),
                temperature,
                verdict.as_str(),
                cand_nodes,
                cand_rescales,
            );
            break 'body;
        }

        // Rule-based filtering (§5.1) before any fine-tuning.
        let filter_verdict = if cfg.rule_filter {
            rule_filter.verdict(&capacity)
        } else {
            None
        };
        if let Some(verdict) = filter_verdict {
            rule_filtered += 1;
            clock.charge_overhead(2.0);
            trace.push(record(
                iter,
                CandidateStatus::RuleFiltered,
                elite_pick.is_some(),
                f32::NAN,
                false,
                cand_latency,
                &best,
                0,
                &clock,
                wall_start,
                wall_offset,
            ));
            gmorph_telemetry::counter!("search.rule_filtered");
            if gmorph_telemetry::enabled() {
                gmorph_telemetry::counter!(&format!("filter.rule.{}", verdict.as_str()));
            }
            emit_iter(
                trace.last().unwrap(),
                temperature,
                verdict.as_str(),
                cand_nodes,
                cand_rescales,
            );
            break 'body;
        }

        // Step 3: evaluate (fine-tune) the candidate, supervised. A
        // failing candidate is retried (transient kinds only), then
        // classified, quarantined, and scored as a rejected SA step —
        // never an aborted run.
        let noise_salt = cfg.seed.wrapping_mul(1_000_003) ^ iter as u64;
        let clock_before = clock.seconds();
        let outcome = supervisor::evaluate_supervised(
            mode,
            &cand_mini,
            base.weights,
            &cfg.finetune,
            &cfg.supervisor,
            cfg.seed,
            iter,
            &mut rng,
            noise_salt,
        );
        // Charge the virtual clock, then apply the deterministic
        // virtual-clock deadline: a candidate whose fine-tuning cost blew
        // the per-candidate budget is a timeout even if it converged.
        let outcome = match outcome {
            Ok(evaluation) => {
                let paper_flops = cand_paper.flops()?;
                clock.charge_finetune(paper_flops, evaluation.result.epochs_run);
                clock.charge_eval(paper_flops * evaluation.result.records.len().max(1) as u64);
                let spent_hours = (clock.seconds() - clock_before) / 3600.0;
                match cfg.supervisor.virtual_deadline_hours {
                    Some(limit) if spent_hours > limit => Err(FailureReport {
                        kind: gmorph_tensor::FailureKind::Timeout,
                        attempts: 1,
                        message: format!(
                            "virtual cost {spent_hours:.3}h exceeds the \
                             {limit:.3}h per-candidate budget"
                        ),
                    }),
                    _ => Ok(evaluation),
                }
            }
            Err(report) => {
                // Failed attempts still consumed search time.
                clock.charge_overhead(2.0 * report.attempts as f64);
                Err(report)
            }
        };
        let evaluation = match outcome {
            Ok(evaluation) => evaluation,
            Err(report) => {
                failed += 1;
                rule_filter.record_quarantine(signature.clone(), capacity.clone());
                // A failed candidate reads as maximally bad to the SA
                // policy: elites stay preferable and the temperature
                // schedule sees a rejection, not a hole.
                policy.observe_drop(1.0);
                gmorph_telemetry::counter!("search.failed");
                gmorph_telemetry::counter!("eval.quarantine");
                gmorph_telemetry::point!(
                    "eval.quarantine",
                    iter = iter,
                    kind = report.kind.as_str(),
                    attempts = report.attempts,
                    signature = signature.as_str(),
                    error = report.message.as_str()
                );
                trace.push(record(
                    iter,
                    CandidateStatus::Failed,
                    elite_pick.is_some(),
                    f32::NAN,
                    false,
                    cand_latency,
                    &best,
                    0,
                    &clock,
                    wall_start,
                    wall_offset,
                ));
                emit_iter(
                    trace.last().unwrap(),
                    temperature,
                    report.kind.as_str(),
                    cand_nodes,
                    cand_rescales,
                );
                break 'body;
            }
        };
        evaluated += 1;
        policy.observe_drop(evaluation.result.final_drop.max(0.0));
        if evaluation.result.terminated_early {
            early_terminated += 1;
        }

        // Step 4: elites and best model.
        let met = evaluation.result.met_target;
        let mut reason = "rejected_drop";
        if met {
            let best_objective = match cfg.objective {
                Objective::Latency => best.latency_ms,
                Objective::Flops => best.paper.flops()? as f64,
            };
            if cand_objective < best_objective {
                best = BestModel {
                    mini: cand_mini.clone(),
                    paper: cand_paper.clone(),
                    weights: evaluation.weights.clone(),
                    latency_ms: cand_latency,
                    drop: evaluation.result.final_drop,
                    scores: evaluation.result.final_scores.clone(),
                };
                reason = "accepted_best";
                gmorph_telemetry::counter!("search.best_improved");
            } else {
                reason = "accepted_elite";
            }
            history.add_elite(Elite {
                mini: cand_mini,
                paper: cand_paper,
                weights: evaluation.weights,
                drop: evaluation.result.final_drop,
                latency_ms: cand_latency,
                scores: evaluation.result.final_scores.clone(),
            });
            gmorph_telemetry::counter!("search.accepted");
        } else {
            if cfg.rule_filter {
                rule_filter.record_failure(capacity);
            }
            gmorph_telemetry::counter!("search.rejected");
        }
        let status = if evaluation.result.terminated_early {
            CandidateStatus::TerminatedEarly
        } else {
            CandidateStatus::Evaluated
        };
        gmorph_telemetry::counter!("search.evaluated");
        if evaluation.result.terminated_early {
            gmorph_telemetry::counter!("search.early_terminated");
        }
        trace.push(record(
            iter,
            status,
            elite_pick.is_some(),
            evaluation.result.final_drop,
            met,
            cand_latency,
            &best,
            evaluation.result.epochs_run,
            &clock,
            wall_start,
            wall_offset,
        ));
        emit_iter(
            trace.last().unwrap(),
            temperature,
            reason,
            cand_nodes,
            cand_rescales,
        );
        } // 'body

        // Snapshot the completed iteration; the manager decides whether
        // this one hits the disk now or stays pending (flushed on drop).
        if let Some(mgr) = manager.as_mut() {
            let snapshot = SearchSnapshot {
                state: LoopState {
                    fingerprint,
                    next_iter: iter + 1,
                    rng: rng.state(),
                    last_drop: policy.last_drop(),
                    clock_seconds: clock.seconds(),
                    wall_offset: wall_offset + wall_start.elapsed().as_secs_f64(),
                    failures: rule_filter.failures().to_vec(),
                    quarantined: rule_filter.quarantined().to_vec(),
                    evaluated: history
                        .evaluated_signatures()
                        .into_iter()
                        .map(str::to_string)
                        .collect(),
                    elites: history.elites().to_vec(),
                },
                best: best.clone(),
                evaluated_count: evaluated,
                rule_filtered,
                early_terminated,
                duplicates,
                failed,
                quarantined_count: quarantined,
                trace: trace.clone(),
            };
            mgr.tick(iter, snapshot.encode()?)?;
        }
        if let Some(opts) = ckpt {
            opts.maybe_crash(iter);
        }
    }

    let wall_seconds = wall_offset + wall_start.elapsed().as_secs_f64();
    gmorph_telemetry::point!(
        "search.done",
        iterations = cfg.iterations,
        evaluated = evaluated,
        rule_filtered = rule_filtered,
        early_terminated = early_terminated,
        duplicates = duplicates,
        failed = failed,
        quarantined = quarantined,
        best_latency_ms = best.latency_ms,
        original_latency_ms = original_latency_ms,
        speedup = original_latency_ms / best.latency_ms,
        virtual_hours = clock.hours(),
        wall_seconds = wall_seconds
    );
    Ok(SearchResult {
        speedup: original_latency_ms / best.latency_ms,
        best,
        original_latency_ms,
        trace,
        virtual_hours: clock.hours(),
        wall_seconds,
        evaluated,
        rule_filtered,
        early_terminated,
        duplicates,
        failed,
        quarantined,
    })
}

/// Samples a mutation pass and replays it at both scales.
///
/// Public so the experiment harness can draw candidates exactly the way
/// the search does (Figure 1/2/3 sample candidates outside a search run).
pub fn propose_candidate(
    base_mini: &AbsGraph,
    base_paper: &AbsGraph,
    pair_policy: PairPolicy,
    max_ops_per_pass: usize,
    rng: &mut Rng,
) -> Result<Option<(AbsGraph, AbsGraph)>> {
    let pairs = pairs_with(base_mini, pair_policy)?;
    if pairs.is_empty() {
        return Ok(None);
    }
    for _ in 0..8 {
        let k = 1 + rng.below(max_ops_per_pass.max(1));
        let chosen: Vec<(NodeId, NodeId)> =
            (0..k).map(|_| pairs[rng.below(pairs.len())]).collect();
        let (cand_mini, ops_mini) = mutation::mutation_pass(base_mini, &chosen)?;
        if ops_mini.is_empty() {
            continue;
        }
        let (cand_paper, ops_paper) = mutation::mutation_pass(base_paper, &chosen)?;
        // Scales must replay identically; node ids are aligned by
        // construction, so a divergence is a bug worth failing loudly on.
        if ops_mini.len() != ops_paper.len()
            || ops_mini
                .iter()
                .zip(ops_paper.iter())
                .any(|(a, b)| a.host != b.host || a.guest != b.guest)
        {
            return Err(TensorError::InvalidArgument {
                op: "run_search::propose",
                msg: "mini/paper mutation replay diverged".to_string(),
            });
        }
        return Ok(Some((cand_mini, cand_paper)));
    }
    Ok(None)
}

/// Emits the per-iteration `search.iter` telemetry event mirroring the
/// trace record just pushed. `reason` explains the outcome
/// (`accepted_best`, `accepted_elite`, `rejected_drop`, `duplicate`,
/// `exact`/`more_aggressive` for filter verdicts, `no_mutation`);
/// `cand_nodes`/`rescales` characterize the mutated graph (-1 when no
/// candidate was produced).
fn emit_iter(rec: &TraceRecord, temperature: f32, reason: &str, cand_nodes: i64, rescales: i64) {
    gmorph_telemetry::counter!("search.iterations");
    gmorph_telemetry::point!(
        "search.iter",
        iter = rec.iter,
        status = rec.status.as_str(),
        reason = reason,
        from_elite = rec.from_elite,
        drop = rec.drop,
        met_target = rec.met_target,
        candidate_latency_ms = rec.candidate_latency_ms,
        best_latency_ms = rec.best_latency_ms,
        epochs = rec.epochs,
        virtual_hours = rec.virtual_hours,
        temperature = temperature,
        cand_nodes = cand_nodes,
        rescales = rescales
    );
}

#[allow(clippy::too_many_arguments)]
fn record(
    iter: usize,
    status: CandidateStatus,
    from_elite: bool,
    drop: f32,
    met: bool,
    cand_latency: f64,
    best: &BestModel,
    epochs: usize,
    clock: &VirtualClock,
    wall_start: Instant,
    wall_offset: f64,
) -> TraceRecord {
    TraceRecord {
        iter,
        status,
        from_elite,
        drop,
        met_target: met,
        candidate_latency_ms: cand_latency,
        best_latency_ms: best.latency_ms,
        epochs,
        virtual_hours: clock.hours(),
        wall_seconds: wall_offset + wall_start.elapsed().as_secs_f64(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::SurrogateContext;
    use gmorph_data::TaskSpec;
    use gmorph_graph::parser::parse_specs;
    use gmorph_perf::accuracy::SurrogateParams;
    use gmorph_models::families::{vgg, VggDepth, VisionScale};

    fn setup() -> (AbsGraph, AbsGraph, WeightStore, EvalMode) {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        let mini = parse_specs(&[
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1).unwrap(),
        ])
        .unwrap();
        let paper = parse_specs(&[
            vgg(VggDepth::Vgg13, VisionScale::paper(), &t0).unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::paper(), &t1).unwrap(),
        ])
        .unwrap();
        let mut weights = WeightStore::new();
        for (_, n) in mini.iter() {
            weights.insert(n.key(), n.spec.clone(), Vec::new());
        }
        let mode = EvalMode::Surrogate(SurrogateContext {
            orig_capacity: CapacityVector::of(&mini).unwrap(),
            params: SurrogateParams::default(),
            teacher_scores: vec![0.85, 0.80],
        });
        (mini, paper, weights, mode)
    }

    fn quick_cfg(iterations: usize) -> SearchConfig {
        SearchConfig {
            iterations,
            finetune: FinetuneConfig {
                max_epochs: 20,
                eval_every: 2,
                target_drop: 0.02,
                ..Default::default()
            },
            ..Default::default()
        }
    }

    #[test]
    fn search_finds_a_faster_satisfying_model() {
        let (mini, paper, weights, mode) = setup();
        let res = run_search(&mini, &paper, &weights, &mode, &quick_cfg(40)).unwrap();
        assert!(res.speedup > 1.05, "speedup = {}", res.speedup);
        assert!(res.best.drop <= 0.02 + 1e-6);
        assert!(res.evaluated > 0);
        assert_eq!(res.trace.len(), 40);
        res.best.mini.validate().unwrap();
        res.best.paper.validate().unwrap();
    }

    #[test]
    fn best_latency_is_monotone_along_trace() {
        let (mini, paper, weights, mode) = setup();
        let res = run_search(&mini, &paper, &weights, &mode, &quick_cfg(30)).unwrap();
        for w in res.trace.windows(2) {
            assert!(w[1].best_latency_ms <= w[0].best_latency_ms + 1e-9);
        }
        // Virtual time is monotone too.
        for w in res.trace.windows(2) {
            assert!(w[1].virtual_hours >= w[0].virtual_hours);
        }
    }

    #[test]
    fn search_is_deterministic_per_seed() {
        let (mini, paper, weights, mode) = setup();
        let a = run_search(&mini, &paper, &weights, &mode, &quick_cfg(15)).unwrap();
        let b = run_search(&mini, &paper, &weights, &mode, &quick_cfg(15)).unwrap();
        assert_eq!(a.best.latency_ms, b.best.latency_ms);
        assert_eq!(a.evaluated, b.evaluated);
    }

    #[test]
    fn rule_filter_skips_candidates() {
        let (mini, paper, weights, mode) = setup();
        let mut cfg = quick_cfg(50);
        // A strict target makes most candidates fail, feeding the filter.
        cfg.finetune.target_drop = 0.0;
        cfg.rule_filter = true;
        let res = run_search(&mini, &paper, &weights, &mode, &cfg).unwrap();
        assert!(
            res.rule_filtered > 0,
            "rule filter never fired ({} evaluated)",
            res.evaluated
        );
    }

    #[test]
    fn early_termination_reduces_epochs() {
        let (mini, paper, weights, mode) = setup();
        let mut base_cfg = quick_cfg(30);
        base_cfg.finetune.target_drop = 0.0;
        base_cfg.finetune.max_epochs = 40;
        let plain = run_search(&mini, &paper, &weights, &mode, &base_cfg).unwrap();
        let mut et_cfg = base_cfg.clone();
        et_cfg.finetune.early_termination = true;
        let et = run_search(&mini, &paper, &weights, &mode, &et_cfg).unwrap();
        assert!(
            et.virtual_hours < plain.virtual_hours,
            "P variant not cheaper: {} vs {}",
            et.virtual_hours,
            plain.virtual_hours
        );
        assert!(et.early_terminated > 0);
    }

    #[test]
    fn random_policy_never_uses_elites() {
        let (mini, paper, weights, mode) = setup();
        let mut cfg = quick_cfg(20);
        cfg.policy = PolicyKind::RandomSampling;
        let res = run_search(&mini, &paper, &weights, &mode, &cfg).unwrap();
        // Still functional: finds something or keeps the original.
        assert!(res.speedup >= 1.0);
    }

    #[test]
    fn duplicate_candidates_are_skipped() {
        let (mini, paper, weights, mode) = setup();
        let mut cfg = quick_cfg(60);
        cfg.max_ops_per_pass = 1;
        let res = run_search(&mini, &paper, &weights, &mode, &cfg).unwrap();
        // With 60 single-op rounds over a modest pair set, repeats occur.
        assert!(res.duplicates > 0);
    }

    #[test]
    fn flops_objective_optimizes_flops() {
        let (mini, paper, weights, mode) = setup();
        let mut cfg = quick_cfg(30);
        cfg.objective = Objective::Flops;
        let res = run_search(&mini, &paper, &weights, &mode, &cfg).unwrap();
        // Best model's FLOPs must not exceed the original's.
        assert!(res.best.paper.flops().unwrap() <= paper.flops().unwrap());
        res.best.mini.validate().unwrap();
    }

    #[test]
    fn single_model_graph_still_searches_in_branch() {
        // With one model there are no cross-branch pairs, but in-branch
        // mutations (panel 1) remain legal.
        let t0 = TaskSpec::classification("solo", 2);
        let mini = parse_specs(&[vgg(VggDepth::Vgg13, VisionScale::mini(), &t0).unwrap()])
            .unwrap();
        let paper = parse_specs(&[vgg(VggDepth::Vgg13, VisionScale::paper(), &t0).unwrap()])
            .unwrap();
        let mut weights = WeightStore::new();
        for (_, n) in mini.iter() {
            weights.insert(n.key(), n.spec.clone(), Vec::new());
        }
        let mode = EvalMode::Surrogate(SurrogateContext {
            orig_capacity: CapacityVector::of(&mini).unwrap(),
            params: SurrogateParams::default(),
            teacher_scores: vec![0.9],
        });
        let res = run_search(&mini, &paper, &weights, &mode, &quick_cfg(20)).unwrap();
        assert!(res.speedup >= 1.0);
        res.best.mini.validate().unwrap();
    }

    #[test]
    fn trace_statuses_are_consistent_with_counters() {
        let (mini, paper, weights, mode) = setup();
        let mut cfg = quick_cfg(40);
        cfg.rule_filter = true;
        cfg.finetune.target_drop = 0.0;
        cfg.finetune.early_termination = true;
        let res = run_search(&mini, &paper, &weights, &mode, &cfg).unwrap();
        let count = |st: CandidateStatus| {
            res.trace.iter().filter(|r| r.status == st).count()
        };
        assert_eq!(count(CandidateStatus::RuleFiltered), res.rule_filtered);
        assert_eq!(count(CandidateStatus::Duplicate), res.duplicates);
        assert_eq!(count(CandidateStatus::TerminatedEarly), res.early_terminated);
        assert_eq!(
            count(CandidateStatus::Evaluated) + res.early_terminated,
            res.evaluated
        );
    }

    #[test]
    fn telemetry_events_reconstruct_search_counts() {
        let (mini, paper, weights, mode) = setup();
        let mut cfg = quick_cfg(40);
        cfg.rule_filter = true;
        cfg.finetune.target_drop = 0.0;
        cfg.finetune.early_termination = true;

        let guard = gmorph_telemetry::sink::install_test_sink();
        let res = run_search(&mini, &paper, &weights, &mode, &cfg).unwrap();
        let events = guard.events();
        drop(guard);

        // Other tests in this binary run concurrently and may emit their
        // own events while the sink is installed; keep only this thread's.
        let here = gmorph_telemetry::span::thread_id();
        let iters: Vec<_> = events
            .iter()
            .filter(|e| e.thread == here && e.name == "search.iter")
            .collect();
        assert_eq!(iters.len(), cfg.iterations);
        assert_eq!(iters.len(), res.trace.len());

        let by_status = |s: &str| {
            iters
                .iter()
                .filter(|e| e.field("status").and_then(|v| v.as_str()) == Some(s))
                .count()
        };
        assert_eq!(by_status("rule_filtered"), res.rule_filtered);
        assert_eq!(by_status("duplicate"), res.duplicates);
        assert_eq!(by_status("terminated_early"), res.early_terminated);
        assert_eq!(
            by_status("evaluated") + res.early_terminated,
            res.evaluated
        );

        // Events mirror the trace record-for-record.
        for (e, r) in iters.iter().zip(res.trace.iter()) {
            assert_eq!(
                e.field("iter").and_then(|v| v.as_f64()),
                Some(r.iter as f64)
            );
            assert_eq!(
                e.field("status").and_then(|v| v.as_str()),
                Some(r.status.as_str())
            );
            let best = e.field("best_latency_ms").and_then(|v| v.as_f64()).unwrap();
            assert_eq!(best, r.best_latency_ms);
        }
        // The final best latency is reconstructible from the stream.
        let last_best = iters
            .last()
            .and_then(|e| e.field("best_latency_ms"))
            .and_then(|v| v.as_f64())
            .unwrap();
        assert_eq!(last_best, res.best.latency_ms);

        // The run meta event carries the clock assumptions.
        let meta = events
            .iter()
            .find(|e| e.thread == here && e.name == "search.run_meta")
            .expect("run meta event");
        assert_eq!(
            meta.field("virtual_throughput").and_then(|v| v.as_f64()),
            Some(gmorph_perf::clock::DEFAULT_THROUGHPUT)
        );
    }

    #[test]
    fn custom_throughput_scales_virtual_hours() {
        let (mini, paper, weights, mode) = setup();
        let mut cfg = quick_cfg(15);
        let base = run_search(&mini, &paper, &weights, &mode, &cfg).unwrap();
        cfg.virtual_throughput = gmorph_perf::clock::DEFAULT_THROUGHPUT * 2.0;
        let fast = run_search(&mini, &paper, &weights, &mode, &cfg).unwrap();
        // Same seed, same decisions — only the clock rate differs, so the
        // virtual total shrinks (overhead charges are rate-independent,
        // so it is not exactly half).
        assert!(
            fast.virtual_hours < base.virtual_hours,
            "{} !< {}",
            fast.virtual_hours,
            base.virtual_hours
        );
        assert_eq!(fast.evaluated, base.evaluated);
    }

    #[test]
    fn mismatched_scales_rejected() {
        let (mini, _, weights, mode) = setup();
        let t0 = TaskSpec::classification("a", 2);
        let short = parse_specs(&[vgg(
            VggDepth::Vgg11,
            VisionScale::paper(),
            &t0,
        )
        .unwrap()])
        .unwrap();
        assert!(run_search(&mini, &short, &weights, &mode, &quick_cfg(5)).is_err());
    }
}
