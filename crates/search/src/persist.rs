//! Persisting search traces to JSONL run artifacts.
//!
//! A saved trace is one `trace_meta` header line (run-level summary:
//! original/best latency, speedup, budget totals, candidate-outcome
//! counts) followed by one `trace_record` line per iteration — everything
//! needed to replot Figure 8's best-latency-vs-search-time curves from a
//! finished run without rerunning it. Floats use the telemetry JSON
//! codec: NaN encodes to `null` and decodes back to NaN, so unevaluated
//! iterations (drop = NaN) round-trip faithfully.

use crate::driver::{CandidateStatus, SearchResult, TraceRecord};
use gmorph_telemetry::json::Json;
use std::collections::BTreeMap;
use std::io::Write;
use std::path::Path;

/// Run-level summary written as the `trace_meta` header line.
#[derive(Debug, Clone, PartialEq)]
pub struct TraceMeta {
    /// Iterations the trace covers.
    pub iterations: usize,
    /// Latency of the original multi-DNN graph (ms).
    pub original_latency_ms: f64,
    /// Latency of the best satisfying model (ms).
    pub best_latency_ms: f64,
    /// Speedup of best over original.
    pub speedup: f64,
    /// Total virtual search time (hours).
    pub virtual_hours: f64,
    /// Total wall-clock time (seconds).
    pub wall_seconds: f64,
    /// Candidates fine-tuned.
    pub evaluated: usize,
    /// Candidates skipped by rule-based filtering.
    pub rule_filtered: usize,
    /// Candidates terminated early.
    pub early_terminated: usize,
    /// Duplicate candidates skipped.
    pub duplicates: usize,
    /// Candidates that failed every permitted evaluation attempt.
    pub failed: usize,
    /// Candidates skipped by quarantine.
    pub quarantined: usize,
}

impl TraceMeta {
    /// Builds the header from a finished search.
    pub fn of(result: &SearchResult) -> TraceMeta {
        TraceMeta {
            iterations: result.trace.len(),
            original_latency_ms: result.original_latency_ms,
            best_latency_ms: result.best.latency_ms,
            speedup: result.speedup,
            virtual_hours: result.virtual_hours,
            wall_seconds: result.wall_seconds,
            evaluated: result.evaluated,
            rule_filtered: result.rule_filtered,
            early_terminated: result.early_terminated,
            duplicates: result.duplicates,
            failed: result.failed,
            quarantined: result.quarantined,
        }
    }
}

fn obj(pairs: Vec<(&str, Json)>) -> Json {
    Json::Obj(
        pairs
            .into_iter()
            .map(|(k, v)| (k.to_string(), v))
            .collect::<BTreeMap<_, _>>(),
    )
}

fn meta_line(meta: &TraceMeta) -> String {
    obj(vec![
        ("kind", Json::Str("trace_meta".to_string())),
        ("iterations", Json::Int(meta.iterations as i64)),
        ("original_latency_ms", Json::Float(meta.original_latency_ms)),
        ("best_latency_ms", Json::Float(meta.best_latency_ms)),
        ("speedup", Json::Float(meta.speedup)),
        ("virtual_hours", Json::Float(meta.virtual_hours)),
        ("wall_seconds", Json::Float(meta.wall_seconds)),
        ("evaluated", Json::Int(meta.evaluated as i64)),
        ("rule_filtered", Json::Int(meta.rule_filtered as i64)),
        ("early_terminated", Json::Int(meta.early_terminated as i64)),
        ("duplicates", Json::Int(meta.duplicates as i64)),
        ("failed", Json::Int(meta.failed as i64)),
        ("quarantined", Json::Int(meta.quarantined as i64)),
    ])
    .encode()
}

fn record_line(rec: &TraceRecord) -> String {
    obj(vec![
        ("kind", Json::Str("trace_record".to_string())),
        ("iter", Json::Int(rec.iter as i64)),
        ("status", Json::Str(rec.status.as_str().to_string())),
        ("from_elite", Json::Bool(rec.from_elite)),
        ("drop", Json::Float(rec.drop as f64)),
        ("met_target", Json::Bool(rec.met_target)),
        ("candidate_latency_ms", Json::Float(rec.candidate_latency_ms)),
        ("best_latency_ms", Json::Float(rec.best_latency_ms)),
        ("epochs", Json::Int(rec.epochs as i64)),
        ("virtual_hours", Json::Float(rec.virtual_hours)),
        ("wall_seconds", Json::Float(rec.wall_seconds)),
    ])
    .encode()
}

/// Writes a search's trace as a `trace_meta` + `trace_record` JSONL file,
/// creating parent directories as needed.
pub fn save_trace(path: impl AsRef<Path>, result: &SearchResult) -> std::io::Result<()> {
    let path = path.as_ref();
    if let Some(parent) = path.parent() {
        if !parent.as_os_str().is_empty() {
            std::fs::create_dir_all(parent)?;
        }
    }
    let mut w = std::io::BufWriter::new(std::fs::File::create(path)?);
    writeln!(w, "{}", meta_line(&TraceMeta::of(result)))?;
    for rec in &result.trace {
        writeln!(w, "{}", record_line(rec))?;
    }
    w.flush()
}

fn get_f64(doc: &Json, key: &str) -> Result<f64, String> {
    match doc.get(key) {
        Some(Json::Null) => Ok(f64::NAN),
        Some(j) => j
            .as_f64()
            .ok_or_else(|| format!("field {key:?} is not a number")),
        None => Err(format!("missing field {key:?}")),
    }
}

fn get_usize(doc: &Json, key: &str) -> Result<usize, String> {
    doc.get(key)
        .and_then(Json::as_i64)
        .and_then(|v| usize::try_from(v).ok())
        .ok_or_else(|| format!("missing or invalid field {key:?}"))
}

fn get_bool(doc: &Json, key: &str) -> Result<bool, String> {
    doc.get(key)
        .and_then(Json::as_bool)
        .ok_or_else(|| format!("missing or invalid field {key:?}"))
}

fn parse_meta(doc: &Json) -> Result<TraceMeta, String> {
    Ok(TraceMeta {
        iterations: get_usize(doc, "iterations")?,
        original_latency_ms: get_f64(doc, "original_latency_ms")?,
        best_latency_ms: get_f64(doc, "best_latency_ms")?,
        speedup: get_f64(doc, "speedup")?,
        virtual_hours: get_f64(doc, "virtual_hours")?,
        wall_seconds: get_f64(doc, "wall_seconds")?,
        evaluated: get_usize(doc, "evaluated")?,
        rule_filtered: get_usize(doc, "rule_filtered")?,
        early_terminated: get_usize(doc, "early_terminated")?,
        duplicates: get_usize(doc, "duplicates")?,
        // Pre-resilience traces lack these; read them as zero.
        failed: get_usize(doc, "failed").unwrap_or(0),
        quarantined: get_usize(doc, "quarantined").unwrap_or(0),
    })
}

fn parse_record(doc: &Json) -> Result<TraceRecord, String> {
    let status_str = doc
        .get("status")
        .and_then(Json::as_str)
        .ok_or("missing field \"status\"")?;
    let status = CandidateStatus::parse(status_str)
        .ok_or_else(|| format!("unknown status {status_str:?}"))?;
    Ok(TraceRecord {
        iter: get_usize(doc, "iter")?,
        status,
        from_elite: get_bool(doc, "from_elite")?,
        drop: get_f64(doc, "drop")? as f32,
        met_target: get_bool(doc, "met_target")?,
        candidate_latency_ms: get_f64(doc, "candidate_latency_ms")?,
        best_latency_ms: get_f64(doc, "best_latency_ms")?,
        epochs: get_usize(doc, "epochs")?,
        virtual_hours: get_f64(doc, "virtual_hours")?,
        wall_seconds: get_f64(doc, "wall_seconds")?,
    })
}

/// Reads a trace file written by [`save_trace`].
pub fn load_trace(path: impl AsRef<Path>) -> Result<(TraceMeta, Vec<TraceRecord>), String> {
    let text = std::fs::read_to_string(path.as_ref())
        .map_err(|e| format!("reading {}: {e}", path.as_ref().display()))?;
    let mut meta = None;
    let mut records = Vec::new();
    for (i, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let doc = Json::parse(line).map_err(|e| format!("line {}: {e}", i + 1))?;
        match doc.get("kind").and_then(Json::as_str) {
            Some("trace_meta") => {
                if meta.is_some() {
                    return Err(format!("line {}: duplicate trace_meta", i + 1));
                }
                meta = Some(parse_meta(&doc).map_err(|e| format!("line {}: {e}", i + 1))?);
            }
            Some("trace_record") => {
                records.push(parse_record(&doc).map_err(|e| format!("line {}: {e}", i + 1))?)
            }
            other => {
                return Err(format!("line {}: unexpected kind {other:?}", i + 1));
            }
        }
    }
    let meta = meta.ok_or("no trace_meta header line")?;
    if records.len() != meta.iterations {
        return Err(format!(
            "trace_meta promises {} records, file has {}",
            meta.iterations,
            records.len()
        ));
    }
    Ok((meta, records))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::driver::BestModel;
    use gmorph_graph::{AbsGraph, WeightStore};

    fn sample_result() -> SearchResult {
        let best = BestModel {
            mini: AbsGraph::new(vec![1, 8, 8], Vec::new()),
            paper: AbsGraph::new(vec![1, 8, 8], Vec::new()),
            weights: WeightStore::new(),
            latency_ms: 4.5,
            drop: 0.01,
            scores: vec![0.9],
        };
        let trace = vec![
            TraceRecord {
                iter: 1,
                status: CandidateStatus::NoMutation,
                from_elite: false,
                drop: f32::NAN,
                met_target: false,
                candidate_latency_ms: f64::NAN,
                best_latency_ms: 9.0,
                epochs: 0,
                virtual_hours: 0.0,
                wall_seconds: 0.01,
            },
            TraceRecord {
                iter: 2,
                status: CandidateStatus::Evaluated,
                from_elite: true,
                drop: 0.01,
                met_target: true,
                candidate_latency_ms: 4.5,
                best_latency_ms: 4.5,
                epochs: 6,
                virtual_hours: 0.5,
                wall_seconds: 0.05,
            },
        ];
        SearchResult {
            best,
            original_latency_ms: 9.0,
            speedup: 2.0,
            trace,
            virtual_hours: 0.5,
            wall_seconds: 0.05,
            evaluated: 1,
            rule_filtered: 0,
            early_terminated: 0,
            duplicates: 0,
            failed: 0,
            quarantined: 0,
        }
    }

    fn temp_path(name: &str) -> std::path::PathBuf {
        std::env::temp_dir().join(format!("gmorph-persist-{}-{name}", std::process::id()))
    }

    #[test]
    fn trace_round_trips_through_jsonl() {
        let result = sample_result();
        let path = temp_path("roundtrip.jsonl");
        save_trace(&path, &result).unwrap();
        let (meta, records) = load_trace(&path).unwrap();
        assert_eq!(meta, TraceMeta::of(&result));
        assert_eq!(records.len(), result.trace.len());
        for (got, want) in records.iter().zip(result.trace.iter()) {
            assert_eq!(got.iter, want.iter);
            assert_eq!(got.status, want.status);
            assert_eq!(got.from_elite, want.from_elite);
            assert_eq!(got.met_target, want.met_target);
            assert_eq!(got.epochs, want.epochs);
            assert_eq!(got.best_latency_ms, want.best_latency_ms);
            // NaN round-trips as NaN (encoded as JSON null).
            assert_eq!(got.drop.is_nan(), want.drop.is_nan());
            if !want.drop.is_nan() {
                assert!((got.drop - want.drop).abs() < 1e-6);
            }
            assert_eq!(
                got.candidate_latency_ms.is_nan(),
                want.candidate_latency_ms.is_nan()
            );
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn load_rejects_malformed_traces() {
        let path = temp_path("bad.jsonl");
        // Missing header.
        std::fs::write(&path, "{\"kind\":\"trace_record\"}\n").unwrap();
        assert!(load_trace(&path).is_err());
        // Unknown kind.
        std::fs::write(&path, "{\"kind\":\"mystery\"}\n").unwrap();
        assert!(load_trace(&path).is_err());
        // Record-count mismatch.
        let result = sample_result();
        save_trace(&path, &result).unwrap();
        let text = std::fs::read_to_string(&path).unwrap();
        let truncated: Vec<&str> = text.lines().take(2).collect();
        std::fs::write(&path, truncated.join("\n")).unwrap();
        assert!(load_trace(&path).is_err());
        std::fs::remove_file(&path).ok();
    }
}
