//! Micro-benchmarks of the tensor kernels: GEMM, convolution, attention,
//! interpolation. These dominate the cost of real-mode fine-tuning, so
//! regressions here directly slow every experiment.

use criterion::{criterion_group, criterion_main, Criterion};
use gmorph::nn::layers::MultiHeadAttention;
use gmorph::nn::Mode;
use gmorph::tensor::conv::{conv2d_forward, Conv2dGeom};
use gmorph::tensor::engine;
use gmorph::tensor::gemm::{matmul, matmul_nt, matmul_tn, naive as gemm_naive};
use gmorph::tensor::interp::{resize2d_forward, InterpMode};
use gmorph::tensor::rng::Rng;
use gmorph::tensor::Tensor;
use std::hint::black_box;

fn bench_gemm(c: &mut Criterion) {
    let mut rng = Rng::new(0);
    let a = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let b = Tensor::randn(&[64, 64], 1.0, &mut rng);
    let mut g = c.benchmark_group("gemm-64");
    g.bench_function("nn", |bench| {
        bench.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
    });
    g.bench_function("nt", |bench| {
        bench.iter(|| matmul_nt(black_box(&a), black_box(&b)).unwrap())
    });
    g.bench_function("tn", |bench| {
        bench.iter(|| matmul_tn(black_box(&a), black_box(&b)).unwrap())
    });
    g.finish();
}

fn bench_gemm_blocked_vs_seed(c: &mut Criterion) {
    // The blocked/threaded engine against the seed's naive loops at a size
    // where blocking matters (256³ ≈ 33 MFLOP).
    let mut rng = Rng::new(4);
    let a = Tensor::randn(&[256, 256], 1.0, &mut rng);
    let b = Tensor::randn(&[256, 256], 1.0, &mut rng);
    let mut g = c.benchmark_group("gemm-256");
    g.bench_function("naive-seed", |bench| {
        bench.iter(|| gemm_naive::matmul(black_box(&a), black_box(&b)).unwrap())
    });
    g.bench_function("blocked-1t", |bench| {
        engine::with_thread_limit(1, || {
            bench.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
        })
    });
    let many = engine::num_threads().max(2);
    g.bench_function("blocked-nt", |bench| {
        engine::with_thread_limit(many, || {
            bench.iter(|| matmul(black_box(&a), black_box(&b)).unwrap())
        })
    });
    g.finish();
}

fn bench_conv_threads(c: &mut Criterion) {
    // Batch-parallel conv at 1 thread vs the pool size.
    let mut rng = Rng::new(5);
    let x = Tensor::randn(&[8, 8, 16, 16], 1.0, &mut rng);
    let w = Tensor::randn(&[16, 8, 3, 3], 0.5, &mut rng);
    let geom = Conv2dGeom::new(3, 1, 1).unwrap();
    let mut g = c.benchmark_group("conv2d-threads");
    g.bench_function("1t", |bench| {
        engine::with_thread_limit(1, || {
            bench.iter(|| conv2d_forward(black_box(&x), black_box(&w), None, geom).unwrap())
        })
    });
    let many = engine::num_threads().max(2);
    g.bench_function("nt", |bench| {
        engine::with_thread_limit(many, || {
            bench.iter(|| conv2d_forward(black_box(&x), black_box(&w), None, geom).unwrap())
        })
    });
    g.finish();
}

fn bench_conv(c: &mut Criterion) {
    let mut rng = Rng::new(1);
    let x = Tensor::randn(&[8, 8, 16, 16], 1.0, &mut rng);
    let w = Tensor::randn(&[16, 8, 3, 3], 0.5, &mut rng);
    let geom = Conv2dGeom::new(3, 1, 1).unwrap();
    c.bench_function("conv2d-8x8x16x16", |bench| {
        bench.iter(|| conv2d_forward(black_box(&x), black_box(&w), None, geom).unwrap())
    });
}

fn bench_attention(c: &mut Criterion) {
    let mut rng = Rng::new(2);
    let mut attn = MultiHeadAttention::new(32, 4, &mut rng).unwrap();
    let x = Tensor::randn(&[4, 16, 32], 1.0, &mut rng);
    c.bench_function("attention-4x16x32", |bench| {
        bench.iter(|| attn.forward(black_box(&x), Mode::Eval).unwrap())
    });
}

fn bench_interp(c: &mut Criterion) {
    let mut rng = Rng::new(3);
    let x = Tensor::randn(&[8, 16, 8, 8], 1.0, &mut rng);
    c.bench_function("bilinear-8x16x8x8-to-16x16", |bench| {
        bench.iter(|| {
            resize2d_forward(black_box(&x), 16, 16, InterpMode::Bilinear).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_gemm, bench_gemm_blocked_vs_seed, bench_conv, bench_conv_threads, bench_attention, bench_interp
}
criterion_main!(benches);
