//! Benchmarks of real-mode distillation fine-tuning: one epoch of the
//! ℓ1 teacher-matching objective on a small fused model — the unit of
//! cost the predictive filters exist to save.

use criterion::{criterion_group, criterion_main, Criterion};
use gmorph::graph::{generator, parser};
use gmorph::perf::accuracy::{finetune, teacher_targets, FinetuneConfig};
use gmorph::prelude::*;

fn bench_distillation_epoch(c: &mut Criterion) {
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 5).unwrap();
    let mut rng = Rng::new(5);
    let split = bench.dataset.split(0.75, &mut rng).unwrap();
    let mut teachers: Vec<_> = bench
        .mini
        .iter()
        .map(|s| s.build(&mut rng).unwrap())
        .collect();
    let (graph, store) = parser::parse_models(&teachers).unwrap();
    let targets = teacher_targets(&mut teachers, &split.train.inputs).unwrap();
    let teacher_scores = vec![0.6f32, 0.9, 0.8];
    let cfg = FinetuneConfig {
        max_epochs: 1,
        eval_every: 1,
        target_drop: -1.0,
        lr: 1e-3,
        batch: 32,
        ..Default::default()
    };
    c.bench_function("distill-1epoch-B1-smoke", |b| {
        b.iter(|| {
            let (mut tree, _) = generator::generate(&graph, &store, &mut rng).unwrap();
            finetune(
                &mut tree,
                &split.train.inputs,
                &targets,
                &split.test,
                &teacher_scores,
                &cfg,
            )
            .unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(4)).warm_up_time(std::time::Duration::from_secs(1));
    targets = bench_distillation_epoch
}
criterion_main!(benches);
