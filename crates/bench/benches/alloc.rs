//! Allocation micro-benchmarks: the tensor buffer pool and fused kernel
//! epilogues on the inference and fine-tuning hot paths. The `alloc` group
//! pins the pool's effect on single ops; `finetune-epoch` measures the
//! steady-state train loop the pool was built for.

use criterion::{criterion_group, criterion_main, Criterion};
use gmorph::nn::{Block, Mode};
use gmorph::tensor::conv::{conv2d_forward, Conv2dGeom};
use gmorph::tensor::ops::{relu_forward, Activation};
use gmorph::tensor::rng::Rng;
use gmorph::tensor::{buffer, gemm, Tensor};
use std::hint::black_box;

fn bench_alloc(c: &mut Criterion) {
    let mut rng = Rng::new(0);
    let x = Tensor::randn(&[4, 32, 32, 32], 1.0, &mut rng);
    let w = Tensor::randn(&[32, 32, 3, 3], 0.5, &mut rng);
    let b = Tensor::randn(&[32], 0.1, &mut rng);
    let geom = Conv2dGeom::new(3, 1, 1).unwrap();

    let mut g = c.benchmark_group("alloc");
    g.bench_function("conv-forward/pool-off", |bench| {
        buffer::set_enabled(Some(false));
        buffer::clear();
        bench.iter(|| {
            black_box(conv2d_forward(black_box(&x), black_box(&w), Some(&b), geom).unwrap())
        });
        buffer::set_enabled(None);
    });
    g.bench_function("conv-forward/pool-on", |bench| {
        buffer::set_enabled(Some(true));
        buffer::clear();
        bench.iter(|| {
            black_box(conv2d_forward(black_box(&x), black_box(&w), Some(&b), geom).unwrap())
        });
        buffer::set_enabled(None);
        buffer::clear();
    });

    // Thin-k linear: memory-bound, so folding bias+ReLU into the output
    // write is visible (compute-bound shapes hide it).
    let la = Tensor::randn(&[512, 16], 1.0, &mut rng);
    let lw = Tensor::randn(&[512, 16], 0.5, &mut rng);
    let lb = Tensor::randn(&[512], 0.1, &mut rng);
    g.bench_function("linear-relu/unfused", |bench| {
        bench.iter(|| {
            let mut y = gemm::matmul_nt(black_box(&la), black_box(&lw)).unwrap();
            gemm::add_bias_rows(&mut y, &lb).unwrap();
            black_box(relu_forward(&y))
        });
    });
    g.bench_function("linear-relu/fused", |bench| {
        bench.iter(|| {
            black_box(
                gemm::matmul_nt_bias_act(
                    black_box(&la),
                    black_box(&lw),
                    Some(&lb),
                    Activation::Relu,
                )
                .unwrap(),
            )
        });
    });
    g.finish();
}

fn bench_finetune_epoch(c: &mut Criterion) {
    // A miniature epoch: several train forward+backward steps of a small
    // conv stack, the loop that dominates real-mode search time.
    let mut rng = Rng::new(1);
    let mut b1 = Block::conv_relu(16, 32, &mut rng).unwrap();
    let mut b2 = Block::conv_relu(32, 32, &mut rng).unwrap();
    let x = Tensor::randn(&[4, 16, 24, 24], 1.0, &mut rng);
    let step = |b1: &mut Block, b2: &mut Block| {
        let h = b1.forward(&x, Mode::Train).unwrap();
        let y = b2.forward(&h, Mode::Train).unwrap();
        let g = b2.backward(&Tensor::ones(y.dims())).unwrap();
        black_box(b1.backward(&g).unwrap());
    };

    let mut g = c.benchmark_group("finetune-epoch");
    g.bench_function("pool-off", |bench| {
        buffer::set_enabled(Some(false));
        buffer::clear();
        bench.iter(|| step(&mut b1, &mut b2));
        buffer::set_enabled(None);
    });
    g.bench_function("pool-on", |bench| {
        buffer::set_enabled(Some(true));
        buffer::clear();
        bench.iter(|| step(&mut b1, &mut b2));
        buffer::set_enabled(None);
        buffer::clear();
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_alloc, bench_finetune_epoch
}
criterion_main!(benches);
