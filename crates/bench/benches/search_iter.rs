//! Benchmarks of full (surrogate-mode) search runs: miniature versions of
//! the Figure 7 / Figure 8 workloads.

use criterion::{criterion_group, criterion_main, Criterion};
use gmorph::graph::{parser, CapacityVector, WeightStore};
use gmorph::perf::accuracy::{FinetuneConfig, SurrogateParams};
use gmorph::prelude::*;
use gmorph::search::driver::{run_search, SearchConfig};
use gmorph::search::evaluator::{EvalMode, SurrogateContext};
use std::hint::black_box;

fn setup() -> (AbsGraph, AbsGraph, WeightStore, EvalMode) {
    let bench = build_benchmark(BenchId::B1, &DataProfile::smoke(), 1).unwrap();
    let mini = parser::parse_specs(&bench.mini).unwrap();
    let paper = parser::parse_specs(&bench.paper).unwrap();
    let mut weights = WeightStore::new();
    for (_, n) in mini.iter() {
        weights.insert(n.key(), n.spec.clone(), Vec::new());
    }
    let mode = EvalMode::Surrogate(SurrogateContext {
        orig_capacity: CapacityVector::of(&mini).unwrap(),
        params: SurrogateParams::default(),
        teacher_scores: vec![0.85, 0.9, 0.8],
    });
    (mini, paper, weights, mode)
}

fn config(rule_filter: bool, early_termination: bool) -> SearchConfig {
    SearchConfig {
        iterations: 12,
        rule_filter,
        finetune: FinetuneConfig {
            max_epochs: 35,
            eval_every: 5,
            target_drop: 0.01,
            early_termination,
            ..Default::default()
        },
        ..Default::default()
    }
}

fn bench_search_variants(c: &mut Criterion) {
    let (mini, paper, weights, mode) = setup();
    let mut g = c.benchmark_group("search-12iter-B1");
    g.bench_function("gmorph", |b| {
        b.iter(|| {
            run_search(
                black_box(&mini),
                black_box(&paper),
                &weights,
                &mode,
                &config(false, false),
            )
            .unwrap()
        })
    });
    g.bench_function("gmorph-p", |b| {
        b.iter(|| {
            run_search(&mini, &paper, &weights, &mode, &config(false, true)).unwrap()
        })
    });
    g.bench_function("gmorph-p-r", |b| {
        b.iter(|| {
            run_search(&mini, &paper, &weights, &mode, &config(true, true)).unwrap()
        })
    });
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_search_variants
}
criterion_main!(benches);
