//! Benchmarks of the graph machinery: pair enumeration, mutation passes,
//! capacity vectors, and model generation — the per-iteration overheads
//! of the search loop.

use criterion::{criterion_group, criterion_main, Criterion};
use gmorph::graph::pairs::{pairs_with, shareable_pairs, PairPolicy};
use gmorph::graph::{generator, mutation, parser, CapacityVector};
use gmorph::prelude::*;
use std::hint::black_box;

fn b3_graph() -> AbsGraph {
    let bench = build_benchmark(BenchId::B3, &DataProfile::smoke(), 1).unwrap();
    parser::parse_specs(&bench.mini).unwrap()
}

fn bench_pairs(c: &mut Criterion) {
    let g = b3_graph();
    c.bench_function("shareable_pairs-B3", |b| {
        b.iter(|| shareable_pairs(black_box(&g)).unwrap())
    });
    c.bench_function("any_pairs-B3", |b| {
        b.iter(|| pairs_with(black_box(&g), PairPolicy::AnyShape).unwrap())
    });
}

fn bench_mutation_pass(c: &mut Criterion) {
    let g = b3_graph();
    let pairs = shareable_pairs(&g).unwrap();
    let chosen = [pairs[0], pairs[pairs.len() / 2]];
    c.bench_function("mutation_pass-2ops-B3", |b| {
        b.iter(|| mutation::mutation_pass(black_box(&g), black_box(&chosen)).unwrap())
    });
}

fn bench_capacity(c: &mut Criterion) {
    let g = b3_graph();
    c.bench_function("capacity_vector-B3", |b| {
        b.iter(|| CapacityVector::of(black_box(&g)).unwrap())
    });
    c.bench_function("signature-B3", |b| b.iter(|| black_box(&g).signature()));
}

fn bench_generate(c: &mut Criterion) {
    let mut rng = Rng::new(0);
    let bench = build_benchmark(BenchId::B3, &DataProfile::smoke(), 1).unwrap();
    let teachers: Vec<_> = bench
        .mini
        .iter()
        .map(|s| s.build(&mut rng).unwrap())
        .collect();
    let (g, store) = parser::parse_models(&teachers).unwrap();
    c.bench_function("generate-with-inheritance-B3", |b| {
        b.iter(|| {
            let mut r = Rng::new(7);
            generator::generate(black_box(&g), black_box(&store), &mut r).unwrap()
        })
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_pairs, bench_mutation_pass, bench_capacity, bench_generate
}
criterion_main!(benches);
