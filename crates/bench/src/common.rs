//! Shared experiment utilities: sessions, output formatting, CSV files.

use gmorph::prelude::*;
use std::fmt::Write as _;
use std::path::PathBuf;

/// Common options parsed from the `repro` command line.
#[derive(Debug, Clone)]
pub struct ExperimentOpts {
    /// Experiment seed.
    pub seed: u64,
    /// Search rounds per cell (paper: 200).
    pub iterations: usize,
    /// Accuracy-estimation backend for search experiments.
    pub mode: AccuracyMode,
    /// Output directory for CSV files.
    pub out_dir: PathBuf,
    /// Quick mode: shrink sample counts for smoke runs.
    pub quick: bool,
}

impl Default for ExperimentOpts {
    fn default() -> Self {
        ExperimentOpts {
            seed: 1,
            iterations: 200,
            mode: AccuracyMode::Surrogate,
            out_dir: PathBuf::from("results"),
            quick: false,
        }
    }
}

impl ExperimentOpts {
    /// Scales a count down in quick mode.
    pub fn scaled(&self, full: usize, quick: usize) -> usize {
        if self.quick {
            quick
        } else {
            full
        }
    }
}

/// Paper-style fine-tuning parameters per benchmark (§6.1): maximum
/// epochs, batch size, and validation cadence δ.
pub fn paper_finetune(id: BenchId) -> (usize, usize, usize) {
    match id {
        BenchId::B1 | BenchId::B4 | BenchId::B5 => (35, 64, 5),
        BenchId::B2 | BenchId::B3 => (40, 128, 5),
        BenchId::B6 | BenchId::B7 => (16, 32, 2),
    }
}

/// Prepares a session for a benchmark with cached teachers.
pub fn session_for(id: BenchId, opts: &ExperimentOpts) -> gmorph::tensor::Result<Session> {
    let profile = if opts.quick {
        DataProfile::smoke()
    } else {
        DataProfile::standard()
    };
    let bench = build_benchmark(id, &profile, opts.seed)?;
    Session::prepare(
        bench,
        &SessionConfig {
            teacher: gmorph::models::train::TrainConfig {
                epochs: if opts.quick { 2 } else { 6 },
                batch: 32,
                lr: 3e-3,
                seed: opts.seed,
            },
            seed: opts.seed,
            use_cache: true,
            ..Default::default()
        },
    )
}

/// An optimization config carrying a benchmark's paper-style parameters.
pub fn paper_config(id: BenchId, opts: &ExperimentOpts, threshold: f32) -> OptimizationConfig {
    let (max_epochs, batch, eval_every) = paper_finetune(id);
    OptimizationConfig {
        accuracy_threshold: threshold,
        iterations: opts.iterations,
        mode: opts.mode,
        max_epochs,
        eval_every,
        batch,
        lr: 1e-3,
        seed: opts.seed,
        ..Default::default()
    }
}

/// Collects rows, prints aligned tables, and writes CSV files.
#[derive(Debug)]
pub struct Reporter {
    out_dir: PathBuf,
}

impl Reporter {
    /// Creates a reporter writing CSVs under `out_dir`.
    pub fn new(out_dir: &std::path::Path) -> Self {
        std::fs::create_dir_all(out_dir).ok();
        Reporter {
            out_dir: out_dir.to_path_buf(),
        }
    }

    /// Writes a CSV file (header + rows) under the output directory.
    pub fn write_csv(&self, name: &str, header: &[&str], rows: &[Vec<String>]) {
        let mut out = String::new();
        out.push_str(&header.join(","));
        out.push('\n');
        for row in rows {
            out.push_str(&row.join(","));
            out.push('\n');
        }
        let path = self.out_dir.join(name);
        if let Err(e) = std::fs::write(&path, out) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[wrote {}]", path.display());
        }
    }

    /// Writes arbitrary text under the output directory.
    pub fn write_text(&self, name: &str, text: &str) {
        let path = self.out_dir.join(name);
        if let Err(e) = std::fs::write(&path, text) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("[wrote {}]", path.display());
        }
    }

    /// Prints an aligned table to stdout.
    pub fn print_table(&self, title: &str, header: &[&str], rows: &[Vec<String>]) {
        println!("\n=== {title} ===");
        let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
        for row in rows {
            for (i, cell) in row.iter().enumerate() {
                if i < widths.len() {
                    widths[i] = widths[i].max(cell.len());
                }
            }
        }
        let mut line = String::new();
        for (h, w) in header.iter().zip(&widths) {
            let _ = write!(line, "{h:<w$}  ");
        }
        println!("{line}");
        println!("{}", "-".repeat(line.len().min(120)));
        for row in rows {
            let mut line = String::new();
            for (cell, w) in row.iter().zip(&widths) {
                let _ = write!(line, "{cell:<w$}  ");
            }
            println!("{line}");
        }
    }
}

/// Formats a float with fixed precision for table cells.
pub fn f(v: f64, digits: usize) -> String {
    format!("{v:.digits$}")
}

/// Formats a percentage.
pub fn pct(v: f32) -> String {
    format!("{:.2}%", v * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_finetune_matches_section_6_1() {
        assert_eq!(paper_finetune(BenchId::B1), (35, 64, 5));
        assert_eq!(paper_finetune(BenchId::B2), (40, 128, 5));
        assert_eq!(paper_finetune(BenchId::B7), (16, 32, 2));
    }

    #[test]
    fn quick_scaling() {
        let mut opts = ExperimentOpts::default();
        assert_eq!(opts.scaled(200, 20), 200);
        opts.quick = true;
        assert_eq!(opts.scaled(200, 20), 20);
    }

    #[test]
    fn reporter_writes_files() {
        let dir = std::env::temp_dir().join(format!("gmorph-rep-{}", std::process::id()));
        let r = Reporter::new(&dir);
        r.write_csv("t.csv", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let content = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
        std::fs::remove_dir_all(&dir).ok();
    }
}
