//! Regenerates the paper's tables and figures.
//!
//! ```text
//! cargo run -p gmorph-bench --release --bin repro -- <experiment> [options]
//!
//! experiments:
//!   fig1 fig2 fig3 fig7 fig8 fig9 table3 table4 table5 table6 ablations batched
//!   kernels alloc all
//!
//! `kernels` times the blocked/threaded GEMM and conv kernels against the
//! naive single-threaded loops and writes `BENCH_kernels.json`
//! (`{op, shape, threads, ns_per_iter}` records) to the output directory.
//!
//! `alloc` times the hot paths with the tensor buffer pool off vs on and
//! with activations fused into kernel epilogues vs separate passes, and
//! writes `BENCH_alloc.json` (records plus before/after speedups).
//!
//! options:
//!   --seed <u64>          experiment seed        (default 1)
//!   --iters <usize>       search rounds per cell (default 200)
//!   --mode real|surrogate accuracy estimation    (default surrogate)
//!   --out <dir>           CSV output directory   (default results/)
//!   --quick               shrink sample counts for smoke runs
//! ```

use gmorph::prelude::AccuracyMode;
use gmorph_bench::experiments;
use gmorph_bench::ExperimentOpts;
use std::process::ExitCode;

fn parse_args() -> Result<(Vec<String>, ExperimentOpts), String> {
    let mut opts = ExperimentOpts::default();
    let mut exps = Vec::new();
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--seed" => {
                opts.seed = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--seed needs a u64")?;
            }
            "--iters" => {
                opts.iterations = args
                    .next()
                    .and_then(|v| v.parse().ok())
                    .ok_or("--iters needs a usize")?;
            }
            "--mode" => {
                opts.mode = match args.next().as_deref() {
                    Some("real") => AccuracyMode::Real,
                    Some("surrogate") => AccuracyMode::Surrogate,
                    other => return Err(format!("unknown mode {other:?}")),
                };
            }
            "--out" => {
                opts.out_dir = args.next().ok_or("--out needs a path")?.into();
            }
            "--quick" => opts.quick = true,
            other if !other.starts_with('-') => exps.push(other.to_string()),
            other => return Err(format!("unknown option {other}")),
        }
    }
    if exps.is_empty() {
        return Err("no experiment named; try `repro all` or see --help".to_string());
    }
    Ok((exps, opts))
}

fn run_one(name: &str, opts: &ExperimentOpts) -> Result<(), String> {
    println!("\n######## {name} ########");
    let started = std::time::Instant::now();
    let result = match name {
        "fig1" => experiments::fig1::run(opts),
        "fig2" => experiments::fig2::run(opts),
        "fig3" => experiments::fig3::run(opts),
        // fig7 also regenerates Tables 5, 7, 8, 9 (same search grid).
        "fig7" | "table5" | "table7" | "table8" | "table9" => experiments::fig7::run(opts),
        "fig8" => experiments::fig8::run(opts),
        "fig9" => experiments::fig9::run(opts),
        "table3" => experiments::table3::run(opts),
        "table4" => experiments::table4::run(opts),
        "table6" => experiments::table6::run(opts),
        "ablations" => experiments::ablations::run(opts),
        "batched" => experiments::batched::run(opts),
        "kernels" => experiments::kernels::run(opts),
        "alloc" => experiments::alloc::run(opts),
        other => return Err(format!("unknown experiment {other}")),
    };
    result.map_err(|e| format!("{name} failed: {e}"))?;
    println!("[{name} done in {:.1}s]", started.elapsed().as_secs_f64());
    Ok(())
}

fn main() -> ExitCode {
    let (exps, opts) = match parse_args() {
        Ok(v) => v,
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("usage: repro <fig1|fig2|fig3|fig7|fig8|fig9|table3|table4|table5|table6|ablations|batched|kernels|alloc|all> [--seed N] [--iters N] [--mode real|surrogate] [--out dir] [--quick]");
            return ExitCode::FAILURE;
        }
    };
    let all = [
        "kernels", "alloc", "table6", "fig1", "fig2", "fig3", "fig7", "fig8", "table3",
        "table4", "fig9", "ablations", "batched",
    ];
    let to_run: Vec<String> = if exps.iter().any(|e| e == "all") {
        all.iter().map(|s| s.to_string()).collect()
    } else {
        exps
    };
    for name in &to_run {
        if let Err(e) = run_one(name, &opts) {
            eprintln!("error: {e}");
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
