//! Figure 8: best-found latency vs search time on B1, for the three
//! GMorph variants and the random-sampling baseline, at each accuracy
//! budget (§6.4).
//!
//! Expected shape: all GMorph variants converge to lower latency sooner
//! than random sampling; the +P and +P+R variants reach good candidates
//! with far less search time.

use crate::common::{f, paper_config, ExperimentOpts, Reporter};
use gmorph::prelude::*;

/// Runs the Figure 8 experiment.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let reporter = Reporter::new(&opts.out_dir);
    let session = crate::common::session_for(BenchId::B1, opts)?;
    let mut csv = Vec::new();
    let mut summary = Vec::new();
    for &threshold in &[0.0f32, 0.01, 0.02] {
        for variant in ["GMorph", "GMorph w P", "GMorph w P+R", "Random Sampling"] {
            let base = paper_config(BenchId::B1, opts, threshold);
            let cfg = match variant {
                "GMorph" => base,
                "GMorph w P" => base.with_p(),
                "GMorph w P+R" => base.with_p_r(),
                "Random Sampling" => OptimizationConfig {
                    policy: PolicyKind::RandomSampling,
                    ..base
                },
                _ => unreachable!(),
            };
            let result = session.optimize(&cfg)?;
            for rec in &result.trace {
                csv.push(vec![
                    format!("{threshold}"),
                    variant.to_string(),
                    rec.iter.to_string(),
                    f(rec.virtual_hours, 4),
                    f(rec.best_latency_ms, 3),
                ]);
            }
            summary.push(vec![
                format!("{:.0}%", threshold * 100.0),
                variant.to_string(),
                f(result.virtual_hours, 2),
                f(result.best.latency_ms, 2),
                format!("{:.2}x", result.speedup),
            ]);
        }
    }
    reporter.write_csv(
        "fig8.csv",
        &["threshold", "variant", "iter", "virtual_hours", "best_latency_ms"],
        &csv,
    );
    reporter.print_table(
        "Figure 8 (endpoints): search time vs best latency on B1",
        &["budget", "variant", "search time (h)", "best latency (ms)", "speedup"],
        &summary,
    );
    println!(
        "full convergence curves are in results/fig8.csv (virtual_hours vs best_latency_ms)"
    );
    Ok(())
}
