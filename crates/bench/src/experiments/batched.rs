//! §7 extension: batched parallel search vs the sequential driver.
//!
//! The paper's discussion proposes "sampling multiple models in parallel
//! or adopting parallel simulated annealing algorithms" to cut search
//! time. [`gmorph::search::batched`] implements synchronous parallel SA;
//! this experiment compares it against the sequential driver at equal
//! candidate budgets: search quality should match (staler elite feedback
//! costs little) while wall-clock time scales with available cores (on a
//! single-core machine both take similar wall time — the virtual-clock
//! column shows the cost that parallel hardware would divide).

use crate::common::{f, paper_config, ExperimentOpts, Reporter};
use gmorph::prelude::*;
use gmorph::search::batched::run_search_batched;

/// Runs the batched-search comparison on B1.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let reporter = Reporter::new(&opts.out_dir);
    let session = crate::common::session_for(BenchId::B1, opts)?;
    let cfg = paper_config(BenchId::B1, opts, 0.01);
    let sc = cfg.to_search_config();
    let mode = session.eval_mode(cfg.mode)?;

    let mut rows = Vec::new();
    let t0 = std::time::Instant::now();
    let seq = session.optimize(&cfg)?;
    rows.push(vec![
        "sequential".to_string(),
        format!("{:.2}x", seq.speedup),
        f(seq.best.latency_ms, 2),
        f(seq.virtual_hours, 1),
        f(t0.elapsed().as_secs_f64(), 2),
    ]);
    for batch in [2usize, 4, 8] {
        let t0 = std::time::Instant::now();
        let r = run_search_batched(
            &session.mini_graph,
            &session.paper_graph,
            &session.weights,
            &mode,
            &sc,
            batch,
        )?;
        rows.push(vec![
            format!("batched x{batch}"),
            format!("{:.2}x", r.speedup),
            f(r.best_latency_ms, 2),
            f(r.virtual_hours, 1),
            f(t0.elapsed().as_secs_f64(), 2),
        ]);
    }
    reporter.print_table(
        "§7 extension: sequential vs batched parallel search (B1, 1% budget)",
        &["driver", "speedup", "best (ms)", "virtual h", "wall (s)"],
        &rows,
    );
    reporter.write_csv(
        "batched.csv",
        &["driver", "speedup", "best_ms", "virtual_h", "wall_s"],
        &rows,
    );
    Ok(())
}
