//! Figure 3: impact of weight initialization on the accuracy drop of two
//! fixed multi-task architectures (§2.2.3).
//!
//! The paper's point: candidates with identical architectures but
//! different weight initialization land anywhere from -1% (improvement)
//! to +3% drop — which is why accuracy cannot be predicted from the
//! architecture alone and fine-tuning (or a noisy surrogate) is required.

use crate::common::{ExperimentOpts, Reporter};
use gmorph::graph::pairs::{pairs_with, PairPolicy};
use gmorph::graph::{mutation, AbsGraph};
use gmorph::perf::accuracy::FinetuneConfig;
use gmorph::prelude::*;

/// Picks two distinct cross-task mutated architectures from B1's graph.
fn two_architectures(session: &Session) -> gmorph::tensor::Result<Vec<AbsGraph>> {
    let pairs = pairs_with(&session.mini_graph, PairPolicy::SimilarShape)?;
    let mut out = Vec::new();
    for &(n, m) in &pairs {
        let host = session.mini_graph.node(n)?;
        let guest = session.mini_graph.node(m)?;
        if host.task_id == guest.task_id {
            continue;
        }
        // Mid-depth sharing: interesting but not catastrophic.
        if host.op_id < 3 || host.op_id > 7 {
            continue;
        }
        let (g, ops) = mutation::mutation_pass(&session.mini_graph, &[(n, m)])?;
        if ops.is_empty() {
            continue;
        }
        if out
            .iter()
            .all(|existing: &AbsGraph| existing.signature() != g.signature())
        {
            out.push(g);
        }
        if out.len() == 2 {
            break;
        }
    }
    Ok(out)
}

/// Runs the Figure 3 experiment.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let reporter = Reporter::new(&opts.out_dir);
    let session = crate::common::session_for(BenchId::B1, opts)?;
    let archs = two_architectures(&session)?;
    if archs.len() < 2 {
        println!("could not find two distinct architectures; aborting fig3");
        return Ok(());
    }
    let mode = session.eval_mode(opts.mode)?;
    let n_inits = opts.scaled(120, 16);
    let cfg = FinetuneConfig {
        max_epochs: 35,
        eval_every: 5,
        target_drop: -1.0, // Converge fully; we want the final drop.
        lr: 1e-3,
        batch: 64,
        ..Default::default()
    };

    let mut rows = Vec::new();
    let mut summaries = Vec::new();
    for (ai, arch) in archs.iter().enumerate() {
        let mut drops = Vec::with_capacity(n_inits);
        for init in 0..n_inits {
            let mut rng = Rng::new(opts.seed ^ (init as u64) << 8 ^ ai as u64);
            let ev = mode.evaluate(
                arch,
                &session.weights,
                &cfg,
                &mut rng,
                (opts.seed << 16) ^ (ai as u64) << 12 ^ init as u64,
            )?;
            drops.push(ev.result.final_drop);
            rows.push(vec![
                format!("arch{}", ai + 1),
                init.to_string(),
                format!("{:.5}", ev.result.final_drop),
            ]);
        }
        drops.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal));
        let min = *drops.first().unwrap();
        let max = *drops.last().unwrap();
        let mean = drops.iter().sum::<f32>() / drops.len() as f32;
        let improved = drops.iter().filter(|&&d| d < 0.0).count();
        summaries.push(vec![
            format!("arch{}", ai + 1),
            n_inits.to_string(),
            format!("{:.2}%", min * 100.0),
            format!("{:.2}%", mean * 100.0),
            format!("{:.2}%", max * 100.0),
            improved.to_string(),
        ]);
        // Histogram over 0.5% buckets.
        let mut hist = std::collections::BTreeMap::new();
        for &d in &drops {
            let bucket = (d * 200.0).floor() as i64; // 0.5% buckets.
            *hist.entry(bucket).or_insert(0usize) += 1;
        }
        println!("\narch{} drop histogram (0.5% buckets):", ai + 1);
        for (bucket, count) in hist {
            println!(
                "  [{:5.2}%, {:5.2}%): {}",
                bucket as f32 / 2.0,
                bucket as f32 / 2.0 + 0.5,
                "#".repeat(count.min(80))
            );
        }
    }
    reporter.write_csv("fig3.csv", &["arch", "init", "drop"], &rows);
    reporter.print_table(
        "Figure 3: accuracy drop across weight initializations",
        &["arch", "inits", "min drop", "mean drop", "max drop", "improved (<0)"],
        &summaries,
    );
    Ok(())
}
