//! Ablations over the design choices DESIGN.md calls out:
//!
//! - `pairs`: similar-shape pair restriction (Definition 2) vs any-shape
//!   pairs — does the restriction help search quality per unit time?
//! - `alpha`: simulated-annealing cooling constant sweep — sensitivity of
//!   the explore/exploit schedule.
//! - `ops`: mutation operations per pass — coarse vs fine search steps.
//! - `inherit`: weight inheritance from elites vs fresh initialization —
//!   the Figure 2 mechanism, isolated.

use crate::common::{f, paper_config, ExperimentOpts, Reporter};
use gmorph::graph::pairs::PairPolicy;
use gmorph::prelude::*;

fn summarize(label: String, r: &SearchResult) -> Vec<String> {
    vec![
        label,
        f(r.best.latency_ms, 2),
        format!("{:.2}x", r.speedup),
        f(r.virtual_hours, 2),
        r.evaluated.to_string(),
    ]
}

/// Runs all ablations on B1 at the 1% budget.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let reporter = Reporter::new(&opts.out_dir);
    let session = crate::common::session_for(BenchId::B1, opts)?;

    // Pair policy.
    let mut rows = Vec::new();
    for (label, policy) in [
        ("similar-shape (Def. 2)", PairPolicy::SimilarShape),
        ("any-shape", PairPolicy::AnyShape),
    ] {
        let cfg = OptimizationConfig {
            pair_policy: policy,
            ..paper_config(BenchId::B1, opts, 0.01)
        };
        let r = session.optimize(&cfg)?;
        rows.push(summarize(label.to_string(), &r));
    }
    reporter.print_table(
        "Ablation: input-shareable pair restriction",
        &["policy", "best latency (ms)", "speedup", "search time (h)", "evaluated"],
        &rows,
    );

    // SA cooling constant.
    let mut rows = Vec::new();
    for alpha in [0.9f32, 0.99, 0.999] {
        let cfg = OptimizationConfig {
            sa_alpha: alpha,
            ..paper_config(BenchId::B1, opts, 0.01)
        };
        let r = session.optimize(&cfg)?;
        rows.push(summarize(format!("alpha = {alpha}"), &r));
    }
    reporter.print_table(
        "Ablation: simulated-annealing cooling constant",
        &["alpha", "best latency (ms)", "speedup", "search time (h)", "evaluated"],
        &rows,
    );

    // Mutation operations per pass.
    let mut rows = Vec::new();
    for ops in [1usize, 2, 4] {
        let cfg = OptimizationConfig {
            max_ops_per_pass: ops,
            ..paper_config(BenchId::B1, opts, 0.01)
        };
        let r = session.optimize(&cfg)?;
        rows.push(summarize(format!("{ops} ops/pass"), &r));
    }
    reporter.print_table(
        "Ablation: mutation operations per pass",
        &["ops", "best latency (ms)", "speedup", "search time (h)", "evaluated"],
        &rows,
    );

    // Optimization objective: latency vs FLOPs (the paper's config
    // item (1) offers both; the best models can differ because per-op
    // overhead makes latency favour fewer, larger nodes).
    let mut rows = Vec::new();
    for (label, objective) in [
        ("latency", Objective::Latency),
        ("flops", Objective::Flops),
    ] {
        let cfg = OptimizationConfig {
            objective,
            ..paper_config(BenchId::B1, opts, 0.01)
        };
        let r = session.optimize(&cfg)?;
        let gflops = r.best.paper.flops().unwrap_or(0) as f64 / 1e9;
        rows.push(vec![
            label.to_string(),
            f(r.best.latency_ms, 2),
            format!("{:.2}x", r.speedup),
            f(gflops, 2),
        ]);
    }
    reporter.print_table(
        "Ablation: optimization objective",
        &["objective", "best latency (ms)", "latency speedup", "best GFLOPs"],
        &rows,
    );

    // Weight inheritance: compare fine-tune epochs spent when mutating
    // elites (inheritance on) vs a random policy that always starts from
    // the teachers. The search-time gap isolates the Figure 2 mechanism.
    let mut rows = Vec::new();
    for (label, policy) in [
        ("SA + inheritance", PolicyKind::SimulatedAnnealing),
        ("random (no inheritance)", PolicyKind::RandomSampling),
    ] {
        let cfg = OptimizationConfig {
            policy,
            ..paper_config(BenchId::B1, opts, 0.01)
        };
        let r = session.optimize(&cfg)?;
        let mean_epochs = if r.evaluated > 0 {
            r.trace.iter().map(|t| t.epochs).sum::<usize>() as f64 / r.evaluated as f64
        } else {
            0.0
        };
        rows.push(vec![
            label.to_string(),
            f(r.best.latency_ms, 2),
            format!("{:.2}x", r.speedup),
            f(r.virtual_hours, 2),
            f(mean_epochs, 1),
        ]);
    }
    reporter.print_table(
        "Ablation: elite weight inheritance",
        &["policy", "best latency (ms)", "speedup", "search time (h)", "mean epochs/candidate"],
        &rows,
    );
    Ok(())
}
