//! One module per table/figure of the paper's evaluation.

pub mod ablations;
pub mod alloc;
pub mod batched;
pub mod fig1;
pub mod fig2;
pub mod fig3;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod kernels;
pub mod table3;
pub mod table4;
pub mod table6;
