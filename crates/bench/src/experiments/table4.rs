//! Table 4: model fusion vs multi-task learning (§6.3).
//!
//! Compares, per benchmark, the All-shared baseline, the TreeMTL
//! recommender, and GMorph at the 1% budget. Expected shape: GMorph gives
//! similar-or-higher speedups without the over-sharing accuracy failures
//! (B2) or under-sharing speedup limits (B3/B4), and is the only approach
//! applicable on cross-backbone benchmarks (B5/B6/B7).

use crate::common::{paper_config, pct, ExperimentOpts, Reporter};
use gmorph::baselines;
use gmorph::graph::{parser, CapacityVector};
use gmorph::perf::accuracy::{surrogate_asymptote, SurrogateParams};
use gmorph::perf::estimator::{estimate_latency_ms, Backend};
use gmorph::prelude::*;

/// Evaluated baseline: accuracy drop (trained to convergence) + speedup.
fn eval_baseline(
    session: &Session,
    paper_graph: &AbsGraph,
    mini_graph: &AbsGraph,
) -> gmorph::tensor::Result<(f32, f64)> {
    let orig_paper = parser::parse_specs(&session.bench.paper)?;
    let orig_latency = estimate_latency_ms(&orig_paper, Backend::Eager)?;
    let latency = estimate_latency_ms(paper_graph, Backend::Eager)?;
    // Baselines train to convergence (the paper notes this favours them),
    // so their drop is the asymptotic surrogate value.
    let orig_cv = CapacityVector::of(&session.mini_graph)?;
    let drop = surrogate_asymptote(mini_graph, &orig_cv, &SurrogateParams::default(), 0)?;
    Ok((drop.max(0.0), orig_latency / latency))
}

/// Runs the Table 4 experiment.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let reporter = Reporter::new(&opts.out_dir);
    let benches = if opts.quick {
        vec![BenchId::B1, BenchId::B3]
    } else {
        BenchId::all().to_vec()
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for id in benches {
        let session = crate::common::session_for(id, opts)?;
        let shareable = baselines::common_prefix_len(&session.bench.mini) > 0;

        let (all_shared_cell, tree_cell, all_csv, tree_csv) = if shareable {
            let as_mini = baselines::all_shared(&session.bench.mini)?;
            let as_paper = baselines::all_shared(&session.bench.paper)?;
            let (as_drop, as_speedup) = eval_baseline(&session, &as_paper, &as_mini)?;

            let tm_mini = baselines::treemtl_recommend(&session.bench.mini, 0.01)?;
            let tm_paper = baselines::treemtl_recommend(&session.bench.paper, 0.01)?;
            let (tm_drop, tm_speedup) = eval_baseline(&session, &tm_paper, &tm_mini)?;
            (
                format!("{} / {:.2}x", pct(as_drop), as_speedup),
                format!("{} / {:.2}x", pct(tm_drop), tm_speedup),
                format!("{as_drop:.4},{as_speedup:.3}"),
                format!("{tm_drop:.4},{tm_speedup:.3}"),
            )
        } else {
            (
                "- (no identical layers)".to_string(),
                "- (no identical layers)".to_string(),
                ",".to_string(),
                ",".to_string(),
            )
        };

        let cfg = paper_config(id, opts, 0.01);
        let result = session.optimize(&cfg)?;
        rows.push(vec![
            id.to_string(),
            all_shared_cell,
            tree_cell,
            format!(
                "{} / {:.2}x",
                pct(result.best.drop.max(0.0)),
                result.speedup
            ),
        ]);
        csv.push(vec![
            id.to_string(),
            all_csv,
            tree_csv,
            format!("{:.4},{:.3}", result.best.drop.max(0.0), result.speedup),
        ]);
    }
    reporter.write_csv(
        "table4.csv",
        &["bench", "all_shared(drop,speedup)", "treemtl(drop,speedup)", "gmorph(drop,speedup)"],
        &csv,
    );
    reporter.print_table(
        "Table 4: accuracy drop / speedup — MTL baselines vs GMorph @1% budget",
        &["bench", "All-shared", "TreeMTL", "GMorph"],
        &rows,
    );
    Ok(())
}
