//! Figure 7 + Tables 5/7/8/9: the main evaluation grid.
//!
//! For every benchmark (B1-B7), accuracy budget (0%/1%/2%), and GMorph
//! variant (basic, +P, +P+R), run a full graph-mutation search and report
//! normalized latency, speedups, and search time (virtual hours).

use crate::common::{f, paper_config, ExperimentOpts, Reporter};
use gmorph::prelude::*;

/// One grid cell's outcome.
#[derive(Debug, Clone)]
pub struct Cell {
    /// Benchmark.
    pub bench: BenchId,
    /// Accuracy budget.
    pub threshold: f32,
    /// Variant name ("GMorph", "GMorph w P", "GMorph w P+R").
    pub variant: &'static str,
    /// Search outcome.
    pub result: SearchResult,
}

/// The three GMorph variants of §6.1.
pub const VARIANTS: [&str; 3] = ["GMorph", "GMorph w P", "GMorph w P+R"];

fn variant_config(base: OptimizationConfig, variant: &str) -> OptimizationConfig {
    match variant {
        "GMorph" => base,
        "GMorph w P" => base.with_p(),
        "GMorph w P+R" => base.with_p_r(),
        other => panic!("unknown variant {other}"),
    }
}

/// Runs the full grid (shared by Figure 7, Tables 5/7/8/9).
pub fn run_grid(opts: &ExperimentOpts) -> gmorph::tensor::Result<Vec<Cell>> {
    let mut cells = Vec::new();
    let benches = if opts.quick {
        vec![BenchId::B1, BenchId::B4]
    } else {
        BenchId::all().to_vec()
    };
    for id in benches {
        let session = crate::common::session_for(id, opts)?;
        for &threshold in &[0.0f32, 0.01, 0.02] {
            for variant in VARIANTS {
                let cfg = variant_config(paper_config(id, opts, threshold), variant);
                let result = session.optimize(&cfg)?;
                println!(
                    "  {id} <{:>2.0}% {:14}: {:7.2} ms -> {:7.2} ms ({:.2}x), ST {:6.2} h, {} evaluated / {} filtered / {} early-terminated",
                    threshold * 100.0,
                    variant,
                    result.original_latency_ms,
                    result.best.latency_ms,
                    result.speedup,
                    result.virtual_hours,
                    result.evaluated,
                    result.rule_filtered,
                    result.early_terminated,
                );
                cells.push(Cell {
                    bench: id,
                    threshold,
                    variant,
                    result,
                });
            }
        }
    }
    Ok(cells)
}

/// Emits Figure 7 and Tables 7/8/9 from grid cells.
pub fn report_latency_tables(cells: &[Cell], reporter: &Reporter) {
    let mut csv = Vec::new();
    for c in cells {
        csv.push(vec![
            c.bench.to_string(),
            format!("{}", c.threshold),
            c.variant.to_string(),
            f(c.result.original_latency_ms, 2),
            f(c.result.best.latency_ms, 2),
            f(c.result.speedup, 2),
            format!("{:.4}", c.result.best.drop.max(0.0)),
        ]);
    }
    reporter.write_csv(
        "fig7.csv",
        &[
            "bench",
            "threshold",
            "variant",
            "orig_ms",
            "best_ms",
            "speedup",
            "drop",
        ],
        &csv,
    );

    for (t_idx, &threshold) in [0.0f32, 0.01, 0.02].iter().enumerate() {
        let mut rows = Vec::new();
        let benches: Vec<BenchId> = {
            let mut seen = Vec::new();
            for c in cells {
                if !seen.contains(&c.bench) {
                    seen.push(c.bench);
                }
            }
            seen
        };
        for id in benches {
            let mut row = vec![id.to_string()];
            let orig = cells
                .iter()
                .find(|c| c.bench == id && c.threshold == threshold)
                .map(|c| c.result.original_latency_ms)
                .unwrap_or(f64::NAN);
            row.push(f(orig, 2));
            for variant in VARIANTS {
                if let Some(c) = cells.iter().find(|c| {
                    c.bench == id && c.threshold == threshold && c.variant == variant
                }) {
                    row.push(f(c.result.best.latency_ms, 2));
                    row.push(format!("{:.2}x", c.result.speedup));
                } else {
                    row.push("-".into());
                    row.push("-".into());
                }
            }
            rows.push(row);
        }
        reporter.print_table(
            &format!(
                "Table {} / Figure 7: latency (ms) and speedup, accuracy drop < {:.0}%",
                7 + t_idx,
                threshold * 100.0
            ),
            &[
                "bench",
                "Original",
                "GMorph",
                "(x)",
                "GMorph w P",
                "(x)",
                "GMorph w P+R",
                "(x)",
            ],
            &rows,
        );
    }
}

/// Emits Table 5 (search time and savings) from grid cells.
pub fn report_search_time(cells: &[Cell], reporter: &Reporter) {
    let mut csv = Vec::new();
    let mut rows = Vec::new();
    let benches: Vec<BenchId> = {
        let mut seen = Vec::new();
        for c in cells {
            if !seen.contains(&c.bench) {
                seen.push(c.bench);
            }
        }
        seen
    };
    for id in benches {
        for &threshold in &[0.0f32, 0.01, 0.02] {
            let get = |variant: &str| -> Option<f64> {
                cells
                    .iter()
                    .find(|c| {
                        c.bench == id && c.threshold == threshold && c.variant == variant
                    })
                    .map(|c| c.result.virtual_hours)
            };
            let (Some(base), Some(p), Some(pr)) = (
                get("GMorph"),
                get("GMorph w P"),
                get("GMorph w P+R"),
            ) else {
                continue;
            };
            let saving = |x: f64| {
                if base > 0.0 {
                    format!("{:.0}%", (1.0 - x / base) * 100.0)
                } else {
                    "-".into()
                }
            };
            rows.push(vec![
                id.to_string(),
                format!("{:.0}%", threshold * 100.0),
                f(base, 2),
                f(p, 2),
                saving(p),
                f(pr, 2),
                saving(pr),
            ]);
            csv.push(vec![
                id.to_string(),
                format!("{}", threshold),
                f(base, 4),
                f(p, 4),
                f(pr, 4),
            ]);
        }
    }
    reporter.write_csv(
        "table5.csv",
        &["bench", "threshold", "st_gmorph_h", "st_p_h", "st_pr_h"],
        &csv,
    );
    reporter.print_table(
        "Table 5: search time (virtual hours) and savings from predictive filtering",
        &["bench", "budget", "GMorph", "w P", "saving", "w P+R", "saving"],
        &rows,
    );
}

/// Runs Figure 7 (and Tables 5/7/8/9) end to end.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let reporter = Reporter::new(&opts.out_dir);
    println!("running the B1-B7 x threshold x variant grid ({} iterations each)...", opts.iterations);
    let cells = run_grid(opts)?;
    report_latency_tables(&cells, &reporter);
    report_search_time(&cells, &reporter);
    Ok(())
}
