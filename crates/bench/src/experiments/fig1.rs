//! Figure 1: accuracy drop vs inference speedup for randomly sampled
//! feature-sharing configurations, split by input-shape similarity.
//!
//! Reproduces the paper's motivating study (§2.1): candidates whose shared
//! pairs have *similar* input shapes (≥1 equal dimension) should dominate
//! the Pareto frontier over pairs with completely different shapes.

use crate::common::{f, pct, ExperimentOpts, Reporter};
use gmorph::graph::pairs::PairPolicy;
use gmorph::perf::accuracy::FinetuneConfig;
use gmorph::perf::estimator::{estimate_latency_ms, Backend};
use gmorph::prelude::*;
use gmorph::search::driver::propose_candidate;

/// One sampled multi-task model.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Which sub-figure ("3xVGG16" or "ResNet18+34").
    pub setting: &'static str,
    /// "similar" or "dissimilar" pair class.
    pub shape_class: &'static str,
    /// Inference speedup over the original multi-DNNs.
    pub speedup: f64,
    /// Accuracy drop after fine-tuning.
    pub drop: f32,
}

/// Samples and evaluates candidates under one pair policy.
fn sample_class(
    session: &Session,
    policy: PairPolicy,
    class: &'static str,
    setting: &'static str,
    n: usize,
    opts: &ExperimentOpts,
) -> gmorph::tensor::Result<Vec<Sample>> {
    let mode = session.eval_mode(opts.mode)?;
    let orig_latency = estimate_latency_ms(&session.paper_graph, Backend::Eager)?;
    let n_tasks = session.bench.mini.len();
    // Mirror the study setup: one sharing action per extra model ("if
    // there are three DNNs, we perform the action twice").
    let ops = (n_tasks - 1).max(1);
    // Fine-tune to convergence: the study measures final drops, so no
    // early stop on a target.
    let cfg = FinetuneConfig {
        max_epochs: 35,
        eval_every: 5,
        target_drop: -1.0,
        lr: 1e-3,
        batch: 64,
        ..Default::default()
    };
    let mut rng = Rng::new(opts.seed ^ 0xF161 ^ class.len() as u64);
    let mut out = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while out.len() < n && attempts < n * 6 {
        attempts += 1;
        let Some((mini, paper)) = propose_candidate(
            &session.mini_graph,
            &session.paper_graph,
            policy,
            ops,
            &mut rng,
        )?
        else {
            break;
        };
        let latency = estimate_latency_ms(&paper, Backend::Eager)?;
        let ev = mode.evaluate(
            &mini,
            &session.weights,
            &cfg,
            &mut rng,
            opts.seed ^ attempts as u64,
        )?;
        out.push(Sample {
            setting,
            shape_class: class,
            speedup: orig_latency / latency,
            drop: ev.result.final_drop.max(0.0),
        });
    }
    Ok(out)
}

/// Runs the Figure 1 experiment.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let reporter = Reporter::new(&opts.out_dir);
    let n = opts.scaled(200, 16);
    let mut samples = Vec::new();
    for (id, setting) in [(BenchId::B2, "3xVGG16"), (BenchId::B4, "ResNet18+34")] {
        let session = crate::common::session_for(id, opts)?;
        samples.extend(sample_class(
            &session,
            PairPolicy::SimilarShape,
            "similar",
            setting,
            n,
            opts,
        )?);
        samples.extend(sample_class(
            &session,
            PairPolicy::DissimilarShape,
            "dissimilar",
            setting,
            n,
            opts,
        )?);
    }

    let rows: Vec<Vec<String>> = samples
        .iter()
        .map(|s| {
            vec![
                s.setting.to_string(),
                s.shape_class.to_string(),
                f(s.speedup, 4),
                format!("{:.5}", s.drop),
            ]
        })
        .collect();
    reporter.write_csv("fig1.csv", &["setting", "shape_class", "speedup", "drop"], &rows);

    // Summary: per setting and class, the mean drop in speedup buckets,
    // and the Pareto check the paper's insight rests on.
    for setting in ["3xVGG16", "ResNet18+34"] {
        let mut rows = Vec::new();
        for class in ["similar", "dissimilar"] {
            let subset: Vec<&Sample> = samples
                .iter()
                .filter(|s| s.setting == setting && s.shape_class == class)
                .collect();
            if subset.is_empty() {
                continue;
            }
            let mean_speedup =
                subset.iter().map(|s| s.speedup).sum::<f64>() / subset.len() as f64;
            let mean_drop =
                subset.iter().map(|s| s.drop).sum::<f32>() / subset.len() as f32;
            let max_drop = subset.iter().map(|s| s.drop).fold(0.0f32, f32::max);
            let lossless = subset.iter().filter(|s| s.drop <= 0.005).count();
            rows.push(vec![
                class.to_string(),
                subset.len().to_string(),
                f(mean_speedup, 2),
                pct(mean_drop),
                pct(max_drop),
                format!("{lossless}/{}", subset.len()),
            ]);
        }
        reporter.print_table(
            &format!("Figure 1 ({setting}): sharing by input-shape similarity"),
            &[
                "class",
                "samples",
                "mean speedup",
                "mean drop",
                "max drop",
                "≈lossless",
            ],
            &rows,
        );
    }

    // Pareto dominance check: for matched speedup levels, similar-shape
    // sharing must incur lower drops on average.
    for setting in ["3xVGG16", "ResNet18+34"] {
        let stat = |class: &str| -> (f32, usize) {
            let subset: Vec<&Sample> = samples
                .iter()
                .filter(|s| s.setting == setting && s.shape_class == class && s.speedup > 1.05)
                .collect();
            if subset.is_empty() {
                return (0.0, 0);
            }
            (
                subset.iter().map(|s| s.drop).sum::<f32>() / subset.len() as f32,
                subset.len(),
            )
        };
        let (sim, ns) = stat("similar");
        let (dis, nd) = stat("dissimilar");
        if ns > 0 && nd > 0 {
            println!(
                "{setting}: mean drop at >1.05x — similar {:.2}% (n={ns}) vs dissimilar {:.2}% (n={nd}) {}",
                sim * 100.0,
                dis * 100.0,
                if sim < dis { "✓ similar dominates" } else { "✗ UNEXPECTED" }
            );
        }
    }
    Ok(())
}
