//! Kernel-engine microbenchmark: blocked/threaded kernels vs the seed's
//! single-threaded naive loops, written as machine-readable JSON.
//!
//! Emits `BENCH_kernels.json` in the output directory — a JSON array of
//! `{op, shape, threads, ns_per_iter}` records — so CI and scripts can
//! track kernel throughput without parsing criterion output.

use crate::ExperimentOpts;
use gmorph::tensor::conv::{conv2d_forward, Conv2dGeom};
use gmorph::tensor::rng::Rng;
use gmorph::tensor::{engine, gemm, Tensor};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct Record {
    op: String,
    shape: String,
    threads: usize,
    ns_per_iter: f64,
}

/// Times `f` as min-over-samples nanoseconds per call.
fn time_ns(iters: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    // One warmup sample, then keep the fastest to suppress scheduler noise.
    for _ in 0..iters {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

fn gemm_records(opts: &ExperimentOpts, records: &mut Vec<Record>) {
    let mut rng = Rng::new(opts.seed);
    let dim = if opts.quick { 128 } else { 256 };
    let a = Tensor::randn(&[dim, dim], 1.0, &mut rng);
    let b = Tensor::randn(&[dim, dim], 1.0, &mut rng);
    let shape = format!("{dim}x{dim}x{dim}");
    let (iters, samples) = if opts.quick { (2, 3) } else { (4, 5) };

    records.push(Record {
        op: "gemm_naive".to_string(),
        shape: shape.clone(),
        threads: 1,
        ns_per_iter: time_ns(iters, samples, || {
            black_box(gemm::naive::matmul(black_box(&a), black_box(&b)).unwrap());
        }),
    });
    for threads in [1usize, engine::num_threads().max(2)] {
        engine::with_thread_limit(threads, || {
            records.push(Record {
                op: "gemm_blocked".to_string(),
                shape: shape.clone(),
                threads,
                ns_per_iter: time_ns(iters, samples, || {
                    black_box(gemm::matmul(black_box(&a), black_box(&b)).unwrap());
                }),
            });
        });
    }
}

fn conv_records(opts: &ExperimentOpts, records: &mut Vec<Record>) {
    let mut rng = Rng::new(opts.seed ^ 1);
    let x = Tensor::randn(&[8, 8, 16, 16], 1.0, &mut rng);
    let w = Tensor::randn(&[16, 8, 3, 3], 0.5, &mut rng);
    let geom = Conv2dGeom::new(3, 1, 1).unwrap();
    let (iters, samples) = if opts.quick { (3, 3) } else { (8, 5) };
    for threads in [1usize, engine::num_threads().max(2)] {
        engine::with_thread_limit(threads, || {
            records.push(Record {
                op: "conv2d".to_string(),
                shape: "8x8x16x16/k3s1p1".to_string(),
                threads,
                ns_per_iter: time_ns(iters, samples, || {
                    black_box(
                        conv2d_forward(black_box(&x), black_box(&w), None, geom).unwrap(),
                    );
                }),
            });
        });
    }
}

/// Runs the kernel microbenchmarks and writes `BENCH_kernels.json`.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let mut records = Vec::new();
    gemm_records(opts, &mut records);
    conv_records(opts, &mut records);

    println!("{:<14} {:>16} {:>8} {:>14}", "op", "shape", "threads", "ns/iter");
    let mut json = String::from("[\n");
    for (i, r) in records.iter().enumerate() {
        println!(
            "{:<14} {:>16} {:>8} {:>14.0}",
            r.op, r.shape, r.threads, r.ns_per_iter
        );
        let _ = writeln!(
            json,
            "  {{\"op\": \"{}\", \"shape\": \"{}\", \"threads\": {}, \"ns_per_iter\": {:.0}}}{}",
            r.op,
            r.shape,
            r.threads,
            r.ns_per_iter,
            if i + 1 == records.len() { "" } else { "," }
        );
    }
    json.push_str("]\n");

    std::fs::create_dir_all(&opts.out_dir).ok();
    let path = opts.out_dir.join("BENCH_kernels.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[wrote {}]", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_machine_readable_json() {
        let dir = std::env::temp_dir().join("gmorph_bench_kernels_test");
        let opts = ExperimentOpts {
            quick: true,
            out_dir: dir.clone(),
            ..Default::default()
        };
        run(&opts).unwrap();
        let text = std::fs::read_to_string(dir.join("BENCH_kernels.json")).unwrap();
        assert!(text.trim_start().starts_with('['));
        assert!(text.contains("\"op\": \"gemm_blocked\""));
        assert!(text.contains("\"op\": \"gemm_naive\""));
        assert!(text.contains("\"op\": \"conv2d\""));
        assert!(text.contains("\"ns_per_iter\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
