//! Figure 2: fine-tuning time vs inference speedup, comparing candidates
//! mutated from the original multi-DNNs against candidates mutated from
//! previously satisfying elites (§2.2.2).
//!
//! Expected shape: mutations of elites reach higher speedups and need
//! markedly less fine-tuning time because they inherit well-trained
//! weights.

use crate::common::{f, ExperimentOpts, Reporter};
use gmorph::prelude::*;
use gmorph::search::driver::CandidateStatus;

/// Runs the Figure 2 experiment on B1 (three VGG-13 face models).
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let reporter = Reporter::new(&opts.out_dir);
    let session = crate::common::session_for(BenchId::B1, opts)?;
    let mut rows = Vec::new();
    let mut summary = Vec::new();
    for &threshold in &[0.01f32, 0.02] {
        let mut cfg = crate::common::paper_config(BenchId::B1, opts, threshold);
        cfg.iterations = opts.scaled(opts.iterations, 20);
        let result = session.optimize(&cfg)?;
        let orig = result.original_latency_ms;

        let mut last_hours = 0.0f64;
        let mut stats: [(f64, f64, usize); 2] = [(0.0, 0.0, 0); 2]; // (Σtime, Σspeedup, n)
        for rec in &result.trace {
            let cost_seconds = (rec.virtual_hours - last_hours) * 3600.0;
            last_hours = rec.virtual_hours;
            if !matches!(
                rec.status,
                CandidateStatus::Evaluated | CandidateStatus::TerminatedEarly
            ) || !rec.met_target
            {
                continue;
            }
            let speedup = orig / rec.candidate_latency_ms;
            rows.push(vec![
                format!("{threshold}"),
                if rec.from_elite { "from_another" } else { "from_original" }.to_string(),
                f(cost_seconds, 1),
                f(speedup, 3),
            ]);
            let slot = usize::from(rec.from_elite);
            stats[slot].0 += cost_seconds;
            stats[slot].1 += speedup;
            stats[slot].2 += 1;
        }
        for (slot, label) in [(0usize, "from original"), (1, "from another (elite)")] {
            let (t, s, n) = stats[slot];
            if n > 0 {
                summary.push(vec![
                    format!("{:.0}%", threshold * 100.0),
                    label.to_string(),
                    n.to_string(),
                    f(t / n as f64, 1),
                    f(s / n as f64, 2),
                ]);
            }
        }
    }
    reporter.write_csv(
        "fig2.csv",
        &["threshold", "base", "finetune_seconds", "speedup"],
        &rows,
    );
    reporter.print_table(
        "Figure 2: fine-tune time vs speedup by mutation base (B1)",
        &["budget", "base", "n", "mean finetune (s)", "mean speedup"],
        &summary,
    );
    // The paper's claim: elites give more speedup for less fine-tuning.
    println!(
        "expected: 'from another (elite)' rows show lower mean finetune time and higher mean speedup"
    );
    Ok(())
}
