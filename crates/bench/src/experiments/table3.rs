//! Table 3: latency of the original models and GMorph's fused model on
//! both execution backends (Eager ≈ PyTorch, Fused ≈ TensorRT), at the 2%
//! accuracy budget.
//!
//! Expected shape: GMorph's speedup persists on the compiled backend —
//! model fusion is complementary to graph-compiler optimizations. We also
//! report *measured* wall-clock latencies of the mini-scale models on this
//! CPU as ground truth for the relative ordering.

use crate::common::{f, paper_config, ExperimentOpts, Reporter};
use gmorph::perf::compile::compile_for_inference;
use gmorph::perf::estimator::{estimate_latency_ms, measure_latency_ms};
use gmorph::prelude::*;

/// Runs the Table 3 experiment.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let reporter = Reporter::new(&opts.out_dir);
    let benches = if opts.quick {
        vec![BenchId::B1, BenchId::B4]
    } else {
        BenchId::all().to_vec()
    };
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for id in benches {
        let session = crate::common::session_for(id, opts)?;
        let cfg = paper_config(id, opts, 0.02);
        let result = session.optimize(&cfg)?;

        let orig_eager = estimate_latency_ms(&session.paper_graph, Backend::Eager)?;
        let orig_fused = estimate_latency_ms(&session.paper_graph, Backend::Fused)?;
        let best_eager = estimate_latency_ms(&result.best.paper, Backend::Eager)?;
        let best_fused = estimate_latency_ms(&result.best.paper, Backend::Fused)?;

        // Measured mini-scale ground truth (batch 1).
        let mut x_dims = vec![1usize];
        x_dims.extend_from_slice(&session.mini_graph.input_shape);
        let x = session.split.test.inputs.select_rows(&[0])?;
        debug_assert_eq!(x.dims(), x_dims.as_slice());
        let mut orig_tree = session.materialize(&session.mini_graph, &session.weights)?;
        let mut best_tree = session.materialize(&result.best.mini, &result.best.weights)?;
        let meas_orig = measure_latency_ms(&mut orig_tree, &x, 1, 7)?;
        let meas_best = measure_latency_ms(&mut best_tree, &x, 1, 7)?;
        // Real inference compilation (batch-norm folding): GMorph's win
        // must survive actual compilation, not just the analytic model.
        let (mut orig_compiled, _) = compile_for_inference(&orig_tree)?;
        let (mut best_compiled, _) = compile_for_inference(&best_tree)?;
        let meas_orig_c = measure_latency_ms(&mut orig_compiled, &x, 1, 7)?;
        let meas_best_c = measure_latency_ms(&mut best_compiled, &x, 1, 7)?;

        rows.push(vec![
            id.to_string(),
            f(orig_eager, 2),
            f(best_eager, 2),
            format!("{:.2}x", orig_eager / best_eager),
            f(orig_fused, 2),
            f(best_fused, 2),
            format!("{:.2}x", orig_fused / best_fused),
            format!("{:.2}x", meas_orig / meas_best),
            format!("{:.2}x", meas_orig_c / meas_best_c),
        ]);
        csv.push(vec![
            id.to_string(),
            f(orig_eager, 4),
            f(best_eager, 4),
            f(orig_fused, 4),
            f(best_fused, 4),
            f(meas_orig, 4),
            f(meas_best, 4),
            f(meas_orig_c, 4),
            f(meas_best_c, 4),
        ]);
    }
    reporter.write_csv(
        "table3.csv",
        &[
            "bench",
            "orig_eager_ms",
            "gmorph_eager_ms",
            "orig_fused_ms",
            "gmorph_fused_ms",
            "measured_orig_ms",
            "measured_gmorph_ms",
            "compiled_orig_ms",
            "compiled_gmorph_ms",
        ],
        &csv,
    );
    reporter.print_table(
        "Table 3: Eager (PyTorch-like) vs Fused (TensorRT-like) latency, accuracy drop < 2%",
        &[
            "bench",
            "Orig eager",
            "GMorph eager",
            "speedup",
            "Orig fused",
            "GMorph fused",
            "speedup",
            "measured speedup",
            "compiled speedup",
        ],
        &rows,
    );
    Ok(())
}
