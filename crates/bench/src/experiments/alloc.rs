//! Allocation benchmark: buffer pool and fused epilogues on the hot path.
//!
//! Measures the same workloads with the tensor buffer pool disabled and
//! enabled (checkout/checkin of im2col scratch, GEMM packing buffers, and
//! layer outputs), and the eval forward with activations fused into the
//! kernel epilogue versus run as separate passes. Emits `BENCH_alloc.json`
//! in the output directory:
//!
//! ```json
//! {
//!   "records": [{"op", "config", "ns_per_iter"}, ...],
//!   "speedups": {"conv_forward": x, "finetune_step": y, "fused_eval": z}
//! }
//! ```
//!
//! so CI can track the before/after numbers without parsing criterion
//! output.

use crate::ExperimentOpts;
use gmorph::nn::{Block, Mode};
use gmorph::tensor::conv::{conv2d_forward, Conv2dGeom};
use gmorph::tensor::ops::{relu_forward, Activation};
use gmorph::tensor::rng::Rng;
use gmorph::tensor::{buffer, gemm, Tensor};
use std::fmt::Write as _;
use std::hint::black_box;
use std::time::Instant;

struct Record {
    op: &'static str,
    config: &'static str,
    ns_per_iter: f64,
}

/// Times `f` as min-over-samples nanoseconds per call.
fn time_ns(iters: usize, samples: usize, mut f: impl FnMut()) -> f64 {
    for _ in 0..iters {
        f();
    }
    let mut best = f64::INFINITY;
    for _ in 0..samples {
        let start = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(start.elapsed().as_nanos() as f64 / iters as f64);
    }
    best
}

/// Runs `f` once with the pool off and once with it on (cleared first so
/// the "on" run starts cold and warms during the warmup iterations).
fn with_pool_off_on(mut f: impl FnMut() -> f64) -> (f64, f64) {
    buffer::set_enabled(Some(false));
    buffer::clear();
    let off = f();
    buffer::set_enabled(Some(true));
    buffer::clear();
    let on = f();
    buffer::set_enabled(None);
    buffer::clear();
    (off, on)
}

/// Conv forward with a large im2col footprint: without the pool every call
/// allocates (and the allocator often mmaps) ~1 MiB of scratch per sample.
fn conv_forward_records(opts: &ExperimentOpts, records: &mut Vec<Record>) -> f64 {
    let mut rng = Rng::new(opts.seed);
    let x = Tensor::randn(&[8, 32, 32, 32], 1.0, &mut rng);
    let w = Tensor::randn(&[8, 32, 3, 3], 0.5, &mut rng);
    let b = Tensor::randn(&[8], 0.1, &mut rng);
    let geom = Conv2dGeom::new(3, 1, 1).unwrap();
    let (iters, samples) = if opts.quick { (3, 3) } else { (10, 5) };

    let (off, on) = with_pool_off_on(|| {
        time_ns(iters, samples, || {
            black_box(conv2d_forward(black_box(&x), black_box(&w), Some(&b), geom).unwrap());
        })
    });
    records.push(Record {
        op: "conv_forward",
        config: "pool_off",
        ns_per_iter: off,
    });
    records.push(Record {
        op: "conv_forward",
        config: "pool_on",
        ns_per_iter: on,
    });
    off / on
}

/// One fine-tuning step (train forward + backward) of a small conv stack:
/// the steady-state loop the pool targets — im2col scratch, packing
/// buffers, col2im targets, and gradient buffers all recycle.
fn finetune_step_records(opts: &ExperimentOpts, records: &mut Vec<Record>) -> f64 {
    let mut rng = Rng::new(opts.seed ^ 2);
    let mut b1 = Block::conv_relu(16, 32, &mut rng).unwrap();
    let mut b2 = Block::conv_relu(32, 32, &mut rng).unwrap();
    let x = Tensor::randn(&[4, 16, 24, 24], 1.0, &mut rng);
    let (iters, samples) = if opts.quick { (2, 3) } else { (6, 10) };

    let (off, on) = with_pool_off_on(|| {
        time_ns(iters, samples, || {
            let h = b1.forward(&x, Mode::Train).unwrap();
            let y = b2.forward(&h, Mode::Train).unwrap();
            let g = b2.backward(&Tensor::ones(y.dims())).unwrap();
            black_box(b1.backward(&g).unwrap());
        })
    });
    records.push(Record {
        op: "finetune_step",
        config: "pool_off",
        ns_per_iter: off,
    });
    records.push(Record {
        op: "finetune_step",
        config: "pool_on",
        ns_per_iter: on,
    });
    off / on
}

/// `Linear→bias→ReLU` as three separate passes versus one fused-epilogue
/// dispatch (pool enabled for both). The thin inner dimension makes the
/// GEMM memory-bound, which is where folding the bias/activation passes
/// into the output write pays — on compute-bound shapes (or tanh-heavy
/// GELU) fusion is a wash and its value is the elided intermediate.
fn fused_eval_records(opts: &ExperimentOpts, records: &mut Vec<Record>) -> f64 {
    let mut rng = Rng::new(opts.seed ^ 3);
    let a = Tensor::randn(&[512, 16], 1.0, &mut rng);
    let w = Tensor::randn(&[512, 16], 0.5, &mut rng);
    let bias = Tensor::randn(&[512], 0.1, &mut rng);
    let (iters, samples) = if opts.quick { (20, 3) } else { (100, 5) };

    buffer::set_enabled(Some(true));
    buffer::clear();
    let unfused_ns = time_ns(iters, samples, || {
        let mut y = gemm::matmul_nt(black_box(&a), black_box(&w)).unwrap();
        gemm::add_bias_rows(&mut y, &bias).unwrap();
        black_box(relu_forward(&y));
    });
    let fused_ns = time_ns(iters, samples, || {
        black_box(
            gemm::matmul_nt_bias_act(black_box(&a), black_box(&w), Some(&bias), Activation::Relu)
                .unwrap(),
        );
    });
    buffer::set_enabled(None);
    buffer::clear();

    records.push(Record {
        op: "linear_relu",
        config: "unfused",
        ns_per_iter: unfused_ns,
    });
    records.push(Record {
        op: "linear_relu",
        config: "fused",
        ns_per_iter: fused_ns,
    });
    unfused_ns / fused_ns
}

/// Runs the allocation benchmarks and writes `BENCH_alloc.json`.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let mut records = Vec::new();
    let conv_speedup = conv_forward_records(opts, &mut records);
    let step_speedup = finetune_step_records(opts, &mut records);
    let fused_speedup = fused_eval_records(opts, &mut records);

    println!("{:<16} {:>10} {:>14}", "op", "config", "ns/iter");
    let mut json = String::from("{\n  \"records\": [\n");
    for (i, r) in records.iter().enumerate() {
        println!("{:<16} {:>10} {:>14.0}", r.op, r.config, r.ns_per_iter);
        let _ = writeln!(
            json,
            "    {{\"op\": \"{}\", \"config\": \"{}\", \"ns_per_iter\": {:.0}}}{}",
            r.op,
            r.config,
            r.ns_per_iter,
            if i + 1 == records.len() { "" } else { "," }
        );
    }
    json.push_str("  ],\n  \"speedups\": {\n");
    let _ = writeln!(json, "    \"conv_forward\": {conv_speedup:.3},");
    let _ = writeln!(json, "    \"finetune_step\": {step_speedup:.3},");
    let _ = writeln!(json, "    \"fused_eval\": {fused_speedup:.3}");
    json.push_str("  }\n}\n");
    println!(
        "speedups: conv_forward {conv_speedup:.2}x, finetune_step {step_speedup:.2}x, \
         fused_eval {fused_speedup:.2}x"
    );

    std::fs::create_dir_all(&opts.out_dir).ok();
    let path = opts.out_dir.join("BENCH_alloc.json");
    if let Err(e) = std::fs::write(&path, json) {
        eprintln!("warning: could not write {}: {e}", path.display());
    } else {
        println!("[wrote {}]", path.display());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_machine_readable_json() {
        let dir = std::env::temp_dir().join("gmorph_bench_alloc_test");
        let opts = ExperimentOpts {
            quick: true,
            out_dir: dir.clone(),
            ..Default::default()
        };
        run(&opts).unwrap();
        let text = std::fs::read_to_string(dir.join("BENCH_alloc.json")).unwrap();
        assert!(text.trim_start().starts_with('{'));
        assert!(text.contains("\"op\": \"conv_forward\""));
        assert!(text.contains("\"config\": \"pool_on\""));
        assert!(text.contains("\"op\": \"finetune_step\""));
        assert!(text.contains("\"config\": \"fused\""));
        assert!(text.contains("\"speedups\""));
        std::fs::remove_dir_all(&dir).ok();
    }
}
