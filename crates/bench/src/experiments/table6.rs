//! Table 6 (Appendix A): per-task teacher models, datasets, and scores.
//!
//! Trains (or loads cached) teachers for all benchmarks with *real*
//! training and reports their held-out test scores — the accuracy anchors
//! every drop in the evaluation is measured against.

use crate::common::{ExperimentOpts, Reporter};
use gmorph::prelude::*;

fn dataset_name(id: BenchId) -> &'static str {
    match id {
        BenchId::B1 => "SynthFaces (UTKFace stand-in)",
        BenchId::B2 | BenchId::B3 => "SynthFaces (FER2013+Adience stand-in)",
        BenchId::B4 | BenchId::B5 | BenchId::B6 => "SynthScenes (VOC2007+SOS stand-in)",
        BenchId::B7 => "SynthText (CoLA+SST-2 stand-in)",
    }
}

/// Runs the Table 6 report.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let reporter = Reporter::new(&opts.out_dir);
    let mut rows = Vec::new();
    let mut csv = Vec::new();
    for id in BenchId::all() {
        let session = crate::common::session_for(id, opts)?;
        for (spec, &score) in session.bench.mini.iter().zip(&session.teacher_scores) {
            let metric = match spec.task.metric {
                Metric::Accuracy => "accuracy",
                Metric::MeanAp => "mAP",
                Metric::Matthews => "Matthews",
            };
            rows.push(vec![
                id.to_string(),
                spec.name.clone(),
                dataset_name(id).to_string(),
                metric.to_string(),
                format!("{score:.3}"),
            ]);
            csv.push(vec![
                id.to_string(),
                spec.name.clone(),
                metric.to_string(),
                format!("{score:.4}"),
            ]);
        }
    }
    reporter.write_csv("table6.csv", &["bench", "model", "metric", "score"], &csv);
    reporter.print_table(
        "Table 6: teacher models, datasets, and held-out scores",
        &["bench", "model", "dataset", "metric", "score"],
        &rows,
    );
    Ok(())
}
