//! Figure 9 (Appendix B): visualization of mutated B5 models at the 1%
//! budget — the original ResNet-34 + VGG-16 pair and the fused trees
//! GMorph discovers.

use crate::common::{paper_config, ExperimentOpts, Reporter};
use gmorph::prelude::*;

/// Runs the Figure 9 visualization.
pub fn run(opts: &ExperimentOpts) -> gmorph::tensor::Result<()> {
    let reporter = Reporter::new(&opts.out_dir);
    let session = crate::common::session_for(BenchId::B5, opts)?;
    let mut out = String::new();
    out.push_str("(a) Original multi-task model (ResNet-34 + VGG-16):\n");
    out.push_str(&session.mini_graph.render());

    // Run the search at three seeds to surface distinct fused shapes.
    let mut seen = Vec::new();
    for (i, seed) in [opts.seed, opts.seed + 1, opts.seed + 2].iter().enumerate() {
        let mut cfg = paper_config(BenchId::B5, opts, 0.01);
        cfg.seed = *seed;
        let result = session.optimize(&cfg)?;
        if seen.contains(&result.best.mini.signature()) {
            continue;
        }
        seen.push(result.best.mini.signature());
        out.push_str(&format!(
            "\n({}) Mutated model {} — {:.2}x speedup, {:.2}% drop:\n",
            (b'b' + i as u8) as char,
            i + 1,
            result.speedup,
            result.best.drop.max(0.0) * 100.0
        ));
        out.push_str(&result.best.mini.render());
    }
    println!("{out}");
    reporter.write_text("fig9.txt", &out);
    Ok(())
}
