//! Persisting fused models: abstract graph + weights on disk.
//!
//! The paper's History Database "saves abstract graphs and model weights"
//! (§3); its artifact ships searched models as checkpoint files. This
//! module provides the same capability: [`save_model`] writes an abstract
//! graph (structure, tasks, shapes) together with its weight store into
//! one file, and [`load_model`] restores both, ready for
//! [`crate::generator::generate`].
//!
//! Format: the graph structure is encoded as a UTF-8 text header (one
//! line per node, explicit spec grammar — no `Debug` parsing), stored as
//! the first entry of a gmorph state dict whose remaining entries are the
//! per-node weight tensors.

use crate::absgraph::{AbsGraph, AbsNode};
use crate::parser::{op_type_of, WeightStore};
use gmorph_data::{Metric, TaskSpec};
use gmorph_nn::BlockSpec;
use gmorph_tensor::serialize::{load_state_dict, save_state_dict};
use gmorph_tensor::{Result, Tensor, TensorError};

const FORMAT_VERSION: u32 = 1;

fn bad(msg: String) -> TensorError {
    TensorError::Io(format!("persist: {msg}"))
}

fn encode_dims(dims: &[usize]) -> String {
    dims.iter()
        .map(|d| d.to_string())
        .collect::<Vec<_>>()
        .join("x")
}

fn decode_dims(s: &str) -> Result<Vec<usize>> {
    if s.is_empty() {
        return Ok(Vec::new());
    }
    s.split('x')
        .map(|p| p.parse::<usize>().map_err(|_| bad(format!("bad dims {s:?}"))))
        .collect()
}

/// Encodes a block spec as one whitespace-free token.
pub fn encode_spec(spec: &BlockSpec) -> String {
    match spec {
        BlockSpec::ConvRelu { c_in, c_out } => format!("conv_relu:{c_in}:{c_out}"),
        BlockSpec::ConvBnRelu {
            c_in,
            c_out,
            kernel,
            stride,
        } => format!("conv_bn_relu:{c_in}:{c_out}:{kernel}:{stride}"),
        BlockSpec::Residual { c_in, c_out, stride } => {
            format!("residual:{c_in}:{c_out}:{stride}")
        }
        BlockSpec::MaxPool { k } => format!("maxpool:{k}"),
        BlockSpec::Transformer { d, heads } => format!("transformer:{d}:{heads}"),
        BlockSpec::PatchEmbed {
            channels,
            img,
            patch,
            d,
        } => format!("patch_embed:{channels}:{img}:{patch}:{d}"),
        BlockSpec::TokenEmbed { vocab, d, t_max } => {
            format!("token_embed:{vocab}:{d}:{t_max}")
        }
        BlockSpec::Head { features, classes } => format!("head:{features}:{classes}"),
        BlockSpec::Rescale { from, to } => {
            format!("rescale:{}:{}", encode_dims(from), encode_dims(to))
        }
    }
}

/// Decodes a block spec written by [`encode_spec`].
pub fn decode_spec(s: &str) -> Result<BlockSpec> {
    let parts: Vec<&str> = s.split(':').collect();
    let int = |i: usize| -> Result<usize> {
        parts
            .get(i)
            .and_then(|p| p.parse().ok())
            .ok_or_else(|| bad(format!("bad spec field {i} in {s:?}")))
    };
    Ok(match parts[0] {
        "conv_relu" => BlockSpec::ConvRelu {
            c_in: int(1)?,
            c_out: int(2)?,
        },
        "conv_bn_relu" => BlockSpec::ConvBnRelu {
            c_in: int(1)?,
            c_out: int(2)?,
            kernel: int(3)?,
            stride: int(4)?,
        },
        "residual" => BlockSpec::Residual {
            c_in: int(1)?,
            c_out: int(2)?,
            stride: int(3)?,
        },
        "maxpool" => BlockSpec::MaxPool { k: int(1)? },
        "transformer" => BlockSpec::Transformer {
            d: int(1)?,
            heads: int(2)?,
        },
        "patch_embed" => BlockSpec::PatchEmbed {
            channels: int(1)?,
            img: int(2)?,
            patch: int(3)?,
            d: int(4)?,
        },
        "token_embed" => BlockSpec::TokenEmbed {
            vocab: int(1)?,
            d: int(2)?,
            t_max: int(3)?,
        },
        "head" => BlockSpec::Head {
            features: int(1)?,
            classes: int(2)?,
        },
        "rescale" => BlockSpec::Rescale {
            from: decode_dims(parts.get(1).copied().unwrap_or(""))?,
            to: decode_dims(parts.get(2).copied().unwrap_or(""))?,
        },
        other => return Err(bad(format!("unknown spec kind {other:?}"))),
    })
}

fn encode_metric(m: Metric) -> &'static str {
    match m {
        Metric::Accuracy => "accuracy",
        Metric::MeanAp => "mean_ap",
        Metric::Matthews => "matthews",
    }
}

fn decode_metric(s: &str) -> Result<Metric> {
    Ok(match s {
        "accuracy" => Metric::Accuracy,
        "mean_ap" => Metric::MeanAp,
        "matthews" => Metric::Matthews,
        other => return Err(bad(format!("unknown metric {other:?}"))),
    })
}

fn encode_loss(l: gmorph_data::LossKind) -> &'static str {
    match l {
        gmorph_data::LossKind::CrossEntropy => "ce",
        gmorph_data::LossKind::BceMultiLabel => "bce",
    }
}

fn decode_loss(s: &str) -> Result<gmorph_data::LossKind> {
    Ok(match s {
        "ce" => gmorph_data::LossKind::CrossEntropy,
        "bce" => gmorph_data::LossKind::BceMultiLabel,
        other => return Err(bad(format!("unknown loss {other:?}"))),
    })
}

/// Serializes the graph structure to the text header.
pub fn encode_graph(graph: &AbsGraph) -> String {
    let mut out = format!("gmorph-graph v{FORMAT_VERSION}\n");
    out.push_str(&format!("input {}\n", encode_dims(&graph.input_shape)));
    for t in &graph.tasks {
        out.push_str(&format!(
            "task {} {} {} {}\n",
            t.name.replace(' ', "_"),
            t.classes,
            encode_metric(t.metric),
            encode_loss(t.loss)
        ));
    }
    for id in graph.topo_order() {
        let n = graph.node(id).expect("topo order yields live nodes");
        out.push_str(&format!(
            "node {} {} {} {} {} {}\n",
            id,
            n.task_id,
            n.op_id,
            match n.parent {
                Some(p) => p.to_string(),
                None => "-".to_string(),
            },
            encode_dims(&n.input_shape),
            encode_spec(&n.spec)
        ));
    }
    out
}

/// Restores a graph from the text header.
pub fn decode_graph(text: &str) -> Result<AbsGraph> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| bad("empty header".into()))?;
    if header != format!("gmorph-graph v{FORMAT_VERSION}") {
        return Err(bad(format!("unsupported header {header:?}")));
    }
    let mut input_shape = None;
    let mut tasks = Vec::new();
    let mut nodes: Vec<(usize, AbsNode)> = Vec::new();
    for line in lines {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.first().copied() {
            Some("input") => {
                input_shape = Some(decode_dims(parts.get(1).copied().unwrap_or(""))?)
            }
            Some("task") => {
                if parts.len() != 5 {
                    return Err(bad(format!("bad task line {line:?}")));
                }
                tasks.push(TaskSpec {
                    name: parts[1].to_string(),
                    classes: parts[2].parse().map_err(|_| bad("bad classes".into()))?,
                    metric: decode_metric(parts[3])?,
                    loss: decode_loss(parts[4])?,
                });
            }
            Some("node") => {
                if parts.len() != 7 {
                    return Err(bad(format!("bad node line {line:?}")));
                }
                let id: usize = parts[1].parse().map_err(|_| bad("bad id".into()))?;
                let spec = decode_spec(parts[6])?;
                nodes.push((
                    id,
                    AbsNode {
                        task_id: parts[2].parse().map_err(|_| bad("bad task id".into()))?,
                        op_id: parts[3].parse().map_err(|_| bad("bad op id".into()))?,
                        op_type: op_type_of(&spec),
                        spec,
                        input_shape: decode_dims(parts[5])?,
                        capacity: 0,
                        parent: match parts[4] {
                            "-" => None,
                            p => Some(p.parse().map_err(|_| bad("bad parent".into()))?),
                        },
                        children: vec![],
                    },
                ));
            }
            Some(other) => return Err(bad(format!("unknown record {other:?}"))),
            None => {}
        }
    }
    let input_shape = input_shape.ok_or_else(|| bad("missing input record".into()))?;
    // Rebuild the arena preserving original node ids via an id map.
    let mut g = AbsGraph::new(input_shape, tasks);
    let mut id_map = std::collections::HashMap::new();
    for (old_id, mut node) in nodes {
        node.parent = match node.parent {
            Some(p) => Some(*id_map.get(&p).ok_or_else(|| {
                bad(format!("node {old_id} references unknown parent {p}"))
            })?),
            None => None,
        };
        let new_id = g.add_node(node)?;
        id_map.insert(old_id, new_id);
    }
    g.validate()?;
    Ok(g)
}

fn encode_ids(ids: &[usize]) -> String {
    if ids.is_empty() {
        return "-".to_string();
    }
    ids.iter()
        .map(|i| i.to_string())
        .collect::<Vec<_>>()
        .join(",")
}

fn decode_ids(s: &str) -> Result<Vec<usize>> {
    if s == "-" {
        return Ok(Vec::new());
    }
    s.split(',')
        .map(|p| p.parse::<usize>().map_err(|_| bad(format!("bad id list {s:?}"))))
        .collect()
}

/// Serializes a graph's *exact* arena state for crash-safe checkpointing.
///
/// The portable [`encode_graph`] renumbers node ids on reload; that is
/// fine for shipping models, but a search checkpoint must restore the
/// arena bit-exactly — node ids, root and child ordering, and the
/// `next_id`/`next_synthetic_op` allocation counters all feed future
/// mutations, so any renumbering makes a resumed search diverge from the
/// uninterrupted one.
pub fn encode_graph_exact(graph: &AbsGraph) -> String {
    let (next_id, next_syn) = graph.arena_counters();
    let mut out = format!("gmorph-graph-exact v{FORMAT_VERSION}\n");
    out.push_str(&format!("input {}\n", encode_dims(&graph.input_shape)));
    out.push_str(&format!("arena {next_id} {next_syn}\n"));
    for t in &graph.tasks {
        out.push_str(&format!(
            "task {} {} {} {}\n",
            t.name.replace(' ', "_"),
            t.classes,
            encode_metric(t.metric),
            encode_loss(t.loss)
        ));
    }
    out.push_str(&format!("roots {}\n", encode_ids(&graph.roots)));
    for (id, n) in graph.iter() {
        out.push_str(&format!(
            "node {} {} {} {} {} {} {}\n",
            id,
            n.task_id,
            n.op_id,
            match n.parent {
                Some(p) => p.to_string(),
                None => "-".to_string(),
            },
            encode_dims(&n.input_shape),
            encode_spec(&n.spec),
            encode_ids(&n.children)
        ));
    }
    out
}

/// Restores a graph from [`encode_graph_exact`] output, arena intact.
pub fn decode_graph_exact(text: &str) -> Result<AbsGraph> {
    let mut lines = text.lines();
    let header = lines.next().ok_or_else(|| bad("empty header".into()))?;
    if header != format!("gmorph-graph-exact v{FORMAT_VERSION}") {
        return Err(bad(format!("unsupported exact header {header:?}")));
    }
    let mut input_shape = None;
    let mut counters = None;
    let mut tasks = Vec::new();
    let mut roots = Vec::new();
    let mut nodes: Vec<(usize, AbsNode)> = Vec::new();
    for line in lines {
        let parts: Vec<&str> = line.split_whitespace().collect();
        match parts.first().copied() {
            Some("input") => {
                input_shape = Some(decode_dims(parts.get(1).copied().unwrap_or(""))?)
            }
            Some("arena") => {
                if parts.len() != 3 {
                    return Err(bad(format!("bad arena line {line:?}")));
                }
                counters = Some((
                    parts[1].parse().map_err(|_| bad("bad next_id".into()))?,
                    parts[2]
                        .parse()
                        .map_err(|_| bad("bad next_synthetic_op".into()))?,
                ));
            }
            Some("task") => {
                if parts.len() != 5 {
                    return Err(bad(format!("bad task line {line:?}")));
                }
                tasks.push(TaskSpec {
                    name: parts[1].to_string(),
                    classes: parts[2].parse().map_err(|_| bad("bad classes".into()))?,
                    metric: decode_metric(parts[3])?,
                    loss: decode_loss(parts[4])?,
                });
            }
            Some("roots") => roots = decode_ids(parts.get(1).copied().unwrap_or("-"))?,
            Some("node") => {
                if parts.len() != 8 {
                    return Err(bad(format!("bad exact node line {line:?}")));
                }
                let id: usize = parts[1].parse().map_err(|_| bad("bad id".into()))?;
                let spec = decode_spec(parts[6])?;
                nodes.push((
                    id,
                    AbsNode {
                        task_id: parts[2].parse().map_err(|_| bad("bad task id".into()))?,
                        op_id: parts[3].parse().map_err(|_| bad("bad op id".into()))?,
                        op_type: op_type_of(&spec),
                        spec,
                        input_shape: decode_dims(parts[5])?,
                        capacity: 0,
                        parent: match parts[4] {
                            "-" => None,
                            p => Some(p.parse().map_err(|_| bad("bad parent".into()))?),
                        },
                        children: decode_ids(parts[7])?,
                    },
                ));
            }
            Some(other) => return Err(bad(format!("unknown exact record {other:?}"))),
            None => {}
        }
    }
    let input_shape = input_shape.ok_or_else(|| bad("missing input record".into()))?;
    let (next_id, next_syn) = counters.ok_or_else(|| bad("missing arena record".into()))?;
    AbsGraph::from_arena(input_shape, tasks, nodes, roots, next_id, next_syn)
}

fn model_entries(graph: &AbsGraph, weights: &WeightStore) -> Result<Vec<(String, Tensor)>> {
    model_entries_with(encode_graph(graph), graph, weights)
}

fn model_entries_with(
    header: String,
    graph: &AbsGraph,
    weights: &WeightStore,
) -> Result<Vec<(String, Tensor)>> {
    let header_bytes: Vec<f32> = header.bytes().map(|b| b as f32).collect();
    let mut entries = vec![(
        "__graph".to_string(),
        Tensor::from_vec(&[header_bytes.len()], header_bytes)?,
    )];
    for (_, node) in graph.iter() {
        // Weights are keyed by the stable node identity (task_id, op_id),
        // never by arena ids: reloading re-numbers the arena.
        let (t_id, op) = node.key();
        if let Some(state) = weights.lookup(node.key(), &node.spec) {
            for (j, t) in state.iter().enumerate() {
                entries.push((format!("w{t_id}.{op}.t{j}"), t.clone()));
            }
            entries.push((
                format!("w{t_id}.{op}.count"),
                Tensor::from_vec(&[1], vec![state.len() as f32])?,
            ));
        }
    }
    Ok(entries)
}

fn model_from_entries(entries: &[(String, Tensor)]) -> Result<(AbsGraph, WeightStore)> {
    let header = entries
        .iter()
        .find(|(k, _)| k == "__graph")
        .ok_or_else(|| bad("missing __graph entry".into()))?;
    let text: String = header
        .1
        .data()
        .iter()
        .map(|&f| {
            let b = f as u32;
            char::from_u32(b).unwrap_or('\u{FFFD}')
        })
        .collect();
    // Dispatch on the header line: exact (checkpoint) vs portable format.
    let graph = if text.starts_with("gmorph-graph-exact ") {
        decode_graph_exact(&text)?
    } else {
        decode_graph(&text)?
    };
    let mut weights = WeightStore::new();
    for (_, node) in graph.iter() {
        let (t_id, op) = node.key();
        let count = entries
            .iter()
            .find(|(k, _)| *k == format!("w{t_id}.{op}.count"))
            .map(|(_, t)| t.data()[0] as usize);
        let Some(count) = count else { continue };
        let mut state = Vec::with_capacity(count);
        for j in 0..count {
            let t = entries
                .iter()
                .find(|(k, _)| *k == format!("w{t_id}.{op}.t{j}"))
                .ok_or_else(|| bad(format!("missing tensor w{t_id}.{op}.t{j}")))?;
            state.push(t.1.clone());
        }
        weights.insert(node.key(), node.spec.clone(), state);
    }
    Ok((graph, weights))
}

/// Saves a fused model (graph + weights) to one file.
pub fn save_model(path: &std::path::Path, graph: &AbsGraph, weights: &WeightStore) -> Result<()> {
    save_state_dict(path, &model_entries(graph, weights)?)
}

/// Loads a fused model saved by [`save_model`].
pub fn load_model(path: &std::path::Path) -> Result<(AbsGraph, WeightStore)> {
    model_from_entries(&load_state_dict(path)?)
}

/// Serializes a fused model (graph + weights) to bytes.
///
/// Same format as [`save_model`], in memory. Encoding is deterministic
/// (graph iteration order), so identical models produce identical bytes —
/// the comparison primitive of the checkpoint/resume replay tests, and the
/// payload format of search checkpoints.
pub fn encode_model_bytes(graph: &AbsGraph, weights: &WeightStore) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    gmorph_tensor::serialize::write_state_dict(&mut buf, &model_entries(graph, weights)?)?;
    Ok(buf)
}

/// Like [`encode_model_bytes`] but with the *exact* graph header
/// ([`encode_graph_exact`]): node ids and allocation counters survive the
/// round trip. This is the elite/best-model payload of search
/// checkpoints, where a renumbered arena would derail the replay.
pub fn encode_model_bytes_exact(graph: &AbsGraph, weights: &WeightStore) -> Result<Vec<u8>> {
    let mut buf = Vec::new();
    gmorph_tensor::serialize::write_state_dict(
        &mut buf,
        &model_entries_with(encode_graph_exact(graph), graph, weights)?,
    )?;
    Ok(buf)
}

/// Restores a fused model from [`encode_model_bytes`] or
/// [`encode_model_bytes_exact`] output (the header is self-describing).
pub fn decode_model_bytes(bytes: &[u8]) -> Result<(AbsGraph, WeightStore)> {
    let mut cursor = bytes;
    model_from_entries(&gmorph_tensor::serialize::read_state_dict(&mut cursor)?)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generator;
    use crate::mutation;
    use crate::pairs;
    use crate::parser::parse_models;
    use gmorph_models::families::{vgg, VggDepth, VisionScale};
    use gmorph_nn::Mode;
    use gmorph_tensor::rng::Rng;

    fn all_specs() -> Vec<BlockSpec> {
        vec![
            BlockSpec::ConvRelu { c_in: 3, c_out: 8 },
            BlockSpec::ConvBnRelu {
                c_in: 4,
                c_out: 8,
                kernel: 3,
                stride: 2,
            },
            BlockSpec::Residual {
                c_in: 4,
                c_out: 8,
                stride: 2,
            },
            BlockSpec::MaxPool { k: 2 },
            BlockSpec::Transformer { d: 8, heads: 2 },
            BlockSpec::PatchEmbed {
                channels: 3,
                img: 8,
                patch: 4,
                d: 8,
            },
            BlockSpec::TokenEmbed {
                vocab: 16,
                d: 8,
                t_max: 8,
            },
            BlockSpec::Head {
                features: 8,
                classes: 3,
            },
            BlockSpec::Rescale {
                from: vec![4, 8, 8],
                to: vec![8, 4, 4],
            },
        ]
    }

    #[test]
    fn spec_encoding_roundtrips_every_variant() {
        for spec in all_specs() {
            let enc = encode_spec(&spec);
            assert_eq!(decode_spec(&enc).unwrap(), spec, "{enc}");
        }
        assert!(decode_spec("not_a_spec:1").is_err());
        assert!(decode_spec("conv_relu:x:y").is_err());
    }

    fn mutated_graph_with_weights() -> (AbsGraph, WeightStore) {
        let mut rng = Rng::new(0);
        let t0 = gmorph_data::TaskSpec::classification("a", 2);
        let t1 = gmorph_data::TaskSpec::classification("b", 3);
        let models = vec![
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t0)
                .unwrap()
                .build(&mut rng)
                .unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1)
                .unwrap()
                .build(&mut rng)
                .unwrap(),
        ];
        let (graph, store) = parse_models(&models).unwrap();
        let prs = pairs::shareable_pairs(&graph).unwrap();
        let cross = prs
            .iter()
            .find(|&&(n, m)| {
                graph.node(n).unwrap().task_id != graph.node(m).unwrap().task_id
            })
            .copied()
            .unwrap();
        let (mutated, _) = mutation::mutation_pass(&graph, &[cross]).unwrap();
        (mutated, store)
    }

    #[test]
    fn graph_text_roundtrip_preserves_structure() {
        let (g, _) = mutated_graph_with_weights();
        let text = encode_graph(&g);
        let back = decode_graph(&text).unwrap();
        assert_eq!(back.signature(), g.signature());
        assert_eq!(back.len(), g.len());
        assert_eq!(back.tasks, g.tasks);
        assert_eq!(back.input_shape, g.input_shape);
    }

    #[test]
    fn exact_codec_preserves_arena_state() {
        let (g, store) = mutated_graph_with_weights();
        let back = decode_graph_exact(&encode_graph_exact(&g)).unwrap();
        assert_eq!(back.arena_counters(), g.arena_counters());
        assert_eq!(back.roots, g.roots);
        assert_eq!(back.signature(), g.signature());
        // Node ids, parent links, and child ordering must all survive —
        // the portable codec renumbers these, which is exactly what a
        // search checkpoint cannot tolerate.
        let arena = |g: &AbsGraph| -> Vec<(usize, Option<usize>, Vec<usize>)> {
            g.iter()
                .map(|(id, n)| (id, n.parent, n.children.clone()))
                .collect()
        };
        assert_eq!(arena(&back), arena(&g));

        // The exact header is self-describing through decode_model_bytes.
        let bytes = encode_model_bytes_exact(&g, &store).unwrap();
        let (g2, _) = decode_model_bytes(&bytes).unwrap();
        assert_eq!(g2.arena_counters(), g.arena_counters());
        assert_eq!(arena(&g2), arena(&g));
    }

    #[test]
    fn save_load_model_reproduces_outputs() {
        let (g, store) = mutated_graph_with_weights();
        let dir = std::env::temp_dir().join(format!("gmorph-persist-{}", std::process::id()));
        let path = dir.join("fused.gmrh");
        save_model(&path, &g, &store).unwrap();
        let (g2, store2) = load_model(&path).unwrap();
        assert_eq!(g2.signature(), g.signature());
        // Every node with stored weights must resolve after reload; the
        // mutated graph has exactly one fresh (rescale) node.
        let resolved = g2
            .iter()
            .filter(|(_, n)| store2.lookup(n.key(), &n.spec).is_some())
            .count();
        assert_eq!(resolved, g2.len() - 1);

        // Materialize both with identical init streams (the rescale node
        // has no stored weights, so its fresh init must come from the
        // same RNG state) and compare inference outputs exactly.
        let (mut a, stats_a) = generator::generate(&g, &store, &mut Rng::new(9)).unwrap();
        let (mut b, stats_b) = generator::generate(&g2, &store2, &mut Rng::new(9)).unwrap();
        assert_eq!(stats_a.inherited, stats_b.inherited);
        let mut rng = Rng::new(10);
        let x = gmorph_nn::Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let ya = a.forward(&x, Mode::Eval).unwrap();
        let yb = b.forward(&x, Mode::Eval).unwrap();
        for (p, q) in ya.iter().zip(yb.iter()) {
            for (u, v) in p.data().iter().zip(q.data()) {
                assert!((u - v).abs() < 1e-6);
            }
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn decode_rejects_corrupt_headers() {
        assert!(decode_graph("").is_err());
        assert!(decode_graph("gmorph-graph v999\n").is_err());
        assert!(decode_graph("gmorph-graph v1\nnode 0 0 0 - 3x8x8 conv_relu:3:4\n").is_err());
        // Dangling parent reference.
        let bad = "gmorph-graph v1\ninput 3x8x8\ntask a 2 accuracy ce\nnode 0 0 0 7 3x8x8 conv_relu:3:4\n";
        assert!(decode_graph(bad).is_err());
    }
}
