//! The Model Generator (§4.4).
//!
//! Converts a mutated abstract graph into a trainable [`TreeModel`],
//! initializing each node with the well-trained weights of the base
//! candidate from the History Database when the architectures match, and
//! with fresh weights otherwise (newly inserted re-scale adapters, or
//! nodes whose spec changed).

use crate::absgraph::{AbsGraph, NodeId};
use crate::parser::WeightStore;
use crate::tree::TreeModel;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::Result;
use std::collections::HashMap;

/// Statistics about how a model was initialized.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct InheritStats {
    /// Nodes initialized from inherited weights.
    pub inherited: usize,
    /// Nodes initialized fresh.
    pub fresh: usize,
}

/// Materializes a trainable multi-task model from an abstract graph
/// (Algorithm 1, line 10).
pub fn generate(
    graph: &AbsGraph,
    weights: &WeightStore,
    rng: &mut Rng,
) -> Result<(TreeModel, InheritStats)> {
    let mut model = TreeModel::new(graph.tasks.clone());
    let mut stats = InheritStats::default();
    let mut idx_of: HashMap<NodeId, usize> = HashMap::new();
    for id in graph.topo_order() {
        let node = graph.node(id)?;
        let mut block = node.spec.build(rng)?;
        match weights.lookup(node.key(), &node.spec) {
            Some(state) => {
                // Surrogate-mode stores hold empty *markers* (architecture
                // match without real tensors); those count as inherited
                // for the search but leave the fresh initialization alone.
                let expected = {
                    let mut n = 0usize;
                    block.visit_state(&mut |_| n += 1);
                    n
                };
                if state.len() == expected {
                    block.load_state(state)?;
                }
                stats.inherited += 1;
            }
            None => stats.fresh += 1,
        }
        let parent_idx = node.parent.map(|p| idx_of[&p]);
        let idx = model.add_node(node.key(), block, parent_idx)?;
        idx_of.insert(id, idx);
    }
    Ok((model, stats))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mutation::mutation_pass;
    use crate::pairs::shareable_pairs;
    use crate::parser::{extract_weights, parse_models};
    use gmorph_data::TaskSpec;
    use gmorph_models::families::{vgg, VggDepth, VisionScale};
    use gmorph_models::SingleTaskModel;
    use gmorph_nn::Mode;
    use gmorph_tensor::Tensor;

    fn teachers(rng: &mut Rng) -> Vec<SingleTaskModel> {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        vec![
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t0)
                .unwrap()
                .build(rng)
                .unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1)
                .unwrap()
                .build(rng)
                .unwrap(),
        ]
    }

    #[test]
    fn unmutated_graph_reproduces_teachers_exactly() {
        let mut rng = Rng::new(0);
        let mut models = teachers(&mut rng);
        let (graph, store) = parse_models(&models).unwrap();
        let (mut tree, stats) = generate(&graph, &store, &mut rng).unwrap();
        assert_eq!(stats.fresh, 0);
        assert_eq!(stats.inherited, graph.len());

        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let ys = tree.forward(&x, Mode::Eval).unwrap();
        for (t, m) in models.iter_mut().enumerate() {
            let direct = m.forward(&x, Mode::Eval).unwrap();
            assert_eq!(direct.dims(), ys[t].dims());
            for (a, b) in direct.data().iter().zip(ys[t].data()) {
                assert!((a - b).abs() < 1e-5, "task {t}: {a} vs {b}");
            }
        }
    }

    #[test]
    fn mutated_graph_generates_and_runs() {
        let mut rng = Rng::new(1);
        let models = teachers(&mut rng);
        let (graph, store) = parse_models(&models).unwrap();
        let pairs = shareable_pairs(&graph).unwrap();
        // Pick a cross-task pair that inserts a rescale.
        let chosen = pairs
            .iter()
            .find(|&&(n, m)| {
                let hn = graph.node(n).unwrap();
                let gm = graph.node(m).unwrap();
                hn.task_id != gm.task_id && hn.input_shape != gm.input_shape
            })
            .copied()
            .expect("a rescaling cross-task pair exists");
        let (mutated, ops) = mutation_pass(&graph, &[chosen]).unwrap();
        assert_eq!(ops.len(), 1);
        let (mut tree, stats) = generate(&mutated, &store, &mut rng).unwrap();
        // The rescale node is fresh; surviving nodes inherit.
        assert_eq!(stats.fresh, 1);
        assert_eq!(stats.inherited, mutated.len() - 1);
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let ys = tree.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ys.len(), 2);
        assert_eq!(ys[0].dims(), &[2, 2]);
        assert_eq!(ys[1].dims(), &[2, 3]);
    }

    #[test]
    fn extract_weights_roundtrip_enables_reinheritance() {
        let mut rng = Rng::new(2);
        let models = teachers(&mut rng);
        let (graph, store) = parse_models(&models).unwrap();
        let (tree, _) = generate(&graph, &store, &mut rng).unwrap();
        let store2 = extract_weights(&tree);
        assert_eq!(store2.len(), graph.len());
        // Regenerating from the extracted weights inherits everything.
        let (_, stats) = generate(&graph, &store2, &mut rng).unwrap();
        assert_eq!(stats.fresh, 0);
    }

    #[test]
    fn backward_through_generated_mutant() {
        let mut rng = Rng::new(3);
        let models = teachers(&mut rng);
        let (graph, store) = parse_models(&models).unwrap();
        let pairs = shareable_pairs(&graph).unwrap();
        let cross = pairs
            .iter()
            .find(|&&(n, m)| {
                graph.node(n).unwrap().task_id != graph.node(m).unwrap().task_id
            })
            .copied()
            .unwrap();
        let (mutated, _) = mutation_pass(&graph, &[cross]).unwrap();
        let (mut tree, _) = generate(&mutated, &store, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 16, 16], 1.0, &mut rng);
        let ys = tree.forward(&x, Mode::Train).unwrap();
        let grads: Vec<Tensor> = ys.iter().map(|y| Tensor::ones(y.dims())).collect();
        tree.backward(&grads).unwrap();
        // Some parameter received gradient.
        let mut total = 0.0f32;
        tree.visit_params(&mut |p| total += p.grad.sq_norm());
        assert!(total > 0.0);
    }
}
