//! The trainable tree-structured multi-task model.
//!
//! "Feature sharing between two DNNs would lead to a tree-structured model
//! that consists of some shared computation blocks and two branches after
//! the shared computation blocks" (§4.1). A [`TreeModel`] is that model:
//! computation blocks arranged in a tree rooted at the shared input, with
//! one Head leaf per task. Shared prefixes are computed once per forward
//! pass — the source of model fusion's computation savings.

use gmorph_data::TaskSpec;
use gmorph_nn::{Block, Mode, OpType, Parameter};
use gmorph_tensor::{Result, Tensor, TensorError};

/// One node of a [`TreeModel`].
#[derive(Debug, Clone)]
pub struct TreeNode {
    /// Node identity carried over from the abstract graph.
    pub key: (usize, usize),
    /// The trainable block.
    pub block: Block,
    /// Parent index; `None` consumes the shared input.
    pub parent: Option<usize>,
    /// Child indices.
    pub children: Vec<usize>,
    /// For Head leaves: the task whose logits this node emits.
    pub head_task: Option<usize>,
}

/// A trainable multi-task model (see module docs).
#[derive(Debug, Clone)]
pub struct TreeModel {
    nodes: Vec<TreeNode>,
    roots: Vec<usize>,
    /// Task descriptors, indexed by task id.
    pub tasks: Vec<TaskSpec>,
}

impl TreeModel {
    /// Creates an empty model over the given tasks.
    pub fn new(tasks: Vec<TaskSpec>) -> Self {
        TreeModel {
            nodes: Vec::new(),
            roots: Vec::new(),
            tasks,
        }
    }

    /// Adds a node under `parent` (or the shared input); returns its index.
    ///
    /// Head blocks are automatically bound to the task named by their
    /// `key.0` (the abstract-graph task id).
    pub fn add_node(
        &mut self,
        key: (usize, usize),
        block: Block,
        parent: Option<usize>,
    ) -> Result<usize> {
        if let Some(p) = parent {
            if p >= self.nodes.len() {
                return Err(TensorError::OutOfBounds {
                    op: "TreeModel::add_node",
                    index: p,
                    bound: self.nodes.len(),
                });
            }
        }
        let head_task = if block.op_type() == OpType::Head {
            if key.0 >= self.tasks.len() {
                return Err(TensorError::OutOfBounds {
                    op: "TreeModel::add_node",
                    index: key.0,
                    bound: self.tasks.len(),
                });
            }
            Some(key.0)
        } else {
            None
        };
        let idx = self.nodes.len();
        self.nodes.push(TreeNode {
            key,
            block,
            parent,
            children: Vec::new(),
            head_task,
        });
        match parent {
            Some(p) => self.nodes[p].children.push(idx),
            None => self.roots.push(idx),
        }
        Ok(idx)
    }

    /// Read access to the node arena.
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the model has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Total parameter count.
    pub fn capacity(&self) -> usize {
        self.nodes.iter().map(|n| n.block.capacity()).sum()
    }

    /// Node indices in topological (parent-before-child) order.
    fn topo(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<usize> = self.roots.iter().rev().copied().collect();
        while let Some(i) = stack.pop() {
            out.push(i);
            for &c in self.nodes[i].children.iter().rev() {
                stack.push(c);
            }
        }
        out
    }

    /// Forward pass: one shared input batch in, one logits tensor per task
    /// out (indexed by task id).
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Vec<Tensor>> {
        let order = self.topo();
        let mut acts: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        let mut outputs: Vec<Option<Tensor>> = vec![None; self.tasks.len()];
        for i in order {
            let input = match self.nodes[i].parent {
                Some(p) => acts[p].clone().ok_or(TensorError::InvalidArgument {
                    op: "TreeModel::forward",
                    msg: "parent activation missing (topological order broken)".to_string(),
                })?,
                None => x.clone(),
            };
            let y = self.nodes[i].block.forward(&input, mode)?;
            if let Some(t) = self.nodes[i].head_task {
                outputs[t] = Some(y);
            } else {
                acts[i] = Some(y);
            }
        }
        outputs
            .into_iter()
            .enumerate()
            .map(|(t, o)| {
                o.ok_or(TensorError::InvalidArgument {
                    op: "TreeModel::forward",
                    msg: format!("task {t} produced no output (missing head)"),
                })
            })
            .collect()
    }

    /// Backward pass from per-task output gradients; accumulates parameter
    /// gradients. Must follow a `forward(.., Mode::Train)`.
    pub fn backward(&mut self, grads: &[Tensor]) -> Result<()> {
        if grads.len() != self.tasks.len() {
            return Err(TensorError::InvalidArgument {
                op: "TreeModel::backward",
                msg: format!("{} grads for {} tasks", grads.len(), self.tasks.len()),
            });
        }
        let order = self.topo();
        let mut pending: Vec<Option<Tensor>> = vec![None; self.nodes.len()];
        // Seed head gradients.
        for (i, n) in self.nodes.iter().enumerate() {
            if let Some(t) = n.head_task {
                pending[i] = Some(grads[t].clone());
            }
        }
        for &i in order.iter().rev() {
            let g = match pending[i].take() {
                Some(g) => g,
                None => {
                    return Err(TensorError::InvalidArgument {
                        op: "TreeModel::backward",
                        msg: format!("node {i} received no gradient"),
                    })
                }
            };
            let gin = self.nodes[i].block.backward(&g)?;
            if let Some(p) = self.nodes[i].parent {
                match &mut pending[p] {
                    Some(acc) => acc.add_assign(&gin)?,
                    slot => *slot = Some(gin),
                }
            }
        }
        Ok(())
    }

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        for n in &mut self.nodes {
            n.block.visit_params(f);
        }
    }

    /// Visits every block mutably (used by inference compilation).
    pub fn for_each_block_mut(&mut self, f: &mut dyn FnMut(&mut Block)) {
        for n in &mut self.nodes {
            f(&mut n.block);
        }
    }

    /// Drops all cached activations.
    pub fn clear_caches(&mut self) {
        for n in &mut self.nodes {
            n.block.clear_cache();
        }
    }

    /// Counts nodes shared by at least two tasks (diagnostic).
    pub fn shared_node_count(&self) -> usize {
        // A node is shared when ≥2 head leaves live in its subtree.
        let mut heads_below = vec![0usize; self.nodes.len()];
        for &i in self.topo().iter().rev() {
            let own = usize::from(self.nodes[i].head_task.is_some());
            let below: usize = self.nodes[i]
                .children
                .iter()
                .map(|&c| heads_below[c])
                .sum();
            heads_below[i] = own + below;
        }
        heads_below.iter().filter(|&&h| h >= 2).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_tensor::rng::Rng;

    /// Shared trunk, two heads: Conv -> (Head0, Conv -> Head1).
    fn shared_tree(rng: &mut Rng) -> TreeModel {
        let tasks = vec![
            TaskSpec::classification("a", 2),
            TaskSpec::classification("b", 3),
        ];
        let mut m = TreeModel::new(tasks);
        let trunk = m
            .add_node((0, 0), Block::conv_relu(3, 4, rng).unwrap(), None)
            .unwrap();
        m.add_node((0, 1), Block::head(4, 2, rng), Some(trunk))
            .unwrap();
        let mid = m
            .add_node((1, 1), Block::conv_relu(4, 4, rng).unwrap(), Some(trunk))
            .unwrap();
        m.add_node((1, 2), Block::head(4, 3, rng), Some(mid))
            .unwrap();
        m
    }

    use gmorph_data::TaskSpec;

    #[test]
    fn forward_emits_one_output_per_task() {
        let mut rng = Rng::new(0);
        let mut m = shared_tree(&mut rng);
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let ys = m.forward(&x, Mode::Eval).unwrap();
        assert_eq!(ys.len(), 2);
        assert_eq!(ys[0].dims(), &[2, 2]);
        assert_eq!(ys[1].dims(), &[2, 3]);
    }

    #[test]
    fn shared_node_count_detects_trunk() {
        let mut rng = Rng::new(1);
        let m = shared_tree(&mut rng);
        assert_eq!(m.shared_node_count(), 1);
    }

    #[test]
    fn backward_accumulates_through_shared_trunk() {
        let mut rng = Rng::new(2);
        let mut m = shared_tree(&mut rng);
        let x = Tensor::randn(&[2, 3, 4, 4], 1.0, &mut rng);
        let ys = m.forward(&x, Mode::Train).unwrap();
        let grads = vec![Tensor::ones(ys[0].dims()), Tensor::ones(ys[1].dims())];
        m.backward(&grads).unwrap();
        // The trunk conv received gradient from both branches.
        let trunk_grad = match &m.nodes[0].block {
            Block::ConvRelu { conv, .. } => conv.weight.grad.sq_norm(),
            _ => panic!(),
        };
        assert!(trunk_grad > 0.0);
    }

    #[test]
    fn trunk_gradient_is_sum_of_branches() {
        // Gradient through the shared trunk must equal the sum of the
        // per-branch gradients computed separately.
        let mut rng = Rng::new(3);
        let x = Tensor::randn(&[1, 3, 4, 4], 1.0, &mut rng);

        let mut joint = shared_tree(&mut rng);
        let ys = joint.forward(&x, Mode::Train).unwrap();
        joint
            .backward(&[Tensor::ones(ys[0].dims()), Tensor::ones(ys[1].dims())])
            .unwrap();
        let joint_grad = match &joint.nodes[0].block {
            Block::ConvRelu { conv, .. } => conv.weight.grad.clone(),
            _ => panic!(),
        };

        // Branch-only runs: zero one head's gradient at a time.
        let mut sum = Tensor::zeros(joint_grad.dims());
        for t in 0..2 {
            // Rebuild with the same seed stream as `joint`: consume the
            // same randn for x first so the weights come out identical.
            let mut r2 = Rng::new(3);
            let _x2 = Tensor::randn(&[1, 3, 4, 4], 1.0, &mut r2);
            let mut m = shared_tree(&mut r2);
            let ys = m.forward(&x, Mode::Train).unwrap();
            let mut grads = vec![
                Tensor::zeros(ys[0].dims()),
                Tensor::zeros(ys[1].dims()),
            ];
            grads[t] = Tensor::ones(ys[t].dims());
            m.backward(&grads).unwrap();
            let g = match &m.nodes[0].block {
                Block::ConvRelu { conv, .. } => conv.weight.grad.clone(),
                _ => panic!(),
            };
            sum.add_assign(&g).unwrap();
        }
        for (a, b) in joint_grad.data().iter().zip(sum.data()) {
            assert!((a - b).abs() < 1e-3, "{a} vs {b}");
        }
    }

    #[test]
    fn backward_arity_checked() {
        let mut rng = Rng::new(4);
        let mut m = shared_tree(&mut rng);
        let x = Tensor::randn(&[1, 3, 4, 4], 1.0, &mut rng);
        let ys = m.forward(&x, Mode::Train).unwrap();
        assert!(m.backward(&[Tensor::ones(ys[0].dims())]).is_err());
    }

    #[test]
    fn forward_fails_without_head() {
        let mut rng = Rng::new(5);
        let tasks = vec![TaskSpec::classification("a", 2)];
        let mut m = TreeModel::new(tasks);
        m.add_node((0, 0), Block::conv_relu(3, 4, &mut rng).unwrap(), None)
            .unwrap();
        let x = Tensor::randn(&[1, 3, 4, 4], 1.0, &mut rng);
        assert!(m.forward(&x, Mode::Eval).is_err());
    }

    #[test]
    fn add_node_validates_parent_and_task() {
        let mut rng = Rng::new(6);
        let mut m = TreeModel::new(vec![TaskSpec::classification("a", 2)]);
        assert!(m
            .add_node((0, 0), Block::conv_relu(3, 4, &mut rng).unwrap(), Some(7))
            .is_err());
        // Head for unknown task rejected.
        assert!(m.add_node((3, 0), Block::head(4, 2, &mut rng), None).is_err());
    }
}
