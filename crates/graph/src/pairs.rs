//! Input-shareable node pairs (Definition 2).
//!
//! Two nodes form an input-shareable pair when their input features "have
//! compatible shapes in at least one dimension". The empirical study of
//! §2.2.1 (our Figure 1 reproduction) shows that restricting sharing to
//! such pairs dominates the accuracy/speedup Pareto frontier, so the
//! default enumeration requires shape similarity; the unrestricted variant
//! exists for the Figure 1 baseline and the ablation.

use crate::absgraph::{AbsGraph, NodeId};
use gmorph_nn::OpType;
use gmorph_tensor::{Result, Shape};

/// How candidate pairs are filtered by input-shape relation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairPolicy {
    /// Definition 2: at least one dimension equal (the paper's default).
    SimilarShape,
    /// Same rank but *no* dimension equal (Figure 1's blue points).
    DissimilarShape,
    /// Any same-rank pair (union of the above).
    AnyShape,
}

/// Enumerates candidate `(host, guest)` pairs under a policy.
///
/// Structural legality (no cycles, no no-ops, re-scalable ranks, no
/// re-scaled inputs into token embeddings) is enforced here so the
/// sampler never draws dead pairs.
pub fn pairs_with(g: &AbsGraph, policy: PairPolicy) -> Result<Vec<(NodeId, NodeId)>> {
    let ids = g.ids();
    let mut out = Vec::new();
    for &n in &ids {
        for &m in &ids {
            if n == m {
                continue;
            }
            let host = g.node(n)?;
            let guest = g.node(m)?;
            let hs = Shape::from(host.input_shape.as_slice());
            let gs = Shape::from(guest.input_shape.as_slice());
            if hs.rank() != gs.rank() {
                continue;
            }
            let similar = hs.shares_any_dim(&gs);
            let keep = match policy {
                PairPolicy::SimilarShape => similar,
                PairPolicy::DissimilarShape => !similar,
                PairPolicy::AnyShape => true,
            };
            if !keep {
                continue;
            }
            if host.input_shape != guest.input_shape {
                // A re-scale adapter would be needed: only vision [C,H,W]
                // and sequence [T,D] features support one, and token
                // embeddings cannot consume re-scaled (continuous) inputs.
                if !matches!(hs.rank(), 2 | 3) || guest.op_type == OpType::TokenEmbed {
                    continue;
                }
            }
            if guest.parent == host.parent {
                continue; // No-op.
            }
            if g.is_ancestor(m, n)? {
                continue; // Would form a cycle.
            }
            out.push((n, m));
        }
    }
    Ok(out)
}

/// The paper's default enumeration (Definition 2).
pub fn shareable_pairs(g: &AbsGraph) -> Result<Vec<(NodeId, NodeId)>> {
    pairs_with(g, PairPolicy::SimilarShape)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_specs;
    use gmorph_data::TaskSpec;
    use gmorph_models::families::{bert, vgg, SeqScale, VggDepth, VisionScale};

    fn vgg_graph() -> AbsGraph {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        parse_specs(&[
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1).unwrap(),
        ])
        .unwrap()
    }

    #[test]
    fn similar_pairs_nonempty_and_legal() {
        let g = vgg_graph();
        let pairs = shareable_pairs(&g).unwrap();
        assert!(!pairs.is_empty());
        for &(n, m) in &pairs {
            let hn = g.node(n).unwrap();
            let gm = g.node(m).unwrap();
            let hs = Shape::from(hn.input_shape.as_slice());
            let gs = Shape::from(gm.input_shape.as_slice());
            assert!(hs.shares_any_dim(&gs));
            assert_ne!(hn.parent, gm.parent);
            assert!(!g.is_ancestor(m, n).unwrap());
        }
    }

    #[test]
    fn policies_partition_same_rank_pairs() {
        let g = vgg_graph();
        let similar = pairs_with(&g, PairPolicy::SimilarShape).unwrap();
        let dissimilar = pairs_with(&g, PairPolicy::DissimilarShape).unwrap();
        let any = pairs_with(&g, PairPolicy::AnyShape).unwrap();
        assert_eq!(similar.len() + dissimilar.len(), any.len());
        for p in &similar {
            assert!(!dissimilar.contains(p));
        }
    }

    #[test]
    fn every_similar_pair_survives_a_mutation_pass() {
        // The enumeration must only produce pairs the mutation engine
        // accepts.
        let g = vgg_graph();
        for &(n, m) in shareable_pairs(&g).unwrap().iter() {
            let (mutated, ops) = crate::mutation::mutation_pass(&g, &[(n, m)]).unwrap();
            assert_eq!(ops.len(), 1, "pair ({n},{m}) was rejected");
            mutated.validate().unwrap();
        }
    }

    #[test]
    fn token_embeds_never_take_rescaled_inputs() {
        let cola = TaskSpec::matthews("cola");
        let sst = TaskSpec::classification("sst", 2);
        let g = parse_specs(&[
            bert(
                "L",
                SeqScale {
                    d: 48,
                    heads: 4,
                    depth: 2,
                },
                32,
                12,
                &cola,
            )
            .unwrap(),
            bert(
                "B",
                SeqScale {
                    d: 32,
                    heads: 4,
                    depth: 2,
                },
                32,
                12,
                &sst,
            )
            .unwrap(),
        ])
        .unwrap();
        for &(n, m) in pairs_with(&g, PairPolicy::AnyShape).unwrap().iter() {
            let guest = g.node(m).unwrap();
            if guest.op_type == OpType::TokenEmbed {
                assert_eq!(
                    g.node(n).unwrap().input_shape,
                    guest.input_shape,
                    "token embed offered a rescaled input"
                );
            }
        }
    }

    #[test]
    fn transformer_graphs_have_cross_width_pairs() {
        // BERT-Large (d=48) and BERT-Base (d=32) encoders share the token
        // count dimension, so cross-model pairs must exist (this is what
        // makes B7's fusion possible).
        let cola = TaskSpec::matthews("cola");
        let sst = TaskSpec::classification("sst", 2);
        let g = parse_specs(&[
            bert(
                "L",
                SeqScale {
                    d: 48,
                    heads: 4,
                    depth: 2,
                },
                32,
                12,
                &cola,
            )
            .unwrap(),
            bert(
                "B",
                SeqScale {
                    d: 32,
                    heads: 4,
                    depth: 2,
                },
                32,
                12,
                &sst,
            )
            .unwrap(),
        ])
        .unwrap();
        let pairs = shareable_pairs(&g).unwrap();
        let cross = pairs.iter().any(|&(n, m)| {
            g.node(n).unwrap().task_id != g.node(m).unwrap().task_id
        });
        assert!(cross);
    }
}
