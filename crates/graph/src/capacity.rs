//! Capacity vectors and the aggressiveness partial order (§5.1).
//!
//! Rule-based filtering rests on comparing how *aggressive* two candidate
//! models are in feature sharing. The paper's rule: a mutated abs-graph is
//! more aggressive than another if it has (1) fewer total capacity, (2)
//! fewer total capacity for each task, (3) fewer task-specific capacity
//! for each task, and (4) more shared capacity between tasks.

use crate::absgraph::AbsGraph;
use gmorph_tensor::Result;

/// Capacity summary of a multi-task model candidate.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacityVector {
    /// Total parameters in the model.
    pub total: usize,
    /// Parameters on each task's root-to-head path (shared nodes count for
    /// every task they serve).
    pub per_task_total: Vec<usize>,
    /// Parameters in nodes serving *only* that task.
    pub per_task_specific: Vec<usize>,
    /// Parameters in nodes serving two or more tasks.
    pub shared: usize,
}

impl CapacityVector {
    /// Computes the capacity vector of an abstract graph.
    pub fn of(graph: &AbsGraph) -> Result<CapacityVector> {
        let serving = graph.serving_tasks()?;
        let n_tasks = graph.tasks.len();
        let mut per_task_total = vec![0usize; n_tasks];
        let mut per_task_specific = vec![0usize; n_tasks];
        let mut shared = 0usize;
        let mut total = 0usize;
        for (id, node) in graph.iter() {
            total += node.capacity;
            let served = serving.get(&id).map(|v| v.as_slice()).unwrap_or(&[]);
            for &t in served {
                per_task_total[t] += node.capacity;
            }
            match served.len() {
                1 => per_task_specific[served[0]] += node.capacity,
                n if n >= 2 => shared += node.capacity,
                _ => {}
            }
        }
        Ok(CapacityVector {
            total,
            per_task_total,
            per_task_specific,
            shared,
        })
    }

    /// The paper's partial order: true when `self` shares features at
    /// least as aggressively as `other` in every component, and strictly
    /// more in at least one.
    pub fn more_aggressive_than(&self, other: &CapacityVector) -> bool {
        if self.per_task_total.len() != other.per_task_total.len() {
            return false;
        }
        let all_leq = self.total <= other.total
            && self
                .per_task_total
                .iter()
                .zip(&other.per_task_total)
                .all(|(a, b)| a <= b)
            && self
                .per_task_specific
                .iter()
                .zip(&other.per_task_specific)
                .all(|(a, b)| a <= b)
            && self.shared >= other.shared;
        let strict = self.total < other.total || self.shared > other.shared;
        all_leq && strict
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cv(total: usize, tt: Vec<usize>, ts: Vec<usize>, shared: usize) -> CapacityVector {
        CapacityVector {
            total,
            per_task_total: tt,
            per_task_specific: ts,
            shared,
        }
    }

    #[test]
    fn strictly_smaller_everywhere_is_more_aggressive() {
        let a = cv(80, vec![50, 60], vec![20, 30], 30);
        let b = cv(100, vec![60, 70], vec![40, 50], 20);
        assert!(a.more_aggressive_than(&b));
        assert!(!b.more_aggressive_than(&a));
    }

    #[test]
    fn order_is_irreflexive() {
        let a = cv(80, vec![50], vec![20], 30);
        assert!(!a.more_aggressive_than(&a));
    }

    #[test]
    fn incomparable_when_one_task_grows() {
        let a = cv(90, vec![50, 80], vec![20, 30], 30);
        let b = cv(100, vec![60, 70], vec![40, 50], 20);
        // Task 1 total grew: not more aggressive.
        assert!(!a.more_aggressive_than(&b));
    }

    #[test]
    fn less_shared_is_not_more_aggressive() {
        let a = cv(80, vec![50], vec![20], 10);
        let b = cv(100, vec![60], vec![40], 20);
        assert!(!a.more_aggressive_than(&b));
    }

    #[test]
    fn mismatched_arity_incomparable() {
        let a = cv(80, vec![50], vec![20], 30);
        let b = cv(100, vec![60, 70], vec![40, 50], 20);
        assert!(!a.more_aggressive_than(&b));
    }

    #[test]
    fn order_is_antisymmetric_on_samples() {
        // Spot-check antisymmetry: a ≻ b implies !(b ≻ a).
        let samples = vec![
            cv(80, vec![50, 60], vec![20, 30], 30),
            cv(100, vec![60, 70], vec![40, 50], 20),
            cv(100, vec![60, 70], vec![40, 50], 40),
            cv(70, vec![40, 50], vec![10, 20], 40),
        ];
        for a in &samples {
            for b in &samples {
                if a.more_aggressive_than(b) {
                    assert!(!b.more_aggressive_than(a));
                }
            }
        }
    }
}
