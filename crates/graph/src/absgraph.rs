//! The abstract graph data structure (Definition 1).

use gmorph_data::TaskSpec;
use gmorph_nn::{BlockSpec, OpType};
use gmorph_tensor::{Result, TensorError};
use std::collections::{BTreeMap, HashMap};

/// Identifier of a node within an abstract graph.
pub type NodeId = usize;

/// One node of an abstract graph: a computation block plus the annotations
/// of Definition 1's node tuple.
#[derive(Debug, Clone, PartialEq)]
pub struct AbsNode {
    /// Task (input DNN) the node originally came from.
    pub task_id: usize,
    /// Topological order of the node within its original DNN. Synthetic
    /// nodes inserted by mutation (re-scale adapters) get ids ≥
    /// [`AbsGraph::SYNTHETIC_BASE`].
    pub op_id: usize,
    /// Coarse operator type.
    pub op_type: OpType,
    /// Architecture of the block.
    pub spec: BlockSpec,
    /// Per-sample input feature shape.
    pub input_shape: Vec<usize>,
    /// Number of parameters (the paper's *capacity*).
    pub capacity: usize,
    /// Parent node; `None` means the node consumes the shared input.
    pub parent: Option<NodeId>,
    /// Child nodes.
    pub children: Vec<NodeId>,
}

impl AbsNode {
    /// The `(task_id, op_id)` key identifying this node's weights.
    pub fn key(&self) -> (usize, usize) {
        (self.task_id, self.op_id)
    }

    /// Per-sample output shape.
    pub fn out_shape(&self) -> Result<Vec<usize>> {
        self.spec.out_shape(&self.input_shape)
    }
}

/// An abstract graph: a tree of computation nodes rooted at a placeholder
/// for the shared input tensor (Definition 1).
#[derive(Debug, Clone)]
pub struct AbsGraph {
    nodes: BTreeMap<NodeId, AbsNode>,
    next_id: NodeId,
    next_synthetic_op: usize,
    /// Per-sample shape of the shared input.
    pub input_shape: Vec<usize>,
    /// Children of the input placeholder.
    pub roots: Vec<NodeId>,
    /// Task descriptors, indexed by `task_id`.
    pub tasks: Vec<TaskSpec>,
}

impl AbsGraph {
    /// First `op_id` used for synthetic (mutation-inserted) nodes.
    pub const SYNTHETIC_BASE: usize = 1 << 20;

    /// Creates an empty graph over the given shared input shape and tasks.
    pub fn new(input_shape: Vec<usize>, tasks: Vec<TaskSpec>) -> Self {
        AbsGraph {
            nodes: BTreeMap::new(),
            next_id: 0,
            next_synthetic_op: Self::SYNTHETIC_BASE,
            input_shape,
            roots: Vec::new(),
            tasks,
        }
    }

    /// Number of live nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True when the graph has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Returns a node by id.
    pub fn node(&self, id: NodeId) -> Result<&AbsNode> {
        self.nodes.get(&id).ok_or(TensorError::OutOfBounds {
            op: "AbsGraph::node",
            index: id,
            bound: self.next_id,
        })
    }

    /// Returns a node by id, mutably.
    pub fn node_mut(&mut self, id: NodeId) -> Result<&mut AbsNode> {
        let bound = self.next_id;
        self.nodes.get_mut(&id).ok_or(TensorError::OutOfBounds {
            op: "AbsGraph::node_mut",
            index: id,
            bound,
        })
    }

    /// True when `id` refers to a live node.
    pub fn contains(&self, id: NodeId) -> bool {
        self.nodes.contains_key(&id)
    }

    /// Iterates over `(id, node)` pairs in id order (deterministic).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &AbsNode)> {
        self.nodes.iter().map(|(&id, n)| (id, n))
    }

    /// All live node ids in order.
    pub fn ids(&self) -> Vec<NodeId> {
        self.nodes.keys().copied().collect()
    }

    /// Adds a node, wiring it under `parent` (or the input placeholder).
    pub fn add_node(&mut self, mut node: AbsNode) -> Result<NodeId> {
        let id = self.next_id;
        self.next_id += 1;
        node.capacity = node.spec.capacity();
        match node.parent {
            Some(p) => {
                self.node_mut(p)?.children.push(id);
            }
            None => self.roots.push(id),
        }
        self.nodes.insert(id, node);
        Ok(id)
    }

    /// Allocates a fresh synthetic `op_id` (for re-scale adapters).
    pub fn alloc_synthetic_op(&mut self) -> usize {
        let id = self.next_synthetic_op;
        self.next_synthetic_op += 1;
        id
    }

    /// The arena's allocation counters `(next_id, next_synthetic_op)`.
    ///
    /// Exposed for crash-safe checkpointing: two graphs that are
    /// structurally equal but disagree on these counters would assign
    /// different ids to the *next* mutation, so a bit-exact resume must
    /// snapshot and restore them.
    pub fn arena_counters(&self) -> (NodeId, usize) {
        (self.next_id, self.next_synthetic_op)
    }

    /// Rebuilds a graph from raw arena parts, preserving node ids, root
    /// and child ordering, and allocation counters exactly.
    ///
    /// This is the restore half of the checkpoint codec: unlike
    /// [`crate::persist::decode_graph`], which renumbers the arena, a
    /// graph restored here continues to mutate identically to the one
    /// that was saved. Node `capacity` is recomputed from the spec (as
    /// [`AbsGraph::add_node`] does) and the result is validated.
    pub fn from_arena(
        input_shape: Vec<usize>,
        tasks: Vec<TaskSpec>,
        nodes: Vec<(NodeId, AbsNode)>,
        roots: Vec<NodeId>,
        next_id: NodeId,
        next_synthetic_op: usize,
    ) -> Result<AbsGraph> {
        let mut g = AbsGraph::new(input_shape, tasks);
        for (id, mut node) in nodes {
            if id >= next_id {
                return Err(TensorError::InvalidArgument {
                    op: "AbsGraph::from_arena",
                    msg: format!("node id {id} not below next_id {next_id}"),
                });
            }
            node.capacity = node.spec.capacity();
            if g.nodes.insert(id, node).is_some() {
                return Err(TensorError::InvalidArgument {
                    op: "AbsGraph::from_arena",
                    msg: format!("duplicate node id {id}"),
                });
            }
        }
        g.roots = roots;
        g.next_id = next_id;
        g.next_synthetic_op = next_synthetic_op.max(Self::SYNTHETIC_BASE);
        g.validate()?;
        Ok(g)
    }

    /// Detaches `id` from its parent (or the root list) without removing it.
    pub fn detach(&mut self, id: NodeId) -> Result<()> {
        let parent = self.node(id)?.parent;
        match parent {
            Some(p) => {
                let children = &mut self.node_mut(p)?.children;
                children.retain(|&c| c != id);
            }
            None => self.roots.retain(|&r| r != id),
        }
        self.node_mut(id)?.parent = None;
        Ok(())
    }

    /// Attaches a detached node under `parent` (or the input placeholder).
    pub fn attach(&mut self, id: NodeId, parent: Option<NodeId>) -> Result<()> {
        match parent {
            Some(p) => self.node_mut(p)?.children.push(id),
            None => self.roots.push(id),
        }
        self.node_mut(id)?.parent = parent;
        Ok(())
    }

    /// Removes a leaf node entirely.
    pub fn remove_leaf(&mut self, id: NodeId) -> Result<AbsNode> {
        if !self.node(id)?.children.is_empty() {
            return Err(TensorError::InvalidArgument {
                op: "AbsGraph::remove_leaf",
                msg: format!("node {id} has children"),
            });
        }
        self.detach(id)?;
        Ok(self.nodes.remove(&id).expect("checked above"))
    }

    /// Ancestors of a node, nearest first (excluding the node itself).
    pub fn ancestors(&self, id: NodeId) -> Result<Vec<NodeId>> {
        let mut out = Vec::new();
        let mut cur = self.node(id)?.parent;
        while let Some(p) = cur {
            out.push(p);
            cur = self.node(p)?.parent;
        }
        Ok(out)
    }

    /// True when `a` is an ancestor of `b`.
    pub fn is_ancestor(&self, a: NodeId, b: NodeId) -> Result<bool> {
        Ok(self.ancestors(b)?.contains(&a))
    }

    /// The input shape a child of `parent` consumes: the parent's output
    /// shape, or the shared input shape at the placeholder.
    pub fn feed_shape(&self, parent: Option<NodeId>) -> Result<Vec<usize>> {
        match parent {
            Some(p) => self.node(p)?.out_shape(),
            None => Ok(self.input_shape.clone()),
        }
    }

    /// Ids in topological (parent-before-child) order, deterministic.
    pub fn topo_order(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        let mut stack: Vec<NodeId> = self.roots.iter().rev().copied().collect();
        while let Some(id) = stack.pop() {
            if let Some(n) = self.nodes.get(&id) {
                out.push(id);
                for &c in n.children.iter().rev() {
                    stack.push(c);
                }
            }
        }
        out
    }

    /// The head (leaf) node id of each task, indexed by `task_id`.
    pub fn head_of_task(&self) -> Result<Vec<NodeId>> {
        let mut heads: Vec<Option<NodeId>> = vec![None; self.tasks.len()];
        for (id, n) in self.iter() {
            if n.op_type == OpType::Head {
                let t = n.task_id;
                if t >= heads.len() || heads[t].is_some() {
                    return Err(TensorError::InvalidArgument {
                        op: "AbsGraph::head_of_task",
                        msg: format!("task {t} has duplicate or out-of-range head"),
                    });
                }
                heads[t] = Some(id);
            }
        }
        heads
            .into_iter()
            .enumerate()
            .map(|(t, h)| {
                h.ok_or(TensorError::InvalidArgument {
                    op: "AbsGraph::head_of_task",
                    msg: format!("task {t} has no head"),
                })
            })
            .collect()
    }

    /// For every node, the set of tasks whose head lies in its subtree.
    pub fn serving_tasks(&self) -> Result<HashMap<NodeId, Vec<usize>>> {
        let heads = self.head_of_task()?;
        let mut serving: HashMap<NodeId, Vec<usize>> = HashMap::new();
        for (task, &head) in heads.iter().enumerate() {
            serving.entry(head).or_default().push(task);
            for a in self.ancestors(head)? {
                serving.entry(a).or_default().push(task);
            }
        }
        for v in serving.values_mut() {
            v.sort_unstable();
            v.dedup();
        }
        Ok(serving)
    }

    /// The feature-shape dictionary `D` of Definition 1: maps each input
    /// feature shape to the nodes consuming it.
    pub fn shape_dict(&self) -> HashMap<Vec<usize>, Vec<NodeId>> {
        let mut dict: HashMap<Vec<usize>, Vec<NodeId>> = HashMap::new();
        for (id, n) in self.iter() {
            dict.entry(n.input_shape.clone()).or_default().push(id);
        }
        dict
    }

    /// Total per-sample FLOPs of the graph.
    pub fn flops(&self) -> Result<u64> {
        let mut total = 0u64;
        for (_, n) in self.iter() {
            total += n.spec.flops(&n.input_shape)?;
        }
        Ok(total)
    }

    /// Checks every structural invariant; returns an error naming the
    /// first violation.
    ///
    /// Invariants: parent/child links are symmetric; the graph is a forest
    /// reachable from `roots`; every node's `input_shape` equals what its
    /// parent feeds it; every leaf is a Head and every Head is a leaf;
    /// every task has exactly one head; capacities match specs.
    pub fn validate(&self) -> Result<()> {
        let fail = |msg: String| {
            Err(TensorError::InvalidArgument {
                op: "AbsGraph::validate",
                msg,
            })
        };
        // Link symmetry and reachability.
        let topo = self.topo_order();
        if topo.len() != self.nodes.len() {
            return fail(format!(
                "{} nodes but {} reachable from roots",
                self.nodes.len(),
                topo.len()
            ));
        }
        for (id, n) in self.iter() {
            match n.parent {
                Some(p) => {
                    let pn = self.node(p)?;
                    if !pn.children.contains(&id) {
                        return fail(format!("node {id} missing from parent {p}'s children"));
                    }
                }
                None => {
                    if !self.roots.contains(&id) {
                        return fail(format!("parentless node {id} not in roots"));
                    }
                }
            }
            for &c in &n.children {
                if self.node(c)?.parent != Some(id) {
                    return fail(format!("child {c} does not point back to {id}"));
                }
            }
            // Shape chain.
            let feed = self.feed_shape(n.parent)?;
            if feed != n.input_shape {
                return fail(format!(
                    "node {id} expects input {:?} but parent feeds {:?}",
                    n.input_shape, feed
                ));
            }
            n.out_shape()?; // The spec must accept its input.
            if n.capacity != n.spec.capacity() {
                return fail(format!("node {id} capacity out of date"));
            }
            // Leaf <=> head.
            let is_head = n.op_type == OpType::Head;
            if is_head != n.children.is_empty() {
                return fail(format!(
                    "node {id}: head={is_head} but has {} children",
                    n.children.len()
                ));
            }
        }
        self.head_of_task()?;
        Ok(())
    }

    /// Canonical structural signature, equal for isomorphic graphs.
    ///
    /// Used by the history database to detect already-evaluated candidates.
    pub fn signature(&self) -> String {
        fn rec(g: &AbsGraph, id: NodeId, out: &mut String) {
            let n = g.node(id).expect("signature over live nodes");
            out.push_str(&format!("({}:{}:{:?}", n.task_id, n.op_id, n.spec));
            let mut kids = n.children.clone();
            kids.sort_by_key(|&c| {
                let cn = g.node(c).expect("live child");
                (cn.task_id, cn.op_id)
            });
            for c in kids {
                rec(g, c, out);
            }
            out.push(')');
        }
        let mut out = String::new();
        let mut roots = self.roots.clone();
        roots.sort_by_key(|&r| {
            let n = self.node(r).expect("live root");
            (n.task_id, n.op_id)
        });
        for r in roots {
            rec(self, r, &mut out);
        }
        out
    }

    /// Renders the graph as indented text (the Figure 9-style
    /// visualization).
    pub fn render(&self) -> String {
        fn rec(g: &AbsGraph, id: NodeId, depth: usize, serving: &HashMap<NodeId, Vec<usize>>, out: &mut String) {
            let n = g.node(id).expect("render over live nodes");
            let tasks = serving
                .get(&id)
                .map(|v| {
                    v.iter()
                        .map(|t| g.tasks[*t].name.clone())
                        .collect::<Vec<_>>()
                        .join(",")
                })
                .unwrap_or_default();
            out.push_str(&format!(
                "{}{} in={:?} [{}]\n",
                "  ".repeat(depth),
                n.spec.describe(),
                n.input_shape,
                tasks
            ));
            for &c in &n.children {
                rec(g, c, depth + 1, serving, out);
            }
        }
        let serving = self.serving_tasks().unwrap_or_default();
        let mut out = format!("Input {:?}\n", self.input_shape);
        for &r in &self.roots {
            rec(self, r, 1, &serving, &mut out);
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_data::TaskSpec;

    /// Builds a small two-task graph: two chains off the input.
    fn two_chain() -> AbsGraph {
        let tasks = vec![
            TaskSpec::classification("t0", 2),
            TaskSpec::classification("t1", 3),
        ];
        let mut g = AbsGraph::new(vec![3, 8, 8], tasks);
        let mut prev = None;
        for (op, spec) in [
            BlockSpec::ConvRelu { c_in: 3, c_out: 4 },
            BlockSpec::ConvRelu { c_in: 4, c_out: 4 },
            BlockSpec::Head {
                features: 4,
                classes: 2,
            },
        ]
        .into_iter()
        .enumerate()
        {
            let input_shape = g.feed_shape(prev).unwrap();
            let id = g
                .add_node(AbsNode {
                    task_id: 0,
                    op_id: op,
                    op_type: match spec {
                        BlockSpec::Head { .. } => OpType::Head,
                        _ => OpType::Conv,
                    },
                    spec,
                    input_shape,
                    capacity: 0,
                    parent: prev,
                    children: vec![],
                })
                .unwrap();
            prev = Some(id);
        }
        let mut prev = None;
        for (op, spec) in [
            BlockSpec::ConvRelu { c_in: 3, c_out: 8 },
            BlockSpec::Head {
                features: 8,
                classes: 3,
            },
        ]
        .into_iter()
        .enumerate()
        {
            let input_shape = g.feed_shape(prev).unwrap();
            let id = g
                .add_node(AbsNode {
                    task_id: 1,
                    op_id: op,
                    op_type: match spec {
                        BlockSpec::Head { .. } => OpType::Head,
                        _ => OpType::Conv,
                    },
                    spec,
                    input_shape,
                    capacity: 0,
                    parent: prev,
                    children: vec![],
                })
                .unwrap();
            prev = Some(id);
        }
        g
    }

    #[test]
    fn construction_and_validate() {
        let g = two_chain();
        assert_eq!(g.len(), 5);
        assert_eq!(g.roots.len(), 2);
        g.validate().unwrap();
    }

    #[test]
    fn topo_order_is_parent_first() {
        let g = two_chain();
        let topo = g.topo_order();
        assert_eq!(topo.len(), 5);
        for (i, &id) in topo.iter().enumerate() {
            if let Some(p) = g.node(id).unwrap().parent {
                assert!(topo[..i].contains(&p));
            }
        }
    }

    #[test]
    fn head_of_task_and_serving() {
        let g = two_chain();
        let heads = g.head_of_task().unwrap();
        assert_eq!(heads.len(), 2);
        let serving = g.serving_tasks().unwrap();
        // Root of chain 0 serves only task 0.
        assert_eq!(serving[&g.roots[0]], vec![0]);
        assert_eq!(serving[&g.roots[1]], vec![1]);
    }

    #[test]
    fn detach_attach_roundtrip() {
        let mut g = two_chain();
        let heads = g.head_of_task().unwrap();
        let h0 = heads[0];
        let old_parent = g.node(h0).unwrap().parent;
        g.detach(h0).unwrap();
        assert!(g.node(h0).unwrap().parent.is_none());
        g.attach(h0, old_parent).unwrap();
        g.validate().unwrap();
    }

    #[test]
    fn validate_catches_shape_breaks() {
        let mut g = two_chain();
        // Move task 1's head under task 0's trunk: 8-feature head now fed
        // 4-channel features.
        let heads = g.head_of_task().unwrap();
        let h1 = heads[1];
        let t0_mid = g.roots[0];
        g.detach(h1).unwrap();
        g.attach(h1, Some(t0_mid)).unwrap();
        assert!(g.validate().is_err());
    }

    #[test]
    fn validate_catches_orphan_leaf() {
        let mut g = two_chain();
        let heads = g.head_of_task().unwrap();
        // Removing a head leaves its parent a non-head leaf.
        g.remove_leaf(heads[0]).unwrap();
        assert!(g.validate().is_err());
    }

    #[test]
    fn shape_dict_groups_by_input_shape() {
        let g = two_chain();
        let dict = g.shape_dict();
        // Both chain roots consume the shared input shape.
        assert_eq!(dict[&vec![3usize, 8, 8]].len(), 2);
    }

    #[test]
    fn signature_is_stable_and_discriminating() {
        let a = two_chain();
        let b = two_chain();
        assert_eq!(a.signature(), b.signature());
        let mut c = two_chain();
        let heads = c.head_of_task().unwrap();
        c.remove_leaf(heads[0]).unwrap();
        assert_ne!(a.signature(), c.signature());
    }

    #[test]
    fn flops_positive() {
        assert!(two_chain().flops().unwrap() > 0);
    }

    #[test]
    fn render_mentions_blocks_and_tasks() {
        let r = two_chain().render();
        assert!(r.contains("Conv+ReLU"));
        assert!(r.contains("Head"));
        assert!(r.contains("t0"));
    }

    #[test]
    fn synthetic_op_ids_are_unique_and_high() {
        let mut g = two_chain();
        let a = g.alloc_synthetic_op();
        let b = g.alloc_synthetic_op();
        assert_ne!(a, b);
        assert!(a >= AbsGraph::SYNTHETIC_BASE);
        // No original node uses the synthetic range.
        for (_, n) in g.iter() {
            assert!(n.op_id < AbsGraph::SYNTHETIC_BASE);
        }
    }

    #[test]
    fn node_lookup_errors_on_dead_ids() {
        let g = two_chain();
        assert!(g.node(999).is_err());
        assert!(!g.contains(999));
        assert!(g.ancestors(999).is_err());
    }

    #[test]
    fn remove_leaf_rejects_internal_nodes() {
        let mut g = two_chain();
        let root0 = g.roots[0];
        assert!(g.remove_leaf(root0).is_err());
    }
}
