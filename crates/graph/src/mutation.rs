//! Graph mutation: the five operations of Figure 5 and the mutation pass
//! of Figure 6.
//!
//! All five pre-defined operations are instances of one primitive — *make
//! node `m` reuse node `n`'s input features* (Definition 2's pair
//! `(n, m)`):
//!
//! - when `n` is an ancestor of `m`, this is the **in-branch** mutation
//!   (panel ①): the nodes between `n`'s input and `m` are removed,
//!   shortening the task's own chain;
//! - when `n` and `m` lie on different branches, this is a **cross-branch**
//!   mutation (panels ②-⑤): `m`'s branch re-roots onto the host branch at
//!   `n`'s input, the guest's now-dead prefix is removed, and the host
//!   prefix becomes shared between the tasks. Which panel applies follows
//!   from the relative depths of `n` and `m`, which we record in the
//!   outcome for diagnostics.
//!
//! If `n`'s input shape differs from what `m` expects, a re-scale adapter
//! (§4.1) is inserted between them.

use crate::absgraph::{AbsGraph, AbsNode, NodeId};
use gmorph_nn::{BlockSpec, OpType};
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, TensorError};

/// Which of the paper's mutation classes an operation fell into.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationKind {
    /// Panel ①: host and guest on the same branch.
    InBranch,
    /// Panels ②-⑤: host and guest on different branches. `guest_shortened`
    /// is true when the guest task ends up with fewer nodes than before
    /// (panels ④/⑤'s `m.op_id > n.op_id` case).
    CrossBranch {
        /// True when the guest task's path shrank.
        guest_shortened: bool,
    },
}

/// Record of one applied mutation operation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MutationOutcome {
    /// Operation class.
    pub kind: MutationKind,
    /// Key of the host node `n` (whose input is now shared).
    pub host: (usize, usize),
    /// Key of the guest node `m` (which now reuses that input).
    pub guest: (usize, usize),
    /// Whether a re-scale adapter was inserted.
    pub inserted_rescale: bool,
    /// How many nodes the garbage collection removed.
    pub removed_nodes: usize,
}

/// Applies the share-input primitive for pair `(n, m)`: `m` reuses `n`'s
/// input features (Definition 2).
///
/// Fails — leaving the graph in an unspecified but recoverable state only
/// if the failure happens after structural edits, which the pass guards
/// against by operating on a scratch clone — when the pair is structurally
/// illegal: identical nodes, `m` an ancestor of `n` (cycle), a no-op
/// (same parent), or an input that cannot be re-scaled (token ids).
pub fn share_input(g: &mut AbsGraph, n: NodeId, m: NodeId) -> Result<MutationOutcome> {
    let reject = |msg: String| {
        Err(TensorError::InvalidArgument {
            op: "mutation::share_input",
            msg,
        })
    };
    if n == m {
        return reject("host and guest are the same node".to_string());
    }
    let (host_key, host_parent, host_input) = {
        let hn = g.node(n)?;
        (hn.key(), hn.parent, hn.input_shape.clone())
    };
    let (guest_key, guest_parent, guest_input, guest_ty) = {
        let gn = g.node(m)?;
        (gn.key(), gn.parent, gn.input_shape.clone(), gn.op_type)
    };
    if g.is_ancestor(m, n)? {
        return reject("guest is an ancestor of the host (would form a cycle)".to_string());
    }
    if guest_parent == host_parent {
        return reject("guest already consumes the host's input (no-op)".to_string());
    }
    let needs_rescale = host_input != guest_input;
    if needs_rescale {
        let ranks_ok = matches!(
            (host_input.len(), guest_input.len()),
            (3, 3) | (2, 2)
        );
        if !ranks_ok {
            return reject(format!(
                "cannot re-scale {host_input:?} to {guest_input:?}"
            ));
        }
        if guest_ty == OpType::TokenEmbed {
            return reject("token embeddings consume discrete ids; re-scaled features are invalid".to_string());
        }
    }
    let in_branch = g.is_ancestor(n, m)?;
    let guest_depth_before = g.ancestors(m)?.len();

    // Re-root the guest subtree.
    g.detach(m)?;
    let attach_under = if needs_rescale {
        let op_id = g.alloc_synthetic_op();
        let rescale = AbsNode {
            task_id: guest_key.0,
            op_id,
            op_type: OpType::Rescale,
            spec: BlockSpec::Rescale {
                from: host_input.clone(),
                to: guest_input.clone(),
            },
            input_shape: host_input.clone(),
            capacity: 0, // Recomputed by add_node.
            parent: host_parent,
            children: vec![],
        };
        Some(g.add_node(rescale)?)
    } else {
        host_parent
    };
    g.attach(m, attach_under)?;

    // Garbage-collect the guest's dead prefix: climb from the old parent
    // removing nodes that no longer feed anything.
    let mut removed = 0usize;
    let mut cur = guest_parent;
    while let Some(id) = cur {
        let node = g.node(id)?;
        if !node.children.is_empty() || node.op_type == OpType::Head {
            break;
        }
        let parent = node.parent;
        g.remove_leaf(id)?;
        removed += 1;
        cur = parent;
    }

    let guest_depth_after = g.ancestors(m)?.len();
    let kind = if in_branch {
        MutationKind::InBranch
    } else {
        MutationKind::CrossBranch {
            guest_shortened: guest_depth_after < guest_depth_before,
        }
    };
    Ok(MutationOutcome {
        kind,
        host: host_key,
        guest: guest_key,
        inserted_rescale: needs_rescale,
        removed_nodes: removed,
    })
}

/// A graph mutation pass (Figure 6): applies a sequence of share-input
/// operations to a base graph, skipping pairs invalidated by earlier
/// operations, and returns the mutated graph with the applied outcomes.
///
/// The base graph is never modified; each operation runs on a scratch
/// clone and is kept only if the resulting graph validates.
pub fn mutation_pass(
    base: &AbsGraph,
    pairs: &[(NodeId, NodeId)],
) -> Result<(AbsGraph, Vec<MutationOutcome>)> {
    let mut current = base.clone();
    let mut outcomes = Vec::new();
    for &(n, m) in pairs {
        if !current.contains(n) || !current.contains(m) {
            continue; // Invalidated by an earlier operation.
        }
        let mut trial = current.clone();
        match share_input(&mut trial, n, m) {
            Ok(outcome) if trial.validate().is_ok() => {
                current = trial;
                outcomes.push(outcome);
            }
            _ => {}
        }
    }
    Ok((current, outcomes))
}

/// Samples a random set of shareable pairs and applies a mutation pass,
/// retrying until at least one operation lands (or attempts run out).
///
/// This is `sampleNodePairs` + `mutate` of Algorithm 1 (lines 8-9).
pub fn random_mutation_pass(
    base: &AbsGraph,
    pairs: &[(NodeId, NodeId)],
    max_ops: usize,
    rng: &mut Rng,
) -> Result<Option<(AbsGraph, Vec<MutationOutcome>)>> {
    if pairs.is_empty() {
        return Ok(None);
    }
    for _ in 0..8 {
        let k = 1 + rng.below(max_ops.max(1));
        let chosen: Vec<(NodeId, NodeId)> = (0..k)
            .map(|_| pairs[rng.below(pairs.len())])
            .collect();
        let (g, ops) = mutation_pass(base, &chosen)?;
        if !ops.is_empty() {
            return Ok(Some((g, ops)));
        }
    }
    Ok(None)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parser::parse_specs;
    use gmorph_data::TaskSpec;
    use gmorph_models::families::{vgg, VggDepth, VisionScale};
    use gmorph_models::ModelSpec;

    fn two_vgg_graph() -> AbsGraph {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        let specs: Vec<ModelSpec> = vec![
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1).unwrap(),
        ];
        parse_specs(&specs).unwrap()
    }

    /// Finds the node id with a given (task, op) key.
    fn by_key(g: &AbsGraph, task: usize, op: usize) -> NodeId {
        g.iter()
            .find(|(_, n)| n.task_id == task && n.op_id == op)
            .map(|(id, _)| id)
            .unwrap()
    }

    #[test]
    fn cross_branch_share_first_block() {
        let mut g = two_vgg_graph();
        let before = g.len();
        // Task 1's first conv reuses task 0's first conv input (the shared
        // input itself): task 1's prefix dies, branches merge at the root.
        let n = by_key(&g, 0, 0);
        let m = by_key(&g, 1, 1);
        let out = share_input(&mut g, n, m).unwrap();
        g.validate().unwrap();
        assert!(matches!(out.kind, MutationKind::CrossBranch { .. }));
        assert_eq!(out.removed_nodes, 1); // Task 1's op 0 died.
        // Graph shrank or stayed (rescale may offset).
        assert!(g.len() <= before);
    }

    #[test]
    fn in_branch_removes_intermediate_nodes() {
        let mut g = two_vgg_graph();
        let before = g.len();
        // Task 1 (VGG-13) has two convs per stage at the same shape:
        // op 0 (conv c3->4@16) and op 1 (conv 4->4@16). Pool is op 2.
        // Let op 3 (conv 4->8@8) reuse op 1's input: op 1..2 die but a
        // rescale appears ([4,16,16] vs [4,8,8] share the channel dim).
        let n = by_key(&g, 1, 1);
        let m = by_key(&g, 1, 3);
        let out = share_input(&mut g, n, m).unwrap();
        g.validate().unwrap();
        assert_eq!(out.kind, MutationKind::InBranch);
        assert!(out.removed_nodes >= 2);
        assert!(out.inserted_rescale);
        assert!(g.len() < before);
    }

    #[test]
    fn in_branch_same_shape_needs_no_rescale() {
        let mut g = two_vgg_graph();
        // VGG-13's fourth stage repeats conv(16->16) at constant spatial
        // size, so ops 9 and 10 consume identical [16,2,2] inputs; making
        // op 10 reuse op 9's input removes op 9 with no rescale.
        let n = by_key(&g, 1, 9);
        let m = by_key(&g, 1, 10);
        let n_in = g.node(n).unwrap().input_shape.clone();
        let m_in = g.node(m).unwrap().input_shape.clone();
        assert_eq!(n_in, m_in);
        let out = share_input(&mut g, n, m).unwrap();
        g.validate().unwrap();
        assert!(!out.inserted_rescale);
        assert_eq!(out.removed_nodes, 1);
    }

    #[test]
    fn rejects_self_cycle_and_noop() {
        let mut g = two_vgg_graph();
        let a = by_key(&g, 0, 0);
        let b = by_key(&g, 0, 2);
        assert!(share_input(&mut g, a, a).is_err());
        // Guest ancestor of host: cycle.
        assert!(share_input(&mut g, b, a).is_err());
        // Same parent (both consume the root input): no-op.
        let r0 = by_key(&g, 0, 0);
        let r1 = by_key(&g, 1, 0);
        assert!(share_input(&mut g, r0, r1).is_err());
    }

    #[test]
    fn share_into_head_keeps_tasks_alive() {
        let mut g = two_vgg_graph();
        // Task 1's head reuses a deep node input from task 0: task 1 loses
        // its whole trunk (B1's "share the entire backbone" case).
        let heads = g.head_of_task().unwrap();
        let deep_host = by_key(&g, 0, 9); // Task 0's conv in last stage.
        let out = share_input(&mut g, deep_host, heads[1]).unwrap();
        g.validate().unwrap();
        assert!(out.removed_nodes > 5);
        // Both tasks still have heads.
        assert_eq!(g.head_of_task().unwrap().len(), 2);
    }

    #[test]
    fn mutation_pass_skips_invalidated_pairs() {
        let g = two_vgg_graph();
        let n = by_key(&g, 0, 9);
        let h1 = g.head_of_task().unwrap()[1];
        // Second pair references task 1 nodes that die in the first op.
        let dead = by_key(&g, 1, 2);
        let other = by_key(&g, 1, 4);
        let (mutated, ops) =
            mutation_pass(&g, &[(n, h1), (dead, other)]).unwrap();
        mutated.validate().unwrap();
        assert_eq!(ops.len(), 1);
    }

    #[test]
    fn mutation_reduces_flops() {
        let g = two_vgg_graph();
        let n = by_key(&g, 0, 0);
        let m = by_key(&g, 1, 1);
        let (mutated, ops) = mutation_pass(&g, &[(n, m)]).unwrap();
        assert_eq!(ops.len(), 1);
        assert!(mutated.flops().unwrap() < g.flops().unwrap());
    }

    #[test]
    fn base_graph_is_untouched_by_pass() {
        let g = two_vgg_graph();
        let sig = g.signature();
        let n = by_key(&g, 0, 0);
        let m = by_key(&g, 1, 1);
        let _ = mutation_pass(&g, &[(n, m)]).unwrap();
        assert_eq!(g.signature(), sig);
    }

    #[test]
    fn random_pass_finds_some_mutation() {
        let g = two_vgg_graph();
        let pairs = crate::pairs::shareable_pairs(&g).unwrap();
        let mut rng = Rng::new(0);
        let got = random_mutation_pass(&g, &pairs, 2, &mut rng).unwrap();
        assert!(got.is_some());
        let (mutated, ops) = got.unwrap();
        mutated.validate().unwrap();
        assert!(!ops.is_empty());
        // Empty pair list yields none.
        assert!(random_mutation_pass(&g, &[], 2, &mut rng)
            .unwrap()
            .is_none());
    }
}
