//! The Model Parser (§4.2): models ⇄ abstract graph + weights.

use crate::absgraph::{AbsGraph, AbsNode};
use crate::tree::TreeModel;
use gmorph_models::{ModelSpec, SingleTaskModel};
use gmorph_nn::{BlockSpec, OpType, Tensor};
use gmorph_tensor::{Result, TensorError};
use std::collections::HashMap;

/// Well-trained weights keyed by node identity `(task_id, op_id)`.
///
/// This is the paper's "weights saved as key-value pairs, where each key is
/// the (task_id, op_id) of a node in the abs-graph and the value is the
/// parameters of the operator or the group of operators" (§4.2). The spec
/// is stored alongside so inheritance only happens between architecturally
/// identical blocks.
#[derive(Debug, Clone, Default)]
pub struct WeightStore {
    entries: HashMap<(usize, usize), (BlockSpec, Vec<Tensor>)>,
}

impl WeightStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        WeightStore::default()
    }

    /// Number of stored blocks.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing is stored.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores (or replaces) the weights of one node.
    pub fn insert(&mut self, key: (usize, usize), spec: BlockSpec, state: Vec<Tensor>) {
        self.entries.insert(key, (spec, state));
    }

    /// Looks up weights for a node, returning them only if the stored
    /// architecture matches `spec`.
    pub fn lookup(&self, key: (usize, usize), spec: &BlockSpec) -> Option<&[Tensor]> {
        match self.entries.get(&key) {
            Some((s, state)) if s == spec => Some(state),
            _ => None,
        }
    }

    /// Merges another store into this one (other wins on conflicts).
    pub fn absorb(&mut self, other: WeightStore) {
        self.entries.extend(other.entries);
    }
}

/// Coarse operator type of a block spec (shared with baselines).
pub fn op_type_of(spec: &BlockSpec) -> OpType {
    match spec {
        BlockSpec::ConvRelu { .. } | BlockSpec::ConvBnRelu { .. } => OpType::Conv,
        BlockSpec::Residual { .. } => OpType::Residual,
        BlockSpec::MaxPool { .. } => OpType::Pool,
        BlockSpec::Transformer { .. } => OpType::Transformer,
        BlockSpec::PatchEmbed { .. } => OpType::PatchEmbed,
        BlockSpec::TokenEmbed { .. } => OpType::TokenEmbed,
        BlockSpec::Head { .. } => OpType::Head,
        BlockSpec::Rescale { .. } => OpType::Rescale,
    }
}

/// Parses a set of single-task model *specs* into an abstract graph
/// (weight-free — used for paper-scale estimation graphs).
pub fn parse_specs(specs: &[ModelSpec]) -> Result<AbsGraph> {
    let first = specs.first().ok_or(TensorError::InvalidArgument {
        op: "parse_specs",
        msg: "no models".to_string(),
    })?;
    for s in specs {
        if s.input_shape != first.input_shape {
            return Err(TensorError::InvalidArgument {
                op: "parse_specs",
                msg: format!(
                    "models disagree on input shape: {:?} vs {:?} — GMorph requires a shared input stream",
                    first.input_shape, s.input_shape
                ),
            });
        }
    }
    let tasks = specs.iter().map(|s| s.task.clone()).collect();
    let mut g = AbsGraph::new(first.input_shape.clone(), tasks);
    for (task_id, spec) in specs.iter().enumerate() {
        let mut prev = None;
        for (op_id, block) in spec.blocks.iter().enumerate() {
            let input_shape = g.feed_shape(prev)?;
            let id = g.add_node(AbsNode {
                task_id,
                op_id,
                op_type: op_type_of(block),
                spec: block.clone(),
                input_shape,
                capacity: 0, // Filled by add_node.
                parent: prev,
                children: vec![],
            })?;
            prev = Some(id);
        }
    }
    g.validate()?;
    Ok(g)
}

/// Parses well-trained single-task models into an abstract graph plus
/// their weights (Algorithm 1, line 1).
pub fn parse_models(models: &[SingleTaskModel]) -> Result<(AbsGraph, WeightStore)> {
    let specs: Vec<ModelSpec> = models.iter().map(|m| m.spec.clone()).collect();
    let graph = parse_specs(&specs)?;
    let mut store = WeightStore::new();
    for (task_id, m) in models.iter().enumerate() {
        for (op_id, block) in m.blocks.iter().enumerate() {
            store.insert((task_id, op_id), block.spec(), block.state());
        }
    }
    Ok((graph, store))
}

/// Parses a trained multi-task model back into weights (Algorithm 1,
/// line 13): the graph is already known; the fresh weights feed the
/// History Database so future mutations inherit them.
pub fn extract_weights(tree: &TreeModel) -> WeightStore {
    let mut store = WeightStore::new();
    for node in tree.nodes() {
        store.insert(node.key, node.block.spec(), node.block.state());
    }
    store
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_data::TaskSpec;
    use gmorph_models::families::{vgg, VggDepth, VisionScale};
    use gmorph_tensor::rng::Rng;

    fn two_vggs() -> Vec<ModelSpec> {
        let t0 = TaskSpec::classification("a", 2);
        let t1 = TaskSpec::classification("b", 3);
        vec![
            vgg(VggDepth::Vgg11, VisionScale::mini(), &t0).unwrap(),
            vgg(VggDepth::Vgg13, VisionScale::mini(), &t1).unwrap(),
        ]
    }

    #[test]
    fn parse_specs_builds_chains() {
        let specs = two_vggs();
        let g = parse_specs(&specs).unwrap();
        assert_eq!(g.len(), specs[0].blocks.len() + specs[1].blocks.len());
        assert_eq!(g.roots.len(), 2);
        g.validate().unwrap();
        // op_ids are dense per task.
        let mut per_task: Vec<Vec<usize>> = vec![vec![], vec![]];
        for (_, n) in g.iter() {
            per_task[n.task_id].push(n.op_id);
        }
        for ops in &mut per_task {
            ops.sort_unstable();
            assert_eq!(*ops, (0..ops.len()).collect::<Vec<_>>());
        }
    }

    #[test]
    fn parse_rejects_mismatched_inputs() {
        let t = TaskSpec::classification("a", 2);
        let a = vgg(VggDepth::Vgg11, VisionScale::mini(), &t).unwrap();
        let b = vgg(
            VggDepth::Vgg11,
            VisionScale {
                in_channels: 3,
                img: 32,
                base: 4,
            },
            &t,
        )
        .unwrap();
        assert!(parse_specs(&[a, b]).is_err());
        assert!(parse_specs(&[]).is_err());
    }

    #[test]
    fn parse_models_stores_all_weights() {
        let mut rng = Rng::new(0);
        let specs = two_vggs();
        let models: Vec<SingleTaskModel> =
            specs.iter().map(|s| s.build(&mut rng).unwrap()).collect();
        let (g, store) = parse_models(&models).unwrap();
        assert_eq!(store.len(), g.len());
        // Lookup returns weights only for matching specs.
        let (id, node) = g.iter().next().unwrap();
        let _ = id;
        assert!(store.lookup(node.key(), &node.spec).is_some());
        let wrong = BlockSpec::MaxPool { k: 2 };
        assert!(store.lookup(node.key(), &wrong).is_none());
    }

    #[test]
    fn weight_store_absorb_overwrites() {
        let mut a = WeightStore::new();
        let spec = BlockSpec::MaxPool { k: 2 };
        a.insert((0, 0), spec.clone(), vec![]);
        let mut b = WeightStore::new();
        b.insert((0, 0), spec.clone(), vec![Tensor::ones(&[1])]);
        a.absorb(b);
        assert_eq!(a.lookup((0, 0), &spec).unwrap().len(), 1);
    }
}
