//! Abstract graphs and graph mutation — the paper's primary contribution.
//!
//! This crate implements §4 of the paper:
//!
//! - [`absgraph`]: the abstract graph data structure (Definition 1) — "a
//!   tree variant of a DAG" whose root is a placeholder for the shared
//!   input tensor and whose nodes are computation blocks annotated with
//!   `(task_id, op_id, op_type, input_shape, capacity, parent, children)`,
//! - [`parser`]: the Model Parser (§4.2) converting single-task models or a
//!   trained multi-task model into an abstract graph plus a weight store,
//! - [`pairs`]: input-shareable node pairs (Definition 2) — nodes whose
//!   input features share at least one dimension,
//! - [`mutation`]: the five mutation operations of Figure 5 and the graph
//!   mutation pass of Figure 6, all expressed through the single primitive
//!   *make node m reuse node n's input features*,
//! - [`capacity`]: capacity vectors and the aggressiveness partial order
//!   that rule-based filtering (§5.1) is built on,
//! - [`tree`]: the trainable tree-structured multi-task model,
//! - [`generator`]: the Model Generator (§4.4) materializing a trainable
//!   model from a mutated graph, inheriting well-trained weights from the
//!   base candidate and inserting re-scale adapters where shapes differ,
//! - [`persist`]: saving/loading fused models (graph + weights) to disk —
//!   the durable half of the History Database.

pub mod absgraph;
pub mod capacity;
pub mod generator;
pub mod mutation;
pub mod pairs;
pub mod parser;
pub mod persist;
pub mod tree;

pub use absgraph::{AbsGraph, AbsNode, NodeId};
pub use capacity::CapacityVector;
pub use mutation::{MutationKind, MutationOutcome};
pub use parser::WeightStore;
pub use tree::TreeModel;
