//! Weight-free block descriptors.
//!
//! A [`BlockSpec`] describes a computation block's architecture without
//! allocating its weights. The abstract graph stores specs in its nodes,
//! which lets the search reason about *paper-scale* models (for the
//! analytic FLOPs/latency estimators) while only ever materializing weights
//! for the *mini-scale* models it actually fine-tunes. `BlockSpec::build`
//! instantiates a trainable [`Block`]; [`Block::spec`] recovers the
//! descriptor.

use crate::block::Block;
use crate::Mode;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor, TensorError};

/// Architecture of a computation block (see module docs).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum BlockSpec {
    /// `conv3x3(s1, same) + relu`.
    ConvRelu {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
    },
    /// `conv(k, s, same) + bn + relu`.
    ConvBnRelu {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Kernel size.
        kernel: usize,
        /// Stride.
        stride: usize,
    },
    /// ResNet basic block.
    Residual {
        /// Input channels.
        c_in: usize,
        /// Output channels.
        c_out: usize,
        /// Stride of the first convolution.
        stride: usize,
    },
    /// `k`×`k` max pooling.
    MaxPool {
        /// Window/stride.
        k: usize,
    },
    /// Pre-LN transformer encoder block.
    Transformer {
        /// Model width.
        d: usize,
        /// Head count.
        heads: usize,
    },
    /// ViT patch-embedding stem.
    PatchEmbed {
        /// Input channels.
        channels: usize,
        /// Input image side.
        img: usize,
        /// Patch size.
        patch: usize,
        /// Embedding width.
        d: usize,
    },
    /// BERT token-embedding stem.
    TokenEmbed {
        /// Vocabulary size.
        vocab: usize,
        /// Embedding width.
        d: usize,
        /// Maximum sequence length.
        t_max: usize,
    },
    /// Task head (global pool + classifier).
    Head {
        /// Input feature width.
        features: usize,
        /// Output classes.
        classes: usize,
    },
    /// Re-scale adapter between per-sample shapes.
    Rescale {
        /// Source per-sample shape.
        from: Vec<usize>,
        /// Target per-sample shape.
        to: Vec<usize>,
    },
}

impl BlockSpec {
    /// Instantiates a trainable block with fresh weights.
    pub fn build(&self, rng: &mut Rng) -> Result<Block> {
        match self {
            BlockSpec::ConvRelu { c_in, c_out } => Block::conv_relu(*c_in, *c_out, rng),
            BlockSpec::ConvBnRelu {
                c_in,
                c_out,
                kernel,
                stride,
            } => Block::conv_bn_relu(*c_in, *c_out, *kernel, *stride, rng),
            BlockSpec::Residual { c_in, c_out, stride } => {
                Block::residual(*c_in, *c_out, *stride, rng)
            }
            BlockSpec::MaxPool { k } => Ok(Block::maxpool(*k)),
            BlockSpec::Transformer { d, heads } => Block::transformer(*d, *heads, rng),
            BlockSpec::PatchEmbed {
                channels,
                img,
                patch,
                d,
            } => Block::patch_embed(*channels, *img, *patch, *d, rng),
            BlockSpec::TokenEmbed { vocab, d, t_max } => {
                Ok(Block::token_embed(*vocab, *d, *t_max, rng))
            }
            BlockSpec::Head { features, classes } => Ok(Block::head(*features, *classes, rng)),
            BlockSpec::Rescale { from, to } => Block::rescale(from, to, rng),
        }
    }

    /// Per-sample output shape for a per-sample input shape.
    pub fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>> {
        let bad = |msg: String| TensorError::InvalidArgument {
            op: "BlockSpec::out_shape",
            msg,
        };
        match self {
            BlockSpec::ConvRelu { c_in, c_out } => {
                if in_shape.len() != 3 || in_shape[0] != *c_in {
                    return Err(bad(format!("{self:?} on {in_shape:?}")));
                }
                Ok(vec![*c_out, in_shape[1], in_shape[2]])
            }
            BlockSpec::ConvBnRelu {
                c_in,
                c_out,
                stride,
                ..
            } => {
                if in_shape.len() != 3 || in_shape[0] != *c_in {
                    return Err(bad(format!("{self:?} on {in_shape:?}")));
                }
                Ok(vec![
                    *c_out,
                    in_shape[1].div_ceil(*stride),
                    in_shape[2].div_ceil(*stride),
                ])
            }
            BlockSpec::Residual { c_in, c_out, stride } => {
                if in_shape.len() != 3 || in_shape[0] != *c_in {
                    return Err(bad(format!("{self:?} on {in_shape:?}")));
                }
                Ok(vec![
                    *c_out,
                    in_shape[1].div_ceil(*stride),
                    in_shape[2].div_ceil(*stride),
                ])
            }
            BlockSpec::MaxPool { k } => {
                if in_shape.len() != 3 || in_shape[1] < *k || in_shape[2] < *k {
                    return Err(bad(format!("pool {k} on {in_shape:?}")));
                }
                Ok(vec![in_shape[0], in_shape[1] / k, in_shape[2] / k])
            }
            BlockSpec::Transformer { d, .. } => {
                if in_shape.len() != 2 || in_shape[1] != *d {
                    return Err(bad(format!("{self:?} on {in_shape:?}")));
                }
                Ok(in_shape.to_vec())
            }
            BlockSpec::PatchEmbed {
                channels,
                img,
                patch,
                d,
            } => {
                if in_shape != [*channels, *img, *img] {
                    return Err(bad(format!("{self:?} on {in_shape:?}")));
                }
                Ok(vec![(img / patch) * (img / patch), *d])
            }
            BlockSpec::TokenEmbed { d, t_max, .. } => {
                if in_shape.len() != 1 || in_shape[0] > *t_max {
                    return Err(bad(format!("{self:?} on {in_shape:?}")));
                }
                Ok(vec![in_shape[0], *d])
            }
            BlockSpec::Head { features, classes } => {
                let f = match in_shape.len() {
                    3 => in_shape[0],
                    2 => in_shape[1],
                    _ => return Err(bad(format!("head on {in_shape:?}"))),
                };
                if f != *features {
                    return Err(bad(format!("{self:?} on {in_shape:?}")));
                }
                Ok(vec![*classes])
            }
            BlockSpec::Rescale { from, to } => {
                if in_shape != from.as_slice() {
                    return Err(bad(format!("{self:?} on {in_shape:?}")));
                }
                Ok(to.clone())
            }
        }
    }

    /// Number of trainable scalars.
    pub fn capacity(&self) -> usize {
        match self {
            BlockSpec::ConvRelu { c_in, c_out } => c_out * c_in * 9 + c_out,
            BlockSpec::ConvBnRelu {
                c_in,
                c_out,
                kernel,
                ..
            } => c_out * c_in * kernel * kernel + c_out + 2 * c_out,
            BlockSpec::Residual { c_in, c_out, stride } => {
                let conv1 = c_out * c_in * 9 + c_out;
                let conv2 = c_out * c_out * 9 + c_out;
                let bns = 4 * c_out;
                let down = if *stride != 1 || c_in != c_out {
                    c_out * c_in + c_out + 2 * c_out
                } else {
                    0
                };
                conv1 + conv2 + bns + down
            }
            BlockSpec::MaxPool { .. } => 0,
            BlockSpec::Transformer { d, .. } => {
                let attn = 4 * (d * d + d);
                let lns = 2 * 2 * d;
                let mlp = (4 * d * d + 4 * d) + (4 * d * d + d);
                attn + lns + mlp
            }
            BlockSpec::PatchEmbed {
                channels,
                img,
                patch,
                d,
            } => {
                let t = (img / patch) * (img / patch);
                d * channels * patch * patch + d + t * d
            }
            BlockSpec::TokenEmbed { vocab, d, t_max } => vocab * d + t_max * d,
            BlockSpec::Head { features, classes } => features * classes + classes,
            BlockSpec::Rescale { from, to } => match (from.len(), to.len()) {
                (3, 3) if from[0] != to[0] => to[0] * from[0] + to[0],
                (2, 2) if from[1] != to[1] => to[1] * from[1] + to[1],
                _ => 0,
            },
        }
    }

    /// Approximate per-sample FLOPs for the given input shape.
    ///
    /// Delegates to the trainable block's FLOP model by building a
    /// zero-cost probe is not possible without weights, so this mirrors
    /// [`Block::flops`] analytically.
    pub fn flops(&self, in_shape: &[usize]) -> Result<u64> {
        let out = self.out_shape(in_shape)?;
        let numel = |s: &[usize]| s.iter().product::<usize>() as u64;
        Ok(match self {
            BlockSpec::ConvRelu { c_in, .. } => {
                2 * numel(&out) * (*c_in as u64) * 9 + numel(&out)
            }
            BlockSpec::ConvBnRelu { c_in, kernel, .. } => {
                2 * numel(&out) * (*c_in as u64) * (*kernel * *kernel) as u64 + 3 * numel(&out)
            }
            BlockSpec::Residual { c_in, c_out, stride } => {
                let mut f = 2 * numel(&out) * (*c_in as u64) * 9; // conv1
                f += 2 * numel(&out) * (*c_out as u64) * 9; // conv2
                f += 5 * numel(&out);
                if *stride != 1 || c_in != c_out {
                    f += 2 * numel(&out) * (*c_in as u64) + 2 * numel(&out);
                }
                f
            }
            BlockSpec::MaxPool { .. } => numel(in_shape),
            BlockSpec::Transformer { d, .. } => {
                let (t, d) = (in_shape[0] as u64, *d as u64);
                let qkv = 4 * 2 * t * d * d;
                let scores = 2 * 2 * t * t * d;
                let mlp = 2 * t * d * 4 * d + 2 * t * 4 * d * d;
                qkv + scores + mlp + 8 * t * d
            }
            BlockSpec::PatchEmbed {
                channels, patch, ..
            } => {
                2 * numel(&out) * (*channels as u64) * (*patch * *patch) as u64 + numel(&out)
            }
            BlockSpec::TokenEmbed { d, .. } => 2 * in_shape[0] as u64 * *d as u64,
            BlockSpec::Head { features, classes } => {
                numel(in_shape) + 2 * (features * classes) as u64
            }
            BlockSpec::Rescale { from, to } => {
                let mut f = 4 * numel(to);
                match (from.len(), to.len()) {
                    (3, 3) if from[0] != to[0] => {
                        f += 2 * numel(&to[1..]) * (from[0] as u64) * (to[0] as u64);
                    }
                    (2, 2) if from[1] != to[1] => {
                        f += 2 * (to[0] as u64) * (from[1] * to[1]) as u64;
                    }
                    _ => {}
                }
                f
            }
        })
    }

    /// Short human-readable description.
    pub fn describe(&self) -> String {
        match self {
            BlockSpec::ConvRelu { c_in, c_out } => format!("Conv+ReLU({c_in}→{c_out})"),
            BlockSpec::ConvBnRelu {
                c_in,
                c_out,
                stride,
                ..
            } => format!("Conv+BN+ReLU({c_in}→{c_out},s{stride})"),
            BlockSpec::Residual { c_in, c_out, stride } => {
                format!("ResidualBlock({c_in}→{c_out},s{stride})")
            }
            BlockSpec::MaxPool { k } => format!("MaxPool({k}x{k})"),
            BlockSpec::Transformer { d, heads } => format!("Encoder(d={d},h={heads})"),
            BlockSpec::PatchEmbed { patch, d, .. } => format!("PatchEmbed(p={patch},d={d})"),
            BlockSpec::TokenEmbed { vocab, d, .. } => format!("TokenEmbed(v={vocab},d={d})"),
            BlockSpec::Head { features, classes } => format!("Head({features}→{classes})"),
            BlockSpec::Rescale { to, .. } => format!("Rescale(→{to:?})"),
        }
    }
}

impl Block {
    /// Recovers the architecture descriptor of this block.
    pub fn spec(&self) -> BlockSpec {
        match self {
            Block::ConvRelu { conv, .. } => BlockSpec::ConvRelu {
                c_in: conv.in_channels(),
                c_out: conv.out_channels(),
            },
            Block::ConvBnRelu { conv, .. } => BlockSpec::ConvBnRelu {
                c_in: conv.in_channels(),
                c_out: conv.out_channels(),
                kernel: conv.geom.kernel,
                stride: conv.geom.stride,
            },
            Block::Residual { conv1, .. } => BlockSpec::Residual {
                c_in: conv1.in_channels(),
                c_out: conv1.out_channels(),
                stride: conv1.geom.stride,
            },
            Block::MaxPool { k, .. } => BlockSpec::MaxPool { k: *k },
            Block::Transformer { attn, .. } => BlockSpec::Transformer {
                d: attn.width(),
                heads: attn.heads,
            },
            Block::PatchEmbedB(pe) => {
                let grid = (pe.tokens() as f64).sqrt() as usize;
                BlockSpec::PatchEmbed {
                    channels: pe.proj.in_channels(),
                    img: grid * pe.patch,
                    patch: pe.patch,
                    d: pe.width(),
                }
            }
            Block::TokenEmbedB(te) => BlockSpec::TokenEmbed {
                vocab: te.vocab(),
                d: te.width(),
                t_max: te.pos.value.dims()[0],
            },
            Block::Head { linear, .. } => BlockSpec::Head {
                features: linear.in_features(),
                classes: linear.out_features(),
            },
            Block::Rescale { source, target, .. } => BlockSpec::Rescale {
                from: source.clone(),
                to: target.clone(),
            },
        }
    }

    /// Runs a shape-probe forward pass to validate spec/block agreement.
    ///
    /// Test helper: builds a batch-1 input of `in_shape` and checks the
    /// output matches `spec().out_shape(in_shape)`.
    pub fn probe(&mut self, in_shape: &[usize]) -> Result<Vec<usize>> {
        let mut dims = vec![1usize];
        dims.extend_from_slice(in_shape);
        let x = match self {
            // Token embeddings need integral ids.
            Block::TokenEmbedB(_) => Tensor::zeros(&dims),
            _ => Tensor::full(&dims, 0.1),
        };
        let y = self.forward(&x, Mode::Eval)?;
        Ok(y.dims()[1..].to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn all_specs() -> Vec<(BlockSpec, Vec<usize>)> {
        vec![
            (BlockSpec::ConvRelu { c_in: 3, c_out: 8 }, vec![3, 8, 8]),
            (
                BlockSpec::ConvBnRelu {
                    c_in: 4,
                    c_out: 8,
                    kernel: 3,
                    stride: 2,
                },
                vec![4, 8, 8],
            ),
            (
                BlockSpec::Residual {
                    c_in: 4,
                    c_out: 8,
                    stride: 2,
                },
                vec![4, 8, 8],
            ),
            (
                BlockSpec::Residual {
                    c_in: 8,
                    c_out: 8,
                    stride: 1,
                },
                vec![8, 4, 4],
            ),
            (BlockSpec::MaxPool { k: 2 }, vec![3, 8, 8]),
            (BlockSpec::Transformer { d: 8, heads: 2 }, vec![4, 8]),
            (
                BlockSpec::PatchEmbed {
                    channels: 3,
                    img: 8,
                    patch: 4,
                    d: 8,
                },
                vec![3, 8, 8],
            ),
            (
                BlockSpec::TokenEmbed {
                    vocab: 16,
                    d: 8,
                    t_max: 8,
                },
                vec![6],
            ),
            (
                BlockSpec::Head {
                    features: 8,
                    classes: 3,
                },
                vec![8, 2, 2],
            ),
            (
                BlockSpec::Rescale {
                    from: vec![4, 8, 8],
                    to: vec![8, 4, 4],
                },
                vec![4, 8, 8],
            ),
            (
                BlockSpec::Rescale {
                    from: vec![6, 8],
                    to: vec![4, 12],
                },
                vec![6, 8],
            ),
        ]
    }

    #[test]
    fn build_roundtrips_spec() {
        let mut rng = Rng::new(0);
        for (spec, _) in all_specs() {
            let block = spec.build(&mut rng).unwrap();
            assert_eq!(block.spec(), spec, "{spec:?}");
        }
    }

    #[test]
    fn spec_capacity_matches_built_block() {
        let mut rng = Rng::new(1);
        for (spec, _) in all_specs() {
            let block = spec.build(&mut rng).unwrap();
            assert_eq!(block.capacity(), spec.capacity(), "{spec:?}");
        }
    }

    #[test]
    fn spec_out_shape_matches_real_forward() {
        let mut rng = Rng::new(2);
        for (spec, in_shape) in all_specs() {
            let mut block = spec.build(&mut rng).unwrap();
            let expect = spec.out_shape(&in_shape).unwrap();
            let got = block.probe(&in_shape).unwrap();
            assert_eq!(got, expect, "{spec:?}");
            // The block's own out_shape agrees too.
            assert_eq!(block.out_shape(&in_shape).unwrap(), expect, "{spec:?}");
        }
    }

    #[test]
    fn spec_flops_matches_block_flops() {
        let mut rng = Rng::new(3);
        for (spec, in_shape) in all_specs() {
            let block = spec.build(&mut rng).unwrap();
            assert_eq!(
                block.flops(&in_shape).unwrap(),
                spec.flops(&in_shape).unwrap(),
                "{spec:?}"
            );
        }
    }

    #[test]
    fn out_shape_rejects_mismatched_inputs() {
        let s = BlockSpec::ConvRelu { c_in: 3, c_out: 8 };
        assert!(s.out_shape(&[4, 8, 8]).is_err());
        assert!(s.out_shape(&[8, 8]).is_err());
        let t = BlockSpec::Transformer { d: 8, heads: 2 };
        assert!(t.out_shape(&[4, 9]).is_err());
    }

    #[test]
    fn flops_scale_with_paper_scale_widths() {
        // Widening channels 16x multiplies conv FLOPs ~256x: the analytic
        // model reflects paper-scale costs without building weights.
        let mini = BlockSpec::ConvRelu { c_in: 4, c_out: 8 };
        let paper = BlockSpec::ConvRelu {
            c_in: 64,
            c_out: 128,
        };
        let f_mini = mini.flops(&[4, 16, 16]).unwrap();
        let f_paper = paper.flops(&[64, 224, 224]).unwrap();
        assert!(f_paper > f_mini * 10_000);
    }
}
