//! Optimizers.
//!
//! The paper fine-tunes with Adam (§6.1); SGD with momentum is included for
//! the ablations. Optimizer state (moments) lives inside each
//! [`Parameter`], so the optimizer object itself is a small configuration
//! struct that can be shared across candidates.

use crate::param::Parameter;

/// An optimizer: SGD with momentum, or Adam.
#[derive(Debug, Clone)]
pub enum Optim {
    /// Stochastic gradient descent with classical momentum.
    Sgd {
        /// Learning rate.
        lr: f32,
        /// Momentum coefficient (0 disables momentum).
        momentum: f32,
    },
    /// Adam (Kingma & Ba), as used by the paper for fine-tuning.
    Adam {
        /// Learning rate.
        lr: f32,
        /// First-moment decay.
        beta1: f32,
        /// Second-moment decay.
        beta2: f32,
        /// Numerical-stability epsilon.
        eps: f32,
        /// Step counter for bias correction.
        t: u64,
    },
}

impl Optim {
    /// Standard Adam configuration at a given learning rate.
    pub fn adam(lr: f32) -> Self {
        Optim::Adam {
            lr,
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            t: 0,
        }
    }

    /// Plain SGD with momentum 0.9.
    pub fn sgd(lr: f32) -> Self {
        Optim::Sgd { lr, momentum: 0.9 }
    }

    /// Returns the learning rate.
    pub fn lr(&self) -> f32 {
        match self {
            Optim::Sgd { lr, .. } | Optim::Adam { lr, .. } => *lr,
        }
    }

    /// Sets the learning rate.
    pub fn set_lr(&mut self, new_lr: f32) {
        match self {
            Optim::Sgd { lr, .. } | Optim::Adam { lr, .. } => *lr = new_lr,
        }
    }

    /// Advances the step counter; call once per batch before updates.
    pub fn begin_step(&mut self) {
        if let Optim::Adam { t, .. } = self {
            *t += 1;
        }
    }

    /// Adam's bias-correction step counter (0 for SGD).
    ///
    /// Checkpointed alongside the per-parameter moments: a resumed run
    /// must continue the bias-correction schedule where it left off.
    pub fn step_count(&self) -> u64 {
        match self {
            Optim::Adam { t, .. } => *t,
            Optim::Sgd { .. } => 0,
        }
    }

    /// Restores the step counter from a checkpoint (no-op for SGD).
    pub fn set_step_count(&mut self, steps: u64) {
        if let Optim::Adam { t, .. } = self {
            *t = steps;
        }
    }

    /// Applies the update rule to one parameter and zeroes its gradient.
    pub fn update(&self, p: &mut Parameter) {
        match *self {
            Optim::Sgd { lr, momentum } => {
                for i in 0..p.value.numel() {
                    let g = p.grad.data()[i];
                    let m = momentum * p.m.data()[i] + g;
                    p.m.data_mut()[i] = m;
                    p.value.data_mut()[i] -= lr * m;
                }
            }
            Optim::Adam {
                lr,
                beta1,
                beta2,
                eps,
                t,
            } => {
                let t = t.max(1) as f32;
                let bc1 = 1.0 - beta1.powf(t);
                let bc2 = 1.0 - beta2.powf(t);
                for i in 0..p.value.numel() {
                    let g = p.grad.data()[i];
                    let m = beta1 * p.m.data()[i] + (1.0 - beta1) * g;
                    let v = beta2 * p.v.data()[i] + (1.0 - beta2) * g * g;
                    p.m.data_mut()[i] = m;
                    p.v.data_mut()[i] = v;
                    let mhat = m / bc1;
                    let vhat = v / bc2;
                    p.value.data_mut()[i] -= lr * mhat / (vhat.sqrt() + eps);
                }
            }
        }
        p.zero_grad();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_tensor::Tensor;

    /// Minimizes f(x) = (x - 3)^2 and checks convergence.
    fn minimize(mut opt: Optim, steps: usize) -> f32 {
        let mut p = Parameter::new(Tensor::full(&[1], 10.0));
        for _ in 0..steps {
            let x = p.value.data()[0];
            p.grad.data_mut()[0] = 2.0 * (x - 3.0);
            opt.begin_step();
            opt.update(&mut p);
        }
        p.value.data()[0]
    }

    #[test]
    fn sgd_converges_on_quadratic() {
        let x = minimize(Optim::Sgd { lr: 0.05, momentum: 0.0 }, 200);
        assert!((x - 3.0).abs() < 1e-3, "x = {x}");
    }

    #[test]
    fn sgd_momentum_converges() {
        let x = minimize(Optim::sgd(0.02), 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn adam_converges_on_quadratic() {
        let x = minimize(Optim::adam(0.3), 300);
        assert!((x - 3.0).abs() < 1e-2, "x = {x}");
    }

    #[test]
    fn update_zeroes_gradient() {
        let mut p = Parameter::new(Tensor::zeros(&[2]));
        p.grad = Tensor::ones(&[2]);
        let mut opt = Optim::adam(0.01);
        opt.begin_step();
        opt.update(&mut p);
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn lr_accessors() {
        let mut opt = Optim::adam(0.01);
        assert!((opt.lr() - 0.01).abs() < 1e-9);
        opt.set_lr(0.1);
        assert!((opt.lr() - 0.1).abs() < 1e-9);
    }
}
