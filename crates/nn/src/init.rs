//! Weight initialization schemes.
//!
//! Figure 3 of the paper shows that *weight initialization alone* moves the
//! post-fine-tuning accuracy of a fixed architecture by several points,
//! which is why GMorph cannot score candidates from architecture alone.
//! Deterministic, seed-controlled init makes that experiment reproducible.

use gmorph_tensor::rng::Rng;
use gmorph_tensor::Tensor;

/// Kaiming-He normal init for layers followed by ReLU.
///
/// `fan_in` is the number of input connections per output unit.
pub fn kaiming_normal(dims: &[usize], fan_in: usize, rng: &mut Rng) -> Tensor {
    let std = (2.0 / fan_in.max(1) as f32).sqrt();
    Tensor::randn(dims, std, rng)
}

/// Xavier-Glorot uniform init for linear/attention layers.
pub fn xavier_uniform(dims: &[usize], fan_in: usize, fan_out: usize, rng: &mut Rng) -> Tensor {
    let bound = (6.0 / (fan_in + fan_out).max(1) as f32).sqrt();
    Tensor::rand_uniform(dims, -bound, bound, rng)
}

/// Truncated-normal-ish init for embeddings (plain normal, small std).
pub fn embedding_normal(dims: &[usize], rng: &mut Rng) -> Tensor {
    Tensor::randn(dims, 0.02, rng)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kaiming_std_scales_with_fan_in() {
        let mut rng = Rng::new(0);
        let a = kaiming_normal(&[10_000], 2, &mut rng);
        let b = kaiming_normal(&[10_000], 200, &mut rng);
        let std = |t: &Tensor| {
            let m = t.mean();
            t.map(|x| (x - m) * (x - m)).mean().sqrt()
        };
        assert!((std(&a) - 1.0).abs() < 0.1);
        assert!((std(&b) - 0.1).abs() < 0.02);
    }

    #[test]
    fn xavier_within_bound() {
        let mut rng = Rng::new(1);
        let t = xavier_uniform(&[1000], 8, 8, &mut rng);
        let bound = (6.0f32 / 16.0).sqrt();
        for &v in t.data() {
            assert!(v.abs() <= bound);
        }
    }

    #[test]
    fn deterministic_given_seed() {
        let mut a = Rng::new(7);
        let mut b = Rng::new(7);
        assert_eq!(
            kaiming_normal(&[32], 4, &mut a).data(),
            kaiming_normal(&[32], 4, &mut b).data()
        );
    }
}
