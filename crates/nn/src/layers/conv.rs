//! Trainable 2D convolution layer.

use super::missing_cache;
use crate::init;
use crate::param::Parameter;
use crate::Mode;
use gmorph_tensor::buffer;
use gmorph_tensor::conv::{conv2d_backward_geom, conv2d_forward_act, Conv2dForward, Conv2dGeom};
use gmorph_tensor::ops::Activation;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor, TensorError};

/// A 2D convolution layer over NCHW tensors.
#[derive(Debug, Clone)]
pub struct Conv2d {
    /// Filter bank `[C_out, C_in, K, K]`.
    pub weight: Parameter,
    /// Per-output-channel bias `[C_out]`.
    pub bias: Parameter,
    /// Kernel/stride/padding geometry.
    pub geom: Conv2dGeom,
    /// Activation fused into the conv epilogue during *eval* forwards.
    ///
    /// Set by the inference compile pass; no effect in `Mode::Train`,
    /// where the block-level activation (and its pre-activation cache)
    /// runs separately for backward.
    pub fused_act: Activation,
    cache: Option<(Conv2dForward, Vec<usize>)>,
}

impl Conv2d {
    /// Creates a layer with Kaiming-normal filters and zero bias.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        rng: &mut Rng,
    ) -> Result<Self> {
        let geom = Conv2dGeom::new(kernel, stride, padding)?;
        let fan_in = in_channels * kernel * kernel;
        Ok(Conv2d {
            weight: Parameter::new(init::kaiming_normal(
                &[out_channels, in_channels, kernel, kernel],
                fan_in,
                rng,
            )),
            bias: Parameter::new(Tensor::zeros(&[out_channels])),
            geom,
            fused_act: Activation::None,
            cache: None,
        })
    }

    /// Input channel count.
    pub fn in_channels(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Output channel count.
    pub fn out_channels(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Forward pass over `[N, C_in, H, W]`.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let act = if mode == Mode::Eval {
            self.fused_act
        } else {
            Activation::None
        };
        let mut fwd =
            conv2d_forward_act(x, &self.weight.value, Some(&self.bias.value), self.geom, act)?;
        // Backward only needs the cached im2col columns, not the output:
        // move the output out instead of cloning it.
        let out = std::mem::replace(&mut fwd.output, Tensor::zeros(&[0]));
        if mode == Mode::Train {
            // Recycle last iteration's columns; the next forward's scratch
            // checkout finds them, so steady-state epochs stop allocating.
            self.clear_cache();
            self.cache = Some((fwd, x.dims().to_vec()));
        } else {
            for c in fwd.cols {
                buffer::recycle(c);
            }
        }
        Ok(out)
    }

    /// Backward pass: accumulates filter/bias gradients and returns dX.
    pub fn backward(&mut self, grad_y: &Tensor) -> Result<Tensor> {
        let (fwd, input_dims) = self
            .cache
            .as_ref()
            .ok_or_else(|| missing_cache("Conv2d::backward"))?;
        let grads =
            conv2d_backward_geom(grad_y, &self.weight.value, input_dims, fwd, self.geom)?;
        self.weight.accumulate(&grads.grad_weight)?;
        self.bias.accumulate(&grads.grad_bias)?;
        Ok(grads.grad_input)
    }

    /// Output per-sample shape `[C, H, W]` for an input per-sample shape.
    pub fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>> {
        if in_shape.len() != 3 {
            return Err(TensorError::RankMismatch {
                op: "Conv2d::out_shape",
                expected: 3,
                actual: in_shape.len(),
            });
        }
        if in_shape[0] != self.in_channels() {
            return Err(TensorError::ShapeMismatch {
                op: "Conv2d::out_shape",
                lhs: format!("[{}, _, _]", self.in_channels()),
                rhs: format!("[{}, {}, {}]", in_shape[0], in_shape[1], in_shape[2]),
            });
        }
        Ok(vec![
            self.out_channels(),
            self.geom.out_size(in_shape[1])?,
            self.geom.out_size(in_shape[2])?,
        ])
    }

    /// Visits the layer's parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    /// Read-only parameter visit, in the same order as [`visit_params`].
    ///
    /// [`visit_params`]: Conv2d::visit_params
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&Parameter)) {
        f(&self.weight);
        f(&self.bias);
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.numel()
    }

    /// Drops cached activations, recycling the im2col columns.
    pub fn clear_cache(&mut self) {
        if let Some((old, _)) = self.cache.take() {
            for c in old.cols {
                buffer::recycle(c);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shapes() {
        let mut rng = Rng::new(0);
        let mut c = Conv2d::new(3, 8, 3, 1, 1, &mut rng).unwrap();
        let x = Tensor::ones(&[2, 3, 8, 8]);
        let y = c.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 8, 8, 8]);
        assert_eq!(c.out_shape(&[3, 8, 8]).unwrap(), vec![8, 8, 8]);
        assert!(c.out_shape(&[4, 8, 8]).is_err());
    }

    #[test]
    fn strided_conv_halves_spatial() {
        let mut rng = Rng::new(0);
        let c = Conv2d::new(4, 8, 3, 2, 1, &mut rng).unwrap();
        assert_eq!(c.out_shape(&[4, 8, 8]).unwrap(), vec![8, 4, 4]);
    }

    #[test]
    fn end_to_end_gradient_check() {
        let mut rng = Rng::new(3);
        let mut c = Conv2d::new(2, 3, 3, 1, 1, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let y = c.forward(&x, Mode::Train).unwrap();
        let gx = c.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 1e-2f32;
        for &flat in &[0usize, 9, 23] {
            let mut cp = c.clone();
            cp.weight.value.data_mut()[flat] += eps;
            let mut cm = c.clone();
            cm.weight.value.data_mut()[flat] -= eps;
            let num = (cp.forward(&x, Mode::Eval).unwrap().sum()
                - cm.forward(&x, Mode::Eval).unwrap().sum())
                / (2.0 * eps);
            assert!((num - c.weight.grad.data()[flat]).abs() < 0.05);
        }
        for &flat in &[0usize, 13, 31] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let mut c2 = c.clone();
            let num = (c2.forward(&xp, Mode::Eval).unwrap().sum()
                - c2.forward(&xm, Mode::Eval).unwrap().sum())
                / (2.0 * eps);
            assert!((num - gx.data()[flat]).abs() < 0.05);
        }
    }

    #[test]
    fn param_count() {
        let mut rng = Rng::new(0);
        let c = Conv2d::new(3, 8, 3, 1, 1, &mut rng).unwrap();
        assert_eq!(c.param_count(), 8 * 3 * 9 + 8);
    }
}
