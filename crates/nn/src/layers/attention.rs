//! Multi-head self-attention.

use super::missing_cache;
use crate::layers::Linear;
use crate::param::Parameter;
use crate::Mode;
use gmorph_tensor::engine;
use gmorph_tensor::ops::{softmax_rows, softmax_rows_backward};
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{gemm, Result, Tensor, TensorError};

/// Multi-head self-attention over `[N, T, D]` sequences.
///
/// This is the attention used by the TinyViT/TinyBERT models in the zoo.
/// Heads are computed with explicit per-(sample, head) GEMMs dispatched
/// across the shared worker pool; results are gathered in `(sample, head)`
/// order, so outputs are identical at any thread count.
#[derive(Debug, Clone)]
pub struct MultiHeadAttention {
    /// Query projection.
    pub wq: Linear,
    /// Key projection.
    pub wk: Linear,
    /// Value projection.
    pub wv: Linear,
    /// Output projection.
    pub wo: Linear,
    /// Number of attention heads (must divide the model width).
    pub heads: usize,
    cache: Option<AttnCache>,
}

#[derive(Debug, Clone)]
struct AttnCache {
    q: Tensor,
    k: Tensor,
    v: Tensor,
    /// Softmax outputs, one `[T, T]` per (sample, head).
    probs: Vec<Tensor>,
    n: usize,
    t: usize,
}

impl MultiHeadAttention {
    /// Creates an attention layer of width `d` with `heads` heads.
    pub fn new(d: usize, heads: usize, rng: &mut Rng) -> Result<Self> {
        if heads == 0 || !d.is_multiple_of(heads) {
            return Err(TensorError::InvalidArgument {
                op: "MultiHeadAttention::new",
                msg: format!("width {d} not divisible by heads {heads}"),
            });
        }
        Ok(MultiHeadAttention {
            wq: Linear::new(d, d, rng),
            wk: Linear::new(d, d, rng),
            wv: Linear::new(d, d, rng),
            wo: Linear::new(d, d, rng),
            heads,
            cache: None,
        })
    }

    /// Model width.
    pub fn width(&self) -> usize {
        self.wq.in_features()
    }

    /// Extracts head `h` of rows `n*t .. n*t+t` from a `[N*T, D]` matrix.
    fn head_slice(m: &Tensor, n: usize, t: usize, h: usize, dh: usize) -> Tensor {
        let d = m.dims()[1];
        let mut out = Vec::with_capacity(t * dh);
        for row in 0..t {
            let base = (n * t + row) * d + h * dh;
            out.extend_from_slice(&m.data()[base..base + dh]);
        }
        Tensor::from_vec(&[t, dh], out).expect("head slice shape is consistent")
    }

    /// Adds a `[T, dh]` head matrix back into rows of a `[N*T, D]` matrix.
    fn head_scatter(m: &mut Tensor, src: &Tensor, n: usize, t: usize, h: usize, dh: usize) {
        let d = m.dims()[1];
        for row in 0..t {
            let base = (n * t + row) * d + h * dh;
            for j in 0..dh {
                m.data_mut()[base + j] += src.data()[row * dh + j];
            }
        }
    }

    /// Forward pass over `[N, T, D]`.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if x.shape().rank() != 3 || x.dims()[2] != self.width() {
            return Err(TensorError::ShapeMismatch {
                op: "MultiHeadAttention::forward",
                lhs: format!("[N, T, {}]", self.width()),
                rhs: x.shape().to_string(),
            });
        }
        let (n, t, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let x2 = x.reshape(&[n * t, d])?;
        let q = self.wq.forward(&x2, mode)?;
        let k = self.wk.forward(&x2, mode)?;
        let v = self.wv.forward(&x2, mode)?;

        // Each (sample, head) is independent; compute them across the worker
        // pool, then scatter serially in (s, h) order so the cached probs and
        // the summed context are identical at any thread count.
        let heads = self.heads;
        let per_head = engine::parallel_map(n * heads, |i| -> Result<(Tensor, Tensor)> {
            let (s, h) = (i / heads, i % heads);
            let qh = Self::head_slice(&q, s, t, h, dh);
            let kh = Self::head_slice(&k, s, t, h, dh);
            let vh = Self::head_slice(&v, s, t, h, dh);
            let scores = gemm::matmul_nt(&qh, &kh)?.scale(scale);
            let a = softmax_rows(&scores)?;
            let out = gemm::matmul(&a, &vh)?;
            Ok((out, a))
        });

        let mut ctx = Tensor::zeros(&[n * t, d]);
        let mut probs = Vec::with_capacity(n * heads);
        for (i, res) in per_head.into_iter().enumerate() {
            let (out, a) = res?;
            let (s, h) = (i / heads, i % heads);
            Self::head_scatter(&mut ctx, &out, s, t, h, dh);
            if mode == Mode::Train {
                probs.push(a);
            }
        }
        let y2 = self.wo.forward(&ctx, mode)?;
        // Report-only numeric health: softmax over diverged scores is the
        // usual place NaNs first surface in a transformer, so a violation
        // here is a structured eval.health event (debug and release alike),
        // never an assert — the supervisor decides containment.
        crate::health::observe_slice(
            crate::health::NumericCheck::Activation,
            "MultiHeadAttention::forward",
            y2.data(),
        );
        if mode == Mode::Train {
            self.cache = Some(AttnCache { q, k, v, probs, n, t });
        }
        y2.reshape(&[n, t, d])
    }

    /// Backward pass over `[N, T, D]` gradients.
    pub fn backward(&mut self, grad_y: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .take()
            .ok_or_else(|| missing_cache("MultiHeadAttention::backward"))?;
        let (n, t) = (cache.n, cache.t);
        let d = self.width();
        let dh = d / self.heads;
        let scale = 1.0 / (dh as f32).sqrt();
        let g2 = grad_y.reshape(&[n * t, d])?;
        let gctx = self.wo.backward(&g2)?;

        // Per-head gradients in parallel, serial scatter in (s, h) order —
        // same decomposition as forward, so results are thread-count
        // independent.
        let heads = self.heads;
        let per_head =
            engine::parallel_map(n * heads, |i| -> Result<(Tensor, Tensor, Tensor)> {
                let (s, h) = (i / heads, i % heads);
                let a = &cache.probs[s * heads + h];
                let gout = Self::head_slice(&gctx, s, t, h, dh);
                let qh = Self::head_slice(&cache.q, s, t, h, dh);
                let kh = Self::head_slice(&cache.k, s, t, h, dh);
                let vh = Self::head_slice(&cache.v, s, t, h, dh);
                // dV = Aᵀ · dOut, dA = dOut · Vᵀ.
                let gvh = gemm::matmul_tn(a, &gout)?;
                let ga = gemm::matmul_nt(&gout, &vh)?;
                // Back through softmax, then dQ = dS·K·scale, dK = dSᵀ·Q·scale.
                let gs = softmax_rows_backward(&ga, a)?;
                let gqh = gemm::matmul(&gs, &kh)?.scale(scale);
                let gkh = gemm::matmul_tn(&gs, &qh)?.scale(scale);
                Ok((gqh, gkh, gvh))
            });

        let mut gq = Tensor::zeros(&[n * t, d]);
        let mut gk = Tensor::zeros(&[n * t, d]);
        let mut gv = Tensor::zeros(&[n * t, d]);
        for (i, res) in per_head.into_iter().enumerate() {
            let (gqh, gkh, gvh) = res?;
            let (s, h) = (i / heads, i % heads);
            Self::head_scatter(&mut gq, &gqh, s, t, h, dh);
            Self::head_scatter(&mut gk, &gkh, s, t, h, dh);
            Self::head_scatter(&mut gv, &gvh, s, t, h, dh);
        }
        let mut gx = self.wq.backward(&gq)?;
        gx.add_assign(&self.wk.backward(&gk)?)?;
        gx.add_assign(&self.wv.backward(&gv)?)?;
        gx.reshape(&[n, t, d])
    }

    /// Visits the layer's parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.wq.visit_params(f);
        self.wk.visit_params(f);
        self.wv.visit_params(f);
        self.wo.visit_params(f);
    }

    /// Read-only parameter visit, in the same order as [`visit_params`].
    ///
    /// [`visit_params`]: MultiHeadAttention::visit_params
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&Parameter)) {
        self.wq.visit_params_ref(f);
        self.wk.visit_params_ref(f);
        self.wv.visit_params_ref(f);
        self.wo.visit_params_ref(f);
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.wq.param_count()
            + self.wk.param_count()
            + self.wv.param_count()
            + self.wo.param_count()
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        self.cache = None;
        self.wq.clear_cache();
        self.wk.clear_cache();
        self.wv.clear_cache();
        self.wo.clear_cache();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape() {
        let mut rng = Rng::new(0);
        let mut attn = MultiHeadAttention::new(8, 2, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 5, 8], 1.0, &mut rng);
        let y = attn.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 5, 8]);
    }

    #[test]
    fn rejects_indivisible_heads() {
        let mut rng = Rng::new(0);
        assert!(MultiHeadAttention::new(8, 3, &mut rng).is_err());
        assert!(MultiHeadAttention::new(8, 0, &mut rng).is_err());
    }

    #[test]
    fn attention_is_permutation_sensitive_but_finite() {
        let mut rng = Rng::new(1);
        let mut attn = MultiHeadAttention::new(4, 1, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 3, 4], 1.0, &mut rng);
        let y = attn.forward(&x, Mode::Eval).unwrap();
        for &v in y.data() {
            assert!(v.is_finite());
        }
    }

    #[test]
    fn gradient_check_input() {
        let mut rng = Rng::new(2);
        let mut attn = MultiHeadAttention::new(4, 2, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 3, 4], 0.5, &mut rng);
        let w = Tensor::randn(&[12], 1.0, &mut rng);
        let loss = |a: &mut MultiHeadAttention, x: &Tensor| -> f32 {
            a.forward(x, Mode::Eval)
                .unwrap()
                .data()
                .iter()
                .zip(w.data())
                .map(|(p, q)| p * q)
                .sum()
        };
        let y = attn.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_vec(y.dims(), w.data().to_vec()).unwrap();
        let gx = attn.backward(&g).unwrap();
        let eps = 1e-2f32;
        for flat in 0..12 {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let mut a2 = attn.clone();
            let num = (loss(&mut a2, &xp) - loss(&mut a2, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.data()[flat]).abs() < 0.03,
                "dX[{flat}]: {num} vs {}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn forward_and_backward_identical_across_thread_counts() {
        let run = |threads: usize| {
            engine::with_thread_limit(threads, || {
                let mut rng = Rng::new(7);
                let mut attn = MultiHeadAttention::new(8, 4, &mut rng).unwrap();
                let x = Tensor::randn(&[3, 5, 8], 0.7, &mut rng);
                let y = attn.forward(&x, Mode::Train).unwrap();
                let gx = attn.backward(&Tensor::ones(y.dims())).unwrap();
                (y, gx)
            })
        };
        let (y1, g1) = run(1);
        let (y4, g4) = run(4);
        assert_eq!(y1.data(), y4.data(), "forward differs across thread counts");
        assert_eq!(g1.data(), g4.data(), "backward differs across thread counts");
    }

    #[test]
    fn gradient_check_query_weights() {
        let mut rng = Rng::new(3);
        let mut attn = MultiHeadAttention::new(4, 1, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 3, 4], 0.5, &mut rng);
        let y = attn.forward(&x, Mode::Train).unwrap();
        attn.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2f32;
        for &flat in &[0usize, 5, 11] {
            let mut ap = attn.clone();
            ap.wq.weight.value.data_mut()[flat] += eps;
            let mut am = attn.clone();
            am.wq.weight.value.data_mut()[flat] -= eps;
            let num = (ap.forward(&x, Mode::Eval).unwrap().sum()
                - am.forward(&x, Mode::Eval).unwrap().sum())
                / (2.0 * eps);
            let ana = attn.wq.weight.grad.data()[flat];
            assert!((num - ana).abs() < 0.03, "dWq[{flat}]: {num} vs {ana}");
        }
    }
}
