//! Fully-connected layer.

use super::missing_cache;
use crate::init;
use crate::param::Parameter;
use crate::Mode;
use gmorph_tensor::ops::Activation;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{gemm, Result, Tensor, TensorError};

/// A fully-connected layer `y = x Wᵀ + b` over rank-2 inputs `[M, in]`.
///
/// Sequence inputs `[N, T, D]` are flattened to `[N*T, D]` by callers.
///
/// # Examples
///
/// ```
/// use gmorph_nn::{layers::Linear, Mode};
/// use gmorph_tensor::{rng::Rng, Tensor};
///
/// let mut rng = Rng::new(0);
/// let mut lin = Linear::new(4, 2, &mut rng);
/// let x = Tensor::ones(&[3, 4]);
/// let y = lin.forward(&x, Mode::Eval).unwrap();
/// assert_eq!(y.dims(), &[3, 2]);
/// ```
#[derive(Debug, Clone)]
pub struct Linear {
    /// Weight matrix `[out, in]`.
    pub weight: Parameter,
    /// Bias vector `[out]`.
    pub bias: Parameter,
    /// Activation fused into the GEMM epilogue during *eval* forwards.
    ///
    /// Set by the inference compile pass ([`gmorph_perf`]'s epilogue
    /// fusion); has no effect in `Mode::Train`, where the separate
    /// activation pass (and its pre-activation cache) is required for
    /// backward.
    pub fused_act: Activation,
    cache_x: Option<Tensor>,
}

impl Linear {
    /// Creates a layer with Xavier-uniform weights and zero bias.
    pub fn new(in_features: usize, out_features: usize, rng: &mut Rng) -> Self {
        Linear {
            weight: Parameter::new(init::xavier_uniform(
                &[out_features, in_features],
                in_features,
                out_features,
                rng,
            )),
            bias: Parameter::new(Tensor::zeros(&[out_features])),
            fused_act: Activation::None,
            cache_x: None,
        }
    }

    /// Input feature count.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Output feature count.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Forward pass over `[M, in]`, producing `[M, out]`.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if x.shape().rank() != 2 || x.dims()[1] != self.in_features() {
            return Err(TensorError::ShapeMismatch {
                op: "Linear::forward",
                lhs: format!("[M, {}]", self.in_features()),
                rhs: x.shape().to_string(),
            });
        }
        // The bias-add always runs in the GEMM write loop; the fused
        // activation additionally applies during eval forwards when the
        // compile pass requested it.
        let act = if mode == Mode::Eval {
            self.fused_act
        } else {
            Activation::None
        };
        let y = gemm::matmul_nt_bias_act(x, &self.weight.value, Some(&self.bias.value), act)?;
        if mode == Mode::Train {
            self.cache_x = Some(x.clone());
        }
        Ok(y)
    }

    /// Backward pass: accumulates dW, db and returns dX.
    pub fn backward(&mut self, grad_y: &Tensor) -> Result<Tensor> {
        let x = self
            .cache_x
            .as_ref()
            .ok_or_else(|| missing_cache("Linear::backward"))?;
        if grad_y.dims() != [x.dims()[0], self.out_features()] {
            return Err(TensorError::ShapeMismatch {
                op: "Linear::backward",
                lhs: format!("[{}, {}]", x.dims()[0], self.out_features()),
                rhs: grad_y.shape().to_string(),
            });
        }
        let gw = gemm::matmul_tn(grad_y, x)?; // [out, in]
        self.weight.accumulate(&gw)?;
        let gb = gemm::sum_rows(grad_y)?;
        self.bias.accumulate(&gb)?;
        gemm::matmul(grad_y, &self.weight.value) // [M, in]
    }

    /// Visits the layer's parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.weight);
        f(&mut self.bias);
    }

    /// Read-only parameter visit, in the same order as [`visit_params`].
    ///
    /// [`visit_params`]: Linear::visit_params
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&Parameter)) {
        f(&self.weight);
        f(&self.bias);
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.weight.numel() + self.bias.numel()
    }

    /// Drops cached activations (used when cloning for inference).
    pub fn clear_cache(&mut self) {
        self.cache_x = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_shape_and_bias() {
        let mut rng = Rng::new(0);
        let mut lin = Linear::new(3, 2, &mut rng);
        lin.weight.value = Tensor::zeros(&[2, 3]);
        lin.bias.value = Tensor::from_vec(&[2], vec![1.0, -1.0]).unwrap();
        let y = lin.forward(&Tensor::ones(&[4, 3]), Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        assert_eq!(y.at(&[0, 0]).unwrap(), 1.0);
        assert_eq!(y.at(&[3, 1]).unwrap(), -1.0);
    }

    #[test]
    fn rejects_wrong_input_width() {
        let mut rng = Rng::new(0);
        let mut lin = Linear::new(3, 2, &mut rng);
        assert!(lin.forward(&Tensor::ones(&[4, 5]), Mode::Eval).is_err());
    }

    #[test]
    fn backward_without_forward_errors() {
        let mut rng = Rng::new(0);
        let mut lin = Linear::new(3, 2, &mut rng);
        assert!(lin.backward(&Tensor::ones(&[4, 2])).is_err());
    }

    #[test]
    fn gradients_match_numerical() {
        let mut rng = Rng::new(1);
        let mut lin = Linear::new(3, 2, &mut rng);
        let x = Tensor::randn(&[4, 3], 1.0, &mut rng);

        let y = lin.forward(&x, Mode::Train).unwrap();
        let gx = lin.backward(&Tensor::ones(y.dims())).unwrap();

        let eps = 1e-3f32;
        // Weight gradient.
        for flat in 0..6 {
            let mut lp = lin.clone();
            lp.weight.value.data_mut()[flat] += eps;
            let mut lm = lin.clone();
            lm.weight.value.data_mut()[flat] -= eps;
            let num = (lp.forward(&x, Mode::Eval).unwrap().sum()
                - lm.forward(&x, Mode::Eval).unwrap().sum())
                / (2.0 * eps);
            let ana = lin.weight.grad.data()[flat];
            assert!((num - ana).abs() < 1e-2, "dW[{flat}]: {num} vs {ana}");
        }
        // Input gradient.
        for flat in 0..12 {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let mut l2 = lin.clone();
            let num = (l2.forward(&xp, Mode::Eval).unwrap().sum()
                - l2.forward(&xm, Mode::Eval).unwrap().sum())
                / (2.0 * eps);
            let ana = gx.data()[flat];
            assert!((num - ana).abs() < 1e-2, "dX[{flat}]: {num} vs {ana}");
        }
    }

    #[test]
    fn gradients_accumulate_across_batches() {
        let mut rng = Rng::new(2);
        let mut lin = Linear::new(2, 2, &mut rng);
        let x = Tensor::ones(&[1, 2]);
        for _ in 0..3 {
            let y = lin.forward(&x, Mode::Train).unwrap();
            lin.backward(&Tensor::ones(y.dims())).unwrap();
        }
        // db accumulates one per pass.
        assert_eq!(lin.bias.grad.data(), &[3.0, 3.0]);
    }
}
