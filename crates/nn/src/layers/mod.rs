//! Trainable layers with manual forward/backward passes.
//!
//! Each layer caches the activations its backward pass needs during
//! `forward(Mode::Train)`; calling `backward` without a prior training
//! forward is an error. Gradients *accumulate* into [`crate::Parameter`]s
//! until the optimizer consumes them.

mod attention;
mod conv;
mod embedding;
mod linear;
mod norm;

pub use attention::MultiHeadAttention;
pub use conv::Conv2d;
pub use embedding::{PatchEmbed, TokenEmbed};
pub use linear::Linear;
pub use norm::{BatchNorm2d, LayerNorm};

use gmorph_tensor::TensorError;

/// Error for a backward call that has no cached forward state.
pub(crate) fn missing_cache(op: &'static str) -> TensorError {
    TensorError::InvalidArgument {
        op,
        msg: "backward called without a cached training forward".to_string(),
    }
}
