//! Token and patch embeddings (the input stems of TinyBERT and TinyViT).

use super::missing_cache;
use crate::init;
use crate::layers::Conv2d;
use crate::param::Parameter;
use crate::Mode;
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor, TensorError};

/// Token embedding with learned positional embeddings.
///
/// Input is a `[N, T]` tensor of token ids stored as `f32` (there is one
/// tensor type in this stack); output is `[N, T, D]`. Ids must be integral
/// values in `0..vocab`.
#[derive(Debug, Clone)]
pub struct TokenEmbed {
    /// Token table `[V, D]`.
    pub table: Parameter,
    /// Positional table `[T_max, D]`.
    pub pos: Parameter,
    cache_ids: Option<Vec<usize>>,
    cache_nt: Option<(usize, usize)>,
}

impl TokenEmbed {
    /// Creates an embedding for `vocab` tokens of width `d`, positions up to
    /// `t_max`.
    pub fn new(vocab: usize, d: usize, t_max: usize, rng: &mut Rng) -> Self {
        TokenEmbed {
            table: Parameter::new(init::embedding_normal(&[vocab, d], rng)),
            pos: Parameter::new(init::embedding_normal(&[t_max, d], rng)),
            cache_ids: None,
            cache_nt: None,
        }
    }

    /// Embedding width.
    pub fn width(&self) -> usize {
        self.table.value.dims()[1]
    }

    /// Vocabulary size.
    pub fn vocab(&self) -> usize {
        self.table.value.dims()[0]
    }

    /// Forward pass: `[N, T]` ids to `[N, T, D]` embeddings.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if x.shape().rank() != 2 {
            return Err(TensorError::RankMismatch {
                op: "TokenEmbed::forward",
                expected: 2,
                actual: x.shape().rank(),
            });
        }
        let (n, t) = (x.dims()[0], x.dims()[1]);
        if t > self.pos.value.dims()[0] {
            return Err(TensorError::OutOfBounds {
                op: "TokenEmbed::forward",
                index: t,
                bound: self.pos.value.dims()[0],
            });
        }
        let d = self.width();
        let v = self.vocab();
        let mut ids = Vec::with_capacity(n * t);
        let mut out = Tensor::zeros(&[n, t, d]);
        for s in 0..n {
            for p in 0..t {
                let raw = x.data()[s * t + p];
                let id = raw as usize;
                if raw < 0.0 || id >= v || (raw - id as f32).abs() > 1e-3 {
                    return Err(TensorError::InvalidArgument {
                        op: "TokenEmbed::forward",
                        msg: format!("token id {raw} not an integer in 0..{v}"),
                    });
                }
                ids.push(id);
                let dst = (s * t + p) * d;
                let tok = &self.table.value.data()[id * d..(id + 1) * d];
                let pos = &self.pos.value.data()[p * d..(p + 1) * d];
                for j in 0..d {
                    out.data_mut()[dst + j] = tok[j] + pos[j];
                }
            }
        }
        if mode == Mode::Train {
            self.cache_ids = Some(ids);
            self.cache_nt = Some((n, t));
        }
        Ok(out)
    }

    /// Backward pass: scatters gradients into the tables.
    ///
    /// Returns a zero gradient for the (discrete) input.
    pub fn backward(&mut self, grad_y: &Tensor) -> Result<Tensor> {
        let ids = self
            .cache_ids
            .as_ref()
            .ok_or_else(|| missing_cache("TokenEmbed::backward"))?;
        let (n, t) = self.cache_nt.expect("cache_nt set with cache_ids");
        let d = self.width();
        if grad_y.dims() != [n, t, d] {
            return Err(TensorError::ShapeMismatch {
                op: "TokenEmbed::backward",
                lhs: format!("[{n}, {t}, {d}]"),
                rhs: grad_y.shape().to_string(),
            });
        }
        for s in 0..n {
            for p in 0..t {
                let id = ids[s * t + p];
                let src = (s * t + p) * d;
                for j in 0..d {
                    let g = grad_y.data()[src + j];
                    self.table.grad.data_mut()[id * d + j] += g;
                    self.pos.grad.data_mut()[p * d + j] += g;
                }
            }
        }
        Ok(Tensor::zeros(&[n, t]))
    }

    /// Visits the layer's parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.table);
        f(&mut self.pos);
    }

    /// Read-only parameter visit, in the same order as [`visit_params`].
    ///
    /// [`visit_params`]: TokenEmbed::visit_params
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&Parameter)) {
        f(&self.table);
        f(&self.pos);
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.table.numel() + self.pos.numel()
    }

    /// Drops cached state.
    pub fn clear_cache(&mut self) {
        self.cache_ids = None;
        self.cache_nt = None;
    }
}

/// Patch embedding: non-overlapping conv + flatten + positional embedding.
///
/// Input `[N, C, H, W]`; output `[N, (H/p)*(W/p), D]`.
#[derive(Debug, Clone)]
pub struct PatchEmbed {
    /// The patch projection (kernel = stride = patch size).
    pub proj: Conv2d,
    /// Positional table `[T, D]` where `T = (H/p)*(W/p)`.
    pub pos: Parameter,
    /// Patch size.
    pub patch: usize,
    cache_grid: Option<(usize, usize, usize)>,
}

impl PatchEmbed {
    /// Creates a patch embedding for `img` × `img` inputs with `channels`
    /// input channels, `patch` patch size, width `d`.
    pub fn new(
        channels: usize,
        img: usize,
        patch: usize,
        d: usize,
        rng: &mut Rng,
    ) -> Result<Self> {
        if patch == 0 || !img.is_multiple_of(patch) {
            return Err(TensorError::InvalidArgument {
                op: "PatchEmbed::new",
                msg: format!("image {img} not divisible by patch {patch}"),
            });
        }
        let grid = img / patch;
        Ok(PatchEmbed {
            proj: Conv2d::new(channels, d, patch, patch, 0, rng)?,
            pos: Parameter::new(init::embedding_normal(&[grid * grid, d], rng)),
            patch,
            cache_grid: None,
        })
    }

    /// Embedding width.
    pub fn width(&self) -> usize {
        self.proj.out_channels()
    }

    /// Number of tokens produced.
    pub fn tokens(&self) -> usize {
        self.pos.value.dims()[0]
    }

    /// Forward pass: `[N, C, H, W]` to `[N, T, D]`.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        let y = self.proj.forward(x, mode)?; // [N, D, gh, gw]
        let (n, d, gh, gw) = (y.dims()[0], y.dims()[1], y.dims()[2], y.dims()[3]);
        let t = gh * gw;
        if t != self.tokens() {
            return Err(TensorError::ShapeMismatch {
                op: "PatchEmbed::forward",
                lhs: format!("[T={}]", self.tokens()),
                rhs: format!("[T={t}]"),
            });
        }
        // Transpose [N, D, T] -> [N, T, D] and add positions.
        let mut out = Tensor::zeros(&[n, t, d]);
        for s in 0..n {
            for tok in 0..t {
                for j in 0..d {
                    out.data_mut()[(s * t + tok) * d + j] =
                        y.data()[(s * d + j) * t + tok] + self.pos.value.data()[tok * d + j];
                }
            }
        }
        if mode == Mode::Train {
            self.cache_grid = Some((n, gh, gw));
        }
        Ok(out)
    }

    /// Backward pass: `[N, T, D]` gradients to `[N, C, H, W]`.
    pub fn backward(&mut self, grad_y: &Tensor) -> Result<Tensor> {
        let (n, gh, gw) = self
            .cache_grid
            .ok_or_else(|| missing_cache("PatchEmbed::backward"))?;
        let d = self.width();
        let t = gh * gw;
        if grad_y.dims() != [n, t, d] {
            return Err(TensorError::ShapeMismatch {
                op: "PatchEmbed::backward",
                lhs: format!("[{n}, {t}, {d}]"),
                rhs: grad_y.shape().to_string(),
            });
        }
        // Positional gradient + transpose back to [N, D, gh, gw].
        let mut gconv = Tensor::zeros(&[n, d, gh, gw]);
        for s in 0..n {
            for tok in 0..t {
                for j in 0..d {
                    let g = grad_y.data()[(s * t + tok) * d + j];
                    self.pos.grad.data_mut()[tok * d + j] += g;
                    gconv.data_mut()[(s * d + j) * t + tok] = g;
                }
            }
        }
        self.proj.backward(&gconv)
    }

    /// Visits the layer's parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        self.proj.visit_params(f);
        f(&mut self.pos);
    }

    /// Read-only parameter visit, in the same order as [`visit_params`].
    ///
    /// [`visit_params`]: PatchEmbed::visit_params
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&Parameter)) {
        self.proj.visit_params_ref(f);
        f(&self.pos);
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.proj.param_count() + self.pos.numel()
    }

    /// Drops cached state.
    pub fn clear_cache(&mut self) {
        self.proj.clear_cache();
        self.cache_grid = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn token_embed_shapes_and_values() {
        let mut rng = Rng::new(0);
        let mut emb = TokenEmbed::new(10, 4, 8, &mut rng);
        let x = Tensor::from_vec(&[2, 3], vec![0.0, 1.0, 2.0, 3.0, 4.0, 5.0]).unwrap();
        let y = emb.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 3, 4]);
        // Element = table[id] + pos[p].
        let expect = emb.table.value.data()[4] + emb.pos.value.data()[4];
        assert!((y.at(&[0, 1, 0]).unwrap() - expect).abs() < 1e-6);
    }

    #[test]
    fn token_embed_rejects_bad_ids() {
        let mut rng = Rng::new(0);
        let mut emb = TokenEmbed::new(4, 2, 4, &mut rng);
        let too_big = Tensor::from_vec(&[1, 1], vec![4.0]).unwrap();
        assert!(emb.forward(&too_big, Mode::Eval).is_err());
        let frac = Tensor::from_vec(&[1, 1], vec![1.5]).unwrap();
        assert!(emb.forward(&frac, Mode::Eval).is_err());
        let neg = Tensor::from_vec(&[1, 1], vec![-1.0]).unwrap();
        assert!(emb.forward(&neg, Mode::Eval).is_err());
    }

    #[test]
    fn token_embed_backward_scatters() {
        let mut rng = Rng::new(1);
        let mut emb = TokenEmbed::new(5, 2, 4, &mut rng);
        let x = Tensor::from_vec(&[1, 2], vec![3.0, 3.0]).unwrap();
        let y = emb.forward(&x, Mode::Train).unwrap();
        emb.backward(&Tensor::ones(y.dims())).unwrap();
        // Token 3 used twice: grad 2 per column; others zero.
        assert_eq!(emb.table.grad.data()[3 * 2], 2.0);
        assert_eq!(emb.table.grad.data()[0], 0.0);
        // Each position used once.
        assert_eq!(emb.pos.grad.data()[0], 1.0);
    }

    #[test]
    fn patch_embed_shapes() {
        let mut rng = Rng::new(2);
        let mut pe = PatchEmbed::new(3, 8, 4, 16, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 3, 8, 8], 1.0, &mut rng);
        let y = pe.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, 4, 16]);
        assert_eq!(pe.tokens(), 4);
        assert!(PatchEmbed::new(3, 9, 4, 16, &mut rng).is_err());
    }

    #[test]
    fn patch_embed_gradcheck() {
        let mut rng = Rng::new(3);
        let mut pe = PatchEmbed::new(1, 4, 2, 3, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        let y = pe.forward(&x, Mode::Train).unwrap();
        let gx = pe.backward(&Tensor::ones(y.dims())).unwrap();
        let eps = 1e-2f32;
        for &flat in &[0usize, 5, 15] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let mut p2 = pe.clone();
            let num = (p2.forward(&xp, Mode::Eval).unwrap().sum()
                - p2.forward(&xm, Mode::Eval).unwrap().sum())
                / (2.0 * eps);
            assert!((num - gx.data()[flat]).abs() < 0.05);
        }
    }
}
