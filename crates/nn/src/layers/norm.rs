//! Batch and layer normalization.

use super::missing_cache;
use crate::param::Parameter;
use crate::Mode;
use gmorph_tensor::{Result, Tensor, TensorError};

const EPS: f32 = 1e-5;

/// Batch normalization over the channel dimension of NCHW tensors.
///
/// Training uses batch statistics and updates exponential running averages;
/// evaluation uses the running averages, as in PyTorch.
#[derive(Debug, Clone)]
pub struct BatchNorm2d {
    /// Scale `[C]`.
    pub gamma: Parameter,
    /// Shift `[C]`.
    pub beta: Parameter,
    /// Running mean `[C]` (not trained).
    pub running_mean: Tensor,
    /// Running variance `[C]` (not trained).
    pub running_var: Tensor,
    /// Running-average momentum.
    pub momentum: f32,
    /// True when the normalization has been folded into the preceding
    /// convolution (inference compilation): eval passes become identity.
    pub fused: bool,
    cache: Option<BnCache>,
}

#[derive(Debug, Clone)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
    dims: Vec<usize>,
}

impl BatchNorm2d {
    /// Creates a layer for `channels` feature maps (γ=1, β=0).
    pub fn new(channels: usize) -> Self {
        BatchNorm2d {
            gamma: Parameter::new(Tensor::ones(&[channels])),
            beta: Parameter::new(Tensor::zeros(&[channels])),
            running_mean: Tensor::zeros(&[channels]),
            running_var: Tensor::ones(&[channels]),
            momentum: 0.1,
            fused: false,
            cache: None,
        }
    }

    /// Channel count.
    pub fn channels(&self) -> usize {
        self.gamma.value.dims()[0]
    }

    /// Forward pass over `[N, C, H, W]`.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if x.shape().rank() != 4 || x.dims()[1] != self.channels() {
            return Err(TensorError::ShapeMismatch {
                op: "BatchNorm2d::forward",
                lhs: format!("[N, {}, H, W]", self.channels()),
                rhs: x.shape().to_string(),
            });
        }
        let (n, c, h, w) = (x.dims()[0], x.dims()[1], x.dims()[2], x.dims()[3]);
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut out = Tensor::zeros(x.dims());
        match mode {
            Mode::Train => {
                let mut xhat = Tensor::zeros(x.dims());
                let mut inv_stds = vec![0.0f32; c];
                for (ch, inv_std_slot) in inv_stds.iter_mut().enumerate() {
                    let mut sum = 0.0f32;
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        sum += x.data()[base..base + plane].iter().sum::<f32>();
                    }
                    let mean = sum / m;
                    let mut var = 0.0f32;
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        for &v in &x.data()[base..base + plane] {
                            var += (v - mean) * (v - mean);
                        }
                    }
                    var /= m;
                    let inv_std = 1.0 / (var + EPS).sqrt();
                    *inv_std_slot = inv_std;
                    let (g, b) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        for i in base..base + plane {
                            let xh = (x.data()[i] - mean) * inv_std;
                            xhat.data_mut()[i] = xh;
                            out.data_mut()[i] = g * xh + b;
                        }
                    }
                    // Update running statistics.
                    let rm = &mut self.running_mean.data_mut()[ch];
                    *rm = (1.0 - self.momentum) * *rm + self.momentum * mean;
                    let rv = &mut self.running_var.data_mut()[ch];
                    *rv = (1.0 - self.momentum) * *rv + self.momentum * var;
                }
                self.cache = Some(BnCache {
                    xhat,
                    inv_std: inv_stds,
                    dims: x.dims().to_vec(),
                });
            }
            Mode::Eval => {
                if self.fused {
                    return Ok(x.clone());
                }
                for ch in 0..c {
                    let mean = self.running_mean.data()[ch];
                    let inv_std = 1.0 / (self.running_var.data()[ch] + EPS).sqrt();
                    let (g, b) = (self.gamma.value.data()[ch], self.beta.value.data()[ch]);
                    for s in 0..n {
                        let base = (s * c + ch) * plane;
                        for i in base..base + plane {
                            out.data_mut()[i] = g * (x.data()[i] - mean) * inv_std + b;
                        }
                    }
                }
            }
        }
        Ok(out)
    }

    /// Backward pass (training statistics).
    pub fn backward(&mut self, grad_y: &Tensor) -> Result<Tensor> {
        let cache = self
            .cache
            .as_ref()
            .ok_or_else(|| missing_cache("BatchNorm2d::backward"))?;
        if grad_y.dims() != cache.dims.as_slice() {
            return Err(TensorError::ShapeMismatch {
                op: "BatchNorm2d::backward",
                lhs: format!("{:?}", cache.dims),
                rhs: grad_y.shape().to_string(),
            });
        }
        let (n, c, h, w) = (
            cache.dims[0],
            cache.dims[1],
            cache.dims[2],
            cache.dims[3],
        );
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut grad_x = Tensor::zeros(grad_y.dims());
        for ch in 0..c {
            let mut sum_gy = 0.0f32;
            let mut sum_gy_xhat = 0.0f32;
            for s in 0..n {
                let base = (s * c + ch) * plane;
                for i in base..base + plane {
                    sum_gy += grad_y.data()[i];
                    sum_gy_xhat += grad_y.data()[i] * cache.xhat.data()[i];
                }
            }
            self.gamma.grad.data_mut()[ch] += sum_gy_xhat;
            self.beta.grad.data_mut()[ch] += sum_gy;
            let g = self.gamma.value.data()[ch];
            let k = g * cache.inv_std[ch] / m;
            for s in 0..n {
                let base = (s * c + ch) * plane;
                for i in base..base + plane {
                    grad_x.data_mut()[i] = k
                        * (m * grad_y.data()[i]
                            - sum_gy
                            - cache.xhat.data()[i] * sum_gy_xhat);
                }
            }
        }
        Ok(grad_x)
    }

    /// Visits the layer's parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    /// Read-only parameter visit, in the same order as [`visit_params`].
    ///
    /// [`visit_params`]: BatchNorm2d::visit_params
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&Parameter)) {
        f(&self.gamma);
        f(&self.beta);
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.gamma.numel() + self.beta.numel()
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

/// Layer normalization over the last dimension of rank-2 inputs `[M, D]`.
#[derive(Debug, Clone)]
pub struct LayerNorm {
    /// Scale `[D]`.
    pub gamma: Parameter,
    /// Shift `[D]`.
    pub beta: Parameter,
    cache: Option<(Tensor, Vec<f32>)>,
}

impl LayerNorm {
    /// Creates a layer for feature width `d` (γ=1, β=0).
    pub fn new(d: usize) -> Self {
        LayerNorm {
            gamma: Parameter::new(Tensor::ones(&[d])),
            beta: Parameter::new(Tensor::zeros(&[d])),
            cache: None,
        }
    }

    /// Feature width.
    pub fn width(&self) -> usize {
        self.gamma.value.dims()[0]
    }

    /// Forward pass over `[M, D]`.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        if x.shape().rank() != 2 || x.dims()[1] != self.width() {
            return Err(TensorError::ShapeMismatch {
                op: "LayerNorm::forward",
                lhs: format!("[M, {}]", self.width()),
                rhs: x.shape().to_string(),
            });
        }
        let (m, d) = (x.dims()[0], x.dims()[1]);
        let mut out = Tensor::zeros(x.dims());
        let mut xhat = Tensor::zeros(x.dims());
        let mut inv_stds = vec![0.0f32; m];
        for (i, inv_std_slot) in inv_stds.iter_mut().enumerate() {
            let row = &x.data()[i * d..(i + 1) * d];
            let mean = row.iter().sum::<f32>() / d as f32;
            let var = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / d as f32;
            let inv_std = 1.0 / (var + EPS).sqrt();
            *inv_std_slot = inv_std;
            for (j, &rv) in row.iter().enumerate() {
                let xh = (rv - mean) * inv_std;
                xhat.data_mut()[i * d + j] = xh;
                out.data_mut()[i * d + j] =
                    self.gamma.value.data()[j] * xh + self.beta.value.data()[j];
            }
        }
        if mode == Mode::Train {
            self.cache = Some((xhat, inv_stds));
        }
        Ok(out)
    }

    /// Backward pass.
    pub fn backward(&mut self, grad_y: &Tensor) -> Result<Tensor> {
        let (xhat, inv_stds) = self
            .cache
            .as_ref()
            .ok_or_else(|| missing_cache("LayerNorm::backward"))?;
        if grad_y.dims() != xhat.dims() {
            return Err(TensorError::ShapeMismatch {
                op: "LayerNorm::backward",
                lhs: xhat.shape().to_string(),
                rhs: grad_y.shape().to_string(),
            });
        }
        let (m, d) = (grad_y.dims()[0], grad_y.dims()[1]);
        let mut grad_x = Tensor::zeros(grad_y.dims());
        for (i, &row_inv_std) in inv_stds.iter().enumerate().take(m) {
            let mut sum_g = 0.0f32;
            let mut sum_g_xhat = 0.0f32;
            for j in 0..d {
                let idx = i * d + j;
                let gxh = grad_y.data()[idx] * self.gamma.value.data()[j];
                sum_g += gxh;
                sum_g_xhat += gxh * xhat.data()[idx];
                self.gamma.grad.data_mut()[j] += grad_y.data()[idx] * xhat.data()[idx];
                self.beta.grad.data_mut()[j] += grad_y.data()[idx];
            }
            let k = row_inv_std / d as f32;
            for j in 0..d {
                let idx = i * d + j;
                let gxh = grad_y.data()[idx] * self.gamma.value.data()[j];
                grad_x.data_mut()[idx] =
                    k * (d as f32 * gxh - sum_g - xhat.data()[idx] * sum_g_xhat);
            }
        }
        Ok(grad_x)
    }

    /// Visits the layer's parameters.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }

    /// Read-only parameter visit, in the same order as [`visit_params`].
    ///
    /// [`visit_params`]: LayerNorm::visit_params
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&Parameter)) {
        f(&self.gamma);
        f(&self.beta);
    }

    /// Number of trainable scalars.
    pub fn param_count(&self) -> usize {
        self.gamma.numel() + self.beta.numel()
    }

    /// Drops cached activations.
    pub fn clear_cache(&mut self) {
        self.cache = None;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gmorph_tensor::rng::Rng;

    #[test]
    fn batchnorm_train_normalizes() {
        let mut rng = Rng::new(0);
        let mut bn = BatchNorm2d::new(3);
        let x = Tensor::randn(&[4, 3, 5, 5], 3.0, &mut rng).map(|v| v + 10.0);
        let y = bn.forward(&x, Mode::Train).unwrap();
        // Per-channel output mean ≈ 0, var ≈ 1.
        let plane = 25;
        for ch in 0..3 {
            let mut vals = Vec::new();
            for s in 0..4 {
                let base = (s * 3 + ch) * plane;
                vals.extend_from_slice(&y.data()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn batchnorm_eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1);
        bn.running_mean = Tensor::from_vec(&[1], vec![2.0]).unwrap();
        bn.running_var = Tensor::from_vec(&[1], vec![4.0]).unwrap();
        let x = Tensor::full(&[1, 1, 1, 1], 4.0);
        let y = bn.forward(&x, Mode::Eval).unwrap();
        // (4 - 2) / sqrt(4) = 1.
        assert!((y.data()[0] - 1.0).abs() < 1e-3);
    }

    #[test]
    fn batchnorm_gradcheck() {
        let mut rng = Rng::new(1);
        let mut bn = BatchNorm2d::new(2);
        bn.gamma.value = Tensor::from_vec(&[2], vec![1.5, 0.5]).unwrap();
        let x = Tensor::randn(&[2, 2, 3, 3], 1.0, &mut rng);
        // Use a non-uniform downstream gradient so dX is nontrivial
        // (sum-loss gradients through BN are ~0 by mean-invariance).
        let w = Tensor::randn(&[2 * 2 * 3 * 3], 1.0, &mut rng);
        let loss = |bn: &mut BatchNorm2d, x: &Tensor| -> f32 {
            bn.forward(x, Mode::Train)
                .unwrap()
                .data()
                .iter()
                .zip(w.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let y = bn.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_vec(y.dims(), w.data().to_vec()).unwrap();
        let gx = bn.backward(&g).unwrap();
        let eps = 1e-2f32;
        for &flat in &[0usize, 7, 19, 35] {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let mut b2 = bn.clone();
            let num = (loss(&mut b2, &xp) - loss(&mut b2, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.data()[flat]).abs() < 0.05,
                "dX[{flat}]: {num} vs {}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn layernorm_normalizes_rows() {
        let mut rng = Rng::new(2);
        let mut ln = LayerNorm::new(16);
        let x = Tensor::randn(&[4, 16], 5.0, &mut rng);
        let y = ln.forward(&x, Mode::Eval).unwrap();
        for i in 0..4 {
            let row = &y.data()[i * 16..(i + 1) * 16];
            let mean: f32 = row.iter().sum::<f32>() / 16.0;
            let var: f32 = row.iter().map(|&v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_gradcheck() {
        let mut rng = Rng::new(3);
        let mut ln = LayerNorm::new(5);
        ln.gamma.value = Tensor::randn(&[5], 0.3, &mut rng).map(|v| v + 1.0);
        let x = Tensor::randn(&[2, 5], 1.0, &mut rng);
        let w = Tensor::randn(&[10], 1.0, &mut rng);
        let y = ln.forward(&x, Mode::Train).unwrap();
        let g = Tensor::from_vec(y.dims(), w.data().to_vec()).unwrap();
        let gx = ln.backward(&g).unwrap();
        let eps = 1e-3f32;
        let loss = |ln: &mut LayerNorm, x: &Tensor| -> f32 {
            ln.forward(x, Mode::Eval)
                .unwrap()
                .data()
                .iter()
                .zip(w.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        for flat in 0..10 {
            let mut xp = x.clone();
            xp.data_mut()[flat] += eps;
            let mut xm = x.clone();
            xm.data_mut()[flat] -= eps;
            let mut l2 = ln.clone();
            let num = (loss(&mut l2, &xp) - loss(&mut l2, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.data()[flat]).abs() < 0.02,
                "dX[{flat}]: {num} vs {}",
                gx.data()[flat]
            );
        }
    }

    #[test]
    fn rejects_wrong_shapes() {
        let mut bn = BatchNorm2d::new(3);
        assert!(bn.forward(&Tensor::zeros(&[1, 2, 4, 4]), Mode::Eval).is_err());
        assert!(bn.backward(&Tensor::zeros(&[1, 3, 4, 4])).is_err());
        let mut ln = LayerNorm::new(4);
        assert!(ln.forward(&Tensor::zeros(&[2, 5]), Mode::Eval).is_err());
    }
}
