//! Computation blocks: the unit of graph mutation.
//!
//! The paper observes that "a DNN is a sequence of computation blocks, such
//! as residual blocks in ResNets or convolution layers in VGGs" (§1) and
//! builds its abstract graph over these blocks. [`Block`] is that unit
//! here: a self-contained trainable operator with a forward pass, a
//! backward pass, a per-sample shape function, a parameter count (the
//! *capacity* used by rule-based filtering, §5.1), and a FLOP count (used
//! by the FLOPs estimator and the analytic latency model).
//!
//! The [`Block::Rescale`] variant is the paper's re-scale operator (§4.1):
//! inserted by the model generator when a node reuses features whose shape
//! differs from what it expects — bilinear interpolation for width/height
//! plus a 1×1 convolution for channels (vision), or token-axis
//! interpolation plus a linear projection (transformers).

use crate::layers::{
    BatchNorm2d, Conv2d, LayerNorm, Linear, MultiHeadAttention, PatchEmbed, TokenEmbed,
};
use crate::param::Parameter;
use crate::Mode;
use gmorph_tensor::interp::{resize2d_backward, resize2d_forward, InterpMode};
use gmorph_tensor::ops;
use gmorph_tensor::pool::{
    global_avgpool_backward, global_avgpool_forward, maxpool2d_backward, maxpool2d_forward,
    MaxPoolForward,
};
use gmorph_tensor::rng::Rng;
use gmorph_tensor::{Result, Tensor, TensorError};

/// Coarse operator type of a block, recorded in abstract-graph nodes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OpType {
    /// Convolution (+ReLU, optionally +BatchNorm).
    Conv,
    /// Residual basic block.
    Residual,
    /// Max pooling.
    Pool,
    /// Transformer encoder block.
    Transformer,
    /// Patch embedding stem.
    PatchEmbed,
    /// Token embedding stem.
    TokenEmbed,
    /// Task head (pool + classifier).
    Head,
    /// Re-scale adapter inserted by the model generator.
    Rescale,
}

impl std::fmt::Display for OpType {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            OpType::Conv => "Conv",
            OpType::Residual => "Residual",
            OpType::Pool => "Pool",
            OpType::Transformer => "Transformer",
            OpType::PatchEmbed => "PatchEmbed",
            OpType::TokenEmbed => "TokenEmbed",
            OpType::Head => "Head",
            OpType::Rescale => "Rescale",
        };
        write!(f, "{s}")
    }
}

/// A trainable computation block (see module docs).
///
/// Variants intentionally hold their layers inline (not boxed): blocks are
/// built once per model and iterated, never moved in bulk, so the size
/// spread is irrelevant in practice.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone)]
pub enum Block {
    /// `relu(conv(x))` — the VGG building block.
    ConvRelu {
        /// The convolution.
        conv: Conv2d,
        /// Cached pre-activation for the ReLU backward.
        cache_pre: Option<Tensor>,
    },
    /// `relu(bn(conv(x)))` — ResNet stems and plain conv blocks.
    ConvBnRelu {
        /// The convolution.
        conv: Conv2d,
        /// The batch norm.
        bn: BatchNorm2d,
        /// Cached pre-activation.
        cache_pre: Option<Tensor>,
    },
    /// A ResNet basic block with optional downsampling projection.
    Residual {
        /// First convolution (carries the stride).
        conv1: Conv2d,
        /// First batch norm.
        bn1: BatchNorm2d,
        /// Second convolution.
        conv2: Conv2d,
        /// Second batch norm.
        bn2: BatchNorm2d,
        /// Optional 1×1 stride-matched projection for the skip path.
        down: Option<(Conv2d, BatchNorm2d)>,
        /// Cached pre-activation of the first ReLU.
        cache_pre1: Option<Tensor>,
        /// Cached pre-activation of the final ReLU (main + skip).
        cache_pre2: Option<Tensor>,
    },
    /// `k`×`k` max pooling with stride `k`.
    MaxPool {
        /// Pooling window.
        k: usize,
        /// Cached forward state (argmax routing).
        cache: Option<(MaxPoolForward, Vec<usize>)>,
    },
    /// A pre-LN transformer encoder block (MHA + GELU MLP).
    Transformer {
        /// First layer norm (before attention).
        ln1: LayerNorm,
        /// Self-attention.
        attn: MultiHeadAttention,
        /// Second layer norm (before the MLP).
        ln2: LayerNorm,
        /// MLP expansion.
        fc1: Linear,
        /// MLP contraction.
        fc2: Linear,
        /// Cached intermediate activations for backward.
        cache: Option<TransformerCache>,
    },
    /// Patch-embedding stem (ViT).
    PatchEmbedB(PatchEmbed),
    /// Token-embedding stem (BERT).
    TokenEmbedB(TokenEmbed),
    /// Task head: global pooling followed by a linear classifier.
    Head {
        /// The classifier.
        linear: Linear,
        /// Cached input dims for the pooling backward.
        cache_dims: Option<Vec<usize>>,
    },
    /// The re-scale adapter (§4.1).
    Rescale {
        /// Source per-sample shape (`[C, H, W]` or `[T, D]`).
        source: Vec<usize>,
        /// Target per-sample shape (`[C, H, W]` or `[T, D]`).
        target: Vec<usize>,
        /// Channel/width projection (1×1 conv for vision, linear for seq).
        /// `None` when the channel/width dimension already matches.
        proj: Option<RescaleProj>,
        /// Cached input dims and intermediate for backward.
        cache: Option<(Vec<usize>, Vec<usize>)>,
    },
}

/// Cached activations of a transformer block's forward pass.
#[derive(Debug, Clone)]
pub struct TransformerCache {
    n: usize,
    t: usize,
    /// Pre-GELU activations of the MLP.
    mlp_pre: Tensor,
}

/// The learnable projection half of a [`Block::Rescale`].
#[derive(Debug, Clone)]
pub enum RescaleProj {
    /// 1×1 convolution adjusting the channel count.
    Conv(Conv2d),
    /// Linear layer adjusting the embedding width.
    Linear(Linear),
}

impl Block {
    // ------------------------------------------------------------------
    // Constructors
    // ------------------------------------------------------------------

    /// VGG-style `conv3x3 + relu` block.
    pub fn conv_relu(c_in: usize, c_out: usize, rng: &mut Rng) -> Result<Block> {
        Ok(Block::ConvRelu {
            conv: Conv2d::new(c_in, c_out, 3, 1, 1, rng)?,
            cache_pre: None,
        })
    }

    /// `conv + bn + relu` block with arbitrary kernel/stride.
    pub fn conv_bn_relu(
        c_in: usize,
        c_out: usize,
        kernel: usize,
        stride: usize,
        rng: &mut Rng,
    ) -> Result<Block> {
        Ok(Block::ConvBnRelu {
            conv: Conv2d::new(c_in, c_out, kernel, stride, kernel / 2, rng)?,
            bn: BatchNorm2d::new(c_out),
            cache_pre: None,
        })
    }

    /// ResNet basic block; `stride > 1` (or channel change) adds a
    /// projection on the skip path.
    pub fn residual(c_in: usize, c_out: usize, stride: usize, rng: &mut Rng) -> Result<Block> {
        let down = if stride != 1 || c_in != c_out {
            Some((
                Conv2d::new(c_in, c_out, 1, stride, 0, rng)?,
                BatchNorm2d::new(c_out),
            ))
        } else {
            None
        };
        Ok(Block::Residual {
            conv1: Conv2d::new(c_in, c_out, 3, stride, 1, rng)?,
            bn1: BatchNorm2d::new(c_out),
            conv2: Conv2d::new(c_out, c_out, 3, 1, 1, rng)?,
            bn2: BatchNorm2d::new(c_out),
            down,
            cache_pre1: None,
            cache_pre2: None,
        })
    }

    /// 2×2 max pooling.
    pub fn maxpool(k: usize) -> Block {
        Block::MaxPool { k, cache: None }
    }

    /// Pre-LN transformer encoder block of width `d` with `heads` heads and
    /// a 4× MLP.
    pub fn transformer(d: usize, heads: usize, rng: &mut Rng) -> Result<Block> {
        Ok(Block::Transformer {
            ln1: LayerNorm::new(d),
            attn: MultiHeadAttention::new(d, heads, rng)?,
            ln2: LayerNorm::new(d),
            fc1: Linear::new(d, 4 * d, rng),
            fc2: Linear::new(4 * d, d, rng),
            cache: None,
        })
    }

    /// ViT patch-embedding stem.
    pub fn patch_embed(
        channels: usize,
        img: usize,
        patch: usize,
        d: usize,
        rng: &mut Rng,
    ) -> Result<Block> {
        Ok(Block::PatchEmbedB(PatchEmbed::new(
            channels, img, patch, d, rng,
        )?))
    }

    /// BERT token-embedding stem.
    pub fn token_embed(vocab: usize, d: usize, t_max: usize, rng: &mut Rng) -> Block {
        Block::TokenEmbedB(TokenEmbed::new(vocab, d, t_max, rng))
    }

    /// Task head over `features` inputs producing `classes` logits.
    pub fn head(features: usize, classes: usize, rng: &mut Rng) -> Block {
        Block::Head {
            linear: Linear::new(features, classes, rng),
            cache_dims: None,
        }
    }

    /// Builds the re-scale adapter mapping `from` to `to` per-sample shapes.
    ///
    /// Returns `None` wrapped in `Ok` semantics is not used: when the shapes
    /// are identical the caller should simply not insert a block.
    pub fn rescale(from: &[usize], to: &[usize], rng: &mut Rng) -> Result<Block> {
        match (from.len(), to.len()) {
            (3, 3) => {
                let proj = if from[0] != to[0] {
                    Some(RescaleProj::Conv(Conv2d::new(from[0], to[0], 1, 1, 0, rng)?))
                } else {
                    None
                };
                Ok(Block::Rescale {
                    source: from.to_vec(),
                    target: to.to_vec(),
                    proj,
                    cache: None,
                })
            }
            (2, 2) => {
                let proj = if from[1] != to[1] {
                    Some(RescaleProj::Linear(Linear::new(from[1], to[1], rng)))
                } else {
                    None
                };
                Ok(Block::Rescale {
                    source: from.to_vec(),
                    target: to.to_vec(),
                    proj,
                    cache: None,
                })
            }
            _ => Err(TensorError::InvalidArgument {
                op: "Block::rescale",
                msg: format!("unsupported rescale {from:?} -> {to:?}"),
            }),
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// Coarse operator type.
    pub fn op_type(&self) -> OpType {
        match self {
            Block::ConvRelu { .. } | Block::ConvBnRelu { .. } => OpType::Conv,
            Block::Residual { .. } => OpType::Residual,
            Block::MaxPool { .. } => OpType::Pool,
            Block::Transformer { .. } => OpType::Transformer,
            Block::PatchEmbedB(_) => OpType::PatchEmbed,
            Block::TokenEmbedB(_) => OpType::TokenEmbed,
            Block::Head { .. } => OpType::Head,
            Block::Rescale { .. } => OpType::Rescale,
        }
    }

    /// Number of trainable scalars (the paper's *capacity*).
    pub fn capacity(&self) -> usize {
        let mut n = 0usize;
        self.visit_params_ref(&mut |p: &Parameter| n += p.numel());
        n
    }

    /// Per-sample output shape for a per-sample input shape.
    ///
    /// Vision shapes are `[C, H, W]`, sequence shapes `[T, D]`, raw token
    /// inputs `[T]`, and head outputs `[classes]`.
    pub fn out_shape(&self, in_shape: &[usize]) -> Result<Vec<usize>> {
        match self {
            Block::ConvRelu { conv, .. } => conv.out_shape(in_shape),
            Block::ConvBnRelu { conv, .. } => conv.out_shape(in_shape),
            Block::Residual { conv1, conv2, .. } => {
                conv2.out_shape(&conv1.out_shape(in_shape)?)
            }
            Block::MaxPool { k, .. } => {
                if in_shape.len() != 3 || in_shape[1] < *k || in_shape[2] < *k {
                    return Err(TensorError::InvalidArgument {
                        op: "MaxPool::out_shape",
                        msg: format!("cannot pool {in_shape:?} by {k}"),
                    });
                }
                Ok(vec![in_shape[0], in_shape[1] / k, in_shape[2] / k])
            }
            Block::Transformer { attn, .. } => {
                if in_shape.len() != 2 || in_shape[1] != attn.width() {
                    return Err(TensorError::InvalidArgument {
                        op: "Transformer::out_shape",
                        msg: format!("expected [T, {}], got {in_shape:?}", attn.width()),
                    });
                }
                Ok(in_shape.to_vec())
            }
            Block::PatchEmbedB(pe) => {
                if in_shape.len() != 3
                    || in_shape[0] != pe.proj.in_channels()
                    || !in_shape[1].is_multiple_of(pe.patch)
                    || !in_shape[2].is_multiple_of(pe.patch)
                {
                    return Err(TensorError::InvalidArgument {
                        op: "PatchEmbed::out_shape",
                        msg: format!("cannot patchify {in_shape:?}"),
                    });
                }
                let t = (in_shape[1] / pe.patch) * (in_shape[2] / pe.patch);
                if t != pe.tokens() {
                    return Err(TensorError::InvalidArgument {
                        op: "PatchEmbed::out_shape",
                        msg: format!("token count {t} != table {}", pe.tokens()),
                    });
                }
                Ok(vec![t, pe.width()])
            }
            Block::TokenEmbedB(te) => {
                if in_shape.len() != 1 {
                    return Err(TensorError::RankMismatch {
                        op: "TokenEmbed::out_shape",
                        expected: 1,
                        actual: in_shape.len(),
                    });
                }
                Ok(vec![in_shape[0], te.width()])
            }
            Block::Head { linear, .. } => {
                let features = match in_shape.len() {
                    3 => in_shape[0],
                    2 => in_shape[1],
                    _ => {
                        return Err(TensorError::InvalidArgument {
                            op: "Head::out_shape",
                            msg: format!("unsupported head input {in_shape:?}"),
                        })
                    }
                };
                if features != linear.in_features() {
                    return Err(TensorError::ShapeMismatch {
                        op: "Head::out_shape",
                        lhs: format!("[{}]", linear.in_features()),
                        rhs: format!("{in_shape:?}"),
                    });
                }
                Ok(vec![linear.out_features()])
            }
            Block::Rescale { target, .. } => {
                if in_shape.len() != target.len() {
                    return Err(TensorError::RankMismatch {
                        op: "Rescale::out_shape",
                        expected: target.len(),
                        actual: in_shape.len(),
                    });
                }
                Ok(target.clone())
            }
        }
    }

    /// Approximate FLOPs for one sample with the given input shape.
    pub fn flops(&self, in_shape: &[usize]) -> Result<u64> {
        let numel = |s: &[usize]| s.iter().product::<usize>() as u64;
        Ok(match self {
            Block::ConvRelu { conv, .. } => {
                let out = conv.out_shape(in_shape)?;
                conv_flops(conv, &out) + numel(&out)
            }
            Block::ConvBnRelu { conv, .. } => {
                let out = conv.out_shape(in_shape)?;
                conv_flops(conv, &out) + 3 * numel(&out)
            }
            Block::Residual {
                conv1,
                conv2,
                down,
                ..
            } => {
                let mid = conv1.out_shape(in_shape)?;
                let out = conv2.out_shape(&mid)?;
                let mut f = conv_flops(conv1, &mid) + conv_flops(conv2, &out) + 5 * numel(&out);
                if let Some((dc, _)) = down {
                    f += conv_flops(dc, &out) + 2 * numel(&out);
                }
                f
            }
            Block::MaxPool { .. } => numel(in_shape),
            Block::Transformer { fc1, fc2, .. } => {
                let (t, d) = (in_shape[0] as u64, in_shape[1] as u64);
                let qkv = 4 * 2 * t * d * d; // Wq, Wk, Wv, Wo.
                let scores = 2 * 2 * t * t * d; // QKᵀ and A·V.
                let mlp = 2 * t * d * fc1.out_features() as u64
                    + 2 * t * fc2.in_features() as u64 * d;
                qkv + scores + mlp + 8 * t * d
            }
            Block::PatchEmbedB(pe) => {
                let out = vec![pe.tokens(), pe.width()];
                let k = pe.patch as u64;
                2 * numel(&out) * pe.proj.in_channels() as u64 * k * k + numel(&out)
            }
            Block::TokenEmbedB(te) => 2 * in_shape[0] as u64 * te.width() as u64,
            Block::Head { linear, .. } => {
                numel(in_shape) + 2 * (linear.in_features() * linear.out_features()) as u64
            }
            Block::Rescale { target, proj, .. } => {
                let mut f = 4 * numel(target);
                match proj {
                    Some(RescaleProj::Conv(c)) => {
                        f += 2 * numel(&target[1..])
                            * c.in_channels() as u64
                            * c.out_channels() as u64;
                    }
                    Some(RescaleProj::Linear(l)) => {
                        f += 2 * target[0] as u64
                            * (l.in_features() * l.out_features()) as u64;
                    }
                    None => {}
                }
                f
            }
        })
    }

    // ------------------------------------------------------------------
    // Forward / backward
    // ------------------------------------------------------------------

    /// Forward pass over a batched tensor.
    pub fn forward(&mut self, x: &Tensor, mode: Mode) -> Result<Tensor> {
        match self {
            Block::ConvRelu { conv, cache_pre } => {
                let pre = conv.forward(x, mode)?;
                if mode == Mode::Eval && conv.fused_act != ops::Activation::None {
                    // The compile pass moved the activation into the conv
                    // epilogue; the conv output already is the block output.
                    return Ok(pre);
                }
                let y = ops::relu_forward(&pre);
                if mode == Mode::Train {
                    *cache_pre = Some(pre);
                }
                Ok(y)
            }
            Block::ConvBnRelu {
                conv,
                bn,
                cache_pre,
            } => {
                if mode == Mode::Eval && bn.fused && conv.fused_act != ops::Activation::None {
                    // BN was folded into the conv (identity in eval) and the
                    // ReLU fused into the conv epilogue.
                    return conv.forward(x, mode);
                }
                let c = conv.forward(x, mode)?;
                let pre = bn.forward(&c, mode)?;
                let y = ops::relu_forward(&pre);
                if mode == Mode::Train {
                    *cache_pre = Some(pre);
                }
                Ok(y)
            }
            Block::Residual {
                conv1,
                bn1,
                conv2,
                bn2,
                down,
                cache_pre1,
                cache_pre2,
            } => {
                let pre1 = bn1.forward(&conv1.forward(x, mode)?, mode)?;
                let h = ops::relu_forward(&pre1);
                let main = bn2.forward(&conv2.forward(&h, mode)?, mode)?;
                // Identity skips add straight from the input — no clone.
                let pre2 = match down {
                    Some((dc, dbn)) => main.add(&dbn.forward(&dc.forward(x, mode)?, mode)?)?,
                    None => main.add(x)?,
                };
                let y = ops::relu_forward(&pre2);
                if mode == Mode::Train {
                    *cache_pre1 = Some(pre1);
                    *cache_pre2 = Some(pre2);
                }
                Ok(y)
            }
            Block::MaxPool { k, cache } => {
                let mut fwd = maxpool2d_forward(x, *k)?;
                // Backward routes through the argmax indices only, so the
                // output can be moved out instead of cloned.
                let y = std::mem::replace(&mut fwd.output, Tensor::zeros(&[0]));
                if mode == Mode::Train {
                    *cache = Some((fwd, x.dims().to_vec()));
                }
                Ok(y)
            }
            Block::Transformer {
                ln1,
                attn,
                ln2,
                fc1,
                fc2,
                cache,
            } => {
                let (n, t, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
                let x2 = x.reshape(&[n * t, d])?;
                let h1 = ln1.forward(&x2, mode)?;
                let a = attn.forward(&h1.reshape(&[n, t, d])?, mode)?;
                let r1 = x2.add(&a.reshape(&[n * t, d])?)?;
                let h2 = ln2.forward(&r1, mode)?;
                let mlp_pre = fc1.forward(&h2, mode)?;
                let m = if mode == Mode::Eval && fc1.fused_act != ops::Activation::None {
                    // GELU already applied in the fc1 GEMM epilogue.
                    fc2.forward(&mlp_pre, mode)?
                } else {
                    fc2.forward(&ops::gelu_forward(&mlp_pre), mode)?
                };
                let y2 = r1.add(&m)?;
                if mode == Mode::Train {
                    *cache = Some(TransformerCache { n, t, mlp_pre });
                }
                y2.reshape(&[n, t, d])
            }
            Block::PatchEmbedB(pe) => pe.forward(x, mode),
            Block::TokenEmbedB(te) => te.forward(x, mode),
            Block::Head { linear, cache_dims } => {
                let pooled = match x.shape().rank() {
                    4 => global_avgpool_forward(x)?,
                    3 => {
                        // Mean over the token axis.
                        let (n, t, d) = (x.dims()[0], x.dims()[1], x.dims()[2]);
                        let mut out = Tensor::zeros(&[n, d]);
                        for s in 0..n {
                            for tok in 0..t {
                                for j in 0..d {
                                    out.data_mut()[s * d + j] +=
                                        x.data()[(s * t + tok) * d + j];
                                }
                            }
                        }
                        out.scale_in_place(1.0 / t as f32);
                        out
                    }
                    r => {
                        return Err(TensorError::RankMismatch {
                            op: "Head::forward",
                            expected: 4,
                            actual: r,
                        })
                    }
                };
                if mode == Mode::Train {
                    *cache_dims = Some(x.dims().to_vec());
                }
                linear.forward(&pooled, mode)
            }
            Block::Rescale {
                target,
                proj,
                cache,
                ..
            } => match target.len() {
                3 => {
                    let resized =
                        resize2d_forward(x, target[1], target[2], InterpMode::Bilinear)?;
                    let mid_dims = resized.dims().to_vec();
                    let y = match proj {
                        Some(RescaleProj::Conv(c)) => c.forward(&resized, mode)?,
                        Some(RescaleProj::Linear(_)) => {
                            return Err(TensorError::InvalidArgument {
                                op: "Rescale::forward",
                                msg: "linear projection on vision features".to_string(),
                            })
                        }
                        None => resized,
                    };
                    if mode == Mode::Train {
                        *cache = Some((x.dims().to_vec(), mid_dims));
                    }
                    Ok(y)
                }
                2 => {
                    // Interpolate the token axis by viewing [N, 1, T, D].
                    let (n, t_in, d_in) = (x.dims()[0], x.dims()[1], x.dims()[2]);
                    let x4 = x.reshape(&[n, 1, t_in, d_in])?;
                    let resized =
                        resize2d_forward(&x4, target[0], d_in, InterpMode::Bilinear)?;
                    let mid = resized.reshape(&[n * target[0], d_in])?;
                    let mid_dims = vec![n, 1, t_in, d_in];
                    let y = match proj {
                        Some(RescaleProj::Linear(l)) => l
                            .forward(&mid, mode)?
                            .reshape(&[n, target[0], target[1]])?,
                        Some(RescaleProj::Conv(_)) => {
                            return Err(TensorError::InvalidArgument {
                                op: "Rescale::forward",
                                msg: "conv projection on sequence features".to_string(),
                            })
                        }
                        None => mid.reshape(&[n, target[0], target[1]])?,
                    };
                    if mode == Mode::Train {
                        *cache = Some((x.dims().to_vec(), mid_dims));
                    }
                    Ok(y)
                }
                _ => Err(TensorError::InvalidArgument {
                    op: "Rescale::forward",
                    msg: format!("unsupported target {target:?}"),
                }),
            },
        }
    }

    /// Backward pass; returns the gradient with respect to the input.
    pub fn backward(&mut self, grad_y: &Tensor) -> Result<Tensor> {
        match self {
            Block::ConvRelu { conv, cache_pre } => {
                let pre = cache_pre.as_ref().ok_or_else(|| no_cache("ConvRelu"))?;
                let g = ops::relu_backward(grad_y, pre)?;
                conv.backward(&g)
            }
            Block::ConvBnRelu {
                conv,
                bn,
                cache_pre,
            } => {
                let pre = cache_pre.as_ref().ok_or_else(|| no_cache("ConvBnRelu"))?;
                let g = ops::relu_backward(grad_y, pre)?;
                conv.backward(&bn.backward(&g)?)
            }
            Block::Residual {
                conv1,
                bn1,
                conv2,
                bn2,
                down,
                cache_pre1,
                cache_pre2,
            } => {
                let pre1 = cache_pre1.as_ref().ok_or_else(|| no_cache("Residual"))?;
                let pre2 = cache_pre2.as_ref().ok_or_else(|| no_cache("Residual"))?;
                let g2 = ops::relu_backward(grad_y, pre2)?;
                // Main path.
                let gm = bn2.backward(&g2)?;
                let gm = conv2.backward(&gm)?;
                let gm = ops::relu_backward(&gm, pre1)?;
                let gm = bn1.backward(&gm)?;
                let mut gx = conv1.backward(&gm)?;
                // Skip path.
                let gs = match down {
                    Some((dc, dbn)) => dc.backward(&dbn.backward(&g2)?)?,
                    None => g2,
                };
                gx.add_assign(&gs)?;
                Ok(gx)
            }
            Block::MaxPool { cache, .. } => {
                let (fwd, dims) = cache.as_ref().ok_or_else(|| no_cache("MaxPool"))?;
                maxpool2d_backward(grad_y, dims, fwd)
            }
            Block::Transformer {
                ln1,
                attn,
                ln2,
                fc1,
                fc2,
                cache,
            } => {
                let c = cache.take().ok_or_else(|| no_cache("Transformer"))?;
                let (n, t) = (c.n, c.t);
                let d = attn.width();
                let g2 = grad_y.reshape(&[n * t, d])?;
                // Through the MLP branch.
                let gm = fc2.backward(&g2)?;
                let gm = ops::gelu_backward(&gm, &c.mlp_pre)?;
                let gh2 = fc1.backward(&gm)?;
                // r1 receives the residual path and the LN2 path. f32
                // addition commutes, so accumulating into the LN2 gradient
                // (instead of into a clone of g2) is bit-identical.
                let mut gr1 = ln2.backward(&gh2)?;
                gr1.add_assign(&g2)?;
                // Through attention.
                let ga = attn.backward(&gr1.reshape(&[n, t, d])?)?;
                let gh1 = ga.reshape(&[n * t, d])?;
                let mut gx2 = gr1;
                gx2.add_assign(&ln1.backward(&gh1)?)?;
                gx2.reshape(&[n, t, d])
            }
            Block::PatchEmbedB(pe) => pe.backward(grad_y),
            Block::TokenEmbedB(te) => te.backward(grad_y),
            Block::Head { linear, cache_dims } => {
                let dims = cache_dims.as_ref().ok_or_else(|| no_cache("Head"))?;
                let gp = linear.backward(grad_y)?;
                match dims.len() {
                    4 => global_avgpool_backward(&gp, dims),
                    3 => {
                        let (n, t, d) = (dims[0], dims[1], dims[2]);
                        let mut gx = Tensor::zeros(dims);
                        let inv = 1.0 / t as f32;
                        for s in 0..n {
                            for tok in 0..t {
                                for j in 0..d {
                                    gx.data_mut()[(s * t + tok) * d + j] =
                                        gp.data()[s * d + j] * inv;
                                }
                            }
                        }
                        Ok(gx)
                    }
                    _ => Err(no_cache("Head")),
                }
            }
            Block::Rescale {
                target,
                proj,
                cache,
                ..
            } => {
                let (in_dims, mid_dims) = cache.as_ref().ok_or_else(|| no_cache("Rescale"))?;
                match target.len() {
                    3 => {
                        let g = match proj {
                            Some(RescaleProj::Conv(c)) => Some(c.backward(grad_y)?),
                            _ => None,
                        };
                        resize2d_backward(
                            g.as_ref().unwrap_or(grad_y),
                            in_dims,
                            InterpMode::Bilinear,
                        )
                    }
                    2 => {
                        let n = in_dims[0];
                        let g = match proj {
                            Some(RescaleProj::Linear(l)) => {
                                let g2 =
                                    grad_y.reshape(&[n * target[0], target[1]])?;
                                l.backward(&g2)?
                            }
                            _ => grad_y.reshape(&[n * target[0], in_dims[2]])?,
                        };
                        let g4 = g.reshape(&[n, 1, target[0], in_dims[2]])?;
                        let gx = resize2d_backward(&g4, mid_dims, InterpMode::Bilinear)?;
                        gx.reshape(in_dims)
                    }
                    _ => Err(no_cache("Rescale")),
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Parameter plumbing
    // ------------------------------------------------------------------

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Parameter)) {
        match self {
            Block::ConvRelu { conv, .. } => conv.visit_params(f),
            Block::ConvBnRelu { conv, bn, .. } => {
                conv.visit_params(f);
                bn.visit_params(f);
            }
            Block::Residual {
                conv1,
                bn1,
                conv2,
                bn2,
                down,
                ..
            } => {
                conv1.visit_params(f);
                bn1.visit_params(f);
                conv2.visit_params(f);
                bn2.visit_params(f);
                if let Some((dc, dbn)) = down {
                    dc.visit_params(f);
                    dbn.visit_params(f);
                }
            }
            Block::MaxPool { .. } => {}
            Block::Transformer {
                ln1,
                attn,
                ln2,
                fc1,
                fc2,
                ..
            } => {
                ln1.visit_params(f);
                attn.visit_params(f);
                ln2.visit_params(f);
                fc1.visit_params(f);
                fc2.visit_params(f);
            }
            Block::PatchEmbedB(pe) => pe.visit_params(f),
            Block::TokenEmbedB(te) => te.visit_params(f),
            Block::Head { linear, .. } => linear.visit_params(f),
            Block::Rescale { proj, .. } => match proj {
                Some(RescaleProj::Conv(c)) => c.visit_params(f),
                Some(RescaleProj::Linear(l)) => l.visit_params(f),
                None => {}
            },
        }
    }

    /// Read-only parameter visit, in the same order as [`visit_params`].
    ///
    /// Lets introspection ([`capacity`], [`state`]) walk the parameters
    /// without cloning the whole block first.
    ///
    /// [`visit_params`]: Block::visit_params
    /// [`capacity`]: Block::capacity
    /// [`state`]: Block::state
    pub fn visit_params_ref(&self, f: &mut dyn FnMut(&Parameter)) {
        match self {
            Block::ConvRelu { conv, .. } => conv.visit_params_ref(f),
            Block::ConvBnRelu { conv, bn, .. } => {
                conv.visit_params_ref(f);
                bn.visit_params_ref(f);
            }
            Block::Residual {
                conv1,
                bn1,
                conv2,
                bn2,
                down,
                ..
            } => {
                conv1.visit_params_ref(f);
                bn1.visit_params_ref(f);
                conv2.visit_params_ref(f);
                bn2.visit_params_ref(f);
                if let Some((dc, dbn)) = down {
                    dc.visit_params_ref(f);
                    dbn.visit_params_ref(f);
                }
            }
            Block::MaxPool { .. } => {}
            Block::Transformer {
                ln1,
                attn,
                ln2,
                fc1,
                fc2,
                ..
            } => {
                ln1.visit_params_ref(f);
                attn.visit_params_ref(f);
                ln2.visit_params_ref(f);
                fc1.visit_params_ref(f);
                fc2.visit_params_ref(f);
            }
            Block::PatchEmbedB(pe) => pe.visit_params_ref(f),
            Block::TokenEmbedB(te) => te.visit_params_ref(f),
            Block::Head { linear, .. } => linear.visit_params_ref(f),
            Block::Rescale { proj, .. } => match proj {
                Some(RescaleProj::Conv(c)) => c.visit_params_ref(f),
                Some(RescaleProj::Linear(l)) => l.visit_params_ref(f),
                None => {}
            },
        }
    }

    /// Visits every persistent tensor: parameter values plus non-trainable
    /// buffers (batch-norm running statistics). Used for serialization.
    pub fn visit_state(&mut self, f: &mut dyn FnMut(&mut Tensor)) {
        // Parameters first, in visit order.
        self.visit_params(&mut |p: &mut Parameter| f(&mut p.value));
        // Then buffers.
        match self {
            Block::ConvBnRelu { bn, .. } => {
                f(&mut bn.running_mean);
                f(&mut bn.running_var);
            }
            Block::Residual { bn1, bn2, down, .. } => {
                f(&mut bn1.running_mean);
                f(&mut bn1.running_var);
                f(&mut bn2.running_mean);
                f(&mut bn2.running_var);
                if let Some((_, dbn)) = down {
                    f(&mut dbn.running_mean);
                    f(&mut dbn.running_var);
                }
            }
            _ => {}
        }
    }

    /// Read-only state visit, in the same order as [`visit_state`].
    ///
    /// [`visit_state`]: Block::visit_state
    pub fn visit_state_ref(&self, f: &mut dyn FnMut(&Tensor)) {
        // Parameters first, in visit order.
        self.visit_params_ref(&mut |p: &Parameter| f(&p.value));
        // Then buffers.
        match self {
            Block::ConvBnRelu { bn, .. } => {
                f(&bn.running_mean);
                f(&bn.running_var);
            }
            Block::Residual { bn1, bn2, down, .. } => {
                f(&bn1.running_mean);
                f(&bn1.running_var);
                f(&bn2.running_mean);
                f(&bn2.running_var);
                if let Some((_, dbn)) = down {
                    f(&dbn.running_mean);
                    f(&dbn.running_var);
                }
            }
            _ => {}
        }
    }

    /// Extracts the persistent state as an ordered list of tensors.
    pub fn state(&self) -> Vec<Tensor> {
        let mut out = Vec::new();
        self.visit_state_ref(&mut |t: &Tensor| out.push(t.clone()));
        out
    }

    /// Loads persistent state produced by [`Block::state`] from an
    /// architecturally identical block.
    pub fn load_state(&mut self, state: &[Tensor]) -> Result<()> {
        let mut idx = 0usize;
        let mut err = None;
        self.visit_state(&mut |t: &mut Tensor| {
            if err.is_some() {
                return;
            }
            match state.get(idx) {
                Some(s) if s.dims() == t.dims() => *t = s.clone(),
                Some(s) => {
                    err = Some(TensorError::ShapeMismatch {
                        op: "Block::load_state",
                        lhs: t.shape().to_string(),
                        rhs: s.shape().to_string(),
                    })
                }
                None => {
                    err = Some(TensorError::InvalidArgument {
                        op: "Block::load_state",
                        msg: "state too short".to_string(),
                    })
                }
            }
            idx += 1;
        });
        if let Some(e) = err {
            return Err(e);
        }
        if idx != state.len() {
            return Err(TensorError::InvalidArgument {
                op: "Block::load_state",
                msg: format!("state has {} tensors, block expects {}", state.len(), idx),
            });
        }
        // Loading fresh values invalidates optimizer moments.
        self.visit_params(&mut |p: &mut Parameter| {
            let v = p.value.clone();
            p.load_value(v);
        });
        Ok(())
    }

    /// Drops all cached activations (e.g. before measuring inference).
    pub fn clear_cache(&mut self) {
        match self {
            Block::ConvRelu { conv, cache_pre } => {
                conv.clear_cache();
                *cache_pre = None;
            }
            Block::ConvBnRelu {
                conv,
                bn,
                cache_pre,
            } => {
                conv.clear_cache();
                bn.clear_cache();
                *cache_pre = None;
            }
            Block::Residual {
                conv1,
                bn1,
                conv2,
                bn2,
                down,
                cache_pre1,
                cache_pre2,
            } => {
                conv1.clear_cache();
                bn1.clear_cache();
                conv2.clear_cache();
                bn2.clear_cache();
                if let Some((dc, dbn)) = down {
                    dc.clear_cache();
                    dbn.clear_cache();
                }
                *cache_pre1 = None;
                *cache_pre2 = None;
            }
            Block::MaxPool { cache, .. } => *cache = None,
            Block::Transformer {
                ln1,
                attn,
                ln2,
                fc1,
                fc2,
                cache,
            } => {
                ln1.clear_cache();
                attn.clear_cache();
                ln2.clear_cache();
                fc1.clear_cache();
                fc2.clear_cache();
                *cache = None;
            }
            Block::PatchEmbedB(pe) => pe.clear_cache(),
            Block::TokenEmbedB(te) => te.clear_cache(),
            Block::Head { linear, cache_dims } => {
                linear.clear_cache();
                *cache_dims = None;
            }
            Block::Rescale { proj, cache, .. } => {
                match proj {
                    Some(RescaleProj::Conv(c)) => c.clear_cache(),
                    Some(RescaleProj::Linear(l)) => l.clear_cache(),
                    None => {}
                }
                *cache = None;
            }
        }
    }

    /// Short human-readable description used by graph visualization.
    pub fn describe(&self) -> String {
        match self {
            Block::ConvRelu { conv, .. } => format!(
                "Conv+ReLU({}→{})",
                conv.in_channels(),
                conv.out_channels()
            ),
            Block::ConvBnRelu { conv, .. } => format!(
                "Conv+BN+ReLU({}→{},s{})",
                conv.in_channels(),
                conv.out_channels(),
                conv.geom.stride
            ),
            Block::Residual { conv1, .. } => format!(
                "ResidualBlock({}→{},s{})",
                conv1.in_channels(),
                conv1.out_channels(),
                conv1.geom.stride
            ),
            Block::MaxPool { k, .. } => format!("MaxPool({k}x{k})"),
            Block::Transformer { attn, .. } => {
                format!("Encoder(d={},h={})", attn.width(), attn.heads)
            }
            Block::PatchEmbedB(pe) => {
                format!("PatchEmbed(p={},d={})", pe.patch, pe.width())
            }
            Block::TokenEmbedB(te) => {
                format!("TokenEmbed(v={},d={})", te.vocab(), te.width())
            }
            Block::Head { linear, .. } => format!(
                "Head({}→{})",
                linear.in_features(),
                linear.out_features()
            ),
            Block::Rescale { target, .. } => format!("Rescale(→{target:?})"),
        }
    }
}

fn conv_flops(conv: &Conv2d, out_shape: &[usize]) -> u64 {
    let k = conv.geom.kernel as u64;
    2 * out_shape.iter().product::<usize>() as u64 * conv.in_channels() as u64 * k * k
}

fn no_cache(which: &'static str) -> TensorError {
    TensorError::InvalidArgument {
        op: "Block::backward",
        msg: format!("{which}: backward called without a cached training forward"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn gradcheck_block(block: &mut Block, x: &Tensor, tol: f32) {
        let mut rng = Rng::new(1234);
        let y = block.forward(x, Mode::Train).unwrap();
        let w = Tensor::randn(&[y.numel()], 1.0, &mut rng);
        let g = Tensor::from_vec(y.dims(), w.data().to_vec()).unwrap();
        let gx = block.backward(&g).unwrap();
        assert_eq!(gx.dims(), x.dims());
        let eps = 1e-2f32;
        let loss = |b: &mut Block, x: &Tensor| -> f32 {
            b.forward(x, Mode::Train)
                .unwrap()
                .data()
                .iter()
                .zip(w.data())
                .map(|(a, b)| a * b)
                .sum()
        };
        let count = x.numel().min(12);
        let step = (x.numel() / count).max(1);
        for i in (0..x.numel()).step_by(step).take(count) {
            let mut xp = x.clone();
            xp.data_mut()[i] += eps;
            let mut xm = x.clone();
            xm.data_mut()[i] -= eps;
            let mut b2 = block.clone();
            let num = (loss(&mut b2, &xp) - loss(&mut b2, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.data()[i]).abs() < tol,
                "dX[{i}]: {num} vs {}",
                gx.data()[i]
            );
        }
    }

    #[test]
    fn conv_relu_shapes_and_grad() {
        let mut rng = Rng::new(0);
        let mut b = Block::conv_relu(2, 4, &mut rng).unwrap();
        assert_eq!(b.out_shape(&[2, 6, 6]).unwrap(), vec![4, 6, 6]);
        assert_eq!(b.op_type(), OpType::Conv);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        gradcheck_block(&mut b, &x, 0.08);
    }

    #[test]
    fn conv_bn_relu_grad() {
        let mut rng = Rng::new(1);
        let mut b = Block::conv_bn_relu(2, 3, 3, 1, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, &mut rng);
        gradcheck_block(&mut b, &x, 0.1);
    }

    #[test]
    fn residual_block_shapes() {
        let mut rng = Rng::new(2);
        let same = Block::residual(8, 8, 1, &mut rng).unwrap();
        assert_eq!(same.out_shape(&[8, 8, 8]).unwrap(), vec![8, 8, 8]);
        let down = Block::residual(8, 16, 2, &mut rng).unwrap();
        assert_eq!(down.out_shape(&[8, 8, 8]).unwrap(), vec![16, 4, 4]);
        // No projection when shape is preserved.
        if let Block::Residual { down: d, .. } = &same {
            assert!(d.is_none());
        }
        if let Block::Residual { down: d, .. } = &down {
            assert!(d.is_some());
        }
    }

    #[test]
    fn residual_block_grad() {
        let mut rng = Rng::new(3);
        let mut b = Block::residual(2, 4, 2, &mut rng).unwrap();
        let x = Tensor::randn(&[2, 2, 4, 4], 1.0, &mut rng);
        gradcheck_block(&mut b, &x, 0.12);
    }

    #[test]
    fn maxpool_block() {
        let mut rng = Rng::new(4);
        let mut b = Block::maxpool(2);
        assert_eq!(b.out_shape(&[3, 8, 8]).unwrap(), vec![3, 4, 4]);
        assert_eq!(b.capacity(), 0);
        let x = Tensor::randn(&[1, 1, 4, 4], 1.0, &mut rng);
        gradcheck_block(&mut b, &x, 0.05);
    }

    #[test]
    fn transformer_block_grad() {
        let mut rng = Rng::new(5);
        let mut b = Block::transformer(4, 2, &mut rng).unwrap();
        assert_eq!(b.out_shape(&[3, 4]).unwrap(), vec![3, 4]);
        let x = Tensor::randn(&[1, 3, 4], 0.5, &mut rng);
        gradcheck_block(&mut b, &x, 0.15);
    }

    #[test]
    fn head_vision_and_seq() {
        let mut rng = Rng::new(6);
        let mut hv = Block::head(4, 3, &mut rng);
        assert_eq!(hv.out_shape(&[4, 5, 5]).unwrap(), vec![3]);
        let x = Tensor::randn(&[2, 4, 3, 3], 1.0, &mut rng);
        gradcheck_block(&mut hv, &x, 0.05);

        let mut hs = Block::head(4, 2, &mut rng);
        assert_eq!(hs.out_shape(&[7, 4]).unwrap(), vec![2]);
        let xs = Tensor::randn(&[2, 3, 4], 1.0, &mut rng);
        gradcheck_block(&mut hs, &xs, 0.05);

        assert!(hs.out_shape(&[5, 5]).is_err());
    }

    #[test]
    fn rescale_vision_grad() {
        let mut rng = Rng::new(7);
        let mut b = Block::rescale(&[2, 4, 4], &[3, 6, 6], &mut rng).unwrap();
        assert_eq!(b.out_shape(&[2, 4, 4]).unwrap(), vec![3, 6, 6]);
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        gradcheck_block(&mut b, &x, 0.08);
    }

    #[test]
    fn rescale_seq_grad() {
        let mut rng = Rng::new(8);
        let mut b = Block::rescale(&[4, 6], &[6, 4], &mut rng).unwrap();
        assert_eq!(b.out_shape(&[4, 6]).unwrap(), vec![6, 4]);
        let x = Tensor::randn(&[2, 4, 6], 1.0, &mut rng);
        gradcheck_block(&mut b, &x, 0.08);
    }

    #[test]
    fn rescale_without_channel_change_has_no_params() {
        let mut rng = Rng::new(9);
        let b = Block::rescale(&[4, 8, 8], &[4, 4, 4], &mut rng).unwrap();
        assert_eq!(b.capacity(), 0);
        let b = Block::rescale(&[4, 8, 8], &[8, 4, 4], &mut rng).unwrap();
        assert!(b.capacity() > 0);
    }

    #[test]
    fn patch_and_token_embed_shapes() {
        let mut rng = Rng::new(10);
        let pe = Block::patch_embed(3, 8, 4, 16, &mut rng).unwrap();
        assert_eq!(pe.out_shape(&[3, 8, 8]).unwrap(), vec![4, 16]);
        assert!(pe.out_shape(&[3, 7, 8]).is_err());
        let te = Block::token_embed(32, 8, 16, &mut rng);
        assert_eq!(te.out_shape(&[10]).unwrap(), vec![10, 8]);
    }

    #[test]
    fn capacity_counts_match_layers() {
        let mut rng = Rng::new(11);
        let b = Block::conv_relu(3, 8, &mut rng).unwrap();
        assert_eq!(b.capacity(), 8 * 3 * 9 + 8);
        let h = Block::head(16, 5, &mut rng);
        assert_eq!(h.capacity(), 16 * 5 + 5);
    }

    #[test]
    fn flops_increase_with_input_size() {
        let mut rng = Rng::new(12);
        let b = Block::conv_relu(4, 8, &mut rng).unwrap();
        let small = b.flops(&[4, 8, 8]).unwrap();
        let large = b.flops(&[4, 16, 16]).unwrap();
        assert_eq!(large, small * 4);
    }

    #[test]
    fn state_roundtrip() {
        let mut rng = Rng::new(13);
        let src = Block::residual(2, 4, 2, &mut rng).unwrap();
        let mut dst = Block::residual(2, 4, 2, &mut rng).unwrap();
        let state = src.state();
        assert!(!state.is_empty());
        dst.load_state(&state).unwrap();
        // Same weights produce the same output.
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        let mut a = src.clone();
        let mut b = dst.clone();
        let ya = a.forward(&x, Mode::Eval).unwrap();
        let yb = b.forward(&x, Mode::Eval).unwrap();
        for (p, q) in ya.data().iter().zip(yb.data()) {
            assert!((p - q).abs() < 1e-6);
        }
        // Mismatched architecture is rejected.
        let mut other = Block::conv_relu(2, 4, &mut rng).unwrap();
        assert!(other.load_state(&state).is_err());
    }

    #[test]
    fn transformer_state_roundtrip() {
        let mut rng = Rng::new(21);
        let src = Block::transformer(8, 2, &mut rng).unwrap();
        let mut dst = Block::transformer(8, 2, &mut rng).unwrap();
        dst.load_state(&src.state()).unwrap();
        let x = Tensor::randn(&[1, 4, 8], 1.0, &mut rng);
        let ya = src.clone().forward(&x, Mode::Eval).unwrap();
        let yb = dst.forward(&x, Mode::Eval).unwrap();
        for (a, b) in ya.data().iter().zip(yb.data()) {
            assert!((a - b).abs() < 1e-5);
        }
        // Width mismatch rejected.
        let mut other = Block::transformer(4, 2, &mut rng).unwrap();
        assert!(other.load_state(&src.state()).is_err());
    }

    #[test]
    fn rescale_state_roundtrip_covers_both_projections() {
        let mut rng = Rng::new(22);
        for (from, to) in [
            (vec![4usize, 8, 8], vec![8usize, 4, 4]), // Conv projection.
            (vec![6, 8], vec![4, 12]),                // Linear projection.
        ] {
            let src = Block::rescale(&from, &to, &mut rng).unwrap();
            let mut dst = Block::rescale(&from, &to, &mut rng).unwrap();
            dst.load_state(&src.state()).unwrap();
            assert_eq!(src.state(), dst.state());
        }
    }

    #[test]
    fn clear_cache_resets_every_variant() {
        let mut rng = Rng::new(23);
        let mut blocks = vec![
            Block::conv_relu(2, 3, &mut rng).unwrap(),
            Block::conv_bn_relu(2, 3, 3, 1, &mut rng).unwrap(),
            Block::residual(2, 3, 1, &mut rng).unwrap(),
            Block::maxpool(2),
            Block::head(2, 2, &mut rng),
            Block::rescale(&[2, 4, 4], &[3, 2, 2], &mut rng).unwrap(),
        ];
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        for b in &mut blocks {
            b.forward(&x, Mode::Train).unwrap();
            b.clear_cache();
            // Backward after clearing must error (cache really dropped).
            let g = Tensor::ones(&[1]);
            assert!(b.backward(&g).is_err(), "{}", b.describe());
        }
    }

    #[test]
    fn forward_eval_does_not_populate_caches() {
        let mut rng = Rng::new(24);
        let mut b = Block::conv_relu(2, 3, &mut rng).unwrap();
        let x = Tensor::randn(&[1, 2, 4, 4], 1.0, &mut rng);
        b.forward(&x, Mode::Eval).unwrap();
        assert!(b.backward(&Tensor::ones(&[1, 3, 4, 4])).is_err());
    }

    #[test]
    fn backward_without_forward_is_error() {
        let mut rng = Rng::new(14);
        let mut b = Block::conv_relu(2, 2, &mut rng).unwrap();
        assert!(b.backward(&Tensor::ones(&[1, 2, 4, 4])).is_err());
    }

    #[test]
    fn describe_is_informative() {
        let mut rng = Rng::new(15);
        let b = Block::residual(8, 16, 2, &mut rng).unwrap();
        assert!(b.describe().contains("Residual"));
        assert!(b.describe().contains("16"));
    }
}
