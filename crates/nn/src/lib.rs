//! Neural-network layers and computation blocks for the GMorph reproduction.
//!
//! The paper treats a DNN as "a sequence of computation blocks" — residual
//! blocks in ResNets, convolution layers in VGGs, encoder layers in
//! transformers (§1). This crate provides:
//!
//! - trainable layers with manual forward/backward passes ([`layers`]),
//! - the [`block::Block`] enum: the *computation block* unit that the
//!   abstract graph represents and graph mutation rearranges,
//! - optimizers ([`optim`]) and losses ([`loss`]), including the weighted
//!   ℓ1 distillation loss of §5.2,
//! - weight initialization schemes ([`init`]),
//! - numeric-health supervision ([`health`]): gradient clipping,
//!   non-finite detection, and divergence policy for fine-tune loops.
//!
//! Layers cache whatever the backward pass needs during `forward`, so the
//! call protocol is strictly `forward` then (optionally) `backward` on the
//! same instance — the protocol PyTorch's autograd enforces dynamically is
//! enforced here by construction of the training loops.

pub mod block;
pub mod health;
pub mod init;
pub mod layers;
pub mod loss;
pub mod optim;
pub mod param;
pub mod spec;

pub use block::{Block, OpType};
pub use param::Parameter;
pub use spec::BlockSpec;

pub use gmorph_tensor::{Result, Shape, Tensor, TensorError};

/// Whether a forward pass is part of training or evaluation.
///
/// Controls batch-norm statistics (batch vs running) and gradient caching.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Mode {
    /// Training: use batch statistics, cache activations for backward.
    Train,
    /// Inference: use running statistics, skip caches where possible.
    Eval,
}
